//! Invariant tests for the policy stack: tier/poison/THP state must stay
//! mutually consistent across arbitrary daemon activity, and the runtime
//! knobs must behave like the paper's cgroup interface.

use thermostat_suite::core::{Daemon, MonitorMode, ThermostatConfig};
use thermostat_suite::mem::{Tier, VirtAddr, Vpn, PAGES_PER_HUGE};
use thermostat_suite::sim::{run_for, Access, Engine, SimConfig, Workload};

/// Zipf-ish toy workload over `n_huge` huge pages: page p gets traffic
/// proportional to 1/(p+1).
struct Harmonic {
    base: VirtAddr,
    n_huge: u64,
    rng: thermo_util::rng::SmallRng,
}

impl Harmonic {
    fn new(n_huge: u64) -> Self {
        use thermo_util::rng::SeedableRng;
        Self {
            base: VirtAddr(0),
            n_huge,
            rng: thermo_util::rng::SmallRng::seed_from_u64(5),
        }
    }
}

impl Workload for Harmonic {
    fn name(&self) -> &str {
        "harmonic"
    }

    fn init(&mut self, engine: &mut Engine) {
        self.base = engine.mmap(self.n_huge * (2 << 20), true, true, false, "heap");
        for p in 0..self.n_huge {
            engine.access(self.base + p * (2 << 20), true);
        }
    }

    fn next_op(&mut self, _now: u64, acc: &mut Vec<Access>) -> Option<u64> {
        use thermo_util::rng::Rng;
        // Inverse-CDF-ish harmonic pick.
        let u: f64 = self.rng.gen();
        let page = ((self.n_huge as f64).powf(u) - 1.0) as u64 % self.n_huge;
        let off: u64 = self.rng.gen_range(0..(2u64 << 20)) & !63;
        acc.push(Access::read(self.base + page * (2 << 20) + off));
        Some(1_000)
    }
}

fn small_engine() -> Engine {
    let mut cfg = SimConfig::paper_defaults(256 << 20, 256 << 20);
    cfg.tlb.l1_huge = thermostat_suite::vm::TlbGeometry::new(4, 4);
    cfg.tlb.l2 = thermostat_suite::vm::TlbGeometry::new(16, 8);
    Engine::new(cfg)
}

fn fast_daemon() -> Daemon {
    Daemon::new(ThermostatConfig {
        sampling_period_ns: 300_000_000,
        sample_fraction: 0.3,
        ..ThermostatConfig::paper_defaults()
    })
}

/// Checks the global tier/poison/THP consistency invariants.
fn check_invariants(engine: &mut Engine, daemon: &Daemon, workload_pages: u64, base: VirtAddr) {
    let mut cold_seen = 0;
    for p in 0..workload_pages {
        let vpn = Vpn(base.vpn().0 + p * PAGES_PER_HUGE as u64);
        let mapping = engine.page_table().lookup(vpn).expect("page stays mapped");
        let tier = engine.tier_of_vpn(vpn).expect("page has a frame");
        match tier {
            Tier::Slow => {
                cold_seen += 1;
                // Every slow page is monitored: poisoned at huge grain
                // (consolidated) or at 4KB grain (freshly demoted).
                let monitored =
                    engine.trap().is_poisoned(mapping.base_vpn) || engine.trap().is_poisoned(vpn);
                assert!(
                    monitored,
                    "slow page {vpn} must be poisoned for §3.5 monitoring"
                );
            }
            Tier::Fast => {
                // Fast pages may be split/poisoned only while being sampled
                // (mid-period); after the final classify they must be clean
                // huge pages. We only assert they translate consistently.
                assert!(mapping.pte.pfn().0 > 0 || mapping.pte.pfn().0 == 0);
            }
        }
    }
    assert_eq!(
        cold_seen,
        daemon.cold_pages() as u64,
        "daemon cold set must match tier state"
    );
}

#[test]
fn tier_poison_state_consistent_after_many_periods() {
    let mut engine = small_engine();
    let mut w = Harmonic::new(24);
    w.init(&mut engine);
    let mut daemon = fast_daemon();
    // Run to a period boundary: 3s = 10 periods of 0.3s.
    run_for(&mut engine, &mut w, &mut daemon, 3_000_000_000);
    assert!(daemon.cold_pages() > 0, "harmonic tail must be demoted");
    check_invariants(&mut engine, &daemon, 24, w.base);
}

#[test]
fn footprint_breakdown_equals_rss() {
    let mut engine = small_engine();
    let mut w = Harmonic::new(16);
    w.init(&mut engine);
    let mut daemon = fast_daemon();
    run_for(&mut engine, &mut w, &mut daemon, 2_000_000_000);
    let fb = engine.footprint_breakdown();
    assert_eq!(
        fb.total(),
        engine.rss_bytes(),
        "breakdown must account every resident byte"
    );
}

#[test]
fn runtime_knob_change_takes_effect_next_periods() {
    let mut engine = small_engine();
    let mut w = Harmonic::new(24);
    w.init(&mut engine);
    let mut daemon = fast_daemon();
    run_for(&mut engine, &mut w, &mut daemon, 2_000_000_000);
    let cold_tight = daemon.cold_pages();
    // Loosen the budget at runtime (the cgroup knob) and keep running.
    daemon.set_tolerable_slowdown_pct(10.0);
    run_for(&mut engine, &mut w, &mut daemon, 2_000_000_000);
    let cold_loose = daemon.cold_pages();
    assert!(
        cold_loose >= cold_tight,
        "a looser budget must not shrink the cold set ({cold_tight} -> {cold_loose})"
    );
}

#[test]
fn ideal_cm_bit_mode_runs_and_classifies() {
    let mut cfg = SimConfig::paper_defaults(256 << 20, 256 << 20);
    cfg.track_true_access = true;
    cfg.tlb.l1_huge = thermostat_suite::vm::TlbGeometry::new(4, 4);
    cfg.tlb.l2 = thermostat_suite::vm::TlbGeometry::new(16, 8);
    let mut engine = Engine::new(cfg);
    let mut w = Harmonic::new(24);
    w.init(&mut engine);
    let mut daemon = Daemon::new(ThermostatConfig {
        sampling_period_ns: 300_000_000,
        sample_fraction: 0.3,
        monitor_mode: MonitorMode::IdealCmBit,
        ..ThermostatConfig::paper_defaults()
    });
    run_for(&mut engine, &mut w, &mut daemon, 3_000_000_000);
    assert!(
        daemon.cold_pages() > 0,
        "CM-bit monitoring must classify too"
    );
    // The hardware mode never poisons fast-tier pages for sampling.
    assert_eq!(
        engine.stats().fast_trap_faults,
        0,
        "CM-bit mode has no sampling faults"
    );
}

#[test]
fn thermostat_usable_while_footprint_grows() {
    // Demand paging keeps adding huge pages mid-run; sampling candidates
    // must pick them up and nothing may panic.
    struct Grower {
        base: VirtAddr,
        touched: u64,
        i: u64,
    }
    impl Workload for Grower {
        fn name(&self) -> &str {
            "grower"
        }
        fn init(&mut self, engine: &mut Engine) {
            self.base = engine.mmap(64 << 20, true, true, false, "grow");
            engine.access(self.base, true);
            self.touched = 1;
        }
        fn next_op(&mut self, _now: u64, acc: &mut Vec<Access>) -> Option<u64> {
            self.i += 1;
            if self.i.is_multiple_of(2_000) && self.touched < 32 {
                // Materialize a new huge page.
                acc.push(Access::write(self.base + self.touched * (2 << 20)));
                self.touched += 1;
            }
            acc.push(Access::read(self.base + (self.i * 64) % (2 << 20)));
            Some(1_000)
        }
    }
    let mut engine = small_engine();
    let mut w = Grower {
        base: VirtAddr(0),
        touched: 0,
        i: 0,
    };
    w.init(&mut engine);
    let mut daemon = fast_daemon();
    run_for(&mut engine, &mut w, &mut daemon, 4_000_000_000);
    assert!(w.touched > 10, "workload must have grown");
    assert_eq!(
        engine.footprint_breakdown().total(),
        engine.rss_bytes(),
        "grown footprint stays consistent"
    );
}

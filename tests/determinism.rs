//! Determinism tests: the whole stack — engine, daemon, and the JSON
//! serialization of their artifacts — must be a pure function of the seed.
//!
//! The acceptance bar is byte-identity, not approximate equality: rerunning
//! any seeded experiment twice has to produce the same report files so that
//! figure reproduction is diffable.

use thermo_util::json::{encode, encode_pretty, ToJson};
use thermostat_suite::bench::ExperimentReport;
use thermostat_suite::core::{Daemon, DaemonStats, PeriodRecord, ThermostatConfig};
use thermostat_suite::sim::{run_for, Engine, SimConfig};
use thermostat_suite::workloads::{AppConfig, AppId};

const SCALE: u64 = 512;
const DURATION_NS: u64 = 2_000_000_000;

/// One managed run at miniature scale; returns the serialized artifacts.
struct RunArtifacts {
    stats: DaemonStats,
    stats_json: String,
    history_json: String,
    report_json: String,
}

fn run(seed: u64) -> RunArtifacts {
    let mut cfg = SimConfig::paper_defaults(192 << 20, 192 << 20);
    cfg.tlb.l1_small = thermostat_suite::vm::TlbGeometry::new(8, 4);
    cfg.tlb.l1_huge = thermostat_suite::vm::TlbGeometry::new(4, 4);
    cfg.tlb.l2 = thermostat_suite::vm::TlbGeometry::new(16, 8);
    cfg.llc.size_bytes = 512 << 10;
    let mut engine = Engine::new(cfg);
    let mut w = AppId::MysqlTpcc.build(AppConfig {
        scale: SCALE,
        seed,
        read_pct: 95,
    });
    w.init(&mut engine);
    let daemon_cfg = ThermostatConfig {
        sampling_period_ns: 300_000_000,
        seed,
        ..ThermostatConfig::paper_defaults()
    };
    let mut daemon = Daemon::new(daemon_cfg);
    let out = run_for(&mut engine, w.as_mut(), &mut daemon, DURATION_NS);

    let stats = daemon.stats();
    let history: Vec<PeriodRecord> = daemon.history().to_vec();
    // A miniature bench report: the exact shape fig/tab binaries write via
    // `write_json`, so byte-identity here transfers to the report files.
    let report = ExperimentReport {
        id: "determinism".to_string(),
        title: "determinism probe".to_string(),
        columns: vec!["ops_per_sec".to_string(), "periods".to_string()],
        rows: vec![vec![
            format!("{:.6}", out.ops_per_sec()),
            stats.periods.to_string(),
        ]],
        notes: vec![format!("seed {seed}")],
    };
    RunArtifacts {
        stats,
        stats_json: encode(&stats),
        history_json: encode(&history),
        report_json: encode_pretty(&report),
    }
}

#[test]
fn same_seed_gives_byte_identical_artifacts() {
    let a = run(7);
    let b = run(7);
    assert_eq!(a.stats, b.stats, "DaemonStats must match structurally");
    assert_eq!(
        a.stats_json, b.stats_json,
        "DaemonStats JSON must be byte-identical"
    );
    assert_eq!(
        a.history_json, b.history_json,
        "PeriodRecord history JSON must be byte-identical"
    );
    assert_eq!(
        a.report_json, b.report_json,
        "bench report JSON must be byte-identical"
    );
}

#[test]
fn distinct_seeds_diverge() {
    let a = run(7);
    let b = run(8);
    // The workload layout and sampling choices both depend on the seed, so
    // at least one artifact must differ (in practice all of them do).
    assert!(
        a.history_json != b.history_json || a.report_json != b.report_json,
        "distinct seeds produced identical runs"
    );
}

#[test]
fn every_registry_experiment_is_byte_deterministic() {
    // Smoke-run the full fig/tab registry twice: each harness entry must
    // serialize to byte-identical artifact JSON, which is the property
    // the golden checker (`scripts/golden.sh`) builds on. Registration is
    // enough to be covered here — new experiments can't silently opt out.
    let params = thermostat_suite::bench::EvalParams {
        // A third of the golden smoke duration: identity of two reruns
        // doesn't need the full window, just the full pipeline.
        duration_ns: 500_000_000,
        ..thermostat_suite::bench::EvalParams::smoke()
    };
    for exp in thermostat_suite::bench::experiments::ALL {
        let a = encode(&(exp.run)(&params));
        let b = encode(&(exp.run)(&params));
        assert_eq!(a, b, "experiment {} artifact not byte-identical", exp.id);
        assert!(
            a.contains("\"report\"") && a.contains("\"runs\""),
            "experiment {} artifact missing report/runs sections",
            exp.id
        );
    }
}

#[test]
fn fabric_experiments_are_registered_and_swept() {
    // The transactional-fabric experiments must stay in the registry:
    // `every_registry_experiment_is_byte_deterministic` above and the
    // THERMO_SCAN_JOBS sweep in thermo-bench both iterate `ALL`, so
    // registration is what keeps the fabric's async copy/abort/backoff
    // machinery under the byte-determinism gate.
    for id in ["fab_bw", "fab_abort"] {
        assert!(
            thermostat_suite::bench::experiments::by_id(id).is_some(),
            "fabric experiment {id} must be registered"
        );
    }
}

#[test]
fn json_encoding_is_itself_deterministic() {
    // Re-encoding the same value twice is byte-stable (ordered object
    // fields, no HashMap iteration anywhere in the serializer).
    let a = run(11);
    let v = a.stats.to_json();
    assert_eq!(
        thermo_util::json::to_string(&v),
        thermo_util::json::to_string(&v)
    );
    // And a decode/encode round trip through the Value model is stable.
    let parsed = thermo_util::json::parse(&a.history_json).expect("valid JSON");
    assert_eq!(thermo_util::json::to_string(&parsed), a.history_json);
}

//! Self-gate: the live workspace must be lint-clean modulo the checked-in
//! baseline (`goldens/lint-baseline.json`). New violations fail here (and
//! in `scripts/ci.sh`) with the offending `file:line` and a fix hint;
//! grandfathered ones stay visible until counted down to zero.

use std::path::Path;

use thermo_lint::{baseline, findings_json, lint_workspace};

fn root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_findings_are_within_baseline() {
    let findings = lint_workspace(root()).expect("walk workspace sources");
    let base = baseline::load(&root().join("goldens/lint-baseline.json"))
        .expect("parse goldens/lint-baseline.json");
    let cmp = baseline::compare(&findings, &base);

    assert!(
        cmp.new.is_empty(),
        "new lint violations (fix them or, for a deliberate exception, add a \
         `// thermo-lint: allow(<lint>, reason = \"…\")` pragma):\n{}",
        findings_json(&cmp.new)
    );
    assert!(
        cmp.stale.is_empty(),
        "stale baseline entries — violations were fixed, so count the baseline \
         down with `cargo run -p thermo-lint -- --write-baseline \
         goldens/lint-baseline.json`:\n{}",
        findings_json(&cmp.stale)
    );
}

#[test]
fn report_json_is_byte_stable() {
    // The report (and therefore the baseline) must serialize identically
    // across runs: the findings order is a total sort, and the JSON codec
    // preserves insertion order.
    let findings = lint_workspace(root()).expect("walk workspace sources");
    let a = findings_json(&findings);
    let b = findings_json(&lint_workspace(root()).expect("second walk"));
    assert_eq!(a, b, "lint report JSON must be byte-stable");

    // Round-trips through the baseline parser without loss.
    let parsed = baseline::parse(&a).expect("parse own report");
    assert_eq!(parsed, findings, "report JSON must round-trip");
}

#[test]
fn baseline_file_is_in_report_format() {
    // The checked-in baseline is exactly what `--write-baseline` emits:
    // parsing and re-serializing it is the identity. This keeps re-bless
    // diffs minimal and ordering canonical.
    let path = root().join("goldens/lint-baseline.json");
    let text = std::fs::read_to_string(&path).expect("read lint-baseline.json");
    let parsed = baseline::parse(&text).expect("parse lint-baseline.json");
    assert_eq!(
        findings_json(&parsed),
        text,
        "baseline must be canonically formatted (re-bless to normalize)"
    );

    let mut sorted = parsed.clone();
    sorted.sort();
    assert_eq!(sorted, parsed, "baseline entries must be sorted");
}

//! Failure-injection tests: the policy must degrade gracefully when the
//! machine is hostile — a slow tier too small for the cold data, a fast
//! tier too full to take promotions, THP disabled, and OS noise flushing
//! the TLB.

use thermostat_suite::core::{Daemon, ThermostatConfig};
use thermostat_suite::mem::{Tier, VirtAddr};
use thermostat_suite::sim::{run_for, Access, Engine, SimConfig, Workload};

/// 90% of traffic on the first page, the rest uniform over the first
/// quarter; the remaining three quarters are load-time-only data.
struct ColdHeavy {
    base: VirtAddr,
    n_huge: u64,
    rng: thermo_util::rng::SmallRng,
}

impl ColdHeavy {
    fn new(n_huge: u64) -> Self {
        use thermo_util::rng::SeedableRng;
        Self {
            base: VirtAddr(0),
            n_huge,
            rng: thermo_util::rng::SmallRng::seed_from_u64(9),
        }
    }
}

impl Workload for ColdHeavy {
    fn name(&self) -> &str {
        "coldheavy"
    }

    fn init(&mut self, engine: &mut Engine) {
        self.base = engine.mmap(self.n_huge * (2 << 20), true, true, false, "heap");
        for p in 0..self.n_huge {
            engine.access(self.base + p * (2 << 20), true);
        }
    }

    fn next_op(&mut self, _now: u64, acc: &mut Vec<Access>) -> Option<u64> {
        use thermo_util::rng::Rng;
        let hot = self.rng.gen::<f64>() < 0.9;
        let page = if hot {
            0
        } else {
            self.rng.gen_range(0..self.n_huge / 4)
        };
        let off: u64 = self.rng.gen_range(0..(2u64 << 20)) & !63;
        acc.push(Access::read(self.base + page * (2 << 20) + off));
        Some(1_000)
    }
}

fn daemon() -> Daemon {
    Daemon::new(ThermostatConfig {
        sampling_period_ns: 300_000_000,
        sample_fraction: 0.4,
        ..ThermostatConfig::paper_defaults()
    })
}

#[test]
fn slow_tier_exhaustion_is_survived_and_counted() {
    // 24 huge pages of workload (48MB) but only ~8MB of slow memory: the
    // daemon must hit OOM on demotions, count it, and keep running.
    let mut cfg = SimConfig::paper_defaults(128 << 20, 8 << 20);
    cfg.tlb.l1_huge = thermostat_suite::vm::TlbGeometry::new(4, 4);
    cfg.tlb.l2 = thermostat_suite::vm::TlbGeometry::new(16, 8);
    let mut engine = Engine::new(cfg);
    let mut w = ColdHeavy::new(24);
    w.init(&mut engine);
    let mut d = daemon();
    run_for(&mut engine, &mut w, &mut d, 4_000_000_000);
    // The slow tier (8MB = 4 huge pages, minus rounding) filled up…
    assert!(d.cold_pages() >= 2, "some pages must have been placed");
    assert!(
        engine.free_bytes(Tier::Slow) < 2 << 20,
        "slow tier should be full"
    );
    // …further demotions failed and were counted, not fatal.
    assert!(d.stats().demote_oom > 0, "OOM demotions must be recorded");
    // The engine stayed consistent throughout.
    assert_eq!(engine.footprint_breakdown().total(), engine.rss_bytes());
}

#[test]
fn thp_disabled_engine_runs_thermostat_with_nothing_to_do() {
    // With THP off there are no huge pages at all; Thermostat finds no
    // sampling candidates and must idle harmlessly.
    let mut cfg = SimConfig::paper_defaults(64 << 20, 64 << 20);
    cfg.thp_enabled = false;
    let mut engine = Engine::new(cfg);
    let mut w = ColdHeavy::new(8);
    w.init(&mut engine);
    assert_eq!(engine.page_table().mapped_huge_pages(), 0);
    let mut d = daemon();
    run_for(&mut engine, &mut w, &mut d, 2_000_000_000);
    assert!(d.stats().periods > 0, "daemon still ticks");
    assert_eq!(
        d.stats().pages_demoted,
        0,
        "no huge pages, nothing to place"
    );
    assert_eq!(engine.footprint_breakdown().cold(), 0);
}

#[test]
fn os_noise_tlb_flushes_do_not_break_monitoring() {
    let mut cfg = SimConfig::paper_defaults(128 << 20, 128 << 20);
    cfg.tlb_flush_period_ns = Some(500_000); // violent flushing
    let mut engine = Engine::new(cfg);
    let mut w = ColdHeavy::new(16);
    w.init(&mut engine);
    let mut d = daemon();
    run_for(&mut engine, &mut w, &mut d, 3_000_000_000);
    assert!(d.stats().periods >= 8);
    assert!(
        d.cold_pages() > 0,
        "flushing makes pages look colder, never breaks placement"
    );
    assert_eq!(engine.footprint_breakdown().total(), engine.rss_bytes());
}

#[test]
fn zero_length_run_is_a_noop() {
    let mut engine = Engine::new(SimConfig::paper_defaults(64 << 20, 64 << 20));
    let mut w = ColdHeavy::new(4);
    w.init(&mut engine);
    let rss = engine.rss_bytes();
    let mut d = daemon();
    let out = run_for(&mut engine, &mut w, &mut d, 0);
    assert_eq!(out.ops, 0);
    assert_eq!(engine.rss_bytes(), rss);
}

#[test]
fn config_serde_roundtrips() {
    // The public configuration types are data (C-SERDE): they must survive
    // a JSON roundtrip unchanged.
    let sim = SimConfig::paper_defaults(1 << 30, 2 << 30);
    let j = thermo_util::json::encode(&sim);
    let back: SimConfig = thermo_util::json::decode(&j).expect("deserialize SimConfig");
    assert_eq!(sim, back);

    let th = ThermostatConfig::paper_defaults();
    let j = thermo_util::json::encode(&th);
    let back: ThermostatConfig =
        thermo_util::json::decode(&j).expect("deserialize ThermostatConfig");
    assert_eq!(th, back);
}

//! Failure-injection tests: the policy must degrade gracefully when the
//! machine is hostile — a slow tier too small for the cold data, a fast
//! tier too full to take promotions, THP disabled, and OS noise flushing
//! the TLB.

use thermostat_suite::core::{Daemon, ThermostatConfig};
use thermostat_suite::mem::{PageSize, Tier, VirtAddr};
use thermostat_suite::sim::{
    run_for, Access, Component, Control, Engine, FabricConfig, OpOutcome, PlanOp, PolicyPlan,
    SchedError, Scheduler, SimConfig, Workload,
};

/// 90% of traffic on the first page, the rest uniform over the first
/// quarter; the remaining three quarters are load-time-only data.
struct ColdHeavy {
    base: VirtAddr,
    n_huge: u64,
    rng: thermo_util::rng::SmallRng,
}

impl ColdHeavy {
    fn new(n_huge: u64) -> Self {
        use thermo_util::rng::SeedableRng;
        Self {
            base: VirtAddr(0),
            n_huge,
            rng: thermo_util::rng::SmallRng::seed_from_u64(9),
        }
    }
}

impl Workload for ColdHeavy {
    fn name(&self) -> &str {
        "coldheavy"
    }

    fn init(&mut self, engine: &mut Engine) {
        self.base = engine.mmap(self.n_huge * (2 << 20), true, true, false, "heap");
        for p in 0..self.n_huge {
            engine.access(self.base + p * (2 << 20), true);
        }
    }

    fn next_op(&mut self, _now: u64, acc: &mut Vec<Access>) -> Option<u64> {
        use thermo_util::rng::Rng;
        let hot = self.rng.gen::<f64>() < 0.9;
        let page = if hot {
            0
        } else {
            self.rng.gen_range(0..self.n_huge / 4)
        };
        let off: u64 = self.rng.gen_range(0..(2u64 << 20)) & !63;
        acc.push(Access::read(self.base + page * (2 << 20) + off));
        Some(1_000)
    }
}

fn daemon() -> Daemon {
    Daemon::new(ThermostatConfig {
        sampling_period_ns: 300_000_000,
        sample_fraction: 0.4,
        ..ThermostatConfig::paper_defaults()
    })
}

#[test]
fn slow_tier_exhaustion_is_survived_and_counted() {
    // 24 huge pages of workload (48MB) but only ~8MB of slow memory: the
    // daemon must hit OOM on demotions, count it, and keep running.
    let mut cfg = SimConfig::paper_defaults(128 << 20, 8 << 20);
    cfg.tlb.l1_huge = thermostat_suite::vm::TlbGeometry::new(4, 4);
    cfg.tlb.l2 = thermostat_suite::vm::TlbGeometry::new(16, 8);
    let mut engine = Engine::new(cfg);
    let mut w = ColdHeavy::new(24);
    w.init(&mut engine);
    let mut d = daemon();
    run_for(&mut engine, &mut w, &mut d, 4_000_000_000);
    // The slow tier (8MB = 4 huge pages, minus rounding) filled up…
    assert!(d.cold_pages() >= 2, "some pages must have been placed");
    assert!(
        engine.free_bytes(Tier::Slow) < 2 << 20,
        "slow tier should be full"
    );
    // …further demotions failed and were counted, not fatal.
    assert!(d.stats().demote_oom > 0, "OOM demotions must be recorded");
    // The engine stayed consistent throughout.
    assert_eq!(engine.footprint_breakdown().total(), engine.rss_bytes());
}

#[test]
fn thp_disabled_engine_runs_thermostat_with_nothing_to_do() {
    // With THP off there are no huge pages at all; Thermostat finds no
    // sampling candidates and must idle harmlessly.
    let mut cfg = SimConfig::paper_defaults(64 << 20, 64 << 20);
    cfg.thp_enabled = false;
    let mut engine = Engine::new(cfg);
    let mut w = ColdHeavy::new(8);
    w.init(&mut engine);
    assert_eq!(engine.page_table().mapped_huge_pages(), 0);
    let mut d = daemon();
    run_for(&mut engine, &mut w, &mut d, 2_000_000_000);
    assert!(d.stats().periods > 0, "daemon still ticks");
    assert_eq!(
        d.stats().pages_demoted,
        0,
        "no huge pages, nothing to place"
    );
    assert_eq!(engine.footprint_breakdown().cold(), 0);
}

#[test]
fn os_noise_tlb_flushes_do_not_break_monitoring() {
    let mut cfg = SimConfig::paper_defaults(128 << 20, 128 << 20);
    cfg.tlb_flush_period_ns = Some(500_000); // violent flushing
    let mut engine = Engine::new(cfg);
    let mut w = ColdHeavy::new(16);
    w.init(&mut engine);
    let mut d = daemon();
    run_for(&mut engine, &mut w, &mut d, 3_000_000_000);
    assert!(d.stats().periods >= 8);
    assert!(
        d.cold_pages() > 0,
        "flushing makes pages look colder, never breaks placement"
    );
    assert_eq!(engine.footprint_breakdown().total(), engine.rss_bytes());
}

#[test]
fn zero_length_run_is_a_noop() {
    let mut engine = Engine::new(SimConfig::paper_defaults(64 << 20, 64 << 20));
    let mut w = ColdHeavy::new(4);
    w.init(&mut engine);
    let rss = engine.rss_bytes();
    let mut d = daemon();
    let out = run_for(&mut engine, &mut w, &mut d, 0);
    assert_eq!(out.ops, 0);
    assert_eq!(engine.rss_bytes(), rss);
}

/// Builds a fabric-enabled engine with `n_huge` touched huge pages.
fn fabric_engine(fast: u64, slow: u64, bw: u64, n_huge: u64) -> (Engine, VirtAddr) {
    let mut cfg = SimConfig::paper_defaults(fast, slow);
    cfg.fabric = FabricConfig {
        enabled: true,
        link_bandwidth_bytes_per_sec: bw,
        ..FabricConfig::default()
    };
    let mut engine = Engine::new(cfg);
    let base = engine.mmap(n_huge * (2 << 20), true, true, false, "heap");
    for p in 0..n_huge {
        engine.access(base + p * (2 << 20), true);
    }
    (engine, base)
}

fn one_op(engine: &mut Engine, op: PlanOp) -> OpOutcome {
    let mut plan = PolicyPlan::new();
    plan.push(op);
    engine.apply_plan(&plan).outcomes()[0].clone()
}

#[test]
fn mid_transaction_poison_aborts_cleanly() {
    // Poisoning a page while its demotion copy is in flight structurally
    // invalidates the transaction; the later commit must resolve it as a
    // clean abort receipt, never a panic or a half-migrated page.
    let (mut engine, base) = fabric_engine(64 << 20, 64 << 20, 100_000_000, 4);
    let vpn = base.vpn();
    let OpOutcome::Begun(txn) = one_op(
        &mut engine,
        PlanOp::BeginMigrate {
            vpn,
            target: Tier::Slow,
        },
    ) else {
        panic!("BeginMigrate must return Begun");
    };
    // Let the copy make partial progress (2MB at 100MB/s needs 20ms).
    engine.advance_compute(1_000_000);
    assert_eq!(engine.fabric().in_flight(), 1);
    // A concurrent structural action lands on the page mid-copy.
    one_op(
        &mut engine,
        PlanOp::Poison {
            vpn,
            size: PageSize::Huge2M,
        },
    );
    engine.advance_compute(1_000_000);
    assert_eq!(
        one_op(&mut engine, PlanOp::CommitMigrate { txn }),
        OpOutcome::AbortedTxn,
        "invalidated transaction must resolve as an abort"
    );
    let stats = engine.fabric_stats();
    assert_eq!(stats.invalidated, 1);
    assert_eq!(stats.aborted, 1);
    assert_eq!(stats.committed, 0);
    assert_eq!(engine.fabric().in_flight(), 0);
    assert_eq!(
        engine.tier_of_vpn(vpn),
        Some(Tier::Fast),
        "page never moved"
    );
    assert_eq!(engine.footprint_breakdown().total(), engine.rss_bytes());
}

#[test]
fn oom_during_commit_migrate_is_a_clean_abort() {
    // The copy finishes, but by commit time the slow tier cannot hold the
    // page (1MB tier, 2MB page): the commit must surface the OOM as an
    // abort receipt and leave the page fast, with the books intact.
    let (mut engine, base) = fabric_engine(64 << 20, 1 << 20, 10_000_000_000, 2);
    let vpn = base.vpn();
    let free_slow_before = engine.free_bytes(Tier::Slow);
    let OpOutcome::Begun(txn) = one_op(
        &mut engine,
        PlanOp::BeginMigrate {
            vpn,
            target: Tier::Slow,
        },
    ) else {
        panic!("BeginMigrate must return Begun");
    };
    // 2MB at 10GB/s copies in ~200µs of virtual time.
    engine.advance_compute(1_000_000);
    assert_eq!(
        one_op(&mut engine, PlanOp::CommitMigrate { txn }),
        OpOutcome::DemoteOom,
        "commit into a full slow tier must report OOM, not panic"
    );
    let stats = engine.fabric_stats();
    assert_eq!(stats.aborted, 1);
    assert_eq!(stats.committed, 0);
    assert_eq!(engine.fabric().in_flight(), 0);
    assert_eq!(
        engine.tier_of_vpn(vpn),
        Some(Tier::Fast),
        "page stayed fast"
    );
    assert_eq!(engine.free_bytes(Tier::Slow), free_slow_before);
    assert_eq!(engine.footprint_breakdown().total(), engine.rss_bytes());
}

/// Ticks every `period_ns` until `deadline_ns`, counting ticks, then
/// parks its whole group — the shape of a tenant app component.
struct Pacer {
    now_ns: u64,
    period_ns: u64,
    deadline_ns: u64,
    ticks: std::rc::Rc<std::cell::Cell<u64>>,
}

impl Component for Pacer {
    fn next_tick_ns(&self) -> u64 {
        self.now_ns + self.period_ns
    }

    fn tick(&mut self) -> Control {
        self.now_ns += self.period_ns;
        self.ticks.set(self.ticks.get() + 1);
        if self.now_ns >= self.deadline_ns {
            Control::ParkGroup
        } else {
            Control::Continue
        }
    }

    fn label(&self) -> String {
        "pacer".into()
    }
}

/// Panics at `at_ns` — an injected component fault.
struct Poisoned {
    at_ns: u64,
    message: &'static str,
}

impl Component for Poisoned {
    fn next_tick_ns(&self) -> u64 {
        self.at_ns
    }

    fn tick(&mut self) -> Control {
        panic!("{}", self.message);
    }

    fn label(&self) -> String {
        "poisoned".into()
    }
}

#[test]
fn poisoned_component_parks_its_group_and_drains_the_rest() {
    // Mirrors thermo-exec's panic contract on the event loop: a panicking
    // component kills only its own group, every healthy group runs to its
    // deadline, and the error names the lowest panicking component id.
    use std::cell::Cell;
    use std::rc::Rc;

    let ms = 1_000_000u64;
    let mut sched = Scheduler::new(None);
    let healthy = Rc::new(Cell::new(0u64));
    let sibling = Rc::new(Cell::new(0u64));

    // id 0, group 0: a healthy tenant running to a 10ms deadline.
    sched.add(
        4,
        0,
        true,
        Box::new(Pacer {
            now_ns: 0,
            period_ns: ms,
            deadline_ns: 10 * ms,
            ticks: Rc::clone(&healthy),
        }),
    );
    // id 1, group 1: panics at 2ms…
    sched.add(
        4,
        1,
        true,
        Box::new(Poisoned {
            at_ns: 2 * ms,
            message: "injected fault in tenant 1",
        }),
    );
    // …id 2, group 1: its sibling daemon (class 2 runs before class 4 at
    // equal times, so it sees exactly the 1ms and 2ms ticks).
    sched.add(
        2,
        1,
        false,
        Box::new(Pacer {
            now_ns: 0,
            period_ns: ms,
            deadline_ns: 10 * ms,
            ticks: Rc::clone(&sibling),
        }),
    );
    // id 3, group 2: a second, later fault — the error must still report
    // the lowest id.
    sched.add(
        4,
        2,
        true,
        Box::new(Poisoned {
            at_ns: 5 * ms,
            message: "injected fault in tenant 2",
        }),
    );

    let err = sched.run().expect_err("injected faults must surface");
    let SchedError::ComponentPanicked {
        component_id,
        group,
        label,
        message,
    } = err;
    assert_eq!(component_id, 1, "lowest panicking id wins");
    assert_eq!(group, 1);
    assert_eq!(label, "poisoned");
    assert!(
        message.contains("injected fault in tenant 1"),
        "panic payload must be captured, got: {message}"
    );
    // The healthy group drained to its full deadline despite both faults.
    assert_eq!(healthy.get(), 10, "healthy tenant must run to completion");
    // The sibling died with its group: ticks at 1ms and 2ms, nothing after.
    assert_eq!(sibling.get(), 2, "poisoned group must park atomically");
}

#[test]
fn config_serde_roundtrips() {
    // The public configuration types are data (C-SERDE): they must survive
    // a JSON roundtrip unchanged.
    let sim = SimConfig::paper_defaults(1 << 30, 2 << 30);
    let j = thermo_util::json::encode(&sim);
    let back: SimConfig = thermo_util::json::decode(&j).expect("deserialize SimConfig");
    assert_eq!(sim, back);

    let th = ThermostatConfig::paper_defaults();
    let j = thermo_util::json::encode(&th);
    let back: ThermostatConfig =
        thermo_util::json::decode(&j).expect("deserialize ThermostatConfig");
    assert_eq!(th, back);
}

//! End-to-end integration tests: the full stack (workload generator →
//! engine → Thermostat daemon) at miniature scale.

use thermostat_suite::core::{Daemon, ThermostatConfig};
use thermostat_suite::sim::{run_for, Engine, NoPolicy, SimConfig};
use thermostat_suite::workloads::{AppConfig, AppId};

const SCALE: u64 = 512;
const DURATION_NS: u64 = 3_000_000_000;

fn sim_config() -> SimConfig {
    let mut cfg = SimConfig::paper_defaults(192 << 20, 192 << 20);
    // Miniature footprints need a miniature TLB to stay in the paper's
    // footprint >> TLB-reach regime (see DESIGN.md §1).
    cfg.tlb.l1_small = thermostat_suite::vm::TlbGeometry::new(8, 4);
    cfg.tlb.l1_huge = thermostat_suite::vm::TlbGeometry::new(4, 4);
    cfg.tlb.l2 = thermostat_suite::vm::TlbGeometry::new(16, 8);
    cfg.llc.size_bytes = 512 << 10;
    cfg
}

fn daemon_config() -> ThermostatConfig {
    ThermostatConfig {
        sampling_period_ns: 300_000_000,
        ..ThermostatConfig::paper_defaults()
    }
}

fn baseline(app: AppId) -> f64 {
    let mut engine = Engine::new(sim_config());
    let mut w = app.build(AppConfig {
        scale: SCALE,
        seed: 99,
        read_pct: 95,
    });
    w.init(&mut engine);
    run_for(&mut engine, w.as_mut(), &mut NoPolicy, DURATION_NS).ops_per_sec()
}

fn managed(app: AppId) -> (f64, Engine, Daemon) {
    let mut engine = Engine::new(sim_config());
    let mut w = app.build(AppConfig {
        scale: SCALE,
        seed: 99,
        read_pct: 95,
    });
    w.init(&mut engine);
    let mut daemon = Daemon::new(daemon_config());
    let out = run_for(&mut engine, w.as_mut(), &mut daemon, DURATION_NS);
    (out.ops_per_sec(), engine, daemon)
}

#[test]
fn tpcc_finds_cold_data_within_slowdown_budget() {
    let base = baseline(AppId::MysqlTpcc);
    let (tput, mut engine, daemon) = managed(AppId::MysqlTpcc);
    assert!(daemon.stats().periods >= 8, "daemon must have run");
    let cold = engine.footprint_breakdown().cold_fraction();
    assert!(
        cold > 0.10,
        "TPCC has large cold tables; found only {:.1}%",
        cold * 100.0
    );
    let slowdown = (base / tput - 1.0) * 100.0;
    // 3% target plus generous noise allowance for the miniature scale.
    assert!(
        slowdown < 6.0,
        "slowdown {slowdown:.2}% blew through the target"
    );
}

#[test]
fn websearch_archival_index_goes_cold_with_tiny_slowdown() {
    let base = baseline(AppId::WebSearch);
    let (tput, mut engine, _daemon) = managed(AppId::WebSearch);
    let cold = engine.footprint_breakdown().cold_fraction();
    assert!(
        cold > 0.15,
        "archival index must be placed, got {:.1}%",
        cold * 100.0
    );
    let slowdown = (base / tput - 1.0) * 100.0;
    assert!(
        slowdown < 3.0,
        "web search is compute-bound; got {slowdown:.2}%"
    );
}

#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let (tput, mut engine, daemon) = managed(AppId::Aerospike);
        (
            tput.to_bits(),
            engine.footprint_breakdown(),
            daemon.stats(),
            engine.stats().accesses,
            engine.trap_stats().faults,
        )
    };
    assert_eq!(run(), run(), "same seed must give bit-identical runs");
}

#[test]
fn daemon_history_is_consistent() {
    let (_, mut engine, daemon) = managed(AppId::Cassandra);
    let hist = daemon.history();
    assert_eq!(hist.len() as u64, daemon.stats().periods);
    let mut last_t = 0;
    for rec in hist {
        assert!(rec.at_ns > last_t, "period timestamps must be increasing");
        last_t = rec.at_ns;
        assert!(rec.breakdown.total() > 0);
        assert!(rec.breakdown.cold_fraction() <= 1.0);
    }
    // The final record's breakdown matches the engine's current state.
    let now = engine.footprint_breakdown();
    let last = hist.last().expect("at least one period").breakdown;
    // Footprints can only have grown since the last classify scan.
    assert!(now.total() >= last.total());
}

#[test]
fn demoted_pages_live_in_slow_tier_and_stay_monitored() {
    let (_, engine, daemon) = managed(AppId::MysqlTpcc);
    assert!(daemon.cold_pages() > 0);
    // Cross-check: the trap unit still monitors pages (cold monitoring
    // never stops while pages are placed).
    assert!(
        engine.trap().poisoned_len() > 0,
        "cold pages must stay poisoned"
    );
    // And the engine counted faults against slow pages.
    assert!(engine.stats().slow_trap_faults > 0 || engine.stats().slow_tier_accesses > 0);
}

#[test]
fn migration_traffic_is_modest() {
    let (_, engine, _) = managed(AppId::Cassandra);
    let ms = engine.migration_stats();
    let mbps = ms.to_slow_mbps(DURATION_NS);
    // Table 3's claim, scaled: migration bandwidth is trivially small.
    assert!(
        mbps < 200.0,
        "migration traffic {mbps:.1} MB/s is implausible"
    );
}

#[test]
fn engine_and_policies_are_send() {
    // Harness code moves engines and daemons into worker threads; the
    // types must stay Send (C-SEND-SYNC).
    fn assert_send<T: Send>() {}
    assert_send::<Engine>();
    assert_send::<Daemon>();
    assert_send::<thermostat_suite::kstaled::Kstaled>();
    assert_send::<thermostat_suite::kstaled::ClockPolicy>();
}

#[test]
fn runs_are_reproducible_across_threads() {
    // Same-seed runs must agree even when executed on different threads
    // (no hidden thread-local or global state).
    let run = || {
        let (tput, mut engine, _) = managed(AppId::WebSearch);
        (tput.to_bits(), engine.footprint_breakdown())
    };
    let a = std::thread::spawn(run).join().expect("thread run");
    let b = run();
    assert_eq!(a, b);
}

#[test]
fn baseline_run_never_touches_slow_memory() {
    let mut engine = Engine::new(sim_config());
    let mut w = AppId::Redis.build(AppConfig {
        scale: SCALE,
        seed: 1,
        read_pct: 90,
    });
    w.init(&mut engine);
    run_for(&mut engine, w.as_mut(), &mut NoPolicy, DURATION_NS / 4);
    assert_eq!(engine.stats().slow_tier_accesses, 0);
    assert_eq!(engine.stats().slow_trap_faults, 0);
    assert_eq!(engine.footprint_breakdown().cold(), 0);
}

//! Microbenchmarks of the substrate hot paths: TLB lookups, page walks,
//! THP split/collapse, A-bit scans, the LLC, the classifier and the key
//! distributions. These bound the simulator's own throughput (the engine
//! processes hundreds of millions of accesses per experiment).

use thermo_mem::{PageSize, Pfn, Tier, Vpn};
use thermo_sim::{CommitStatus, Engine, Fabric, FabricConfig, Llc, LlcConfig, SimConfig};
use thermo_util::bench::{black_box, Criterion};
use thermo_util::rng::SmallRng;
use thermo_util::rng::{Rng, SeedableRng};
use thermo_util::{criterion_group, criterion_main};
use thermo_vm::{PageTable, Tlb, TlbConfig, Vpid};
use thermo_workloads::{HotspotDist, KeyDist, ScrambledZipfian};
use thermostat::{classify, Candidate};

fn bench_tlb(c: &mut Criterion) {
    let mut tlb = Tlb::new(TlbConfig::default());
    let v = Vpid(1);
    for i in 0..64 {
        tlb.insert(Vpn(i), Pfn(i), PageSize::Small4K, v);
    }
    let mut i = 0u64;
    c.bench_function("tlb_lookup_hit", |b| {
        b.iter(|| {
            i = (i + 1) % 64;
            black_box(tlb.lookup(Vpn(i), v))
        })
    });
    let mut j = 0u64;
    c.bench_function("tlb_lookup_miss", |b| {
        b.iter(|| {
            j += 1;
            black_box(tlb.lookup(Vpn(1_000_000 + j), v))
        })
    });
}

fn bench_pagetable(c: &mut Criterion) {
    let mut pt = PageTable::new();
    for p in 0..256u64 {
        pt.map_huge(Vpn(p * 512), Pfn(p * 512), true).unwrap();
    }
    let mut i = 0u64;
    c.bench_function("pagetable_lookup_huge", |b| {
        b.iter(|| {
            i = (i + 97) % (256 * 512);
            black_box(pt.lookup(Vpn(i)))
        })
    });
    c.bench_function("thp_split_collapse", |b| {
        b.iter(|| {
            pt.split_huge(Vpn(0)).unwrap();
            pt.collapse_huge(Vpn(0)).unwrap();
        })
    });
}

fn bench_scan(c: &mut Criterion) {
    let mut engine = Engine::new(SimConfig::paper_defaults(64 << 20, 64 << 20));
    let base = engine.mmap(32 << 20, true, true, false, "heap");
    for p in 0..16u64 {
        engine.access(base + p * (2 << 20), true);
    }
    let mut out = Vec::new();
    c.bench_function("scan_and_clear_16_huge_pages", |b| {
        b.iter(|| {
            out.clear();
            black_box(engine.scan_and_clear_accessed(base.vpn(), 16 * 512, &mut out))
        })
    });
}

fn bench_llc(c: &mut Criterion) {
    let mut llc = Llc::new(LlcConfig::default());
    let mut rng = SmallRng::seed_from_u64(1);
    c.bench_function("llc_access_random", |b| {
        b.iter(|| {
            let line: u64 = rng.gen_range(0..1_000_000);
            black_box(llc.access(line))
        })
    });
}

fn bench_engine_access(c: &mut Criterion) {
    let mut engine = Engine::new(SimConfig::paper_defaults(256 << 20, 256 << 20));
    let base = engine.mmap(128 << 20, true, true, false, "heap");
    // Warm the region.
    let mut off = 0;
    while off < (128 << 20) {
        engine.access(base + off, true);
        off += 2 << 20;
    }
    let mut rng = SmallRng::seed_from_u64(2);
    c.bench_function("engine_access_random_128mb", |b| {
        b.iter(|| {
            let off: u64 = rng.gen_range(0..(128u64 << 20)) & !63;
            black_box(engine.access(base + off, false))
        })
    });
}

fn bench_classifier(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(3);
    let candidates: Vec<Candidate> = (0..10_000)
        .map(|i| Candidate {
            vpn: Vpn(i * 512),
            rate_per_sec: rng.gen_range(0.0..10_000.0),
        })
        .collect();
    c.bench_function("classify_10k_pages", |b| {
        b.iter(|| black_box(classify(candidates.clone(), 30_000.0)))
    });
}

fn bench_fabric(c: &mut Criterion) {
    let cfg = |bw: u64| FabricConfig {
        enabled: true,
        link_bandwidth_bytes_per_sec: bw,
        ..FabricConfig::default()
    };
    // 64 sequential huge-page demotions over a 10GB/s link, ticking the
    // copy engine at 50µs granularity until each commit lands: the cost
    // of the fabric's queue/budget bookkeeping on the engine hot path.
    c.bench_function("fabric_copy_64_pages", |b| {
        b.iter(|| {
            let mut fab = Fabric::new(cfg(10_000_000_000));
            let mut now = 0u64;
            for p in 0..64u64 {
                let id = fab.begin(Vpn(p * 512), PageSize::Huge2M, Tier::Slow, now);
                loop {
                    now += 50_000;
                    fab.tick(now);
                    match fab.commit_status(id) {
                        CommitStatus::Ready { .. } => {
                            fab.finish_commit(id);
                            break;
                        }
                        CommitStatus::Failed => {
                            fab.abort(id);
                            break;
                        }
                        CommitStatus::Pending => {}
                    }
                }
            }
            black_box(fab.stats().committed)
        })
    });
    // A write storm on an in-flight copy: abort, backoff, retry until the
    // transaction fails — the path every mid-copy store exercises.
    c.bench_function("fabric_write_abort_retry", |b| {
        b.iter(|| {
            let mut fab = Fabric::new(cfg(1_000_000_000));
            let mut now = 0u64;
            let id = fab.begin(Vpn(0), PageSize::Huge2M, Tier::Slow, now);
            for _ in 0..4 {
                now += 1_000_000;
                fab.tick(now);
                fab.note_write(Vpn(0), now);
            }
            fab.abort(id);
            black_box(fab.stats().write_aborts)
        })
    });
}

fn bench_dists(c: &mut Criterion) {
    let zipf = ScrambledZipfian::new(4_000_000);
    let hotspot = HotspotDist::paper_redis(4_000_000);
    let mut rng = SmallRng::seed_from_u64(4);
    c.bench_function("zipfian_sample", |b| {
        b.iter(|| black_box(zipf.sample(&mut rng)))
    });
    c.bench_function("hotspot_sample", |b| {
        b.iter(|| black_box(hotspot.sample(&mut rng)))
    });
}

fn bench_lint(c: &mut Criterion) {
    // Single worker: measures the analysis itself (lex + tree + flow +
    // cross-file index over every workspace source), not pool scheduling.
    let root = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    c.bench_function("lint_workspace", |b| {
        b.iter(|| {
            let findings = thermo_lint::lint_workspace_with(root, 1).expect("workspace readable");
            black_box(findings.len())
        })
    });
}

criterion_group!(
    benches,
    bench_tlb,
    bench_pagetable,
    bench_scan,
    bench_llc,
    bench_engine_access,
    bench_classifier,
    bench_fabric,
    bench_dists,
    bench_lint
);
criterion_main!(benches);

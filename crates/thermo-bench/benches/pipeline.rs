//! Macro benchmarks: whole-pipeline throughput for each application
//! generator (operations simulated per wall-clock second) and the cost of
//! one complete Thermostat sampling period. These are the numbers that
//! determine how long the figure/table harnesses take.

use thermo_bench::harness::EvalParams;
use thermo_sim::{run_ops, Engine, NoPolicy};
use thermo_util::bench::{black_box, BatchSize, Criterion};
use thermo_util::{criterion_group, criterion_main};
use thermo_workloads::{AppConfig, AppId};
use thermostat::{Daemon, ThermostatConfig};

fn tiny_params() -> EvalParams {
    EvalParams {
        scale: 512,
        duration_ns: 0,
        sampling_period_ns: 300_000_000,
        tolerable_slowdown_pct: 3.0,
        read_pct: 95,
        seed: 17,
        thp: true,
        track_true_access: false,
    }
}

fn bench_app_ops(c: &mut Criterion) {
    let p = tiny_params();
    let mut group = c.benchmark_group("app_ops");
    group.sample_size(10);
    for app in [AppId::Redis, AppId::Cassandra, AppId::WebSearch] {
        let mut engine = Engine::new(p.sim_config(app));
        let mut w = app.build(AppConfig {
            scale: p.scale,
            seed: p.seed,
            read_pct: p.read_pct,
        });
        w.init(&mut engine);
        group.bench_function(format!("{app}_10k_ops"), |b| {
            b.iter(|| black_box(run_ops(&mut engine, w.as_mut(), &mut NoPolicy, 10_000)))
        });
    }
    group.finish();
}

fn bench_daemon_period(c: &mut Criterion) {
    let p = tiny_params();
    let mut group = c.benchmark_group("daemon");
    group.sample_size(10);
    group.bench_function("one_sampling_period_tpcc", |b| {
        b.iter_batched(
            || {
                let mut engine = Engine::new(p.sim_config(AppId::MysqlTpcc));
                let mut w = AppId::MysqlTpcc.build(AppConfig {
                    scale: p.scale,
                    seed: p.seed,
                    read_pct: p.read_pct,
                });
                w.init(&mut engine);
                let daemon = Daemon::new(ThermostatConfig {
                    sampling_period_ns: p.sampling_period_ns,
                    ..ThermostatConfig::paper_defaults()
                });
                (engine, w, daemon)
            },
            |(mut engine, mut w, mut daemon)| {
                // One full period = three scans.
                black_box(thermo_sim::run_for(
                    &mut engine,
                    w.as_mut(),
                    &mut daemon,
                    p.sampling_period_ns + 1,
                ))
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_app_ops, bench_daemon_period);
criterion_main!(benches);

//! Shared experiment machinery: engine construction at evaluation scale,
//! paired baseline/Thermostat runs, and the knobs every harness binary
//! understands.
//!
//! Environment overrides (useful for quick smoke runs):
//!
//! * `THERMO_SCALE` — footprint divisor vs the paper's Table 2 (default 16);
//! * `THERMO_DURATION_SECS` — virtual seconds per measured run (default 120);
//! * `THERMO_PERIOD_SECS` — Thermostat sampling period (default 3; the
//!   paper's 30s compressed 10x together with the run length).

use thermo_sim::{
    run_for, run_for_instrumented, Engine, LatencyHistogram, NoPolicy, PolicyHook, RunOutcome,
    SimConfig,
};
use thermo_workloads::{AppConfig, AppId};
use thermostat::{Daemon, DaemonStats, PeriodRecord, ThermostatConfig};

/// Evaluation-scale parameters shared by all harness binaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalParams {
    /// Footprint divisor vs the paper (Table 2).
    pub scale: u64,
    /// Measured run length, virtual ns.
    pub duration_ns: u64,
    /// Thermostat sampling period, virtual ns.
    pub sampling_period_ns: u64,
    /// Tolerable slowdown, percent.
    pub tolerable_slowdown_pct: f64,
    /// YCSB read percentage.
    pub read_pct: u8,
    /// Seed for both workload and policy randomness.
    pub seed: u64,
    /// Transparent huge pages enabled (Table 1 turns them off).
    pub thp: bool,
    /// Track exact access counts (Figure 2 / hardware-counter ablations).
    pub track_true_access: bool,
}

impl EvalParams {
    /// Paper-shaped defaults with environment overrides applied.
    pub fn from_env() -> Self {
        let scale = env_u64("THERMO_SCALE", 16);
        let duration = env_u64("THERMO_DURATION_SECS", 120);
        let period = env_u64("THERMO_PERIOD_SECS", 3);
        Self {
            scale,
            duration_ns: duration * 1_000_000_000,
            sampling_period_ns: period * 1_000_000_000,
            tolerable_slowdown_pct: 3.0,
            read_pct: 95,
            seed: 0xa5_2017,
            thp: true,
            track_true_access: false,
        }
    }

    /// Fixed smoke-scale parameters for the golden-artifact regression
    /// harness (`golden` binary, determinism tests).
    ///
    /// Deliberately ignores the `THERMO_*` environment overrides: golden
    /// expectations are only comparable when every run uses the exact
    /// same scale, duration, and seed. Small enough that the full
    /// fig5–fig10 + tab2–tab4 sweep stays in CI smoke-test territory,
    /// large enough that each run completes several sampling periods.
    pub fn smoke() -> Self {
        Self {
            scale: 512,
            duration_ns: 1_500_000_000,
            sampling_period_ns: 250_000_000,
            tolerable_slowdown_pct: 3.0,
            read_pct: 95,
            seed: 0xa5_2017,
            thp: true,
            track_true_access: false,
        }
    }

    /// Fixed full evaluation-scale parameters for the opt-in second
    /// golden tier (`scripts/golden.sh check --full`, ROADMAP item 2):
    /// the 1/16 scale and timing the figure binaries default to, but
    /// frozen like [`EvalParams::smoke`] so full-tier goldens stay
    /// comparable across machines. Roughly 80x the smoke duration at 32x
    /// the footprint — affordable only because the registry fans out
    /// across the `thermo-exec` pool; not part of default CI, and its
    /// goldens are blessed separately under `goldens/full/`.
    pub fn full() -> Self {
        Self {
            scale: 16,
            duration_ns: 120_000_000_000,
            sampling_period_ns: 3_000_000_000,
            tolerable_slowdown_pct: 3.0,
            read_pct: 95,
            seed: 0xa5_2017,
            thp: true,
            track_true_access: false,
        }
    }

    /// Simulator configuration sized for `app` at this scale.
    ///
    /// The TLB and LLC scale with the footprint (DESIGN.md §1): the
    /// footprint-to-TLB-reach and footprint-to-LLC ratios are what put the
    /// machine in the paper's regime, so halving the footprint must halve
    /// the caches too. `SimConfig::paper_defaults` already encodes the
    /// reference scale of 16.
    pub fn sim_config(&self, app: AppId) -> SimConfig {
        self.sim_config_sized((app.paper_rss_bytes() + app.paper_file_bytes()) / self.scale)
    }

    /// [`EvalParams::sim_config`] for an explicit demand-paged footprint
    /// in bytes — the entry point for scenario tenants, whose phased
    /// workloads declare absolute region sizes instead of Table-2
    /// footprints divided by the scale. Cache geometry still shrinks
    /// with `self.scale` so scenario runs live in the same regime as the
    /// registry apps at the same evaluation scale.
    pub fn sim_config_sized(&self, footprint: u64) -> SimConfig {
        // Headroom so demand paging and split/migrate churn never OOM; the
        // slow tier must hold any achievable cold fraction.
        let fast = footprint + footprint / 2 + (64 << 20);
        let slow = footprint + (64 << 20);
        let mut cfg = SimConfig::paper_defaults(fast, slow);
        if self.scale != 16 {
            let shrink = |entries: usize, floor: usize, ways: usize| -> usize {
                let e = ((entries as u64 * 16 / self.scale) as usize).max(floor);
                e.div_ceil(ways) * ways
            };
            cfg.tlb.l1_small = thermo_vm::TlbGeometry::new(shrink(32, 8, 4), 4);
            cfg.tlb.l1_huge = thermo_vm::TlbGeometry::new(shrink(16, 4, 4), 4);
            cfg.tlb.l2 = thermo_vm::TlbGeometry::new(shrink(128, 16, 8), 8);
            let llc_bytes = ((4u64 << 20) * 16 / self.scale).max(256 << 10);
            cfg.llc.size_bytes = llc_bytes / (64 * 16) * (64 * 16); // keep set geometry valid
        }
        cfg.thp_enabled = self.thp;
        cfg.track_true_access = self.track_true_access;
        cfg
    }

    /// Thermostat configuration for this evaluation.
    pub fn thermostat_config(&self) -> ThermostatConfig {
        ThermostatConfig {
            tolerable_slowdown_pct: self.tolerable_slowdown_pct,
            sampling_period_ns: self.sampling_period_ns,
            seed: self.seed ^ 0xdaeb,
            ..ThermostatConfig::paper_defaults()
        }
    }

    /// Workload configuration for this evaluation.
    pub fn app_config(&self) -> AppConfig {
        AppConfig {
            scale: self.scale,
            seed: self.seed,
            read_pct: self.read_pct,
        }
    }
}

// Serialized into every experiment artifact so golden checks can verify
// the expectation file and the fresh run used the same parameters.
thermo_util::json_struct!(EvalParams {
    scale,
    duration_ns,
    sampling_period_ns,
    tolerable_slowdown_pct,
    read_pct,
    seed,
    thp,
    track_true_access,
});

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Everything a harness binary typically reports about one run.
#[derive(Debug, Clone)]
pub struct AppRun {
    /// Application name.
    pub app: String,
    /// Run outcome (ops, virtual time).
    pub outcome: RunOutcome,
    /// Throughput, ops per virtual second.
    pub ops_per_sec: f64,
    /// Mean fraction of the footprint in slow memory over the measured
    /// window (0 for baseline runs).
    pub cold_fraction_mean: f64,
    /// Final cold fraction.
    pub cold_fraction_final: f64,
    /// Thermostat per-period records (empty for baseline runs).
    pub history: Vec<PeriodRecord>,
    /// Daemon statistics (zeros for baseline runs).
    pub daemon: DaemonStats,
    /// Migration bandwidth toward slow memory, MB/s.
    pub migration_mbps: f64,
    /// False-classification (back-to-fast) bandwidth, MB/s.
    pub false_class_mbps: f64,
    /// Slow-memory access events per second over the run.
    pub slow_access_rate: f64,
    /// Smoothed slow-memory access rate series (1s buckets, 30-bucket
    /// moving average — the Figure 3 curve).
    pub slow_rate_series: Vec<f64>,
    /// Mean per-operation latency, ns.
    pub mean_latency_ns: f64,
    /// 99th-percentile per-operation latency, ns (the paper's tail metric).
    pub p99_latency_ns: u64,
}

fn finish_run(
    app: AppId,
    engine: &Engine,
    outcome: RunOutcome,
    history: Vec<PeriodRecord>,
    daemon: DaemonStats,
    hist: &LatencyHistogram,
) -> AppRun {
    let elapsed = outcome.elapsed_ns().max(1);
    let ms = engine.migration_stats();
    let (mean, last) = if history.is_empty() {
        (0.0, 0.0)
    } else {
        let vals: Vec<f64> = history
            .iter()
            .map(|r| r.breakdown.cold_fraction())
            .collect();
        (
            vals.iter().sum::<f64>() / vals.len() as f64,
            *vals.last().expect("nonempty"),
        )
    };
    let slow_events = engine.slow_series().total();
    AppRun {
        app: app.to_string(),
        outcome,
        ops_per_sec: outcome.ops_per_sec(),
        cold_fraction_mean: mean,
        cold_fraction_final: last,
        history,
        daemon,
        migration_mbps: ms.to_slow_mbps(elapsed),
        false_class_mbps: ms.back_to_fast_mbps(elapsed),
        slow_access_rate: slow_events as f64 / (elapsed as f64 / 1e9),
        slow_rate_series: engine.slow_series().smoothed_rates(30),
        mean_latency_ns: hist.mean_ns(),
        p99_latency_ns: hist.percentile_ns(99.0),
    }
}

/// Runs `app` with no placement policy (the all-DRAM baseline every paper
/// number is measured against). Returns the run summary and the engine for
/// further inspection.
pub fn baseline_run(app: AppId, p: &EvalParams) -> (AppRun, Engine) {
    let mut engine = Engine::new(p.sim_config(app));
    let mut workload = app.build(p.app_config());
    workload.init(&mut engine);
    let mut hist = LatencyHistogram::new();
    let outcome = run_for_instrumented(
        &mut engine,
        workload.as_mut(),
        &mut NoPolicy,
        p.duration_ns,
        &mut hist,
    );
    let run = finish_run(
        app,
        &engine,
        outcome,
        Vec::new(),
        DaemonStats::default(),
        &hist,
    );
    (run, engine)
}

/// Runs `app` under the Thermostat daemon.
pub fn thermostat_run(app: AppId, p: &EvalParams) -> (AppRun, Engine, Daemon) {
    thermostat_run_with(app, p, p.thermostat_config())
}

/// Runs the baseline and Thermostat flavours of `app` as two parallel
/// jobs on the `thermo-exec` pool (worker count from `THERMO_JOBS`,
/// default available parallelism).
///
/// Each flavour is an independent engine seeded from `p` exactly as in
/// the serial [`baseline_run`]/[`thermostat_run`] path — the pool's
/// per-job seeds are deliberately unused so artifacts stay byte-identical
/// to the serial goldens — and the pair merges in fixed job-id order
/// (baseline first), so the result is independent of worker count.
pub fn paired_runs(app: AppId, p: &EvalParams) -> (AppRun, (AppRun, Engine, Daemon)) {
    /// Either flavour's output, boxed so the job result stays small.
    enum Half {
        Base(Box<(AppRun, Engine)>),
        Thermo(Box<(AppRun, Engine, Daemon)>),
    }
    let jobs: Vec<_> = (0..2u8)
        .map(|k| {
            move |_ctx: &thermo_exec::JobCtx| {
                if k == 0 {
                    Half::Base(Box::new(baseline_run(app, p)))
                } else {
                    Half::Thermo(Box::new(thermostat_run(app, p)))
                }
            }
        })
        .collect();
    let out = thermo_exec::run_jobs(jobs, &thermo_exec::ExecConfig::from_env(p.seed))
        .unwrap_or_else(|e| panic!("paired run for {app} failed: {e}"));
    let mut base = None;
    let mut thermo = None;
    for half in out {
        match half {
            Half::Base(b) => base = Some(b.0),
            Half::Thermo(t) => thermo = Some(*t),
        }
    }
    (
        base.expect("job 0 is the baseline"),
        thermo.expect("job 1 is the thermostat run"),
    )
}

/// Runs `app` under a daemon built from an explicit configuration (used by
/// the ablation harnesses).
pub fn thermostat_run_with(
    app: AppId,
    p: &EvalParams,
    config: ThermostatConfig,
) -> (AppRun, Engine, Daemon) {
    let mut engine = Engine::new(p.sim_config(app));
    let mut workload = app.build(p.app_config());
    workload.init(&mut engine);
    let mut daemon = Daemon::new(config);
    let mut hist = LatencyHistogram::new();
    let outcome = run_for_instrumented(
        &mut engine,
        workload.as_mut(),
        &mut daemon,
        p.duration_ns,
        &mut hist,
    );
    let run = finish_run(
        app,
        &engine,
        outcome,
        daemon.history().to_vec(),
        daemon.stats(),
        &hist,
    );
    (run, engine, daemon)
}

/// Runs `app` under the Thermostat daemon with the migration fabric
/// enabled at the given configuration (the `fab_bw`/`fab_abort`
/// experiments). Identical to [`thermostat_run`] except that demotions go
/// through transactional `BeginMigrate`/`CommitMigrate` ops paced by the
/// fabric's finite link bandwidth.
pub fn thermostat_fabric_run(
    app: AppId,
    p: &EvalParams,
    fabric: thermo_sim::FabricConfig,
) -> (AppRun, Engine, Daemon) {
    let mut config = p.sim_config(app);
    config.fabric = fabric;
    let mut engine = Engine::new(config);
    let mut workload = app.build(p.app_config());
    workload.init(&mut engine);
    let mut daemon = Daemon::new(p.thermostat_config());
    let mut hist = LatencyHistogram::new();
    let outcome = run_for_instrumented(
        &mut engine,
        workload.as_mut(),
        &mut daemon,
        p.duration_ns,
        &mut hist,
    );
    let run = finish_run(
        app,
        &engine,
        outcome,
        daemon.history().to_vec(),
        daemon.stats(),
        &hist,
    );
    (run, engine, daemon)
}

/// Runs `app` under an arbitrary policy hook.
pub fn policy_run(app: AppId, p: &EvalParams, policy: &mut dyn PolicyHook) -> (AppRun, Engine) {
    let mut engine = Engine::new(p.sim_config(app));
    let mut workload = app.build(p.app_config());
    workload.init(&mut engine);
    let outcome = run_for(&mut engine, workload.as_mut(), policy, p.duration_ns);
    let run = finish_run(
        app,
        &engine,
        outcome,
        Vec::new(),
        DaemonStats::default(),
        &LatencyHistogram::new(),
    );
    (run, engine)
}

/// Computes the slowdown of `run` vs `baseline` as a percentage.
pub fn slowdown_pct(run: &AppRun, baseline: &AppRun) -> f64 {
    // Same duration budget, so compare throughput (ops completed per
    // virtual second).
    (baseline.ops_per_sec / run.ops_per_sec - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> EvalParams {
        EvalParams {
            scale: 512,
            duration_ns: 2_000_000_000,
            sampling_period_ns: 300_000_000,
            tolerable_slowdown_pct: 3.0,
            read_pct: 95,
            seed: 7,
            thp: true,
            track_true_access: false,
        }
    }

    #[test]
    fn baseline_and_thermostat_complete() {
        let p = tiny();
        let (base, _) = baseline_run(AppId::Redis, &p);
        assert!(base.outcome.ops > 0);
        assert_eq!(base.cold_fraction_final, 0.0);
        let (run, _, daemon) = thermostat_run(AppId::Redis, &p);
        assert!(run.outcome.ops > 0);
        assert!(daemon.stats().periods > 0);
    }

    #[test]
    fn slowdown_of_identical_runs_is_zero() {
        let p = tiny();
        let (a, _) = baseline_run(AppId::WebSearch, &p);
        let (b, _) = baseline_run(AppId::WebSearch, &p);
        assert!(
            slowdown_pct(&b, &a).abs() < 1e-9,
            "same-seed runs must match exactly"
        );
    }

    #[test]
    fn thp_off_is_slower() {
        let p = tiny();
        let (on, _) = baseline_run(AppId::Redis, &p);
        let off_p = EvalParams { thp: false, ..p };
        let (off, _) = baseline_run(AppId::Redis, &off_p);
        assert!(on.ops_per_sec > off.ops_per_sec, "THP must help Redis");
    }
}

//! The shared-fast-tier colocation experiment (`tenants_shared`): the
//! contention story fixed per-tenant budgets cannot express.
//!
//! Three tenants run co-scheduled on one discrete-event timeline
//! (DESIGN.md §13) over one arbitrated DRAM pool:
//!
//! * **victim** (MySQL-TPCC, 3% SLO) — its initial grant is squeezed
//!   below its working set, so demand paging spills into the slow tier
//!   and every spilled page faults on access (§4.3's slowdown signal);
//! * **antagonist** (Redis, lenient 30% SLO) — starts with a bloated
//!   grant far above its footprint, hogging the pool's capacity;
//! * **neutral** (web-search, 10% SLO) — comfortably provisioned, shows
//!   that arbitration leaves well-behaved tenants alone.
//!
//! The arbiter watches per-tenant slowdown reports, sees the victim blow
//! through its SLO with displaced demand parked in the slow tier, and
//! claws cold/idle capacity back from the antagonist — the checked-in
//! golden pins the reclaim→grant event trace and the victim's recovery
//! byte-for-byte. The run is single-threaded by construction, so the
//! artifact is identical for every `THERMO_JOBS`/`THERMO_SCAN_JOBS`
//! setting, and `tests/sched_fuzz.rs` holds it byte-identical under
//! permuted same-tick pop order.

use crate::artifact::ExperimentArtifact;
use crate::harness::EvalParams;
use crate::report::{f, pct, ExperimentReport};
use thermo_mem::TierParams;
use thermo_sim::sched::{fuzz_seed_from_env, run_tenants_coscheduled};
use thermo_sim::{Engine, PolicyHook, Workload};
use thermo_workloads::AppId;
use thermostat::Daemon;

/// The shared pool every grant is carved from. The sum of the initial
/// grants equals the pool exactly, so the arbiter starts with an empty
/// reserve: the victim's recovery *must* be funded by reclaiming the
/// antagonist's capacity.
const POOL_BYTES: u64 = 92 << 20;

/// The colocated mix: application, YCSB read %, slowdown SLO (%), and
/// the initial capacity grant. At the smoke scale (÷512) the victim's
/// 12MB grant sits well below TPCC's ~19MB footprint while the
/// antagonist's 64MB grant nearly doubles Redis's ~34MB.
const TENANTS: &[(AppId, u8, f64, u64)] = &[
    (AppId::MysqlTpcc, 95, 3.0, 12 << 20),
    (AppId::Redis, 90, 30.0, 64 << 20),
    (AppId::WebSearch, 95, 10.0, 16 << 20),
];

/// Builds tenant `shard_id` for the shared-pool run: every engine's fast
/// tier is pool-sized (the grant, not the tier, is the real limit), and
/// the per-tenant [`thermo_sim::SchedConfig`] carries the arbitration
/// knobs. Public within the crate so `tests/sched_fuzz.rs` and the CI
/// cross-checks rebuild the exact same tenants.
pub(crate) fn build_tenant(
    p: &EvalParams,
    shard_id: u64,
    seed: u64,
) -> (Engine, Box<dyn Workload>, Box<dyn PolicyHook>) {
    let (app, read_pct, slo, grant) = TENANTS[shard_id as usize];
    let tp = EvalParams {
        seed,
        read_pct,
        tolerable_slowdown_pct: slo,
        ..*p
    };
    let mut cfg = tp.sim_config(app);
    let footprint = (app.paper_rss_bytes() + app.paper_file_bytes()) / tp.scale;
    cfg.fast = TierParams::dram(POOL_BYTES);
    cfg.slow = TierParams::slow_1us(footprint + (96 << 20));
    cfg.fabric.enabled = true;
    cfg.sched.coscheduled = true;
    cfg.sched.shared_pool_bytes = POOL_BYTES;
    cfg.sched.initial_grant_bytes = grant;
    cfg.sched.slo_pct = slo;
    (
        Engine::new(cfg),
        app.build(tp.app_config()),
        Box::new(Daemon::new(tp.thermostat_config())),
    )
}

/// Runs the shared-tier experiment at `p` and returns the artifact under
/// id `tenants_shared`: one row per tenant, the complete
/// [`thermo_sim::runner::ShardOutcome`]s and capacity-pressure counters
/// as exact-JSON notes, and the full arbiter event trace.
///
/// # Panics
///
/// Panics when any component panics mid-run.
pub fn tenants_shared_artifact(p: &EvalParams) -> ExperimentArtifact {
    let out = run_tenants_coscheduled(
        TENANTS.len(),
        p.duration_ns,
        p.seed,
        fuzz_seed_from_env(),
        |shard_id, seed| build_tenant(p, shard_id, seed),
    )
    .unwrap_or_else(|e| panic!("tenants_shared run failed: {e}"));

    let mut r = ExperimentReport::new(
        "tenants_shared",
        "co-scheduled tenants, one arbitrated fast tier (antagonist vs victim)",
        &[
            "tenant",
            "app",
            "slo(%)",
            "grant0(MB)",
            "ops",
            "ops/s",
            "slow_faults",
            "spill_faults",
            "reclaimed(MB)",
            "promoted(MB)",
            "cold_frac",
        ],
    );
    for (o, pr) in out.shards.iter().zip(&out.pressure) {
        let (app, _, slo, grant) = TENANTS[o.shard_id as usize];
        r.row(vec![
            o.shard_id.to_string(),
            app.to_string(),
            f(slo, 1),
            f(grant as f64 / 1e6, 1),
            o.outcome.ops.to_string(),
            f(o.outcome.ops_per_sec(), 0),
            o.stats.slow_trap_faults.to_string(),
            pr.slow_fallback_faults.to_string(),
            f(pr.reclaimed_bytes as f64 / 1e6, 1),
            f(pr.promoted_bytes as f64 / 1e6, 1),
            pct(o.breakdown.cold_fraction()),
        ]);
    }
    let grants: u64 = out.trace.iter().filter(|e| e.action == "grant").count() as u64;
    let reclaims: u64 = out.trace.iter().filter(|e| e.action == "reclaim").count() as u64;
    r.note(format!(
        "arbiter: {} events ({} reclaims funding {} grants) over one {}MB pool",
        out.trace.len(),
        reclaims,
        grants,
        POOL_BYTES >> 20,
    ));
    // Exact shard outcomes + pressure counters: every engine counter of
    // every tenant is golden-checked byte-for-byte.
    for (o, pr) in out.shards.iter().zip(&out.pressure) {
        r.note(format!(
            "shard {}: {}",
            o.shard_id,
            thermo_util::json::encode(o)
        ));
        r.note(format!(
            "pressure {}: {}",
            o.shard_id,
            thermo_util::json::encode(pr)
        ));
    }
    // The applied arbitration trace, in virtual-time order.
    for e in &out.trace {
        r.note(format!("arbiter: {}", thermo_util::json::encode(e)));
    }
    ExperimentArtifact::new(r, p)
}

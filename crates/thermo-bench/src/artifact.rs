//! Canonical per-experiment artifacts: everything a harness run produced,
//! serialized as deterministic JSON so it can be diffed against golden
//! expectations (see [`crate::golden`]).
//!
//! The printable [`ExperimentReport`] only carries pre-formatted table
//! cells; regressions in the daemon's classify/estimate path can hide
//! behind rounding. The artifact therefore also captures the raw
//! trajectory of every run — the full per-period [`PeriodRecord`]
//! history, the final [`DaemonStats`], and the scalar metrics each figure
//! derives its cells from — as exact numbers.

use crate::harness::{AppRun, EvalParams};
use crate::report::{write_json, ExperimentReport};
use thermo_sim::RunOutcome;
use thermo_util::json_struct;
use thermostat::{DaemonStats, PeriodRecord};

/// One run's raw results inside an [`ExperimentArtifact`].
#[derive(Debug, Clone)]
pub struct RunArtifact {
    /// Application name.
    pub app: String,
    /// Run flavour: `"baseline"`, `"thermostat"`, or an ablation label.
    pub kind: String,
    /// Ops completed and virtual start/end times.
    pub outcome: RunOutcome,
    /// Throughput, ops per virtual second.
    pub ops_per_sec: f64,
    /// Mean cold fraction over the measured window.
    pub cold_fraction_mean: f64,
    /// Final cold fraction.
    pub cold_fraction_final: f64,
    /// Migration bandwidth toward slow memory, MB/s.
    pub migration_mbps: f64,
    /// False-classification (back-to-fast) bandwidth, MB/s.
    pub false_class_mbps: f64,
    /// Slow-memory access events per second over the run.
    pub slow_access_rate: f64,
    /// Smoothed slow-access rate series (the Figure 3 curve).
    pub slow_rate_series: Vec<f64>,
    /// Mean per-operation latency, ns.
    pub mean_latency_ns: f64,
    /// 99th-percentile per-operation latency, ns.
    pub p99_latency_ns: u64,
    /// Final daemon statistics (zeros for baseline runs).
    pub daemon: DaemonStats,
    /// Per-period records (empty for baseline runs).
    pub history: Vec<PeriodRecord>,
}

json_struct!(RunArtifact {
    app,
    kind,
    outcome,
    ops_per_sec,
    cold_fraction_mean,
    cold_fraction_final,
    migration_mbps,
    false_class_mbps,
    slow_access_rate,
    slow_rate_series,
    mean_latency_ns,
    p99_latency_ns,
    daemon,
    history,
});

impl RunArtifact {
    /// Captures `run` under the given flavour label.
    pub fn from_run(kind: &str, run: &AppRun) -> Self {
        Self {
            app: run.app.clone(),
            kind: kind.to_string(),
            outcome: run.outcome,
            ops_per_sec: run.ops_per_sec,
            cold_fraction_mean: run.cold_fraction_mean,
            cold_fraction_final: run.cold_fraction_final,
            migration_mbps: run.migration_mbps,
            false_class_mbps: run.false_class_mbps,
            slow_access_rate: run.slow_access_rate,
            slow_rate_series: run.slow_rate_series.clone(),
            mean_latency_ns: run.mean_latency_ns,
            p99_latency_ns: run.p99_latency_ns,
            daemon: run.daemon,
            history: run.history.clone(),
        }
    }
}

/// A complete experiment result: the printable report plus the raw runs
/// and the parameters that produced them.
#[derive(Debug, Clone)]
pub struct ExperimentArtifact {
    /// The printable table (what the binary shows on stdout).
    pub report: ExperimentReport,
    /// The evaluation parameters the experiment ran at.
    pub params: EvalParams,
    /// Raw per-run results, in execution order.
    pub runs: Vec<RunArtifact>,
}

json_struct!(ExperimentArtifact {
    report,
    params,
    runs
});

impl ExperimentArtifact {
    /// Wraps a finished report with its parameters; runs are pushed as
    /// they complete.
    pub fn new(report: ExperimentReport, params: &EvalParams) -> Self {
        Self {
            report,
            params: *params,
            runs: Vec::new(),
        }
    }

    /// Records one run's raw results.
    pub fn push_run(&mut self, kind: &str, run: &AppRun) {
        self.runs.push(RunArtifact::from_run(kind, run));
    }

    /// Prints the report table and persists both JSON artifacts under
    /// `target/experiments/`: `<id>.json` (the report, unchanged shape)
    /// and `<id>.artifact.json` (report + params + raw runs).
    pub fn finish(&self) {
        println!("{}", self.report.render());
        write_json(&self.report.id, &self.report);
        write_json(&format!("{}.artifact", self.report.id), self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermo_util::json::{decode, encode};

    fn sample_run() -> AppRun {
        AppRun {
            app: "redis".into(),
            outcome: RunOutcome {
                ops: 100,
                start_ns: 0,
                end_ns: 1_000_000,
            },
            ops_per_sec: 1e8,
            cold_fraction_mean: 0.25,
            cold_fraction_final: 0.5,
            history: vec![],
            daemon: DaemonStats::default(),
            migration_mbps: 1.5,
            false_class_mbps: 0.5,
            slow_access_rate: 10.0,
            slow_rate_series: vec![1.0, 2.0],
            mean_latency_ns: 120.0,
            p99_latency_ns: 900,
        }
    }

    #[test]
    fn artifact_roundtrips_through_json() {
        let mut a = ExperimentArtifact::new(
            ExperimentReport::new("t", "title", &["a"]),
            &EvalParams::smoke(),
        );
        a.push_run("baseline", &sample_run());
        let text = encode(&a);
        let back: ExperimentArtifact = decode(&text).expect("decodes");
        assert_eq!(encode(&back), text, "decode/encode must be stable");
        assert_eq!(back.runs.len(), 1);
        assert_eq!(back.runs[0].kind, "baseline");
        assert_eq!(back.params.scale, EvalParams::smoke().scale);
    }
}

//! Scenario-driven colocation experiments: the ISSUE's scale-out story.
//!
//! Both experiments compile specs from the [`thermo_scenario::library`]
//! instead of hand-enumerating tenants:
//!
//! * **`scen_fleet`** — the 256-tenant `fleet` mix replicated under each
//!   of the four placement policies (Thermostat, kstaled, CLOCK, DAMON):
//!   1024 independent shards fanned out over `thermo-exec`. Every
//!   tenant's workload stream is seeded by
//!   [`CompiledScenario::tenant_seed`] — a pure function of
//!   `(run seed, scenario salt, tenant index)` — so the *same* stream
//!   replays under every policy and across any `THERMO_JOBS` worker
//!   count. The golden pins per-policy × per-group aggregates, an
//!   FNV-1a digest over every shard's exact JSON, and one sentinel
//!   shard per policy byte-for-byte.
//!
//! * **`scen_storm`** — the 32-tenant `storm` contention mix
//!   co-scheduled on one discrete-event timeline (DESIGN.md §13) over
//!   one arbitrated fast-tier pool, with the policy matrix *colocated*:
//!   tenant `i` runs policy `i % 4`, so the arbiter mediates between
//!   SLO-driven Thermostat tenants and capacity-driven
//!   kstaled/CLOCK/DAMON neighbours in a single run. Slowdown reports
//!   come from engine-counter deltas, not the policy, so every tenant
//!   participates in arbitration regardless of its daemon. The golden
//!   pins each tenant's outcome and pressure counters plus the full
//!   arbiter event trace; `tests/sched_fuzz.rs` and the CI fuzz loop
//!   hold the artifact byte-identical under permuted same-tick order.
//!
//! Both runs pin their own virtual durations and policy periods in
//! [`library::HOUR_NS`] units (the scenario shapes are authored on that
//! clock), so golden cost is independent of the `EvalParams` duration
//! the rest of the registry sweeps.

use crate::artifact::ExperimentArtifact;
use crate::harness::EvalParams;
use crate::report::{f, pct, ExperimentReport};
use thermo_kstaled::{ClockConfig, ClockPolicy, Damon, DamonConfig, Kstaled, KstaledConfig};
use thermo_mem::TierParams;
use thermo_scenario::{compile, library, CompiledScenario};
use thermo_sim::sched::{fuzz_seed_from_env, run_tenants_coscheduled};
use thermo_sim::{run_tenants_sharded, Engine, PolicyHook, SimConfig, Workload};
use thermostat::{Daemon, ThermostatConfig};

/// The policy matrix, in sweep order.
const POLICIES: [&str; 4] = ["thermostat", "kstaled", "clock", "damon"];

/// Policy sampling/sweep period: half a scenario hour, so every phase of
/// every shape spans several policy decisions.
const SCEN_PERIOD_NS: u64 = library::HOUR_NS / 2;

/// `scen_fleet` virtual duration: one full diurnal cycle, a complete
/// flash-crowd spike + recovery, ~1.6 memtable sawteeth, and the
/// failover step at the 2-hour mark.
const FLEET_DURATION_NS: u64 = 4 * library::HOUR_NS;

/// `scen_storm` virtual duration: two diurnal cycles with the failover
/// step landing mid-run at hour 4.
const STORM_DURATION_NS: u64 = 8 * library::HOUR_NS;

/// Builds the policy hook `which` (index into [`POLICIES`]) for a tenant
/// with SLO `slo_pct` and stream seed `seed`.
fn build_policy(which: usize, slo_pct: f64, seed: u64) -> Box<dyn PolicyHook> {
    match POLICIES[which] {
        "thermostat" => Box::new(Daemon::new(ThermostatConfig {
            tolerable_slowdown_pct: slo_pct,
            sampling_period_ns: SCEN_PERIOD_NS,
            seed: seed ^ 0xdaeb,
            ..ThermostatConfig::paper_defaults()
        })),
        "kstaled" => Box::new(Kstaled::new(KstaledConfig {
            scan_period_ns: SCEN_PERIOD_NS,
        })),
        "clock" => Box::new(ClockPolicy::new(ClockConfig {
            sweep_period_ns: SCEN_PERIOD_NS,
            fast_target_fraction: 0.6,
        })),
        "damon" => Box::new(Damon::new(DamonConfig {
            sample_interval_ns: SCEN_PERIOD_NS / 20,
            samples_per_aggregation: 10,
            ..DamonConfig::default()
        })),
        other => unreachable!("unknown policy {other}"),
    }
}

/// Tenant `tenant`'s declared footprint bound (anon + file) at `p`'s
/// scale — the sizing input for both experiments' tiers.
fn tenant_bound(c: &CompiledScenario, tenant: u64, p: &EvalParams) -> u64 {
    let fp = c.declared_footprint(tenant, p.scale);
    fp.anon_bytes + fp.file_bytes
}

/// Simulator config for a fleet tenant: cache geometry at `p`'s scale,
/// but a deliberately tight private fast slice (an eighth of headroom
/// plus a 2MB floor over the declared bound) so the policies actually
/// have to choose, and a slow tier that holds any achievable cold
/// fraction plus spill.
fn fleet_sim_config(p: &EvalParams, bound: u64) -> SimConfig {
    let mut cfg = p.sim_config_sized(bound);
    cfg.fast = TierParams::dram(bound + bound / 8 + (2 << 20));
    cfg.slow = TierParams::slow_1us(bound + (16 << 20));
    cfg
}

/// Per-policy × per-group aggregate accumulator for the fleet rows.
#[derive(Default, Clone)]
struct GroupAgg {
    tenants: u64,
    ops: u64,
    slow_faults: u64,
    cold_sum: f64,
    kernel_ns: u64,
    app_ns: u64,
}

/// 64-bit FNV-1a over `bytes`, chained from `h` (seed with
/// [`FNV_OFFSET`]). Used to pin every shard's exact JSON in one golden
/// line instead of a megabyte of notes.
fn fnv1a64(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Runs the 1024-shard policy-matrix fleet sweep at `p` and returns the
/// artifact under id `scen_fleet`.
///
/// # Panics
///
/// Panics when the scenario fails to compile or any shard panics.
pub fn scen_fleet_artifact(p: &EvalParams) -> ExperimentArtifact {
    let spec = library::fleet();
    let c = compile(&spec).unwrap_or_else(|e| panic!("fleet spec rejected: {e}"));
    let n = c.n_tenants();
    let shards = POLICIES.len() * n;

    let build =
        |shard_id: u64, _pool_seed: u64| -> (Engine, Box<dyn Workload>, Box<dyn PolicyHook>) {
            let policy = shard_id as usize / n;
            let tenant = shard_id % n as u64;
            let t = &c.tenants()[tenant as usize];
            // The scenario's own seed derivation, NOT the pool's per-shard
            // seed: tenant `t` must draw the identical stream under all four
            // policies for the sweep to compare like with like.
            let seed = c.tenant_seed(p.seed, tenant);
            let bound = tenant_bound(&c, tenant, p);
            (
                Engine::new(fleet_sim_config(p, bound)),
                c.build_workload(tenant, seed, p.scale),
                build_policy(policy, t.slo_pct, seed),
            )
        };
    let outcomes = run_tenants_sharded(
        shards,
        FLEET_DURATION_NS,
        &thermo_exec::ExecConfig::from_env(p.seed),
        build,
    )
    .unwrap_or_else(|e| panic!("scen_fleet run failed: {e}"));

    let mut r = ExperimentReport::new(
        "scen_fleet",
        "policy matrix over the 256-tenant scenario fleet (1024 sharded engines)",
        &[
            "policy",
            "group",
            "tenants",
            "ops",
            "slow_faults",
            "cold_frac",
            "kernel(%)",
        ],
    );
    // Aggregate in (policy, group) order; groups keep spec order.
    let group_names: Vec<&str> = c.spec().groups.iter().map(|g| g.name.as_str()).collect();
    for (policy_idx, policy) in POLICIES.iter().enumerate() {
        let mut aggs = vec![GroupAgg::default(); group_names.len()];
        let mut digest = FNV_OFFSET;
        for o in &outcomes[policy_idx * n..(policy_idx + 1) * n] {
            let tenant = o.shard_id as usize % n;
            let group = group_names
                .iter()
                .position(|g| *g == c.tenants()[tenant].group)
                .expect("tenant group is declared");
            let a = &mut aggs[group];
            a.tenants += 1;
            a.ops += o.outcome.ops;
            a.slow_faults += o.stats.slow_trap_faults;
            a.cold_sum += o.breakdown.cold_fraction();
            a.kernel_ns += o.stats.kernel_time_ns;
            a.app_ns += o.stats.app_time_ns;
            digest = fnv1a64(digest, thermo_util::json::encode(o).as_bytes());
        }
        for (g, a) in group_names.iter().zip(&aggs) {
            r.row(vec![
                (*policy).to_string(),
                (*g).to_string(),
                a.tenants.to_string(),
                a.ops.to_string(),
                a.slow_faults.to_string(),
                pct(a.cold_sum / a.tenants.max(1) as f64),
                pct(a.kernel_ns as f64 / a.app_ns.max(1) as f64),
            ]);
        }
        // Every engine counter of all 256 shards under this policy,
        // pinned in one line.
        r.note(format!("digest {policy}: {digest:016x} over {n} shards"));
    }
    r.note(format!(
        "scenario: {} tenants x {} policies = {} shards, {}ns virtual each",
        n,
        POLICIES.len(),
        shards,
        FLEET_DURATION_NS,
    ));
    r.note(format!("spec: {}", thermo_util::json::encode(c.spec())));
    // One sentinel shard per policy, byte-for-byte: digest mismatches
    // then diff against a concrete outcome instead of a bare hash.
    for policy_idx in 0..POLICIES.len() {
        let o = &outcomes[policy_idx * n];
        r.note(format!(
            "sentinel {}: {}",
            POLICIES[policy_idx],
            thermo_util::json::encode(o)
        ));
    }
    ExperimentArtifact::new(r, p)
}

/// The initial capacity grant for a storm tenant: antagonists start
/// bloated at twice their bound (hogging the pool), everyone else is
/// squeezed to three quarters — the arbiter must claw antagonist
/// capacity back to fund the squeezed tenants' growth and spikes.
fn storm_grant(group: &str, bound: u64) -> u64 {
    if group == "antagonist" {
        bound * 2
    } else {
        bound * 3 / 4
    }
}

/// Runs the 32-tenant co-scheduled storm at `p` and returns the artifact
/// under id `scen_storm`.
///
/// # Panics
///
/// Panics when the scenario fails to compile or the run fails.
pub fn scen_storm_artifact(p: &EvalParams) -> ExperimentArtifact {
    let spec = library::storm();
    let c = compile(&spec).unwrap_or_else(|e| panic!("storm spec rejected: {e}"));
    let n = c.n_tenants();
    // The pool is exactly the sum of the initial grants (no reserve):
    // every grant the arbiter issues must be funded by a reclaim.
    let pool: u64 = (0..n as u64)
        .map(|t| storm_grant(&c.tenants()[t as usize].group, tenant_bound(&c, t, p)))
        .sum();

    let build =
        |shard_id: u64, _pool_seed: u64| -> (Engine, Box<dyn Workload>, Box<dyn PolicyHook>) {
            let t = &c.tenants()[shard_id as usize];
            let seed = c.tenant_seed(p.seed, shard_id);
            let bound = tenant_bound(&c, shard_id, p);
            let mut cfg = p.sim_config_sized(bound);
            cfg.fast = TierParams::dram(pool);
            cfg.slow = TierParams::slow_1us(bound + (32 << 20));
            cfg.fabric.enabled = true;
            cfg.sched.coscheduled = true;
            cfg.sched.shared_pool_bytes = pool;
            cfg.sched.initial_grant_bytes = storm_grant(&t.group, bound);
            cfg.sched.slo_pct = t.slo_pct;
            cfg.sched.report_period_ns = SCEN_PERIOD_NS / 2;
            cfg.sched.rebalance_period_ns = SCEN_PERIOD_NS;
            // MB-scale tenants need sub-MB grant moves (default is 8MB).
            cfg.sched.grant_quantum_bytes = 512 << 10;
            (
                Engine::new(cfg),
                c.build_workload(shard_id, seed, p.scale),
                // The colocated policy matrix: tenant i runs policy i % 4.
                build_policy(shard_id as usize % POLICIES.len(), t.slo_pct, seed),
            )
        };
    let out = run_tenants_coscheduled(n, STORM_DURATION_NS, p.seed, fuzz_seed_from_env(), build)
        .unwrap_or_else(|e| panic!("scen_storm run failed: {e}"));

    let mut r = ExperimentReport::new(
        "scen_storm",
        "32-tenant scenario storm, co-scheduled over one arbitrated pool (mixed policies)",
        &[
            "tenant",
            "policy",
            "slo(%)",
            "grant0(MB)",
            "ops",
            "slow_faults",
            "spill_faults",
            "reclaimed(MB)",
            "promoted(MB)",
            "cold_frac",
        ],
    );
    for (o, pr) in out.shards.iter().zip(&out.pressure) {
        let t = &c.tenants()[o.shard_id as usize];
        let grant = storm_grant(&t.group, tenant_bound(&c, o.shard_id, p));
        r.row(vec![
            t.label.clone(),
            POLICIES[o.shard_id as usize % POLICIES.len()].to_string(),
            f(t.slo_pct, 1),
            f(grant as f64 / 1e6, 1),
            o.outcome.ops.to_string(),
            o.stats.slow_trap_faults.to_string(),
            pr.slow_fallback_faults.to_string(),
            f(pr.reclaimed_bytes as f64 / 1e6, 1),
            f(pr.promoted_bytes as f64 / 1e6, 1),
            pct(o.breakdown.cold_fraction()),
        ]);
    }
    let grants: u64 = out.trace.iter().filter(|e| e.action == "grant").count() as u64;
    let reclaims: u64 = out.trace.iter().filter(|e| e.action == "reclaim").count() as u64;
    r.note(format!(
        "arbiter: {} events ({} reclaims funding {} grants) over one {:.1}MB pool, {} tenants",
        out.trace.len(),
        reclaims,
        grants,
        pool as f64 / 1e6,
        n,
    ));
    r.note(format!("spec: {}", thermo_util::json::encode(c.spec())));
    // Exact outcomes, pressure counters, and the applied arbitration
    // trace — the whole run is golden-checked byte-for-byte.
    for (o, pr) in out.shards.iter().zip(&out.pressure) {
        r.note(format!(
            "shard {}: {}",
            o.shard_id,
            thermo_util::json::encode(o)
        ));
        r.note(format!(
            "pressure {}: {}",
            o.shard_id,
            thermo_util::json::encode(pr)
        ));
    }
    for e in &out.trace {
        r.note(format!("arbiter: {}", thermo_util::json::encode(e)));
    }
    ExperimentArtifact::new(r, p)
}

//! Migration-fabric experiments (ROADMAP item 2): what does a *finite*
//! DRAM↔slow-tier channel cost, and how often do transactional
//! migrations abort under writes?
//!
//! Two registry experiments:
//!
//! * `fab_bw` — slowdown vs migration bandwidth. The same Thermostat run
//!   repeated with the fabric link throttled to a sweep of bandwidths;
//!   the golden rows show the slowdown and congestion penalty shrinking
//!   as the link widens, converging toward the synchronous
//!   (infinite-bandwidth) reference.
//! * `fab_abort` — abort rate vs write intensity. A fixed narrow link
//!   while the workload's YCSB read percentage drops; writes landing on
//!   in-flight copies abort-and-retry, so the abort rate climbs with
//!   write intensity.
//!
//! Both experiments only *enable* the fabric (`SimConfig::fabric`); the
//! policy side is the unmodified Thermostat daemon, which switches its
//! demotion path to `BeginMigrate`/`CommitMigrate` when it sees the
//! fabric on.

use crate::artifact::ExperimentArtifact;
use crate::harness::{
    baseline_run, slowdown_pct, thermostat_fabric_run, thermostat_run, EvalParams,
};
use crate::report::{f, pct, ExperimentReport};
use thermo_sim::FabricConfig;
use thermo_workloads::AppId;

/// Link bandwidths swept by `fab_bw`, MB/s. Spans a starved link (the
/// copy engine visibly throttles demotion) up to a link wide enough to
/// behave like the synchronous path.
const BANDWIDTHS_MBPS: &[u64] = &[64, 512, 4096];

/// Read percentages swept by `fab_abort` (write intensity = 100 − read).
/// Cassandra is the sweep app: it honours `AppConfig::read_pct` (the
/// paper's fig5 runs it write-heavy at 5% reads) and demotes steadily
/// even at smoke scale.
const READ_PCTS: &[u8] = &[95, 65, 35, 5];

/// Fabric configuration shared by both experiments, parameterized by the
/// link bandwidth.
fn fabric_cfg(bw_mbps: u64) -> FabricConfig {
    FabricConfig {
        enabled: true,
        link_bandwidth_bytes_per_sec: bw_mbps * 1_000_000,
        ..FabricConfig::default()
    }
}

/// Runs the slowdown-vs-migration-bandwidth experiment (`fab_bw`).
pub fn fab_bw_artifact(p: &EvalParams) -> ExperimentArtifact {
    let app = AppId::MysqlTpcc;
    let (base, _) = baseline_run(app, p);
    let (sync_run, _, _) = thermostat_run(app, p);

    let mut r = ExperimentReport::new(
        "fab_bw",
        "slowdown vs migration-fabric bandwidth (mysql-tpcc)",
        &[
            "bw(MB/s)",
            "ops/s",
            "slowdown(%)",
            "cold_frac",
            "begun",
            "committed",
            "aborted",
            "congestion",
            "peak(MB/s)",
        ],
    );
    r.row(vec![
        "baseline".into(),
        f(base.ops_per_sec, 0),
        f(0.0, 2),
        pct(0.0),
        "0".into(),
        "0".into(),
        "0".into(),
        "0".into(),
        f(0.0, 1),
    ]);
    r.row(vec![
        "sync".into(),
        f(sync_run.ops_per_sec, 0),
        f(slowdown_pct(&sync_run, &base), 2),
        pct(sync_run.cold_fraction_final),
        "0".into(),
        "0".into(),
        "0".into(),
        "0".into(),
        f(0.0, 1),
    ]);
    let mut art = ExperimentArtifact::new(ExperimentReport::new("", "", &[]), p);
    art.push_run("baseline", &base);
    art.push_run("sync", &sync_run);
    for &bw in BANDWIDTHS_MBPS {
        let (run, engine, _) = thermostat_fabric_run(app, p, fabric_cfg(bw));
        let fs = engine.fabric_stats();
        r.row(vec![
            bw.to_string(),
            f(run.ops_per_sec, 0),
            f(slowdown_pct(&run, &base), 2),
            pct(run.cold_fraction_final),
            fs.begun.to_string(),
            fs.committed.to_string(),
            fs.aborted.to_string(),
            fs.congestion_events.to_string(),
            f(fs.peak_bytes_per_sec as f64 / 1e6, 1),
        ]);
        // Fabric counters are not part of the run artifact's frozen
        // serialization; capture them exactly as a note instead.
        r.note(format!(
            "bw={bw}MB/s fabric: begun={} committed={} aborted={} write_aborts={} \
             invalidated={} shadow_hits={} congestion={} contended_misses={} \
             bytes_copied={} peak_bps={}",
            fs.begun,
            fs.committed,
            fs.aborted,
            fs.write_aborts,
            fs.invalidated,
            fs.shadow_hits,
            fs.congestion_events,
            fs.contended_misses,
            fs.bytes_copied,
            fs.peak_bytes_per_sec,
        ));
        art.push_run(&format!("fabric_bw_{bw}"), &run);
    }
    r.note(
        "expectation: slowdown, congestion, and contended misses shrink as the \
         link widens; cold fraction stays below the sync reference because \
         transactional demotion aborts on pages the workload writes mid-copy \
         (pages the synchronous path would have demoted and faulted back)",
    );
    art.report = r;
    art
}

/// Runs the abort-rate-vs-write-intensity experiment (`fab_abort`).
pub fn fab_abort_artifact(p: &EvalParams) -> ExperimentArtifact {
    let app = AppId::Cassandra;
    let bw_mbps = 128;
    let mut r = ExperimentReport::new(
        "fab_abort",
        "abort rate vs write intensity at a fixed 128MB/s link (cassandra)",
        &[
            "read(%)",
            "ops/s",
            "begun",
            "committed",
            "aborted",
            "write_aborts",
            "abort_rate",
            "shadow_hits",
        ],
    );
    let mut art = ExperimentArtifact::new(ExperimentReport::new("", "", &[]), p);
    for &read_pct in READ_PCTS {
        let wp = EvalParams { read_pct, ..*p };
        let (run, engine, _) = thermostat_fabric_run(app, &wp, fabric_cfg(bw_mbps));
        let fs = engine.fabric_stats();
        let abort_rate = fs.aborted as f64 / fs.begun.max(1) as f64;
        r.row(vec![
            read_pct.to_string(),
            f(run.ops_per_sec, 0),
            fs.begun.to_string(),
            fs.committed.to_string(),
            fs.aborted.to_string(),
            fs.write_aborts.to_string(),
            pct(abort_rate),
            fs.shadow_hits.to_string(),
        ]);
        r.note(format!(
            "read={read_pct}% fabric: begun={} committed={} aborted={} write_aborts={} \
             invalidated={} shadow_hits={} congestion={} contended_misses={} \
             bytes_copied={} peak_bps={}",
            fs.begun,
            fs.committed,
            fs.aborted,
            fs.write_aborts,
            fs.invalidated,
            fs.shadow_hits,
            fs.congestion_events,
            fs.contended_misses,
            fs.bytes_copied,
            fs.peak_bytes_per_sec,
        ));
        art.push_run(&format!("fabric_read_{read_pct}"), &run);
    }
    r.note(
        "expectation: write aborts climb as the read share falls; \
         every begun transaction resolves to exactly one commit or abort",
    );
    art.report = r;
    art
}

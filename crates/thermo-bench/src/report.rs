//! Experiment result reporting: aligned text tables on stdout plus JSON
//! files under `target/experiments/`.

use std::fs;
use std::path::PathBuf;

use thermo_util::json::ToJson;
use thermo_util::json_struct;

/// A printable, serializable experiment report.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Experiment id (e.g. "fig8", "tab4").
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (pre-formatted cells).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (paper expectations, caveats).
    pub notes: Vec<String>,
}

json_struct!(ExperimentReport {
    id,
    title,
    columns,
    rows,
    notes
});

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (must match the column count).
    ///
    /// # Panics
    ///
    /// Panics when the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.columns, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// Prints the table and writes `target/experiments/<id>.json`.
    pub fn finish(&self) {
        println!("{}", self.render());
        write_json(&self.id, self);
    }
}

/// Serializes `data` to `target/experiments/<id>.json` (best effort: a
/// read-only filesystem only prints a warning).
pub fn write_json<T: ToJson + ?Sized>(id: &str, data: &T) {
    let dir = out_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{id}.json"));
    let s = thermo_util::json::encode_pretty(data);
    if let Err(e) = fs::write(&path, s) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        println!("[wrote {}]", path.display());
    }
}

fn out_dir() -> PathBuf {
    // Keep artifacts inside the workspace target dir.
    let base = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string());
    PathBuf::from(base).join("experiments")
}

/// Formats a fraction as a percent string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a float with `d` decimals.
pub fn f(x: f64, d: usize) -> String {
    format!("{x:.d$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut r = ExperimentReport::new("t", "test", &["app", "value"]);
        r.row(vec!["redis".into(), "1".into()]);
        r.row(vec!["a".into(), "123456".into()]);
        r.note("a note");
        let s = r.render();
        assert!(s.contains("== t — test =="));
        assert!(s.contains("redis"));
        assert!(s.contains("note: a note"));
        // Column alignment: both rows pad "app" column to 5 chars.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[2].find("1"), lines[3].find("123456"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut r = ExperimentReport::new("t", "test", &["a", "b"]);
        r.row(vec!["x".into()]);
    }

    #[test]
    fn pct_and_f() {
        assert_eq!(pct(0.123), "12.3%");
        assert_eq!(f(1.23456, 2), "1.23");
    }
}

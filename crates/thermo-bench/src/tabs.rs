//! Shared implementation of the paper's evaluation tables 2–4, factored
//! out of the binaries so the golden harness (and determinism tests) can
//! run them at smoke scale and capture full artifacts.
//!
//! Each table is six fully independent per-application runs, so they fan
//! out across the `thermo-exec` pool (worker count from `THERMO_JOBS`);
//! results merge in `AppId::ALL` order — job id = app index — so the
//! rendered rows and artifacts are byte-identical to a serial run.

use crate::artifact::{ExperimentArtifact, RunArtifact};
use crate::harness::{baseline_run, thermostat_run, AppRun, EvalParams};
use crate::report::{pct, ExperimentReport};
use thermo_mem::CostModel;
use thermo_workloads::AppId;

/// Runs the Thermostat flavour for every application in `AppId::ALL`
/// order as parallel jobs (Cassandra gets the write-heavy mix, matching
/// the paper's YCSB setup for it).
fn thermostat_runs_all(p: &EvalParams) -> Vec<AppRun> {
    let jobs: Vec<_> = AppId::ALL
        .into_iter()
        .map(|app| {
            move |_ctx: &thermo_exec::JobCtx| {
                let mut params = *p;
                if app == AppId::Cassandra {
                    params.read_pct = 5;
                }
                let (run, _, _) = thermostat_run(app, &params);
                run
            }
        })
        .collect();
    thermo_exec::run_jobs(jobs, &thermo_exec::ExecConfig::from_env(p.seed))
        .unwrap_or_else(|e| panic!("table run failed: {e}"))
}

/// Table 2: application memory footprints (resident set size and
/// file-mapped pages), scaled by the footprint divisor from the paper's
/// values.
pub fn tab2_artifact(p: &EvalParams) -> ExperimentArtifact {
    let mut r = ExperimentReport::new(
        "tab2",
        &format!(
            "application footprints at scale 1/{} (paper values in GB)",
            p.scale
        ),
        &[
            "app",
            "rss(MB)",
            "file_mapped(MB)",
            "paper_rss(GB)",
            "paper_file",
        ],
    );
    let jobs: Vec<_> = AppId::ALL
        .into_iter()
        .map(|app| {
            move |_ctx: &thermo_exec::JobCtx| {
                // Run briefly (a quarter of the measured window) so growing
                // workloads (Cassandra, analytics) show their steady
                // footprint.
                let short = EvalParams {
                    duration_ns: p.duration_ns / 4,
                    ..*p
                };
                let (run, engine) = baseline_run(app, &short);
                let rss = engine.rss_bytes();
                let file = engine.process().file_backed_bytes().min(rss);
                (run, rss, file)
            }
        })
        .collect();
    let results = thermo_exec::run_jobs(jobs, &thermo_exec::ExecConfig::from_env(p.seed))
        .unwrap_or_else(|e| panic!("tab2 run failed: {e}"));
    let mut runs = Vec::new();
    for (app, (run, rss, file)) in AppId::ALL.into_iter().zip(results) {
        r.row(vec![
            app.to_string(),
            format!("{:.0}", rss as f64 / 1e6),
            format!("{:.0}", file as f64 / 1e6),
            format!("{:.1}", app.paper_rss_bytes() as f64 / 1e9),
            human(app.paper_file_bytes()),
        ]);
        runs.push(RunArtifact::from_run("footprint", &run));
    }
    ExperimentArtifact {
        report: r,
        params: *p,
        runs,
    }
}

fn human(b: u64) -> String {
    if b >= 1_000_000_000 {
        format!("{:.1}GB", b as f64 / 1e9)
    } else {
        format!("{:.0}MB", b as f64 / 1e6)
    }
}

/// Table 3: data migration rate and false-classification rate (MB/s).
/// Paper: migration < 16 MB/s and false classification < 10 MB/s on
/// average for every application — far below slow-memory bandwidth.
pub fn tab3_artifact(p: &EvalParams) -> ExperimentArtifact {
    let mut r = ExperimentReport::new(
        "tab3",
        "migration and false-classification bandwidth (MB/s)",
        &[
            "app",
            "migration",
            "false-classification",
            "paper_mig",
            "paper_fc",
        ],
    );
    let mut runs = Vec::new();
    let paper = [
        ("13.3", "9.2"),
        ("9.6", "3.8"),
        ("16", "0.4"),
        ("6", "1.8"),
        ("11.3", "10"),
        ("1.6", "0.3"),
    ];
    for (run, (pm, pf)) in thermostat_runs_all(p).iter().zip(paper) {
        r.row(vec![
            run.app.clone(),
            format!("{:.2}", run.migration_mbps),
            format!("{:.2}", run.false_class_mbps),
            pm.to_string(),
            pf.to_string(),
        ]);
        runs.push(RunArtifact::from_run("thermostat", run));
    }
    r.note("rates scale with footprint: at scale 1/16 expect roughly 1/16 of the paper's MB/s");
    ExperimentArtifact {
        report: r,
        params: *p,
        runs,
    }
}

/// Table 4: memory spending savings relative to an all-DRAM system when
/// slow memory costs 1/3, 1/4 or 1/5 of DRAM per GB. Savings =
/// cold_fraction x (1 - cost_ratio); the cold fractions come from live
/// Thermostat runs at the 3% target.
pub fn tab4_artifact(p: &EvalParams) -> ExperimentArtifact {
    let mut r = ExperimentReport::new(
        "tab4",
        "memory cost savings vs all-DRAM at slow:DRAM cost ratios 1/3, 1/4, 1/5",
        &[
            "app",
            "cold_frac",
            "0.33x",
            "0.25x",
            "0.20x",
            "paper(0.25x)",
        ],
    );
    let mut runs = Vec::new();
    let paper_quarter = ["11%", "30%", "12%", "30%", "19%", "30%"];
    for (run, paper) in thermostat_runs_all(p).iter().zip(paper_quarter) {
        let cold = run.cold_fraction_final;
        let cells: Vec<String> = CostModel::table4_models()
            .iter()
            .map(|m| pct(m.evaluate(cold).savings_fraction))
            .collect();
        r.row(vec![
            run.app.clone(),
            pct(cold),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
            paper.to_string(),
        ]);
        runs.push(RunArtifact::from_run("thermostat", run));
    }
    ExperimentArtifact {
        report: r,
        params: *p,
        runs,
    }
}

//! Experiment harness for the Thermostat reproduction.
//!
//! One binary per paper table/figure (see DESIGN.md §4 for the index):
//! `fig1`, `tab1`, `fig2`, `fig3`, `tab2`, `fig5`…`fig10`, `fig11`,
//! `tab3`, `tab4`, plus the ablations `abl_*`. Every binary prints
//! human-readable rows matching the paper's presentation and writes
//! `target/experiments/<id>.json` with the raw data.
//!
//! This library provides the shared machinery: building engines and
//! workloads at the evaluation scale, paired baseline/Thermostat runs,
//! and result serialization.

#![warn(missing_docs)]
pub mod figs;
pub mod harness;
pub mod report;

pub use harness::{baseline_run, thermostat_run, AppRun, EvalParams};
pub use report::{write_json, ExperimentReport};

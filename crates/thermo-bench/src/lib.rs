//! Experiment harness for the Thermostat reproduction.
//!
//! One binary per paper table/figure (see DESIGN.md §4 for the index):
//! `fig1`, `tab1`, `fig2`, `fig3`, `tab2`, `fig5`…`fig10`, `fig11`,
//! `tab3`, `tab4`, plus the ablations `abl_*` and the `golden`
//! regression checker. Every binary prints human-readable rows matching
//! the paper's presentation and writes `target/experiments/<id>.json`
//! with the table data; registry experiments additionally write
//! `target/experiments/<id>.artifact.json` with the full per-period
//! trajectory of every run.
//!
//! This library provides the shared machinery: building engines and
//! workloads at the evaluation scale, paired baseline/Thermostat runs,
//! result serialization ([`artifact`]), the golden-checked experiment
//! registry ([`experiments`]), and the structural golden diff
//! ([`golden`]).

#![warn(missing_docs)]
pub mod artifact;
pub mod benchagg;
pub mod experiments;
pub mod fab;
pub mod figs;
pub mod golden;
pub mod harness;
pub mod report;
pub mod scen;
pub mod tabs;
pub mod tenants;
pub mod tenants_shared;

pub use artifact::{ExperimentArtifact, RunArtifact};
pub use harness::{baseline_run, thermostat_run, AppRun, EvalParams};
pub use report::{write_json, ExperimentReport};

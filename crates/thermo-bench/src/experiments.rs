//! The golden-checked experiment registry: one entry per fig/tab harness
//! whose artifact is captured, determinism-tested, and diffed against
//! `goldens/` in CI.
//!
//! Binaries call [`run_and_finish`] so the figure parameters (workload,
//! read mix, paper expectations) live in exactly one place; the `golden`
//! binary and `tests/determinism.rs` iterate [`ALL`] so a new experiment
//! added here is automatically regression-gated and cannot silently opt
//! out of determinism.

use crate::artifact::ExperimentArtifact;
use crate::fab::{fab_abort_artifact, fab_bw_artifact};
use crate::figs::footprint_artifact;
use crate::harness::EvalParams;
use crate::scen::{scen_fleet_artifact, scen_storm_artifact};
use crate::tabs::{tab2_artifact, tab3_artifact, tab4_artifact};
use crate::tenants::tenants_artifact;
use crate::tenants_shared::tenants_shared_artifact;
use thermo_workloads::AppId;

/// A registered experiment: a stable id and an artifact-producing run
/// function parameterized by the evaluation scale.
#[derive(Clone, Copy)]
pub struct Experiment {
    /// Stable id; also the report/golden file stem (e.g. `"fig8"`).
    pub id: &'static str,
    /// Runs the experiment at the given parameters.
    pub run: fn(&EvalParams) -> ExperimentArtifact,
}

fn fig5(p: &EvalParams) -> ExperimentArtifact {
    footprint_artifact("fig5", AppId::Cassandra, 5, "~40-50%", 2.0, p)
}

fn fig6(p: &EvalParams) -> ExperimentArtifact {
    footprint_artifact("fig6", AppId::MysqlTpcc, 95, "~40-50%", 1.3, p)
}

fn fig7(p: &EvalParams) -> ExperimentArtifact {
    footprint_artifact("fig7", AppId::Aerospike, 95, "~15%", 1.0, p)
}

fn fig8(p: &EvalParams) -> ExperimentArtifact {
    footprint_artifact("fig8", AppId::Redis, 90, "~10%", 2.0, p)
}

fn fig9(p: &EvalParams) -> ExperimentArtifact {
    footprint_artifact("fig9", AppId::InMemoryAnalytics, 95, "~15-20%", 3.0, p)
}

fn fig10(p: &EvalParams) -> ExperimentArtifact {
    footprint_artifact("fig10", AppId::WebSearch, 95, "~40%", 1.0, p)
}

/// Every golden-checked experiment, in bless/check order.
pub const ALL: &[Experiment] = &[
    Experiment {
        id: "fig5",
        run: fig5,
    },
    Experiment {
        id: "fig6",
        run: fig6,
    },
    Experiment {
        id: "fig7",
        run: fig7,
    },
    Experiment {
        id: "fig8",
        run: fig8,
    },
    Experiment {
        id: "fig9",
        run: fig9,
    },
    Experiment {
        id: "fig10",
        run: fig10,
    },
    Experiment {
        id: "tab2",
        run: tab2_artifact,
    },
    Experiment {
        id: "tab3",
        run: tab3_artifact,
    },
    Experiment {
        id: "tab4",
        run: tab4_artifact,
    },
    Experiment {
        id: "tenants",
        run: tenants_artifact,
    },
    Experiment {
        id: "fab_bw",
        run: fab_bw_artifact,
    },
    Experiment {
        id: "fab_abort",
        run: fab_abort_artifact,
    },
    Experiment {
        id: "tenants_shared",
        run: tenants_shared_artifact,
    },
    Experiment {
        id: "scen_fleet",
        run: scen_fleet_artifact,
    },
    Experiment {
        id: "scen_storm",
        run: scen_storm_artifact,
    },
];

/// Looks up a registered experiment by id.
pub fn by_id(id: &str) -> Option<&'static Experiment> {
    ALL.iter().find(|e| e.id == id)
}

/// One registry experiment's artifact plus the wall-clock time its job
/// took. The wall time is *observability only* — it is never serialized
/// into the artifact, so parallel scheduling can't leak into goldens
/// (DESIGN.md §9).
pub struct TimedRun {
    /// The experiment's registry id.
    pub id: &'static str,
    /// The artifact the run produced.
    pub artifact: ExperimentArtifact,
    /// Wall-clock duration of this experiment's job.
    pub wall: std::time::Duration,
}

/// Runs `selected` experiments as parallel jobs on a `workers`-wide
/// `thermo-exec` pool, returning artifacts **in `selected` order** with
/// per-experiment wall-clock timings.
///
/// Every experiment seeds itself from `params` exactly as in a serial
/// run (the pool's derived per-job seeds are unused), and results merge
/// in job-id order, so the artifacts are byte-identical for any worker
/// count — see `tests/exec_determinism.rs`.
///
/// # Panics
///
/// Panics when an experiment job panics, naming the failing id.
pub fn run_parallel(
    selected: &[&'static Experiment],
    params: &EvalParams,
    workers: usize,
) -> Vec<TimedRun> {
    let jobs: Vec<_> = selected
        .iter()
        .map(|exp| {
            move |_ctx: &thermo_exec::JobCtx| {
                let t0 = std::time::Instant::now();
                let artifact = (exp.run)(params);
                TimedRun {
                    id: exp.id,
                    artifact,
                    wall: t0.elapsed(),
                }
            }
        })
        .collect();
    let cfg = thermo_exec::ExecConfig::new(workers, params.seed)
        .with_fuzz(thermo_exec::exec_fuzz_from_env());
    thermo_exec::run_jobs(jobs, &cfg).unwrap_or_else(|e| {
        let which = match e {
            thermo_exec::ExecError::JobPanicked { job_id, .. } => {
                selected.get(job_id as usize).map_or("?", |x| x.id)
            }
        };
        panic!("experiment `{which}` failed: {e}")
    })
}

/// Runs the experiment at the environment-configured evaluation scale and
/// prints + persists its artifacts (the fig/tab binaries' entry point).
///
/// # Panics
///
/// Panics when `id` is not registered.
pub fn run_and_finish(id: &str) {
    let exp = by_id(id).unwrap_or_else(|| panic!("unknown experiment id `{id}`"));
    (exp.run)(&EvalParams::from_env()).finish();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_resolvable() {
        for (i, e) in ALL.iter().enumerate() {
            assert!(by_id(e.id).is_some());
            assert!(
                !ALL[..i].iter().any(|o| o.id == e.id),
                "duplicate id {}",
                e.id
            );
        }
        assert!(by_id("nope").is_none());
    }
}

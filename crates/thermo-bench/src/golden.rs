//! Golden-artifact comparison: structural JSON diff with per-field
//! numeric tolerance bands, plus the bless/check plumbing used by the
//! `golden` binary and `scripts/golden.sh`.
//!
//! The simulation is a pure function of the seed and `thermo_util::json`
//! output is byte-stable (see `tests/determinism.rs`), so an unchanged
//! tree reproduces checked-in expectations exactly. The diff is still
//! *structural* with tolerances rather than a byte compare, for two
//! reasons: a mismatch report must name the first diverging field/period
//! (a byte diff of a 2000-line artifact names a character offset), and
//! intentional micro-tuning of derived float metrics (throughput,
//! bandwidth, latency) should be absorbed up to a small band while
//! policy *decisions* — integer counters like pages demoted per period —
//! stay exact, so a classify/estimate regression can never hide inside a
//! tolerance.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::artifact::ExperimentArtifact;
use thermo_util::json::{parse, to_string_pretty, ToJson, Value};

/// A numeric tolerance band applied to fields whose dotted path contains
/// `pattern`.
#[derive(Debug, Clone, Copy)]
pub struct ToleranceBand {
    /// Substring matched against the full field path
    /// (e.g. `"ops_per_sec"`, `"latency"`).
    pub pattern: &'static str,
    /// Allowed relative deviation: `|a-e| <= rel * max(1, |e|)`.
    pub rel: f64,
}

/// Diff configuration: the default float tolerance plus per-field bands.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Relative tolerance for floats not matched by any band.
    pub default_rel: f64,
    /// Per-field overrides, first match wins.
    pub bands: Vec<ToleranceBand>,
}

impl DiffConfig {
    /// Exact comparison (used by tests).
    pub fn exact() -> Self {
        Self {
            default_rel: 0.0,
            bands: Vec::new(),
        }
    }

    /// The tolerance policy for checked-in goldens (rationale in
    /// DESIGN.md): integers exact, floats near-exact by default, and a
    /// 2% band on *derived measurement* fields — throughput, migration
    /// bandwidth, latency, access rates — so micro-tuning of the cost
    /// model doesn't force a re-bless, while every policy decision
    /// (demotions, promotions, footprint bytes) must match exactly.
    pub fn goldens() -> Self {
        Self {
            default_rel: 1e-9,
            bands: vec![
                ToleranceBand {
                    pattern: "ops_per_sec",
                    rel: 0.02,
                },
                ToleranceBand {
                    pattern: "mbps",
                    rel: 0.02,
                },
                ToleranceBand {
                    pattern: "latency",
                    rel: 0.02,
                },
                ToleranceBand {
                    pattern: "rate",
                    rel: 0.02,
                },
                ToleranceBand {
                    pattern: "series",
                    rel: 0.02,
                },
            ],
        }
    }

    fn band_for(&self, path: &str) -> Option<f64> {
        self.bands
            .iter()
            .find(|b| path.contains(b.pattern))
            .map(|b| b.rel)
    }
}

/// One structural divergence between expectation and actual.
#[derive(Debug, Clone, PartialEq)]
pub struct Mismatch {
    /// Dotted path of the diverging field (e.g. `runs[1].history[2].demoted`).
    pub path: String,
    /// Expected value (from the golden), rendered compactly.
    pub expected: String,
    /// Actual value (from the fresh run), rendered compactly.
    pub actual: String,
    /// Why it diverged (type mismatch, beyond band, missing, ...).
    pub reason: String,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: expected {}, got {} ({})",
            self.path, self.expected, self.actual, self.reason
        )
    }
}

/// Structurally compares `actual` against `expected`, returning every
/// divergence (empty = match). Object key order is ignored; numeric
/// fields use the configured tolerance bands.
pub fn diff_values(expected: &Value, actual: &Value, cfg: &DiffConfig) -> Vec<Mismatch> {
    let mut out = Vec::new();
    walk("$", expected, actual, cfg, &mut out);
    out
}

fn short(v: &Value) -> String {
    let s = thermo_util::json::to_string(v);
    if s.len() <= 48 {
        return s;
    }
    let mut end = 47;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}…", &s[..end])
}

fn push(out: &mut Vec<Mismatch>, path: &str, e: &Value, a: &Value, reason: impl Into<String>) {
    out.push(Mismatch {
        path: path.to_string(),
        expected: short(e),
        actual: short(a),
        reason: reason.into(),
    });
}

fn walk(path: &str, e: &Value, a: &Value, cfg: &DiffConfig, out: &mut Vec<Mismatch>) {
    match (e, a) {
        (Value::Obj(ef), Value::Obj(af)) => {
            for (k, ev) in ef {
                match a.get(k) {
                    Some(av) => walk(&format!("{path}.{k}"), ev, av, cfg, out),
                    None => push(
                        out,
                        &format!("{path}.{k}"),
                        ev,
                        &Value::Null,
                        "missing field",
                    ),
                }
            }
            for (k, av) in af {
                if e.get(k).is_none() {
                    push(
                        out,
                        &format!("{path}.{k}"),
                        &Value::Null,
                        av,
                        "unexpected field",
                    );
                }
            }
        }
        (Value::Arr(ea), Value::Arr(aa)) => {
            if ea.len() != aa.len() {
                push(
                    out,
                    path,
                    e,
                    a,
                    format!("array length {} vs {}", ea.len(), aa.len()),
                );
            }
            for (i, (ev, av)) in ea.iter().zip(aa).enumerate() {
                walk(&format!("{path}[{i}]"), ev, av, cfg, out);
            }
        }
        _ => {
            let (en, an) = (e.as_f64(), a.as_f64());
            if let (Some(ef), Some(af)) = (en, an) {
                // Both numeric: integers compare exactly unless a band
                // explicitly covers the field; floats get the band or the
                // default tolerance.
                let both_int = matches!(e, Value::U64(_) | Value::I64(_))
                    && matches!(a, Value::U64(_) | Value::I64(_));
                match cfg.band_for(path) {
                    None if both_int => {
                        if e.as_i64() != a.as_i64() || e.as_u64() != a.as_u64() {
                            push(out, path, e, a, "integers must match exactly");
                        }
                    }
                    band => {
                        let rel = band.unwrap_or(cfg.default_rel);
                        if (af - ef).abs() > rel * ef.abs().max(1.0) {
                            push(out, path, e, a, format!("beyond ±{rel:e} relative band"));
                        }
                    }
                }
            } else if e != a {
                push(out, path, e, a, "value mismatch");
            }
        }
    }
}

/// Index of the first period that diverges, extracted from a mismatch
/// path like `$.runs[1].history[7].demoted`.
fn first_diverging_period(mismatches: &[Mismatch]) -> Option<(usize, String)> {
    mismatches
        .iter()
        .filter_map(|m| {
            let (_, rest) = m.path.split_once("history[")?;
            let (idx, _) = rest.split_once(']')?;
            Some((idx.parse::<usize>().ok()?, m.path.clone()))
        })
        .min()
}

/// Renders a human-readable mismatch report for one experiment, naming
/// the first diverging period when the divergence is in a run history.
pub fn render_mismatch_report(id: &str, mismatches: &[Mismatch]) -> String {
    let mut out = format!(
        "golden mismatch for `{id}`: {} field(s) diverge\n",
        mismatches.len()
    );
    if let Some((period, path)) = first_diverging_period(mismatches) {
        out.push_str(&format!(
            "  first diverging period: #{period} (at {path})\n"
        ));
    }
    const SHOW: usize = 20;
    for m in mismatches.iter().take(SHOW) {
        out.push_str(&format!("  - {m}\n"));
    }
    if mismatches.len() > SHOW {
        out.push_str(&format!("  … and {} more\n", mismatches.len() - SHOW));
    }
    out.push_str(&format!(
        "  (intentional change? re-bless with `scripts/golden.sh bless {id}`)"
    ));
    out
}

/// Directory holding the checked-in golden expectations. Overridable via
/// `THERMO_GOLDEN_DIR`; defaults to `<repo root>/goldens`.
pub fn golden_dir() -> PathBuf {
    std::env::var_os("THERMO_GOLDEN_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("goldens")
        })
}

/// Canonical golden serialization of an artifact: pretty-printed JSON
/// with a trailing newline, round-tripped through the parser so the
/// in-memory and on-disk forms compare identically.
pub fn canonical_json(artifact: &ExperimentArtifact) -> String {
    let mut s = to_string_pretty(&artifact.to_json());
    s.push('\n');
    s
}

/// Checks a freshly produced artifact against `goldens/<id>.json`.
/// Returns `Ok(())` on match, or the rendered mismatch report.
pub fn check_artifact(
    artifact: &ExperimentArtifact,
    dir: &Path,
    cfg: &DiffConfig,
) -> Result<(), String> {
    let id = &artifact.report.id;
    let path = dir.join(format!("{id}.json"));
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "no golden for `{id}` at {} ({e}); bless it with `scripts/golden.sh bless {id}`",
            path.display()
        )
    })?;
    let expected =
        parse(&text).map_err(|e| format!("golden {} is not valid JSON: {e}", path.display()))?;
    // Canonicalize the fresh artifact through the same codec the golden
    // went through, so the diff sees what a re-bless would write.
    let actual = parse(&canonical_json(artifact)).expect("artifact JSON reparses");
    let mismatches = diff_values(&expected, &actual, cfg);
    if mismatches.is_empty() {
        Ok(())
    } else {
        Err(render_mismatch_report(id, &mismatches))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(fields: Vec<(&str, Value)>) -> Value {
        Value::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    #[test]
    fn identical_values_match() {
        let v = obj(vec![
            ("a", Value::U64(1)),
            ("b", Value::F64(0.5)),
            ("c", Value::Arr(vec![Value::Str("x".into())])),
        ]);
        assert!(diff_values(&v, &v.clone(), &DiffConfig::goldens()).is_empty());
    }

    #[test]
    fn integer_divergence_is_exact_regardless_of_size() {
        let e = obj(vec![("demoted", Value::U64(3))]);
        let a = obj(vec![("demoted", Value::U64(4))]);
        let ms = diff_values(&e, &a, &DiffConfig::goldens());
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].path, "$.demoted");
        assert!(ms[0].reason.contains("exactly"));
    }

    #[test]
    fn float_band_absorbs_small_drift_but_not_large() {
        let cfg = DiffConfig::goldens();
        let e = obj(vec![("ops_per_sec", Value::F64(1000.0))]);
        let close = obj(vec![("ops_per_sec", Value::F64(1015.0))]); // +1.5%
        let far = obj(vec![("ops_per_sec", Value::F64(1500.0))]); // +50%
        assert!(diff_values(&e, &close, &cfg).is_empty());
        assert_eq!(diff_values(&e, &far, &cfg).len(), 1);
    }

    #[test]
    fn default_float_tolerance_is_tight() {
        let cfg = DiffConfig::goldens();
        let e = obj(vec![("cold_fraction", Value::F64(0.25))]);
        let a = obj(vec![("cold_fraction", Value::F64(0.26))]);
        assert_eq!(diff_values(&e, &a, &cfg).len(), 1);
    }

    #[test]
    fn missing_and_unexpected_fields_are_reported() {
        let e = obj(vec![("a", Value::U64(1)), ("b", Value::U64(2))]);
        let a = obj(vec![("a", Value::U64(1)), ("z", Value::U64(9))]);
        let ms = diff_values(&e, &a, &DiffConfig::exact());
        let reasons: Vec<&str> = ms.iter().map(|m| m.reason.as_str()).collect();
        assert!(reasons.contains(&"missing field"));
        assert!(reasons.contains(&"unexpected field"));
    }

    #[test]
    fn array_length_and_type_mismatches() {
        let e = Value::Arr(vec![Value::U64(1), Value::U64(2)]);
        let a = Value::Arr(vec![Value::U64(1)]);
        let ms = diff_values(&e, &a, &DiffConfig::exact());
        assert!(ms[0].reason.contains("array length"));
        let ms = diff_values(&Value::Bool(true), &Value::U64(1), &DiffConfig::exact());
        assert_eq!(ms.len(), 1, "bool vs number is a type mismatch");
    }

    #[test]
    fn report_names_first_diverging_period() {
        let ms = vec![
            Mismatch {
                path: "$.runs[1].history[7].demoted".into(),
                expected: "3".into(),
                actual: "4".into(),
                reason: "integers must match exactly".into(),
            },
            Mismatch {
                path: "$.runs[1].history[2].promoted".into(),
                expected: "0".into(),
                actual: "1".into(),
                reason: "integers must match exactly".into(),
            },
        ];
        let report = render_mismatch_report("fig8", &ms);
        assert!(report.contains("first diverging period: #2"), "{report}");
        assert!(report.contains("golden mismatch for `fig8`"));
        assert!(report.contains("bless"));
    }

    #[test]
    fn object_key_order_is_ignored() {
        let e = obj(vec![("a", Value::U64(1)), ("b", Value::U64(2))]);
        let a = obj(vec![("b", Value::U64(2)), ("a", Value::U64(1))]);
        assert!(diff_values(&e, &a, &DiffConfig::exact()).is_empty());
    }
}

//! Cross-run bench-distribution aggregation.
//!
//! The CI bench gate compares a median-of-N against
//! `goldens/bench-baseline.json` with a generous +150% threshold because
//! nanosecond-scale medians move a lot across runner sessions. To tighten
//! that threshold *with data* instead of folklore, this module merges any
//! number of `THERMO_BENCH_JSON` artifacts (each a
//! [`BenchBaseline`](thermo_util::bench::BenchBaseline) carrying the full
//! per-rep `samples_ns` distribution) into one per-bench spread report:
//! pooled sample statistics plus the across-run spread of the per-run
//! medians — exactly the quantity the gate thresholds.
//!
//! Driven by `scripts/benchagg.sh` (collect N runs, then aggregate) or
//! directly:
//!
//! ```console
//! $ benchagg target/benchagg/*.json
//! ```

use thermo_util::bench::{BenchBaseline, BenchStats};

/// Pooled cross-run statistics for one bench name.
#[derive(Debug, Clone, PartialEq)]
pub struct AggBench {
    /// Bench name (`group/name` inside groups).
    pub name: String,
    /// Number of input runs that contained this bench.
    pub runs: usize,
    /// One median per input run, in input order.
    pub run_medians_ns: Vec<f64>,
    /// All samples from all runs, sorted ascending. Runs whose artifact
    /// predates `samples_ns` contribute their median as one sample.
    pub samples_ns: Vec<f64>,
}

impl AggBench {
    fn percentile(&self, p: f64) -> f64 {
        let s = &self.samples_ns;
        if s.is_empty() {
            return 0.0;
        }
        let rank = (p / 100.0 * (s.len() - 1) as f64).round() as usize;
        s[rank.min(s.len() - 1)]
    }

    /// Median of the pooled samples.
    pub fn pooled_median_ns(&self) -> f64 {
        let s = &self.samples_ns;
        let n = s.len();
        if n == 0 {
            0.0
        } else if n % 2 == 1 {
            s[n / 2]
        } else {
            (s[n / 2 - 1] + s[n / 2]) / 2.0
        }
    }

    /// Spread of the per-run medians as a percentage:
    /// `(max/min - 1) * 100` — the worst regression the CI gate could see
    /// between two of these runs with NO code change. 0 for fewer than
    /// two runs or a zero minimum.
    pub fn median_spread_pct(&self) -> f64 {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &m in &self.run_medians_ns {
            lo = lo.min(m);
            hi = hi.max(m);
        }
        if self.run_medians_ns.len() < 2 || lo <= 0.0 {
            0.0
        } else {
            (hi / lo - 1.0) * 100.0
        }
    }
}

/// Merges bench artifacts by bench name, preserving first-seen order
/// (the benches' execution order, identical across runs of the same
/// targets).
pub fn aggregate(files: &[BenchBaseline]) -> Vec<AggBench> {
    let mut out: Vec<AggBench> = Vec::new();
    for file in files {
        for b in &file.benches {
            let agg = match out.iter_mut().find(|a| a.name == b.name) {
                Some(a) => a,
                None => {
                    out.push(AggBench {
                        name: b.name.clone(),
                        runs: 0,
                        run_medians_ns: Vec::new(),
                        samples_ns: Vec::new(),
                    });
                    out.last_mut().expect("just pushed")
                }
            };
            agg.runs += 1;
            agg.run_medians_ns.push(b.median_ns);
            if b.samples_ns.is_empty() {
                agg.samples_ns.push(b.median_ns);
            } else {
                agg.samples_ns.extend_from_slice(&b.samples_ns);
            }
        }
    }
    for a in &mut out {
        a.samples_ns
            .sort_by(|x, y| x.partial_cmp(y).expect("samples are finite"));
    }
    out
}

/// Renders the spread report: one row per bench plus a footer naming the
/// worst across-run median spread — the datum that justifies (or
/// tightens) `THERMO_BENCH_MAX_REGRESSION_PCT`.
pub fn spread_report(aggs: &[AggBench]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<42} {:>4} {:>7} {:>12} {:>12} {:>12} {:>12} {:>9}\n",
        "bench", "runs", "n", "p10 µs", "median µs", "p90 µs", "max µs", "spread%"
    ));
    let mut worst: Option<&AggBench> = None;
    for a in aggs {
        out.push_str(&format!(
            "{:<42} {:>4} {:>7} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>9.1}\n",
            a.name,
            a.runs,
            a.samples_ns.len(),
            a.percentile(10.0) / 1e3,
            a.pooled_median_ns() / 1e3,
            a.percentile(90.0) / 1e3,
            a.samples_ns.last().copied().unwrap_or(0.0) / 1e3,
            a.median_spread_pct(),
        ));
        if worst.is_none_or(|w| a.median_spread_pct() > w.median_spread_pct()) {
            worst = Some(a);
        }
    }
    if let Some(w) = worst {
        out.push_str(&format!(
            "worst across-run median spread: {} at {:.1}% over {} run(s) — a same-code gate threshold must exceed this\n",
            w.name,
            w.median_spread_pct(),
            w.runs,
        ));
    }
    out
}

/// Reduces an aggregation to the `goldens/bench-baseline.json`
/// statistic: per bench, `median_ns` is the median of the per-run
/// medians, `mean/stddev/min/max` are taken across those run medians,
/// `iters` is the run count, and `samples_ns` carries the run medians
/// themselves so future consumers can re-derive everything. This is the
/// exact quantity the CI gate compares its median-of-N against, so a
/// baseline written here ratchets the gate to the new performance level.
pub fn ratchet_baseline(aggs: &[AggBench]) -> BenchBaseline {
    BenchBaseline {
        benches: aggs
            .iter()
            .map(|a| {
                let mut meds = a.run_medians_ns.clone();
                meds.sort_by(|x, y| x.partial_cmp(y).expect("medians are finite"));
                let n = meds.len();
                let median = if n == 0 {
                    0.0
                } else if n % 2 == 1 {
                    meds[n / 2]
                } else {
                    (meds[n / 2 - 1] + meds[n / 2]) / 2.0
                };
                let mean = if n == 0 {
                    0.0
                } else {
                    meds.iter().sum::<f64>() / n as f64
                };
                let var = if n == 0 {
                    0.0
                } else {
                    meds.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64
                };
                BenchStats {
                    name: a.name.clone(),
                    iters: n as u64,
                    median_ns: median,
                    mean_ns: mean,
                    stddev_ns: var.sqrt(),
                    min_ns: meds.first().copied().unwrap_or(0.0),
                    max_ns: meds.last().copied().unwrap_or(0.0),
                    samples_ns: meds,
                }
            })
            .collect(),
    }
}

/// Loads one artifact file.
///
/// # Errors
///
/// Returns a message naming the path on unreadable files or
/// non-`BenchBaseline` JSON.
pub fn load(path: &str) -> Result<BenchBaseline, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    thermo_util::json::decode(&text).map_err(|e| format!("{path}: {e}"))
}

/// Convenience for tests: a `BenchBaseline` from `(name, samples)` rows.
pub fn baseline_of(rows: &[(&str, &[f64])]) -> BenchBaseline {
    BenchBaseline {
        benches: rows
            .iter()
            .map(|(name, samples)| {
                let mut s: Vec<f64> = samples.to_vec();
                s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                let n = s.len();
                let median = if n == 0 {
                    0.0
                } else if n % 2 == 1 {
                    s[n / 2]
                } else {
                    (s[n / 2 - 1] + s[n / 2]) / 2.0
                };
                BenchStats {
                    name: name.to_string(),
                    iters: n as u64,
                    median_ns: median,
                    mean_ns: median,
                    stddev_ns: 0.0,
                    min_ns: s.first().copied().unwrap_or(0.0),
                    max_ns: s.last().copied().unwrap_or(0.0),
                    samples_ns: s,
                }
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_samples_and_tracks_run_medians() {
        let runs = [
            baseline_of(&[("a", &[100.0, 200.0, 300.0]), ("b", &[10.0])]),
            baseline_of(&[("a", &[400.0, 500.0]), ("b", &[20.0])]),
        ];
        let aggs = aggregate(&runs);
        assert_eq!(aggs.len(), 2);
        let a = &aggs[0];
        assert_eq!(a.name, "a");
        assert_eq!(a.runs, 2);
        assert_eq!(a.run_medians_ns, vec![200.0, 450.0]);
        assert_eq!(a.samples_ns, vec![100.0, 200.0, 300.0, 400.0, 500.0]);
        assert_eq!(a.pooled_median_ns(), 300.0);
        // (450/200 - 1) * 100 = 125%.
        assert!((a.median_spread_pct() - 125.0).abs() < 1e-9);
        let b = &aggs[1];
        assert_eq!(b.run_medians_ns, vec![10.0, 20.0]);
        assert!((b.median_spread_pct() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn legacy_artifacts_contribute_their_median() {
        let mut legacy = baseline_of(&[("a", &[70.0])]);
        legacy.benches[0].samples_ns.clear(); // pre-samples_ns artifact
        let aggs = aggregate(&[legacy]);
        assert_eq!(aggs[0].samples_ns, vec![70.0]);
        assert_eq!(aggs[0].median_spread_pct(), 0.0); // single run: no spread
    }

    #[test]
    fn first_seen_order_is_preserved() {
        let runs = [
            baseline_of(&[("z", &[1.0]), ("a", &[2.0])]),
            baseline_of(&[("a", &[3.0]), ("z", &[4.0])]),
        ];
        let names: Vec<String> = aggregate(&runs).into_iter().map(|a| a.name).collect();
        assert_eq!(names, vec!["z".to_string(), "a".to_string()]);
    }

    #[test]
    fn report_names_worst_spread() {
        let runs = [
            baseline_of(&[("steady", &[100.0]), ("jumpy", &[100.0])]),
            baseline_of(&[("steady", &[110.0]), ("jumpy", &[300.0])]),
        ];
        let report = spread_report(&aggregate(&runs));
        assert!(
            report.contains("worst across-run median spread: jumpy"),
            "{report}"
        );
        assert!(report.contains("200.0%"), "{report}");
    }

    #[test]
    fn ratchet_reduces_run_medians() {
        let runs = [
            baseline_of(&[("a", &[100.0, 200.0, 300.0])]),
            baseline_of(&[("a", &[400.0])]),
            baseline_of(&[("a", &[350.0])]),
        ];
        let base = ratchet_baseline(&aggregate(&runs));
        let a = &base.benches[0];
        // Run medians: 200, 400, 350 → median 350, mean 316.67.
        assert_eq!(a.iters, 3);
        assert_eq!(a.median_ns, 350.0);
        assert!((a.mean_ns - 950.0 / 3.0).abs() < 1e-9);
        assert_eq!(a.min_ns, 200.0);
        assert_eq!(a.max_ns, 400.0);
        assert_eq!(a.samples_ns, vec![200.0, 350.0, 400.0]);
    }

    #[test]
    fn percentiles_clamp_on_tiny_distributions() {
        let aggs = aggregate(&[baseline_of(&[("a", &[5.0])])]);
        assert_eq!(aggs[0].percentile(10.0), 5.0);
        assert_eq!(aggs[0].percentile(90.0), 5.0);
    }
}

//! Shared implementation of the per-application footprint figures
//! (paper Figures 5–10): run baseline + Thermostat, print the cold/hot
//! footprint time series and the achieved slowdown.

use crate::artifact::ExperimentArtifact;
use crate::harness::{paired_runs, slowdown_pct, EvalParams};
use crate::report::{f, pct, ExperimentReport};
use thermo_workloads::AppId;

/// Runs the Figure 5–10 experiment for `app` at `params` and returns the
/// full artifact (report + raw baseline/Thermostat runs) under `id`.
///
/// `paper_cold` and `paper_slowdown_pct` are the values the paper reports
/// for this figure; they are echoed in the notes for eyeball comparison.
pub fn footprint_artifact(
    id: &str,
    app: AppId,
    read_pct: u8,
    paper_cold: &str,
    paper_slowdown_pct: f64,
    params: &EvalParams,
) -> ExperimentArtifact {
    let mut p = *params;
    p.read_pct = read_pct;
    // Baseline and Thermostat are independent engines: fan them across
    // the execution pool (merged in fixed order, so the artifact is
    // byte-identical to a serial run).
    let (base, (run, engine, _daemon)) = paired_runs(app, &p);
    let sd = slowdown_pct(&run, &base);

    let mut r = ExperimentReport::new(
        id,
        &format!("{app} cold/hot footprint over time (read_pct={read_pct})"),
        &[
            "t(s)",
            "2MB_hot(MB)",
            "4KB_hot(MB)",
            "2MB_cold(MB)",
            "4KB_cold(MB)",
            "cold_frac",
        ],
    );
    for rec in &run.history {
        let b = rec.breakdown;
        r.row(vec![
            f(rec.at_ns as f64 / 1e9, 0),
            f(b.huge_fast as f64 / 1e6, 1),
            f(b.small_fast as f64 / 1e6, 1),
            f(b.huge_slow as f64 / 1e6, 1),
            f(b.small_slow as f64 / 1e6, 1),
            pct(b.cold_fraction()),
        ]);
    }
    r.note(format!(
        "cold fraction: mean {} final {} (paper: {})",
        pct(run.cold_fraction_mean),
        pct(run.cold_fraction_final),
        paper_cold
    ));
    r.note(format!(
        "throughput degradation: {:.2}% (paper: {:.1}%, target {:.0}%)",
        sd, paper_slowdown_pct, p.tolerable_slowdown_pct
    ));
    r.note(format!(
        "baseline {:.0} ops/s, thermostat {:.0} ops/s; migrations {:.2} MB/s, false-class {:.2} MB/s",
        base.ops_per_sec, run.ops_per_sec, run.migration_mbps, run.false_class_mbps
    ));
    let tail = if base.p99_latency_ns == 0 {
        0.0
    } else {
        (run.p99_latency_ns as f64 / base.p99_latency_ns as f64 - 1.0) * 100.0
    };
    r.note(format!(
        "99th-percentile op latency: baseline {}ns -> thermostat {}ns ({tail:+.1}%)",
        base.p99_latency_ns, run.p99_latency_ns
    ));
    let stats = engine.stats();
    r.note(format!(
        "kernel time (scans/migrations/shootdowns): {:.2}% of app time (paper §4.4: <1% CPU impact)",
        stats.kernel_time_ns as f64 / stats.app_time_ns.max(1) as f64 * 100.0
    ));
    // Which application structures carry the cold mass (the paper's §5
    // per-app commentary, e.g. TPCC's LINEITEM table).
    let mut regions = engine.region_breakdown();
    regions.retain(|(_, b)| b.cold() > 0);
    regions.sort_by_key(|(_, b)| std::cmp::Reverse(b.cold()));
    let tops: Vec<String> = regions
        .iter()
        .take(3)
        .map(|(n, b)| {
            format!(
                "{n} {:.0}MB ({})",
                b.cold() as f64 / 1e6,
                pct(b.cold_fraction())
            )
        })
        .collect();
    r.note(format!("cold mass by region: {}", tops.join(", ")));

    let mut artifact = ExperimentArtifact::new(r, &p);
    artifact.push_run("baseline", &base);
    artifact.push_run("thermostat", &run);
    artifact
}

//! Figure 3: slow-memory access rate over time for all six applications
//! under a 3% tolerable slowdown and 1us slow memory. The paper's target
//! line is 30K accesses/sec; Thermostat should track it (with temporary
//! exceedances pulled back by the correction mechanism).

use thermo_bench::harness::{thermostat_run, EvalParams};
use thermo_bench::report::{f, ExperimentReport};
use thermo_workloads::AppId;

fn main() {
    let p = EvalParams::from_env();
    let target = p.thermostat_config().target_slow_access_rate();
    let mut r = ExperimentReport::new(
        "fig3",
        &format!("slow-memory access rate over time (target {target:.0}/s)"),
        &["app", "t25%", "t50%", "t75%", "t100%", "mean_2nd_half"],
    );
    let mut series_out = Vec::new();
    for app in AppId::ALL {
        let read_pct = if app == AppId::Cassandra { 5 } else { 95 };
        let mut params = p;
        params.read_pct = read_pct;
        let (run, _, _) = thermostat_run(app, &params);
        let s = &run.slow_rate_series;
        let at = |frac: f64| -> f64 {
            if s.is_empty() {
                0.0
            } else {
                s[((s.len() - 1) as f64 * frac) as usize]
            }
        };
        let half = &s[s.len() / 2..];
        let mean = if half.is_empty() {
            0.0
        } else {
            half.iter().sum::<f64>() / half.len() as f64
        };
        r.row(vec![
            app.to_string(),
            f(at(0.25), 0),
            f(at(0.5), 0),
            f(at(0.75), 0),
            f(at(1.0), 0),
            f(mean, 0),
        ]);
        series_out.push((app.to_string(), s.clone()));
    }
    r.note(format!(
        "target slow-memory access rate: {target:.0} accesses/sec (3% / 1us)"
    ));
    r.note("full smoothed series written to the JSON file");
    r.finish();
    thermo_bench::report::write_json("fig3_series", &series_out);
}

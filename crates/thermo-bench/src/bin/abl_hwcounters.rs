//! Ablation: the §6.1 hardware-assisted access counters. Compares the
//! software poisoning mechanism against an idealized per-page count-miss
//! (CM) bit and PEBS-style sampling, holding everything else fixed.

use thermo_bench::harness::{baseline_run, slowdown_pct, thermostat_run_with, EvalParams};
use thermo_bench::report::{pct, ExperimentReport};
use thermo_workloads::AppId;
use thermostat::MonitorMode;

fn main() {
    let mut p = EvalParams::from_env();
    p.track_true_access = true; // hardware modes read exact counters
    p.read_pct = 90;
    let app = AppId::Redis;
    let (base, _) = baseline_run(app, &p);
    let mut r = ExperimentReport::new(
        "abl_hwcounters",
        "access-counting mechanism comparison (Redis)",
        &["mode", "cold_final", "slowdown", "fast_trap_faults"],
    );
    let modes = [
        ("poison (paper)", MonitorMode::PoisonSampling),
        ("ideal CM bit", MonitorMode::IdealCmBit),
        ("PEBS 1/64", MonitorMode::PebsSampling { period: 64 }),
        ("PEBS 1/1024", MonitorMode::PebsSampling { period: 1024 }),
    ];
    for (name, mode) in modes {
        let mut cfg = p.thermostat_config();
        cfg.monitor_mode = mode;
        let (run, engine, _) = thermostat_run_with(app, &p, cfg);
        r.row(vec![
            name.into(),
            pct(run.cold_fraction_final),
            format!("{:.2}%", slowdown_pct(&run, &base)),
            engine.stats().fast_trap_faults.to_string(),
        ]);
    }
    r.note("CM-bit counts all accesses exactly (no sampling error, no monitoring faults)");
    r.note("PEBS undercounts cold pages at large periods (paper §6.1.2 rate-limit discussion)");
    r.finish();
}

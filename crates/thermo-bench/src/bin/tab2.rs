//! Table 2: application memory footprints (resident set size and
//! file-mapped pages), scaled by THERMO_SCALE from the paper's values.

use thermo_bench::harness::EvalParams;
use thermo_bench::report::ExperimentReport;
use thermo_sim::Engine;
use thermo_workloads::AppId;

fn main() {
    let p = EvalParams::from_env();
    let mut r = ExperimentReport::new(
        "tab2",
        &format!(
            "application footprints at scale 1/{} (paper values in GB)",
            p.scale
        ),
        &[
            "app",
            "rss(MB)",
            "file_mapped(MB)",
            "paper_rss(GB)",
            "paper_file",
        ],
    );
    for app in AppId::ALL {
        let mut engine = Engine::new(p.sim_config(app));
        let mut w = app.build(p.app_config());
        w.init(&mut engine);
        // Run briefly so growing workloads (Cassandra, analytics) show
        // their steady footprint.
        thermo_sim::run_for(
            &mut engine,
            w.as_mut(),
            &mut thermo_sim::NoPolicy,
            p.duration_ns / 4,
        );
        let rss = engine.rss_bytes();
        let file = engine.process().file_backed_bytes().min(rss);
        r.row(vec![
            app.to_string(),
            format!("{:.0}", rss as f64 / 1e6),
            format!("{:.0}", file as f64 / 1e6),
            format!("{:.1}", app.paper_rss_bytes() as f64 / 1e9),
            human(app.paper_file_bytes()),
        ]);
    }
    r.finish();
}

fn human(b: u64) -> String {
    if b >= 1_000_000_000 {
        format!("{:.1}GB", b as f64 / 1e9)
    } else {
        format!("{:.0}MB", b as f64 / 1e6)
    }
}

//! Table 2: application memory footprints (resident set size and
//! file-mapped pages), scaled by THERMO_SCALE from the paper's values.
//! Implementation in `thermo_bench::tabs`, shared with the golden
//! harness.

fn main() {
    thermo_bench::experiments::run_and_finish("tab2");
}

//! Figure 7: cold/hot data identified at run time (paper: ~15% cold
//! at 1.0% degradation).

fn main() {
    thermo_bench::figs::footprint_figure(
        "fig7",
        thermo_workloads::AppId::Aerospike,
        95,
        "~15%",
        1.0,
    );
}

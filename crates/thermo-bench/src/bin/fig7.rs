//! Figure 7: cold/hot data identified at run time (paper: ~15% cold
//! at 1.0% degradation). Parameters live in the experiment registry so
//! the golden harness runs the identical experiment.

fn main() {
    thermo_bench::experiments::run_and_finish("fig7");
}

//! Ablation: the paper's fault-based slow-memory emulation vs a directly
//! modelled slow device. §4.2 argues the emulation is a reasonable
//! approximation because cold-page accesses nearly always miss both TLB
//! and cache; this harness quantifies the residual gap.

use thermo_bench::harness::{slowdown_pct, EvalParams};
use thermo_bench::report::{pct, ExperimentReport};
use thermo_sim::ColdAccessModel;
use thermo_workloads::AppId;

fn main() {
    let p = EvalParams::from_env();
    let mut r = ExperimentReport::new(
        "abl_emulation",
        "fault-emulated vs direct slow-memory model",
        &["app", "model", "cold_final", "slowdown"],
    );
    for app in [AppId::MysqlTpcc, AppId::WebSearch] {
        for (name, model) in [
            ("fault-emulated", ColdAccessModel::FaultEmulated),
            ("direct", ColdAccessModel::Direct),
        ] {
            let run_one = |p: &EvalParams| {
                let mut q = *p;
                q.seed ^= 0; // same seed; model differs via sim config below
                q
            };
            let params = run_one(&p);
            // Patch the cold model through a custom run.
            let (base, run) = run_pair(app, &params, model);
            r.row(vec![
                app.to_string(),
                name.into(),
                pct(run.cold_fraction_final),
                format!("{:.2}%", slowdown_pct(&run, &base)),
            ]);
        }
    }
    r.note(
        "paper §4.2: emulation overestimates per-fault cost but misses same-page cache-line reuse",
    );
    r.finish();
}

fn run_pair(
    app: AppId,
    p: &EvalParams,
    model: ColdAccessModel,
) -> (thermo_bench::harness::AppRun, thermo_bench::harness::AppRun) {
    use thermo_sim::{run_for, Engine, NoPolicy};
    use thermostat::Daemon;
    // Baseline with the same cold model (irrelevant while nothing is cold,
    // but keeps configs identical).
    let mut cfg = p.sim_config(app);
    cfg.cold_model = model;
    let mut engine = Engine::new(cfg.clone());
    let mut w = app.build(p.app_config());
    w.init(&mut engine);
    let outcome = run_for(&mut engine, w.as_mut(), &mut NoPolicy, p.duration_ns);
    let base = finishless(app, &engine, outcome);

    let mut engine = Engine::new(cfg);
    let mut w = app.build(p.app_config());
    w.init(&mut engine);
    let mut daemon = Daemon::new(p.thermostat_config());
    let outcome = run_for(&mut engine, w.as_mut(), &mut daemon, p.duration_ns);
    let mut run = finishless(app, &engine, outcome);
    let vals: Vec<f64> = daemon
        .history()
        .iter()
        .map(|r| r.breakdown.cold_fraction())
        .collect();
    if let Some(last) = vals.last() {
        run.cold_fraction_final = *last;
        run.cold_fraction_mean = vals.iter().sum::<f64>() / vals.len() as f64;
    }
    (base, run)
}

fn finishless(
    app: AppId,
    engine: &thermo_sim::Engine,
    outcome: thermo_sim::RunOutcome,
) -> thermo_bench::harness::AppRun {
    thermo_bench::harness::AppRun {
        app: app.to_string(),
        outcome,
        ops_per_sec: outcome.ops_per_sec(),
        cold_fraction_mean: 0.0,
        cold_fraction_final: 0.0,
        history: Vec::new(),
        daemon: Default::default(),
        migration_mbps: 0.0,
        false_class_mbps: 0.0,
        slow_access_rate: engine.slow_series().total() as f64
            / (outcome.elapsed_ns().max(1) as f64 / 1e9),
        slow_rate_series: engine.slow_series().smoothed_rates(30),
        mean_latency_ns: 0.0,
        p99_latency_ns: 0,
    }
}

//! Figure 10: cold/hot data identified at run time (paper: ~40% cold
//! at 1.0% degradation). Parameters live in the experiment registry so
//! the golden harness runs the identical experiment.

fn main() {
    thermo_bench::experiments::run_and_finish("fig10");
}

//! Figure 10: cold/hot data identified at run time (paper: ~40% cold
//! at 1.0% degradation).

fn main() {
    thermo_bench::figs::footprint_figure(
        "fig10",
        thermo_workloads::AppId::WebSearch,
        95,
        "~40%",
        1.0,
    );
}

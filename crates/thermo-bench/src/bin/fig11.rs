//! Figure 11: cold data fraction vs the specified tolerable slowdown
//! (3%, 6%, 10%) for all applications. Paper: every app places more data
//! in slow memory as the budget grows, except MySQL-TPCC, which saturates
//! near ~45% because all remaining pages are hot.

use thermo_bench::harness::{thermostat_run, EvalParams};
use thermo_bench::report::{pct, ExperimentReport};
use thermo_workloads::AppId;

fn main() {
    let base = EvalParams::from_env();
    let mut r = ExperimentReport::new(
        "fig11",
        "cold data fraction vs tolerable slowdown",
        &["app", "3%", "6%", "10%"],
    );
    for app in AppId::ALL {
        let mut cells = vec![app.to_string()];
        for slowdown in [3.0, 6.0, 10.0] {
            let mut p = base;
            p.tolerable_slowdown_pct = slowdown;
            if app == AppId::Cassandra {
                p.read_pct = 5;
            }
            let (run, _, _) = thermostat_run(app, &p);
            cells.push(pct(run.cold_fraction_final));
        }
        r.row(cells);
    }
    r.note("paper: monotone growth with tolerable slowdown; MySQL-TPCC saturates ~45%");
    r.finish();
}

//! Figure 6: cold/hot data identified at run time (paper: ~40-50% cold
//! at 1.3% degradation).

fn main() {
    thermo_bench::figs::footprint_figure(
        "fig6",
        thermo_workloads::AppId::MysqlTpcc,
        95,
        "~40-50%",
        1.3,
    );
}

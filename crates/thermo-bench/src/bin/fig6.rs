//! Figure 6: cold/hot data identified at run time (paper: ~40-50% cold
//! at 1.3% degradation). Parameters live in the experiment registry so
//! the golden harness runs the identical experiment.

fn main() {
    thermo_bench::experiments::run_and_finish("fig6");
}

//! Migration abort rate vs write intensity (ROADMAP item 2).

fn main() {
    thermo_bench::experiments::run_and_finish("fab_abort");
}

//! Figure 2: memory access rate vs number of "hot" 4KB regions within 2MB
//! pages for Redis. The paper's point: the scatter is highly dispersed —
//! the spatial count of A-bit-hot 4KB regions does not predict the page's
//! true access rate, so A-bit-only classification cannot bound slowdown.

use thermo_bench::harness::EvalParams;
use thermo_bench::report::{f, ExperimentReport};
use thermo_kstaled::HotRegionMonitor;
use thermo_mem::{PageSize, Tier, Vpn};
use thermo_sim::{run_for, Engine};
use thermo_util::rng::SeedableRng;
use thermo_util::rng::SliceRandom;
use thermo_workloads::AppId;

fn main() {
    let mut p = EvalParams::from_env();
    p.track_true_access = true;
    p.read_pct = 90;
    let mut engine = Engine::new(p.sim_config(AppId::Redis));
    let mut w = AppId::Redis.build(p.app_config());
    w.init(&mut engine);
    engine.reset_true_access();

    // Monitor a random sample of resident huge pages at the highest scan
    // frequency that stays within the 3% overhead target (paper §2.1).
    let mut huge_pages: Vec<Vpn> = Vec::new();
    let regions: Vec<(Vpn, u64)> = engine
        .vmas()
        .iter()
        .map(|v| (v.start.vpn(), v.len / 4096))
        .collect();
    let mut hits = Vec::new();
    for (start, n) in regions {
        hits.clear();
        engine.read_accessed(start, n, &mut hits);
        for h in &hits {
            if h.size == PageSize::Huge2M && engine.tier_of_vpn(h.base_vpn) == Some(Tier::Fast) {
                huge_pages.push(h.base_vpn);
            }
        }
    }
    let mut rng = thermo_util::rng::SmallRng::seed_from_u64(p.seed);
    huge_pages.shuffle(&mut rng);
    huge_pages.truncate(96);

    // "the maximum frequency that meets our slowdown target" (§2.1): at
    // our scaled access rates that is a few scans per second.
    let scan_period = 200_000_000; // 200ms scans
    let scans = 10;
    let mut mon = HotRegionMonitor::start(&mut engine, &huge_pages, scan_period, scans);
    let window_ns = scan_period * (scans as u64 + 1);
    run_for(&mut engine, w.as_mut(), &mut mon, window_ns);
    let report_pairs = mon.finish(&mut engine);

    // Ground-truth page access rates from the engine's exact counters.
    let counts = engine.true_access_counts();
    let secs = engine.now_ns() as f64 / 1e9;
    let mut rows: Vec<(u32, f64)> = Vec::new();
    for (hvpn, hot_regions) in &report_pairs {
        let mut total = 0u64;
        for i in 0..512u64 {
            total += counts.get(&hvpn.offset(i)).copied().unwrap_or(0);
        }
        rows.push((*hot_regions, total as f64 / secs));
    }

    let mut r = ExperimentReport::new(
        "fig2",
        "Redis: true access rate vs hot 4KB regions per 2MB page (scatter)",
        &["hot_4kb_regions", "true_accesses_per_sec"],
    );
    for (hot, rate) in &rows {
        r.row(vec![hot.to_string(), f(*rate, 1)]);
    }
    let corr = pearson(&rows);
    r.note(format!(
        "Pearson correlation between hot-region count and true rate: {corr:.3} \
         (paper: 'highly dispersed' / poorly correlated)"
    ));
    // The actionable dispersion: among pages with similar (low) hot-region
    // counts, how far do true rates spread? An A-bit policy demoting by
    // count cannot tell these pages apart.
    let mut counts: Vec<u32> = rows.iter().map(|(c, _)| *c).collect();
    counts.sort_unstable();
    if !counts.is_empty() {
        let q1 = counts[counts.len() / 4];
        let low: Vec<f64> = rows
            .iter()
            .filter(|(c, _)| *c <= q1)
            .map(|(_, r)| *r)
            .collect();
        let lo = low.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = low.iter().cloned().fold(0.0, f64::max);
        r.note(format!(
            "pages in the lowest hot-region quartile (count <= {q1}) span {lo:.0}..{hi:.0} \
             acc/s — a {:.0}x rate spread invisible to A-bit classification",
            if lo > 0.0 { hi / lo } else { f64::INFINITY }
        ));
    }
    r.finish();
}

fn pearson(rows: &[(u32, f64)]) -> f64 {
    let n = rows.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = rows.iter().map(|(x, _)| *x as f64).sum::<f64>() / n;
    let my = rows.iter().map(|(_, y)| *y).sum::<f64>() / n;
    let mut num = 0.0;
    let mut dx = 0.0;
    let mut dy = 0.0;
    for (x, y) in rows {
        let a = *x as f64 - mx;
        let b = *y - my;
        num += a * b;
        dx += a * a;
        dy += b * b;
    }
    if dx == 0.0 || dy == 0.0 {
        0.0
    } else {
        num / (dx.sqrt() * dy.sqrt())
    }
}

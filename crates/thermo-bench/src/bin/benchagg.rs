//! Merges `THERMO_BENCH_JSON` artifacts into a per-bench spread report.
//!
//! Each input file is one bench run's full per-rep distribution
//! (`samples_ns`); the report pools them per bench and prints the
//! across-run spread of the per-run medians — the measured noise floor
//! the CI gate's `THERMO_BENCH_MAX_REGRESSION_PCT` must sit above.
//! Collected and driven by `scripts/benchagg.sh`.
//!
//! ```console
//! $ benchagg target/benchagg/*.json
//! $ benchagg --write-baseline goldens/bench-baseline.json target/benchagg/*.json
//! ```
//!
//! `--write-baseline` additionally reduces the runs to the
//! median-of-run-medians statistic `goldens/bench-baseline.json` pins,
//! ratcheting the CI regression gate after an intentional perf change.

use thermo_bench::benchagg::{aggregate, load, ratchet_baseline, spread_report};

fn main() {
    let mut paths: Vec<String> = Vec::new();
    let mut write_baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--write-baseline" {
            match args.next() {
                Some(p) => write_baseline = Some(p),
                None => {
                    eprintln!("error: --write-baseline needs a path");
                    std::process::exit(2);
                }
            }
        } else {
            paths.push(arg);
        }
    }
    if paths.is_empty() {
        eprintln!("usage: benchagg [--write-baseline <path>] <bench-json>...");
        eprintln!("  each input is a THERMO_BENCH_JSON artifact (see thermo-util::bench)");
        std::process::exit(2);
    }
    let mut files = Vec::new();
    for p in &paths {
        match load(p) {
            Ok(f) => files.push(f),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    let aggs = aggregate(&files);
    print!("{}", spread_report(&aggs));
    println!("({} run(s) aggregated)", files.len());
    if let Some(path) = write_baseline {
        let mut text = thermo_util::json::encode_pretty(&ratchet_baseline(&aggs));
        text.push('\n');
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("[bench baseline written to {path}]");
    }
}

//! Ablation: K, the maximum number of poisoned 4KB pages per sampled huge
//! page (paper uses K=50). Small K cuts monitoring cost but raises
//! estimation error; the paper's two-step design needs K large enough to
//! represent the accessed-children population.

use thermo_bench::harness::{baseline_run, slowdown_pct, thermostat_run_with, EvalParams};
use thermo_bench::report::{pct, ExperimentReport};
use thermo_workloads::AppId;

fn main() {
    let p = EvalParams::from_env();
    let app = AppId::Redis;
    let pr = {
        let mut q = p;
        q.read_pct = 90;
        q
    };
    let (base, _) = baseline_run(app, &pr);
    let mut r = ExperimentReport::new(
        "abl_poison_budget",
        "poison budget K sweep (Redis)",
        &["K", "cold_final", "slowdown", "trap_faults_on_fast"],
    );
    for k in [5usize, 20, 50, 200] {
        let mut cfg = pr.thermostat_config();
        cfg.max_poison_per_page = k;
        let (run, engine, _) = thermostat_run_with(app, &pr, cfg);
        r.row(vec![
            k.to_string(),
            pct(run.cold_fraction_final),
            format!("{:.2}%", slowdown_pct(&run, &base)),
            engine.stats().fast_trap_faults.to_string(),
        ]);
    }
    r.note("paper setting: K = 50 poisoned 4KB pages per sampled huge page");
    r.finish();
}

//! Figure 1: fraction of 2MB pages idle for 10 seconds, detected via
//! hardware Accessed bits (kstaled). Paper: Aerospike ~25%, Cassandra ~40%,
//! In-memory analytics ~25%, MySQL-TPCC ~55%, Redis ~10-25%, Web-search ~40%.

use thermo_bench::harness::{policy_run, EvalParams};
use thermo_bench::report::{pct, ExperimentReport};
use thermo_kstaled::{Kstaled, KstaledConfig};
use thermo_workloads::AppId;

fn main() {
    let p = EvalParams::from_env();
    let mut r = ExperimentReport::new(
        "fig1",
        "fraction of 2MB pages idle for 10s (Accessed-bit scanning)",
        &["app", "idle_10s", "tracked_2MB_pages", "paper"],
    );
    let paper = ["~25%", "~40%", "~25%", "~55%", "~10-25%", "~40%"];
    for (app, paper_val) in AppId::ALL.into_iter().zip(paper) {
        let mut ks = Kstaled::new(KstaledConfig {
            scan_period_ns: 2_000_000_000,
        });
        let (_, _) = {
            let mut params = p;
            params.read_pct = if app == AppId::Cassandra { 5 } else { 95 };
            let res = policy_run_with_kstaled(app, &params, &mut ks);
            (res, ())
        };
        r.row(vec![
            app.to_string(),
            pct(ks.idle_fraction(10_000_000_000)),
            ks.tracked_pages().to_string(),
            paper_val.to_string(),
        ]);
    }
    r.note("idle = Accessed bit clear across every scan covering a 10s window");
    r.finish();
}

fn policy_run_with_kstaled(
    app: AppId,
    p: &EvalParams,
    ks: &mut Kstaled,
) -> thermo_bench::harness::AppRun {
    let (run, _) = policy_run(app, p, ks);
    run
}

//! Table 1: throughput gain from 2MB huge pages under virtualization,
//! relative to 4KB pages on both host and guest.
//! Paper: Aerospike 6%, Cassandra 13%, In-memory analytics 8%,
//! MySQL-TPCC 8%, Redis 30%, Web-search ~0%.

use thermo_bench::harness::{baseline_run, EvalParams};
use thermo_bench::report::ExperimentReport;
use thermo_workloads::AppId;

fn main() {
    let p = EvalParams::from_env();
    let mut r = ExperimentReport::new(
        "tab1",
        "throughput gain from THP under nested paging (vs all-4KB)",
        &["app", "thp_ops_per_sec", "4kb_ops_per_sec", "gain", "paper"],
    );
    let paper = ["6%", "13%", "8%", "8%", "30%", "no difference"];
    for (app, paper_val) in AppId::ALL.into_iter().zip(paper) {
        let (thp, _) = baseline_run(app, &p);
        let p4k = EvalParams { thp: false, ..p };
        let (small, _) = baseline_run(app, &p4k);
        let gain = (thp.ops_per_sec / small.ops_per_sec - 1.0) * 100.0;
        r.row(vec![
            app.to_string(),
            format!("{:.0}", thp.ops_per_sec),
            format!("{:.0}", small.ops_per_sec),
            format!("{gain:.1}%"),
            paper_val.to_string(),
        ]);
    }
    r.note("nested (2D) page walks: 24 steps for 4KB leaves vs 15 for 2MB (paper §2.2)");
    r.finish();
}

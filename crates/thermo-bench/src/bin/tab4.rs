//! Table 4: memory spending savings relative to an all-DRAM system when
//! slow memory costs 1/3, 1/4 or 1/5 of DRAM per GB. Savings =
//! cold_fraction x (1 - cost_ratio); the cold fractions come from live
//! Thermostat runs at the 3% target. Implementation in
//! `thermo_bench::tabs`, shared with the golden harness.

fn main() {
    thermo_bench::experiments::run_and_finish("tab4");
}

//! Table 4: memory spending savings relative to an all-DRAM system when
//! slow memory costs 1/3, 1/4 or 1/5 of DRAM per GB. Savings =
//! cold_fraction x (1 - cost_ratio); the cold fractions come from live
//! Thermostat runs at the 3% target.

use thermo_bench::harness::{thermostat_run, EvalParams};
use thermo_bench::report::{pct, ExperimentReport};
use thermo_mem::CostModel;
use thermo_workloads::AppId;

fn main() {
    let p = EvalParams::from_env();
    let mut r = ExperimentReport::new(
        "tab4",
        "memory cost savings vs all-DRAM at slow:DRAM cost ratios 1/3, 1/4, 1/5",
        &[
            "app",
            "cold_frac",
            "0.33x",
            "0.25x",
            "0.20x",
            "paper(0.25x)",
        ],
    );
    let paper_quarter = ["11%", "30%", "12%", "30%", "19%", "30%"];
    for (app, paper) in AppId::ALL.into_iter().zip(paper_quarter) {
        let mut params = p;
        if app == AppId::Cassandra {
            params.read_pct = 5;
        }
        let (run, _, _) = thermostat_run(app, &params);
        let cold = run.cold_fraction_final;
        let cells: Vec<String> = CostModel::table4_models()
            .iter()
            .map(|m| pct(m.evaluate(cold).savings_fraction))
            .collect();
        r.row(vec![
            app.to_string(),
            pct(cold),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
            paper.to_string(),
        ]);
    }
    r.finish();
}

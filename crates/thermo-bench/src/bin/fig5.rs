//! Figure 5: cold/hot data identified at run time (paper: ~40-50% cold
//! at 2.0% degradation).

fn main() {
    thermo_bench::figs::footprint_figure(
        "fig5",
        thermo_workloads::AppId::Cassandra,
        5,
        "~40-50%",
        2.0,
    );
}

//! Slowdown vs migration-fabric bandwidth (ROADMAP item 2).

fn main() {
    thermo_bench::experiments::run_and_finish("fab_bw");
}

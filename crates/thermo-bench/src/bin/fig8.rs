//! Figure 8: amount of cold data in Redis identified at run time
//! (paper: ~10% cold at 2% throughput degradation, hotspot load).

fn main() {
    thermo_bench::figs::footprint_figure("fig8", thermo_workloads::AppId::Redis, 90, "~10%", 2.0);
}

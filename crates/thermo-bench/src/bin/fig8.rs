//! Figure 8: amount of cold data in Redis identified at run time
//! (paper: ~10% cold at 2% throughput degradation, hotspot load).
//! Parameters live in the experiment registry so the golden harness
//! runs the identical experiment.

fn main() {
    thermo_bench::experiments::run_and_finish("fig8");
}

//! Ablation: disable the §3.5 mis-classification correction. Sampling
//! error and working-set drift then leave hot pages stranded in slow
//! memory, so the slow-memory access rate is no longer pulled back to the
//! target (the Figure 3 exceedances never recover).

use thermo_bench::harness::{baseline_run, slowdown_pct, thermostat_run_with, EvalParams};
use thermo_bench::report::{pct, ExperimentReport};
use thermo_workloads::AppId;

fn main() {
    let p = EvalParams::from_env();
    let mut r = ExperimentReport::new(
        "abl_no_correction",
        "correction mechanism on/off",
        &[
            "app",
            "correction",
            "cold_final",
            "slowdown",
            "mean_slow_rate_2nd_half",
        ],
    );
    for app in [AppId::Cassandra, AppId::Redis] {
        let mut params = p;
        params.read_pct = if app == AppId::Cassandra { 5 } else { 90 };
        let (base, _) = baseline_run(app, &params);
        for correction in [true, false] {
            let mut cfg = params.thermostat_config();
            cfg.correction_enabled = correction;
            let (run, _, _) = thermostat_run_with(app, &params, cfg);
            let s = &run.slow_rate_series;
            let half = &s[s.len() / 2..];
            let mean = if half.is_empty() {
                0.0
            } else {
                half.iter().sum::<f64>() / half.len() as f64
            };
            r.row(vec![
                app.to_string(),
                if correction { "on" } else { "off" }.into(),
                pct(run.cold_fraction_final),
                format!("{:.2}%", slowdown_pct(&run, &base)),
                format!("{mean:.0}/s"),
            ]);
        }
    }
    r.note("target slow rate: 30000/s; without correction the rate runs away");
    r.finish();
}

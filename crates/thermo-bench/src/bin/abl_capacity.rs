//! Ablation: slowdown-driven (Thermostat) vs capacity-driven (CLOCK)
//! placement. The classic software two-tier design point keeps the fast
//! tier under a size budget and evicts not-recently-used pages; Thermostat
//! instead budgets the *slow-memory access rate*. The comparison shows why
//! that matters: a capacity policy hits its size target regardless of the
//! slowdown it causes, while Thermostat converts a slowdown target into
//! however much (or little) cold data actually exists.

use thermo_bench::harness::{baseline_run, policy_run, slowdown_pct, thermostat_run, EvalParams};
use thermo_bench::report::{pct, ExperimentReport};
use thermo_kstaled::{ClockConfig, ClockPolicy};
use thermo_workloads::AppId;

fn main() {
    let p = EvalParams::from_env();
    let mut r = ExperimentReport::new(
        "abl_capacity",
        "Thermostat (slowdown-driven) vs CLOCK (capacity-driven)",
        &["app", "policy", "cold_final", "slowdown"],
    );
    for app in [AppId::Redis, AppId::MysqlTpcc] {
        let mut params = p;
        if app == AppId::Redis {
            params.read_pct = 90;
        }
        let (base, _) = baseline_run(app, &params);

        let (trun, _, _) = thermostat_run(app, &params);
        r.row(vec![
            app.to_string(),
            "thermostat 3%".into(),
            pct(trun.cold_fraction_final),
            format!("{:.2}%", slowdown_pct(&trun, &base)),
        ]);

        for fast_target in [0.8, 0.5] {
            let mut clock = ClockPolicy::new(ClockConfig {
                sweep_period_ns: params.sampling_period_ns,
                fast_target_fraction: fast_target,
            });
            let (crun, cengine) = policy_run(app, &params, &mut clock);
            let cold = cengine.footprint_breakdown().cold_fraction();
            r.row(vec![
                app.to_string(),
                format!("clock {:.0}% fast cap", fast_target * 100.0),
                pct(cold),
                format!("{:.2}%", slowdown_pct(&crun, &base)),
            ]);
        }
    }
    r.note("capacity policies hit their size target at whatever slowdown results;");
    r.note("Thermostat holds the slowdown and takes whatever cold data exists");
    r.finish();
}

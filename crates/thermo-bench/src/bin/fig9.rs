//! Figure 9: cold/hot data identified at run time (paper: ~15-20% cold
//! at 3.0% degradation).

fn main() {
    thermo_bench::figs::footprint_figure(
        "fig9",
        thermo_workloads::AppId::InMemoryAnalytics,
        95,
        "~15-20%",
        3.0,
    );
}

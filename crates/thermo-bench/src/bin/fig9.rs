//! Figure 9: cold/hot data identified at run time (paper: ~15-20% cold
//! at 3.0% degradation). Parameters live in the experiment registry so
//! the golden harness runs the identical experiment.

fn main() {
    thermo_bench::experiments::run_and_finish("fig9");
}

//! Multi-tenant colocation experiment: three applications side by side,
//! each with a fixed fast-tier budget and its own per-tenant slowdown
//! target, fanned out over `thermo_sim::run_tenants_sharded`. Parameters
//! live in the experiment registry so the golden harness runs the
//! identical experiment.

fn main() {
    thermo_bench::experiments::run_and_finish("tenants");
}

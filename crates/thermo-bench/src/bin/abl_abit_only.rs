//! Ablation: Accessed-bit-only placement — the paper's §2.1 strawman.
//!
//! Figure 2 shows that the number of A-bit-hot 4KB regions inside a 2MB
//! page does not predict the page's access rate. This harness builds the
//! corresponding policy anyway (split a sample, count accessed children
//! over one interval, demote pages under a hot-region threshold — the
//! Guo/Baskakov-style classifier the paper cites) and sweeps the
//! threshold. The expected outcome, and the paper's motivation for
//! Thermostat: there is **no threshold** that achieves useful coverage
//! while bounding the slowdown, because spatial occupancy and access rate
//! are uncorrelated.

use thermo_bench::harness::{baseline_run, policy_run, slowdown_pct, thermostat_run, EvalParams};
use thermo_bench::report::{pct, ExperimentReport};
use thermo_mem::{PageSize, Tier, Vpn, PAGES_PER_HUGE};
use thermo_sim::{Engine, PolicyHook};
use thermo_util::rng::SeedableRng;
use thermo_util::rng::SliceRandom;
use thermo_vm::ScanHit;
use thermo_workloads::AppId;

/// Split a sample each period, demote pages whose accessed-children count
/// stays at or below `hot_region_threshold`. No rate estimation, no
/// budget, no correction — A bits only.
struct AbitOnly {
    period_ns: u64,
    next_due_ns: u64,
    sample_fraction: f64,
    hot_region_threshold: u32,
    rng: thermo_util::rng::SmallRng,
    sampled: Vec<Vpn>,
    in_classify: bool,
    scratch: Vec<ScanHit>,
    demoted: u64,
}

impl AbitOnly {
    fn new(period_ns: u64, hot_region_threshold: u32, seed: u64) -> Self {
        Self {
            period_ns,
            next_due_ns: period_ns,
            sample_fraction: 0.05,
            hot_region_threshold,
            rng: thermo_util::rng::SmallRng::seed_from_u64(seed),
            sampled: Vec::new(),
            in_classify: false,
            scratch: Vec::new(),
            demoted: 0,
        }
    }
}

impl PolicyHook for AbitOnly {
    fn next_due_ns(&self) -> u64 {
        self.next_due_ns
    }

    fn tick(&mut self, engine: &mut Engine) {
        if !self.in_classify {
            // Scan A: pick and split a sample, clear child A bits.
            let mut candidates: Vec<Vpn> = Vec::new();
            let regions: Vec<(Vpn, u64)> = engine
                .vmas()
                .iter()
                .map(|v| (v.start.vpn(), v.len / 4096))
                .collect();
            for (start, n) in regions {
                self.scratch.clear();
                engine.read_accessed(start, n, &mut self.scratch);
                for h in &self.scratch {
                    if h.size == PageSize::Huge2M
                        && engine.tier_of_vpn(h.base_vpn) == Some(Tier::Fast)
                    {
                        candidates.push(h.base_vpn);
                    }
                }
            }
            let want = ((candidates.len() as f64 * self.sample_fraction).round() as usize).max(1);
            candidates.shuffle(&mut self.rng);
            candidates.truncate(want.min(candidates.len()));
            self.sampled = candidates;
            for &vpn in &self.sampled {
                engine.split_huge(vpn).expect("candidate is huge");
                self.scratch.clear();
                engine.scan_and_clear_accessed(vpn, PAGES_PER_HUGE as u64, &mut self.scratch);
            }
            self.in_classify = true;
            self.next_due_ns += self.period_ns / 3;
        } else {
            // Scan B: count accessed children; demote sparse pages.
            let sampled = std::mem::take(&mut self.sampled);
            for vpn in sampled {
                self.scratch.clear();
                engine.scan_and_clear_accessed(vpn, PAGES_PER_HUGE as u64, &mut self.scratch);
                let hot = self.scratch.iter().filter(|h| h.accessed).count() as u32;
                if hot <= self.hot_region_threshold
                    && engine.migrate_split_huge(vpn, Tier::Slow).is_ok()
                {
                    engine
                        .collapse_huge(vpn)
                        .expect("contiguous after migration");
                    // Poison so the emulated slow latency applies (same
                    // methodology as Thermostat's evaluation).
                    engine.poison_page(vpn, PageSize::Huge2M);
                    self.demoted += 1;
                } else {
                    engine.collapse_huge(vpn).expect("sampled page collapses");
                }
            }
            self.in_classify = false;
            self.next_due_ns += 2 * self.period_ns / 3;
        }
    }
}

fn main() {
    let p = EvalParams::from_env();
    let mut r = ExperimentReport::new(
        "abl_abit_only",
        "A-bit hot-region placement vs Thermostat (Redis hotspot)",
        &["policy", "cold_final", "slowdown", "verdict"],
    );
    let mut params = p;
    params.read_pct = 90;
    let app = AppId::Redis;
    let (base, _) = baseline_run(app, &params);

    let (trun, _, _) = thermostat_run(app, &params);
    let tsd = slowdown_pct(&trun, &base);
    r.row(vec![
        "thermostat 3%".into(),
        pct(trun.cold_fraction_final),
        format!("{tsd:.2}%"),
        "rate-budgeted".into(),
    ]);

    for threshold in [64u32, 192, 320, 448] {
        let mut policy = AbitOnly::new(params.sampling_period_ns, threshold, params.seed);
        let (run, engine) = policy_run(app, &params, &mut policy);
        let cold = engine.footprint_breakdown().cold_fraction();
        let sd = slowdown_pct(&run, &base);
        let verdict = if cold < 0.05 {
            "no coverage"
        } else if sd > params.tolerable_slowdown_pct * 2.0 {
            "slowdown blown"
        } else {
            "lucky"
        };
        r.row(vec![
            format!("a-bit, hot-regions <= {threshold}"),
            pct(cold),
            format!("{sd:.2}%"),
            verdict.into(),
        ]);
    }
    r.note("paper §2.1: spatial A-bit occupancy does not predict access rate (Figure 2),");
    r.note("so no threshold gives coverage AND bounded slowdown; Thermostat budgets rates instead");
    r.finish();
}

//! The 32-tenant co-scheduled scenario storm (`scen_storm`).

fn main() {
    thermo_bench::experiments::run_and_finish("scen_storm");
}

//! Colocated tenants over one arbitrated fast tier (`tenants_shared`).

fn main() {
    thermo_bench::experiments::run_and_finish("tenants_shared");
}

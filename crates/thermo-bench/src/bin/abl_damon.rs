//! Ablation: Thermostat vs a DAMON-style region-based tiering scheme (the
//! Linux mechanism that followed this line of work). DAMON samples one
//! page per adaptive region per interval and demotes regions idle for
//! several aggregation windows — cheap and huge-page friendly, but still
//! A-bit based: it knows *whether* a region was touched, not how much
//! placing it in slow memory will cost. Expectation: DAMON matches
//! Thermostat on structurally-cold apps (TPCC) but cannot hold a slowdown
//! target on rate-sensitive ones (Redis).

use thermo_bench::harness::{baseline_run, policy_run, slowdown_pct, thermostat_run, EvalParams};
use thermo_bench::report::{pct, ExperimentReport};
use thermo_kstaled::{Damon, DamonConfig};
use thermo_workloads::AppId;

fn main() {
    let p = EvalParams::from_env();
    let mut r = ExperimentReport::new(
        "abl_damon",
        "Thermostat vs DAMON-style region tiering",
        &["app", "policy", "cold_final", "slowdown", "detail"],
    );
    for app in [AppId::Redis, AppId::MysqlTpcc] {
        let mut params = p;
        if app == AppId::Redis {
            params.read_pct = 90;
        }
        let (base, _) = baseline_run(app, &params);

        let (trun, _, daemon) = thermostat_run(app, &params);
        r.row(vec![
            app.to_string(),
            "thermostat 3%".into(),
            pct(trun.cold_fraction_final),
            format!("{:.2}%", slowdown_pct(&trun, &base)),
            format!("{} promoted", daemon.stats().pages_promoted),
        ]);

        for (label, cold_age) in [("damon age=3", 3u32), ("damon age=10", 10)] {
            let mut damon = Damon::new(DamonConfig {
                sample_interval_ns: params.sampling_period_ns / 30,
                samples_per_aggregation: 10,
                cold_age_windows: cold_age,
                min_regions: 50,
                max_regions: 400,
                ..DamonConfig::default()
            });
            let (run, engine) = policy_run(app, &params, &mut damon);
            let cold = engine.footprint_breakdown().cold_fraction();
            r.row(vec![
                app.to_string(),
                label.into(),
                pct(cold),
                format!("{:.2}%", slowdown_pct(&run, &base)),
                format!(
                    "{} regions, {} dem / {} prom",
                    damon.regions().len(),
                    damon.stats().demotions,
                    damon.stats().promotions
                ),
            ]);
        }
    }
    r.note("DAMON-style schemes pick idle regions but cannot budget the resulting access rate");
    r.finish();
}

//! Table 3: data migration rate and false-classification rate (MB/s).
//! Paper: migration < 16 MB/s and false classification < 10 MB/s on
//! average for every application — far below slow-memory bandwidth.

use thermo_bench::harness::{thermostat_run, EvalParams};
use thermo_bench::report::ExperimentReport;
use thermo_workloads::AppId;

fn main() {
    let p = EvalParams::from_env();
    let mut r = ExperimentReport::new(
        "tab3",
        "migration and false-classification bandwidth (MB/s)",
        &[
            "app",
            "migration",
            "false-classification",
            "paper_mig",
            "paper_fc",
        ],
    );
    let paper = [
        ("13.3", "9.2"),
        ("9.6", "3.8"),
        ("16", "0.4"),
        ("6", "1.8"),
        ("11.3", "10"),
        ("1.6", "0.3"),
    ];
    for (app, (pm, pf)) in AppId::ALL.into_iter().zip(paper) {
        let mut params = p;
        if app == AppId::Cassandra {
            params.read_pct = 5;
        }
        let (run, _, _) = thermostat_run(app, &params);
        r.row(vec![
            app.to_string(),
            format!("{:.2}", run.migration_mbps),
            format!("{:.2}", run.false_class_mbps),
            pm.to_string(),
            pf.to_string(),
        ]);
    }
    r.note("rates scale with footprint: at scale 1/16 expect roughly 1/16 of the paper's MB/s");
    r.finish();
}

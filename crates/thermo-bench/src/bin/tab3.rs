//! Table 3: data migration rate and false-classification rate (MB/s).
//! Paper: migration < 16 MB/s and false classification < 10 MB/s on
//! average for every application — far below slow-memory bandwidth.
//! Implementation in `thermo_bench::tabs`, shared with the golden
//! harness.

fn main() {
    thermo_bench::experiments::run_and_finish("tab3");
}

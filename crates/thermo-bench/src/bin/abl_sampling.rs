//! Ablation: sampling fraction (paper uses 5% of huge pages per period).
//! Sweeps the fraction and reports cold coverage, achieved slowdown and
//! monitoring overhead — more sampling reacts faster but poisons more.

use thermo_bench::harness::{baseline_run, slowdown_pct, thermostat_run_with, EvalParams};
use thermo_bench::report::{pct, ExperimentReport};
use thermo_workloads::AppId;

fn main() {
    let p = EvalParams::from_env();
    let app = AppId::MysqlTpcc;
    let (base, _) = baseline_run(app, &p);
    let mut r = ExperimentReport::new(
        "abl_sampling",
        "sampling-fraction sweep (MySQL-TPCC)",
        &[
            "sample_frac",
            "cold_final",
            "slowdown",
            "pages_sampled",
            "half_coverage_period",
        ],
    );
    for frac in [0.01, 0.05, 0.10, 0.25] {
        let mut cfg = p.thermostat_config();
        cfg.sample_fraction = frac;
        let (run, _, d) = thermostat_run_with(app, &p, cfg);
        // Responsiveness: first period at which cold fraction reached half
        // its final value.
        let half = run.cold_fraction_final / 2.0;
        let t_half = run
            .history
            .iter()
            .position(|rec| rec.breakdown.cold_fraction() >= half)
            .map(|i| (i + 1).to_string())
            .unwrap_or_else(|| "-".to_string());
        r.row(vec![
            format!("{:.0}%", frac * 100.0),
            pct(run.cold_fraction_final),
            format!("{:.2}%", slowdown_pct(&run, &base)),
            d.stats().pages_sampled.to_string(),
            t_half,
        ]);
    }
    r.note("paper setting: 5% of huge pages sampled per 30s period (~0.5% of memory poisoned)");
    r.finish();
}

//! Golden-artifact regression checker.
//!
//! Re-runs every registry experiment (fig5–fig10, tab2–tab4) at the
//! fixed smoke scale ([`EvalParams::smoke`]) and structurally diffs the
//! resulting artifacts against the checked-in expectations in
//! `goldens/`, with the tolerance bands of
//! [`thermo_bench::golden::DiffConfig::goldens`].
//!
//! ```console
//! $ golden check            # diff all experiments, exit 1 on mismatch
//! $ golden check fig8 tab4  # just these ids
//! $ golden bless            # overwrite goldens with fresh artifacts
//! ```
//!
//! Usually invoked through `scripts/golden.sh`, which CI runs on every
//! change. Set `THERMO_GOLDEN_DIR` to point at an alternate tree.

use thermo_bench::experiments::{self, Experiment};
use thermo_bench::golden::{canonical_json, check_artifact, golden_dir, DiffConfig};
use thermo_bench::EvalParams;

fn main() {
    let mut args = std::env::args().skip(1);
    let mode = args.next().unwrap_or_else(|| "check".to_string());
    let ids: Vec<String> = args.collect();
    if !matches!(mode.as_str(), "check" | "bless") {
        eprintln!("usage: golden [check|bless] [id...]");
        std::process::exit(2);
    }
    let selected: Vec<&'static Experiment> = if ids.is_empty() {
        experiments::ALL.iter().collect()
    } else {
        ids.iter()
            .map(|id| {
                experiments::by_id(id).unwrap_or_else(|| {
                    eprintln!("unknown experiment id `{id}`; registered ids:");
                    for e in experiments::ALL {
                        eprintln!("  {}", e.id);
                    }
                    std::process::exit(2);
                })
            })
            .collect()
    };

    let dir = golden_dir();
    let params = EvalParams::smoke();
    let cfg = DiffConfig::goldens();
    let mut failures = 0usize;
    for exp in selected {
        let artifact = (exp.run)(&params);
        match mode.as_str() {
            "bless" => {
                std::fs::create_dir_all(&dir)
                    .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
                let path = dir.join(format!("{}.json", exp.id));
                std::fs::write(&path, canonical_json(&artifact))
                    .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
                println!("blessed {}", path.display());
            }
            _ => match check_artifact(&artifact, &dir, &cfg) {
                Ok(()) => println!("golden ok: {}", exp.id),
                Err(report) => {
                    eprintln!("{report}");
                    failures += 1;
                }
            },
        }
    }
    if failures > 0 {
        eprintln!("golden check FAILED: {failures} experiment(s) diverged");
        std::process::exit(1);
    }
}

//! Golden-artifact regression checker.
//!
//! Re-runs every registry experiment (fig5–fig10, tab2–tab4) and
//! structurally diffs the resulting artifacts against the checked-in
//! expectations in `goldens/`, with the tolerance bands of
//! [`thermo_bench::golden::DiffConfig::goldens`].
//!
//! Experiments run as parallel jobs on the `thermo-exec` pool —
//! `THERMO_JOBS` workers, default = available parallelism — and merge in
//! registry order, so the artifacts (and therefore the check verdict)
//! are byte-identical to a serial run; only the wall-clock changes, and
//! per-experiment + total wall-clock are printed so CI logs show the
//! speedup.
//!
//! ```console
//! $ golden check            # diff all experiments, exit 1 on mismatch
//! $ golden check fig8 tab4  # just these ids
//! $ golden bless            # overwrite goldens with fresh artifacts
//! $ golden check --full     # opt-in full 1/16-scale tier (goldens/full/)
//! ```
//!
//! Two scales exist: the default smoke tier ([`EvalParams::smoke`],
//! goldens in `goldens/`, default CI) and the opt-in full tier
//! ([`EvalParams::full`], `--full` or `THERMO_GOLDEN_SCALE=full`,
//! goldens blessed separately under `goldens/full/`, release branches
//! only). Usually invoked through `scripts/golden.sh`. Set
//! `THERMO_GOLDEN_DIR` to point at an alternate golden tree.

use thermo_bench::experiments::{self, run_parallel, Experiment};
use thermo_bench::golden::{canonical_json, check_artifact, golden_dir, DiffConfig};
use thermo_bench::EvalParams;

fn main() {
    let mut mode: Option<String> = None;
    let mut full = std::env::var("THERMO_GOLDEN_SCALE").is_ok_and(|v| v == "full");
    let mut ids: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--full" => full = true,
            _ if mode.is_none() => mode = Some(arg),
            _ => ids.push(arg),
        }
    }
    let mode = mode.unwrap_or_else(|| "check".to_string());
    if !matches!(mode.as_str(), "check" | "bless") {
        eprintln!("usage: golden [check|bless] [--full] [id...]");
        std::process::exit(2);
    }
    let selected: Vec<&'static Experiment> = if ids.is_empty() {
        experiments::ALL.iter().collect()
    } else {
        ids.iter()
            .map(|id| {
                experiments::by_id(id).unwrap_or_else(|| {
                    eprintln!("unknown experiment id `{id}`; registered ids:");
                    for e in experiments::ALL {
                        eprintln!("  {}", e.id);
                    }
                    std::process::exit(2);
                })
            })
            .collect()
    };

    let (params, dir, tier) = if full {
        (EvalParams::full(), golden_dir().join("full"), "full")
    } else {
        (EvalParams::smoke(), golden_dir(), "smoke")
    };
    let workers = thermo_exec::jobs_from_env();
    let cfg = DiffConfig::goldens();
    let total0 = std::time::Instant::now();
    let results = run_parallel(&selected, &params, workers);
    let total = total0.elapsed();

    let mut failures = 0usize;
    let mut serial_equiv = std::time::Duration::ZERO;
    for run in &results {
        serial_equiv += run.wall;
        match mode.as_str() {
            "bless" => {
                std::fs::create_dir_all(&dir)
                    .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
                let path = dir.join(format!("{}.json", run.id));
                std::fs::write(&path, canonical_json(&run.artifact))
                    .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
                println!(
                    "blessed {} ({:.2}s)",
                    path.display(),
                    run.wall.as_secs_f64()
                );
            }
            _ => match check_artifact(&run.artifact, &dir, &cfg) {
                Ok(()) => println!("golden ok: {} ({:.2}s)", run.id, run.wall.as_secs_f64()),
                Err(report) => {
                    eprintln!("{report}");
                    failures += 1;
                }
            },
        }
    }
    println!(
        "golden {tier} tier: {} experiment(s) in {:.2}s wall (sum of per-experiment wall {:.2}s, {} worker(s))",
        results.len(),
        total.as_secs_f64(),
        serial_equiv.as_secs_f64(),
        workers
    );
    if failures > 0 {
        eprintln!("golden check FAILED: {failures} experiment(s) diverged");
        std::process::exit(1);
    }
}

//! The 1024-shard scenario policy-matrix sweep (`scen_fleet`).

fn main() {
    thermo_bench::experiments::run_and_finish("scen_fleet");
}

//! Ablation: slow-memory latency sweep across the §1 projection range
//! (400ns - 3us). The §3.4 threshold x/(100*ts) shrinks as the device
//! slows, so the achievable cold fraction falls with latency.

use thermo_bench::harness::{baseline_run, slowdown_pct, EvalParams};
use thermo_bench::report::{pct, ExperimentReport};
use thermo_workloads::AppId;

fn main() {
    let p = EvalParams::from_env();
    let app = AppId::Cassandra;
    let params = {
        let mut q = p;
        q.read_pct = 5;
        q
    };
    let (base, _) = baseline_run(app, &params);
    let mut r = ExperimentReport::new(
        "abl_slowmem_latency",
        "slow-memory latency sweep (Cassandra, 3% target)",
        &["latency", "threshold_acc_per_sec", "cold_final", "slowdown"],
    );
    for (name, ns) in [("400ns", 400u64), ("1us", 1_000), ("3us", 3_000)] {
        let mut cfg = params.thermostat_config();
        cfg.slow_mem_latency_ns = ns;
        // The emulated fault must cost what the device costs.
        let mut run_params = params;
        run_params.seed ^= ns;
        let (run, _, _) = run_with_fault_latency(app, &run_params, cfg, ns, &base);
        r.row(vec![
            name.into(),
            format!("{:.0}", cfg.target_slow_access_rate()),
            pct(run.cold_fraction_final),
            format!("{:.2}%", slowdown_pct(&run, &base)),
        ]);
    }
    r.note("threshold = slowdown / (100 * ts): slower devices leave less access budget");
    r.finish();
}

fn run_with_fault_latency(
    app: AppId,
    p: &EvalParams,
    cfg: thermostat::ThermostatConfig,
    fault_ns: u64,
    _base: &thermo_bench::harness::AppRun,
) -> (thermo_bench::harness::AppRun, (), ()) {
    use thermo_sim::{run_for, Engine};
    use thermostat::Daemon;
    let mut sim = p.sim_config(app);
    sim.trap.fault_latency_ns = fault_ns;
    sim.slow.read_latency_ns = fault_ns;
    sim.slow.write_latency_ns = fault_ns;
    let mut engine = Engine::new(sim);
    let mut w = app.build(p.app_config());
    w.init(&mut engine);
    let mut daemon = Daemon::new(cfg);
    let outcome = run_for(&mut engine, w.as_mut(), &mut daemon, p.duration_ns);
    let mut run = thermo_bench::harness::AppRun {
        app: app.to_string(),
        outcome,
        ops_per_sec: outcome.ops_per_sec(),
        cold_fraction_mean: 0.0,
        cold_fraction_final: 0.0,
        history: daemon.history().to_vec(),
        daemon: daemon.stats(),
        migration_mbps: 0.0,
        false_class_mbps: 0.0,
        slow_access_rate: 0.0,
        slow_rate_series: Vec::new(),
        mean_latency_ns: 0.0,
        p99_latency_ns: 0,
    };
    let vals: Vec<f64> = daemon
        .history()
        .iter()
        .map(|r| r.breakdown.cold_fraction())
        .collect();
    if let Some(last) = vals.last() {
        run.cold_fraction_final = *last;
    }
    (run, (), ())
}

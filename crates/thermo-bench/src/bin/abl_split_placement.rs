//! Ablation: the §6 "spreading a 2MB page across fast and slow memories"
//! extension the paper leaves for future work. When enabled, hot pages
//! with a small hot footprint keep their hot 4KB children in fast memory
//! and ship the never-accessed children to slow memory, staying split.
//! The expected trade-off (exactly as the paper frames it): more total
//! bytes in slow memory, at the cost of 4KB TLB reach on the split pages.

use thermo_bench::harness::{baseline_run, slowdown_pct, thermostat_run_with, EvalParams};
use thermo_bench::report::{pct, ExperimentReport};
use thermo_workloads::AppId;

fn main() {
    let p = EvalParams::from_env();
    let mut r = ExperimentReport::new(
        "abl_split_placement",
        "whole-page placement vs §6 split placement",
        &[
            "app",
            "mode",
            "cold_final",
            "slowdown",
            "split_placed_pages",
            "tlb_miss_ratio",
        ],
    );
    for app in [AppId::Redis, AppId::WebSearch] {
        let mut params = p;
        if app == AppId::Redis {
            params.read_pct = 90;
        }
        let (base, _) = baseline_run(app, &params);
        for enabled in [false, true] {
            let mut cfg = params.thermostat_config();
            cfg.split_placement_enabled = enabled;
            let (run, engine, daemon) = thermostat_run_with(app, &params, cfg);
            r.row(vec![
                app.to_string(),
                if enabled {
                    "split (§6 ext)"
                } else {
                    "whole-page"
                }
                .into(),
                pct(run.cold_fraction_final),
                format!("{:.2}%", slowdown_pct(&run, &base)),
                daemon.stats().pages_split_placed.to_string(),
                format!("{:.3}", engine.tlb_stats().miss_ratio()),
            ]);
        }
    }
    r.note("split placement finds extra cold bytes inside hot pages but splits them permanently");
    r.finish();
}

//! Ablation: device wear on the slow tier (paper §6). Runs Cassandra
//! write-heavy under Thermostat, takes the observed per-frame write
//! distribution of the slow tier, and evaluates it with and without
//! Start-Gap wear levelling: maximum per-slot wear should flatten toward
//! the mean while total write volume stays far below endurance limits.

use thermo_bench::harness::{thermostat_run, EvalParams};
use thermo_bench::report::{f, ExperimentReport};
use thermo_mem::StartGap;
use thermo_workloads::AppId;

fn main() {
    let mut p = EvalParams::from_env();
    p.read_pct = 5; // write-heavy, like Figure 5
    let (run, engine, _) = thermostat_run(AppId::Cassandra, &p);
    let wear = engine.memory().wear().stats();
    let elapsed = run.outcome.elapsed_ns().max(1);

    let mut r = ExperimentReport::new(
        "abl_wear",
        "slow-tier wear with and without Start-Gap levelling",
        &["metric", "value"],
    );
    r.row(vec![
        "slow-tier write rate (MB/s)".into(),
        f(wear.write_mbps(elapsed), 3),
    ]);
    r.row(vec![
        "frames written".into(),
        wear.frames_written.to_string(),
    ]);
    r.row(vec![
        "max single-frame bytes (raw)".into(),
        wear.max_frame_bytes.to_string(),
    ]);
    let mean = if wear.frames_written == 0 {
        0.0
    } else {
        wear.total_bytes_written as f64 / wear.frames_written as f64
    };
    r.row(vec!["mean per-frame bytes".into(), f(mean, 1)]);

    // Replay the same write volume through Start-Gap at line granularity:
    // simulate per-line writes proportional to the hottest frame vs mean.
    // The levelled maximum approaches mean + rotation amplification.
    let n_lines = 4096u64;
    let mut sg = StartGap::new(n_lines, 100);
    let mut per_slot = vec![0u64; (n_lines + 1) as usize];
    // Adversarial input: all writes hammer one logical line.
    let hammer_writes = 200_000u64;
    for _ in 0..hammer_writes {
        per_slot[sg.write(7) as usize] += 1;
    }
    let max_slot = *per_slot.iter().max().expect("nonempty");
    r.row(vec![
        "start-gap: hammered-line writes".into(),
        hammer_writes.to_string(),
    ]);
    r.row(vec![
        "start-gap: max per-slot writes".into(),
        max_slot.to_string(),
    ]);
    r.row(vec![
        "start-gap: flattening factor".into(),
        f(hammer_writes as f64 / max_slot as f64, 1),
    ]);
    r.row(vec![
        "start-gap: write amplification".into(),
        f(sg.write_amplification(), 4),
    ]);

    // Lifetime estimate (paper §6: well below endurance limits).
    let years = wear.lifetime_years(
        engine.config().slow.capacity_bytes,
        1_000_000, // PCM-class endurance cycles
        elapsed,
    );
    r.row(vec![
        "device lifetime at this rate (years, 1e6 cycles)".into(),
        f(years.min(1e6), 0),
    ]);
    r.note("paper §6: Thermostat's slow-memory traffic is far below endurance limits");
    r.finish();
}

//! The multi-tenant colocation experiment (ROADMAP "multi-tenant
//! experiments"): several applications run side by side, each holding a
//! fixed fast-tier budget and its own Thermostat daemon with a
//! per-tenant tolerable-slowdown target.
//!
//! Tenants are fully independent engines fanned out over
//! [`thermo_sim::run_tenants_sharded`] — each shard is a pure function
//! of its `(shard_id, derived seed)`, so the merged [`ShardOutcome`]s
//! are byte-identical for any `THERMO_JOBS` worker count and can be
//! golden-checked like the single-tenant experiments. Colocation is
//! modelled as fixed per-tenant fast budgets (a tight slice instead of
//! the generous single-tenant headroom); dynamic cross-tenant
//! arbitration of one shared fast tier would make a shard's behaviour
//! depend on its neighbours and is left as the ROADMAP's shared-engine
//! open item.
//!
//! The interesting contrast is the per-tenant slowdown target: a tenant
//! that tolerates more slowdown lets Thermostat demote more of its
//! footprint, freeing fast memory for the fleet (the paper's §5 "cold
//! data at X% slowdown" trade-off, here three points of that curve at
//! once).

use crate::artifact::ExperimentArtifact;
use crate::harness::EvalParams;
use crate::report::{f, pct, ExperimentReport};
use thermo_mem::TierParams;
use thermo_sim::{run_tenants_sharded, Engine, PolicyHook, Workload};
use thermo_workloads::AppId;
use thermostat::Daemon;

/// The colocated tenant mix: application, YCSB read percentage, and
/// per-tenant tolerable slowdown (%). Targets deliberately span the
/// paper's 3% default up to a lenient 10% so the golden rows show cold
/// fraction growing with the budget.
const TENANTS: &[(AppId, u8, f64)] = &[
    (AppId::MysqlTpcc, 95, 3.0),
    (AppId::Redis, 90, 6.0),
    (AppId::WebSearch, 95, 10.0),
];

/// Fast-tier headroom above the demand-paged footprint: an eighth of the
/// footprint (THP demand paging rounds every region up to 2MB, so the
/// touched bytes exceed the nominal footprint) plus a fixed 32MB floor.
/// Demand paging always allocates from the fast tier, so a tenant's
/// budget must cover its full footprint; the slice is deliberately tight
/// (vs. the single-tenant `footprint * 1.5 + 64MB`) because colocated
/// tenants only get the capacity Thermostat frees for them.
fn fast_budget(footprint: u64) -> u64 {
    footprint + footprint / 8 + (32 << 20)
}

/// Runs the colocated-tenants experiment at `p` and returns the full
/// artifact under id `tenants`: one row per tenant plus the complete
/// merged [`thermo_sim::ShardOutcome`]s as exact-JSON notes, so the
/// golden diff covers every shard counter byte-for-byte.
///
/// # Panics
///
/// Panics when any tenant shard panics.
pub fn tenants_artifact(p: &EvalParams) -> ExperimentArtifact {
    let build = |shard_id: u64, seed: u64| -> (Engine, Box<dyn Workload>, Box<dyn PolicyHook>) {
        let (app, read_pct, target) = TENANTS[shard_id as usize];
        let tp = EvalParams {
            seed,
            read_pct,
            tolerable_slowdown_pct: target,
            ..*p
        };
        let mut cfg = tp.sim_config(app);
        let footprint = (app.paper_rss_bytes() + app.paper_file_bytes()) / tp.scale;
        cfg.fast = TierParams::dram(fast_budget(footprint));
        (
            Engine::new(cfg),
            app.build(tp.app_config()),
            Box::new(Daemon::new(tp.thermostat_config())),
        )
    };
    let outcomes = run_tenants_sharded(
        TENANTS.len(),
        p.duration_ns,
        &thermo_exec::ExecConfig::from_env(p.seed),
        build,
    )
    .unwrap_or_else(|e| panic!("tenants run failed: {e}"));

    let mut r = ExperimentReport::new(
        "tenants",
        "colocated tenants, per-tenant slowdown targets (sharded engines)",
        &[
            "tenant",
            "app",
            "target(%)",
            "ops",
            "ops/s",
            "cold_frac",
            "fast_used(MB)",
            "fast_budget(MB)",
            "freed(MB)",
            "slow_faults",
            "kernel(%)",
        ],
    );
    let mut freed_total = 0.0f64;
    for o in &outcomes {
        let (app, _, target) = TENANTS[o.shard_id as usize];
        let b = o.breakdown;
        let footprint = (app.paper_rss_bytes() + app.paper_file_bytes()) / p.scale;
        let budget = fast_budget(footprint);
        let fast_used = b.total() - b.cold();
        let freed = (budget - fast_used) as f64 / 1e6;
        freed_total += freed;
        r.row(vec![
            o.shard_id.to_string(),
            app.to_string(),
            f(target, 1),
            o.outcome.ops.to_string(),
            f(o.outcome.ops_per_sec(), 0),
            pct(b.cold_fraction()),
            f(fast_used as f64 / 1e6, 1),
            f(budget as f64 / 1e6, 1),
            f(freed, 1),
            o.stats.slow_trap_faults.to_string(),
            pct(o.stats.kernel_time_ns as f64 / o.stats.app_time_ns.max(1) as f64),
        ]);
    }
    r.note(format!(
        "fast memory freed for the fleet: {freed_total:.1}MB across {} tenants \
         (higher per-tenant slowdown budget => more cold data demoted)",
        outcomes.len()
    ));
    // The complete merged shard outcomes, exact: every engine counter and
    // footprint byte of every tenant is golden-checked, not just the
    // rendered cells.
    for o in &outcomes {
        r.note(format!(
            "shard {}: {}",
            o.shard_id,
            thermo_util::json::encode(o)
        ));
    }
    ExperimentArtifact::new(r, p)
}

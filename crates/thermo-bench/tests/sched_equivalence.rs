//! The co-scheduled engine's charge-neutrality contract (DESIGN.md §13):
//! with arbitration disabled and fixed per-tenant budgets, running the
//! `tenants` mix through the discrete-event scheduler produces the exact
//! bytes of the sharded `run_for` path — same ops, same engine counters,
//! same footprint breakdowns, for every tenant. One global timeline must
//! be an *ordering* change, never a *behaviour* change.
//!
//! Two layers:
//!
//! 1. in-process: the same build closure run sharded and co-scheduled
//!    (via the `SchedConfig::coscheduled` probe dispatch inside
//!    `run_tenants_sharded`, the switch the experiments flip) yields
//!    byte-identical serialized [`thermo_sim::runner::ShardOutcome`]s;
//! 2. golden-pinned: the co-scheduled outcomes reproduce the committed
//!    `goldens/tenants.json` shard notes byte-for-byte, so equivalence
//!    is anchored to blessed history, not just to a twin in-process run.

use std::path::PathBuf;

use thermo_bench::EvalParams;
use thermo_mem::TierParams;
use thermo_sim::{run_tenants_sharded, Engine, PolicyHook, ShardOutcome, Workload};
use thermo_workloads::AppId;
use thermostat::Daemon;

/// The `tenants` experiment mix, replicated: application, YCSB read
/// percentage, tolerable slowdown (%). Must stay in lockstep with
/// `crates/thermo-bench/src/tenants.rs` — the golden-pinned test fails
/// loudly if either side drifts.
const TENANTS: &[(AppId, u8, f64)] = &[
    (AppId::MysqlTpcc, 95, 3.0),
    (AppId::Redis, 90, 6.0),
    (AppId::WebSearch, 95, 10.0),
];

/// Same fixed budget rule as `tenants.rs`: footprint + footprint/8 + 32MB.
fn fast_budget(footprint: u64) -> u64 {
    footprint + footprint / 8 + (32 << 20)
}

/// Builds tenant `shard_id` exactly as the `tenants` experiment does,
/// optionally flipping it onto the co-scheduled path. Arbitration stays
/// off either way (`shared_pool_bytes == 0`): that is the equivalence
/// regime.
fn build_tenant(
    p: &EvalParams,
    coscheduled: bool,
    shard_id: u64,
    seed: u64,
) -> (Engine, Box<dyn Workload>, Box<dyn PolicyHook>) {
    let (app, read_pct, target) = TENANTS[shard_id as usize];
    let tp = EvalParams {
        seed,
        read_pct,
        tolerable_slowdown_pct: target,
        ..*p
    };
    let mut cfg = tp.sim_config(app);
    let footprint = (app.paper_rss_bytes() + app.paper_file_bytes()) / tp.scale;
    cfg.fast = TierParams::dram(fast_budget(footprint));
    cfg.sched.coscheduled = coscheduled;
    (
        Engine::new(cfg),
        app.build(tp.app_config()),
        Box::new(Daemon::new(tp.thermostat_config())),
    )
}

/// Runs the mix through `run_tenants_sharded` — which itself dispatches
/// to the event-driven path when the built config says `coscheduled` —
/// and returns the serialized outcome per shard.
fn outcomes(p: &EvalParams, coscheduled: bool) -> Vec<ShardOutcome> {
    run_tenants_sharded(
        TENANTS.len(),
        p.duration_ns,
        &thermo_exec::ExecConfig::from_env(p.seed),
        |shard_id, seed| build_tenant(p, coscheduled, shard_id, seed),
    )
    .unwrap_or_else(|e| panic!("tenants run failed: {e}"))
}

#[test]
fn coscheduled_run_reproduces_sharded_outcomes_byte_for_byte() {
    let p = EvalParams::smoke();
    let sharded = outcomes(&p, false);
    let coscheduled = outcomes(&p, true);
    assert_eq!(sharded.len(), coscheduled.len());
    for (s, c) in sharded.iter().zip(&coscheduled) {
        assert_eq!(
            thermo_util::json::encode(s),
            thermo_util::json::encode(c),
            "shard {}: co-scheduled outcome diverged from the run_for path",
            s.shard_id
        );
    }
}

#[test]
fn coscheduled_run_reproduces_the_committed_tenants_golden() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../goldens/tenants.json");
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let golden = thermo_util::json::parse(&text).expect("well-formed golden");
    let notes = golden
        .get("report")
        .and_then(|r| r.get("notes"))
        .and_then(|n| n.as_arr())
        .expect("golden has report.notes");
    let golden_shards: Vec<&str> = notes
        .iter()
        .filter_map(|n| n.as_str())
        .filter(|s| s.starts_with("shard "))
        .collect();
    assert_eq!(
        golden_shards.len(),
        TENANTS.len(),
        "golden shard notes out of step with the tenant mix"
    );

    for (o, want) in outcomes(&EvalParams::smoke(), true)
        .iter()
        .zip(&golden_shards)
    {
        let got = format!("shard {}: {}", o.shard_id, thermo_util::json::encode(o));
        assert_eq!(
            &got, want,
            "shard {}: co-scheduled outcome diverged from goldens/tenants.json",
            o.shard_id
        );
    }
}

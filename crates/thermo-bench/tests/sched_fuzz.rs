//! The ordering-fuzz campaign (DESIGN.md §13): `THERMO_SCHED_FUZZ`
//! permutes the pop order of same-`(time, class)` scheduler batches
//! under a seeded RNG — the one reordering freedom the discrete-event
//! contract claims is unobservable. This test holds the whole experiment
//! registry to that claim: every artifact must serialize to the exact
//! bytes of the unfuzzed run under every fuzz seed.
//!
//! Experiments on the sharded path never consult the knob (their
//! tenants live on private timelines); `tenants_shared` is the one that
//! actually exercises it, with apps, daemons, reporters, fabric pumps,
//! and the arbiter sharing ticks on one timeline. The registry-wide
//! sweep is deliberate anyway: it pins that the knob is inert everywhere
//! else, so a future co-scheduled port of another experiment inherits
//! the campaign for free.
//!
//! One `#[test]` owns the whole sweep because the knob is process-global
//! env state — splitting per-seed tests would race env mutations across
//! the test harness's threads.

use thermo_bench::experiments;
use thermo_bench::golden::canonical_json;
use thermo_bench::EvalParams;

/// Four fixed fuzz seeds plus a high-entropy one: distinct permutation
/// streams, stable across runs (the campaign is deterministic per seed).
const FUZZ_SEEDS: [u64; 4] = [1, 2, 0xdead_beef, 0x5eed_5eed_5eed_5eed];

fn registry_snapshot() -> Vec<(&'static str, String)> {
    let params = EvalParams {
        // A third of the golden smoke duration, same rationale as
        // exec_determinism.rs: identity needs the full pipeline, not the
        // full window.
        duration_ns: 500_000_000,
        ..EvalParams::smoke()
    };
    experiments::ALL
        .iter()
        .map(|e| (e.id, canonical_json(&(e.run)(&params))))
        .collect()
}

#[test]
fn fuzzed_pop_order_never_changes_artifact_bytes() {
    std::env::remove_var("THERMO_SCHED_FUZZ");
    let baseline = registry_snapshot();
    assert_eq!(baseline.len(), experiments::ALL.len());

    for seed in FUZZ_SEEDS {
        std::env::set_var("THERMO_SCHED_FUZZ", seed.to_string());
        let fuzzed = registry_snapshot();
        for ((id, want), (id_f, got)) in baseline.iter().zip(&fuzzed) {
            assert_eq!(id, id_f, "registry order changed mid-sweep");
            assert_eq!(
                want, got,
                "experiment {id}: THERMO_SCHED_FUZZ={seed} changed artifact bytes — \
                 a component pair in the same (time, class) batch does not commute"
            );
        }
    }
    std::env::remove_var("THERMO_SCHED_FUZZ");
}

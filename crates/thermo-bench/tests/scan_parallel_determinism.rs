//! The contract the off-thread scan pipeline stands on: building policy
//! `MemoryView` snapshots inline (`THERMO_SCAN_JOBS` unset / `0` / `1`)
//! or on a `thermo-exec` worker pool (`THERMO_SCAN_JOBS=4`) produces
//! **byte-identical** artifacts for every registry experiment. Shard
//! scheduling and worker count must be completely unobservable in every
//! serialized output — scan shards are cut at fixed absolute huge-page
//! boundaries and merged in shard-id order, so only wall-clock may
//! change (see DESIGN.md §10).

use thermo_bench::experiments::{self, run_parallel};
use thermo_bench::golden::canonical_json;
use thermo_bench::EvalParams;

/// Runs every registry experiment at a reduced smoke scale with the
/// given `THERMO_SCAN_JOBS` setting (`None` = unset, the default inline
/// path) and returns each artifact's canonical golden serialization.
fn registry_snapshot(scan_jobs: Option<&str>) -> Vec<(&'static str, String)> {
    match scan_jobs {
        Some(v) => std::env::set_var("THERMO_SCAN_JOBS", v),
        None => std::env::remove_var("THERMO_SCAN_JOBS"),
    }
    // Pin the experiment/run fan-out so only the scan pool varies.
    std::env::set_var("THERMO_JOBS", "2");
    let params = EvalParams {
        // Same reduced window as tests/exec_determinism.rs: identity
        // doesn't need the full golden duration, just enough sampling
        // periods to exercise split/poison/classify/correct.
        duration_ns: 500_000_000,
        ..EvalParams::smoke()
    };
    let selected: Vec<_> = experiments::ALL.iter().collect();
    run_parallel(&selected, &params, 2)
        .into_iter()
        .map(|r| (r.id, canonical_json(&r.artifact)))
        .collect()
}

// One test function on purpose: the sweep mutates THERMO_SCAN_JOBS, and
// parallel test threads sharing the process environment would race
// (same structure as tests/exec_determinism.rs).
#[test]
fn scan_worker_count_never_changes_artifact_bytes() {
    let unset = registry_snapshot(None);
    assert_eq!(unset.len(), experiments::ALL.len());
    // The fabric experiments drive the async-copy path whose snapshots
    // this sweep exists to pin; they must be in the swept set.
    for id in ["fab_bw", "fab_abort"] {
        assert!(
            unset.iter().any(|(i, _)| *i == id),
            "fabric experiment {id} missing from the registry sweep"
        );
    }
    for scan_jobs in ["0", "1", "4"] {
        let swept = registry_snapshot(Some(scan_jobs));
        for ((id_a, bytes_a), (id_b, bytes_b)) in unset.iter().zip(&swept) {
            assert_eq!(id_a, id_b, "merge order must follow the registry");
            assert_eq!(
                bytes_a, bytes_b,
                "experiment {id_a}: THERMO_SCAN_JOBS unset vs {scan_jobs} artifacts differ"
            );
        }
    }
    std::env::remove_var("THERMO_SCAN_JOBS");
}

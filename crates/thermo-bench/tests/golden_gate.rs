//! End-to-end gate for the golden-artifact harness: the committed
//! goldens must match a live smoke run, a perturbed policy constant must
//! demonstrably fail the check, and the tolerance bands must absorb
//! small measurement drift without absorbing policy changes.

use std::path::PathBuf;

use thermo_bench::experiments;
use thermo_bench::golden::{canonical_json, check_artifact, golden_dir, DiffConfig};
use thermo_bench::{EvalParams, ExperimentArtifact};
use thermo_util::json::{parse, to_string_pretty, Value};

fn smoke_artifact(id: &str) -> ExperimentArtifact {
    let exp = experiments::by_id(id).expect("registered experiment");
    (exp.run)(&EvalParams::smoke())
}

/// Scratch golden tree under `target/`, one per test so parallel tests
/// never collide.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/golden-gate")
        .join(name);
    std::fs::create_dir_all(&dir).expect("create scratch golden dir");
    dir
}

#[test]
fn committed_goldens_match_a_live_smoke_run() {
    // The same check `scripts/golden.sh check fig5` performs, run
    // in-process: a stale golden tree fails `cargo test`, not just CI.
    let artifact = smoke_artifact("fig5");
    check_artifact(&artifact, &golden_dir(), &DiffConfig::goldens())
        .unwrap_or_else(|report| panic!("committed fig5 golden diverged:\n{report}"));
}

#[test]
fn perturbed_policy_constant_fails_the_gate() {
    // Nudge the paper's 3% tolerable-slowdown target — the policy
    // constant the whole classification pipeline keys off — and the
    // committed golden must reject the run.
    let exp = experiments::by_id("fig5").expect("registered experiment");
    let params = EvalParams {
        tolerable_slowdown_pct: 6.0,
        ..EvalParams::smoke()
    };
    let artifact = (exp.run)(&params);
    let report = check_artifact(&artifact, &golden_dir(), &DiffConfig::goldens())
        .expect_err("doubled slowdown target must diverge from the golden");
    assert!(
        report.contains("tolerable_slowdown_pct"),
        "mismatch report should name the perturbed constant:\n{report}"
    );
    assert!(
        report.contains("fig5"),
        "mismatch report should name the experiment:\n{report}"
    );
}

/// Returns the artifact's canonical JSON with `runs[0].<field>` (an f64)
/// scaled by `factor`.
fn with_scaled_run_field(artifact: &ExperimentArtifact, field: &str, factor: f64) -> String {
    let mut v = parse(&canonical_json(artifact)).expect("artifact reparses");
    let Value::Obj(top) = &mut v else {
        panic!("artifact is an object")
    };
    let runs = top
        .iter_mut()
        .find(|(k, _)| k == "runs")
        .map(|(_, v)| v)
        .expect("runs field");
    let Value::Arr(runs) = runs else {
        panic!("runs is an array")
    };
    let Value::Obj(run0) = &mut runs[0] else {
        panic!("run is an object")
    };
    let slot = run0
        .iter_mut()
        .find(|(k, _)| k == field)
        .map(|(_, v)| v)
        .unwrap_or_else(|| panic!("run field {field}"));
    let f = slot.as_f64().expect("field is numeric");
    *slot = Value::F64(f * factor);
    let mut s = to_string_pretty(&v);
    s.push('\n');
    s
}

#[test]
fn tolerance_bands_absorb_drift_but_not_regressions() {
    let artifact = smoke_artifact("fig6");
    let dir = scratch_dir("bands");
    let write = |text: String| {
        std::fs::write(dir.join("fig6.json"), text).expect("write scratch golden");
    };
    let cfg = DiffConfig::goldens();

    // 1% throughput drift sits inside the 2% band: no re-bless needed
    // after cost-model micro-tuning.
    write(with_scaled_run_field(&artifact, "ops_per_sec", 1.01));
    check_artifact(&artifact, &dir, &cfg).expect("1% ops_per_sec drift is within tolerance");

    // 10% is a real regression and must fail, naming the field.
    write(with_scaled_run_field(&artifact, "ops_per_sec", 1.10));
    let report = check_artifact(&artifact, &dir, &cfg).expect_err("10% drift must fail");
    assert!(report.contains("ops_per_sec"), "{report}");

    // Integers are policy decisions: even off-by-one fails. Perturb a
    // daemon counter in the golden text the way a changed classifier
    // would, and the diff must name the exact path.
    let perturbed = canonical_json(&artifact).replacen("\"periods\": ", "\"periods\": 1", 1);
    assert_ne!(perturbed, canonical_json(&artifact), "perturbation applied");
    write(perturbed);
    let report = check_artifact(&artifact, &dir, &cfg).expect_err("integer drift must fail");
    assert!(
        report.contains("integers must match exactly"),
        "integer mismatches are exact: {report}"
    );
}

#[test]
fn missing_golden_points_at_bless() {
    let artifact = smoke_artifact("fig7");
    let dir = scratch_dir("missing");
    let err = check_artifact(&artifact, &dir, &DiffConfig::goldens())
        .expect_err("no golden present: check must fail");
    assert!(err.contains("golden.sh bless fig7"), "{err}");
}

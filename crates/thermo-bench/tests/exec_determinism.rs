//! The contract the golden gate's parallel execution stands on: running
//! the experiment registry through the `thermo-exec` pool with different
//! worker counts produces **byte-identical** artifacts. Scheduling,
//! completion order, and `THERMO_JOBS` must be completely unobservable
//! in every serialized output.

use thermo_bench::experiments::{self, run_parallel};
use thermo_bench::golden::canonical_json;
use thermo_bench::EvalParams;

/// Runs every registry experiment at a reduced smoke scale with the
/// given worker count — both the outer per-experiment fan-out and the
/// inner per-run fan-out (figs/tabs read `THERMO_JOBS`) — and returns
/// each artifact's canonical golden serialization.
fn registry_snapshot(workers: usize) -> Vec<(&'static str, String)> {
    // The inner pools (paired_runs, thermostat_runs_all) size themselves
    // from the environment; pin it so `workers` governs every layer.
    std::env::set_var("THERMO_JOBS", workers.to_string());
    let params = EvalParams {
        // A third of the golden smoke duration, same rationale as
        // tests/determinism.rs: identity doesn't need the full window,
        // just the full pipeline.
        duration_ns: 500_000_000,
        ..EvalParams::smoke()
    };
    let selected: Vec<_> = experiments::ALL.iter().collect();
    run_parallel(&selected, &params, workers)
        .into_iter()
        .map(|r| (r.id, canonical_json(&r.artifact)))
        .collect()
}

#[test]
fn worker_count_never_changes_artifact_bytes() {
    let serial = registry_snapshot(1);
    let parallel = registry_snapshot(4);
    assert_eq!(serial.len(), experiments::ALL.len());
    for ((id_a, bytes_a), (id_b, bytes_b)) in serial.iter().zip(&parallel) {
        assert_eq!(id_a, id_b, "merge order must follow the registry");
        assert_eq!(
            bytes_a, bytes_b,
            "experiment {id_a}: THERMO_JOBS=1 and THERMO_JOBS=4 artifacts differ"
        );
    }
}

/// Like [`registry_snapshot`], with the steal-order fuzz knob set: the
/// executor deals jobs to workers in a seed-shuffled order and perturbs
/// every steal decision from the same stream.
fn fuzzed_snapshot(workers: usize, fuzz: u64) -> Vec<(&'static str, String)> {
    std::env::set_var("THERMO_EXEC_FUZZ", fuzz.to_string());
    let out = registry_snapshot(workers);
    std::env::remove_var("THERMO_EXEC_FUZZ");
    out
}

#[test]
fn steal_order_fuzz_never_changes_artifact_bytes() {
    // The executor mirror of the scheduler's THERMO_SCHED_FUZZ campaign:
    // seeds perturb the initial job deal, steal-victim order, and
    // steal-before-local decisions, so each seed exercises a different
    // ownership map and interleaving. Every one must merge to the exact
    // serial bytes. (ci.sh sweeps more seeds against the on-disk goldens;
    // this in-tree test keeps the property `cargo test`-visible.)
    let serial = registry_snapshot(1);
    assert_eq!(serial.len(), experiments::ALL.len());
    for (workers, fuzz) in [(4, 0u64), (4, 0xfeed_beef), (3, 17)] {
        let fuzzed = fuzzed_snapshot(workers, fuzz);
        for ((id_a, bytes_a), (id_b, bytes_b)) in serial.iter().zip(&fuzzed) {
            assert_eq!(id_a, id_b, "merge order must follow the registry");
            assert_eq!(
                bytes_a, bytes_b,
                "experiment {id_a}: THERMO_JOBS={workers} THERMO_EXEC_FUZZ={fuzz} \
                 artifacts differ from serial"
            );
        }
    }
}

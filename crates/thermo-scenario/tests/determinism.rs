//! Compiled-scenario determinism: the storm scenario's merged shard
//! outcomes must serialize to identical bytes for every `thermo-exec`
//! worker count and every `THERMO_SCAN_JOBS` setting. One test function
//! on purpose: the sweep mutates process-global environment, and
//! parallel test threads would race (same structure as thermo-bench's
//! `tests/exec_determinism.rs`).

use thermo_scenario::{compile, library};
use thermo_sim::{Engine, NoPolicy, PolicyHook, SimConfig, Workload};
use thermo_util::json::encode;

/// A short window: identity needs the full compile/seed/replay pipeline,
/// not a long run.
const DURATION_NS: u64 = 2 * library::HOUR_NS;

fn storm_outcomes(workers: usize) -> Vec<String> {
    let spec = library::storm();
    let c = compile(&spec).expect("library scenario compiles");
    let build =
        |shard_id: u64, _pool_seed: u64| -> (Engine, Box<dyn Workload>, Box<dyn PolicyHook>) {
            let seed = c.tenant_seed(0xd15c, shard_id);
            let fp = c.declared_footprint(shard_id, 512);
            let bound = fp.anon_bytes + fp.file_bytes;
            let cfg = SimConfig::paper_defaults(bound * 2 + (16 << 20), bound + (16 << 20));
            (
                Engine::new(cfg),
                c.build_workload(shard_id, seed, 512),
                Box::new(NoPolicy),
            )
        };
    thermo_sim::run_tenants_sharded(
        c.n_tenants(),
        DURATION_NS,
        &thermo_exec::ExecConfig::new(workers, 0xd15c),
        build,
    )
    .expect("sharded storm run completes")
    .iter()
    .map(encode)
    .collect()
}

#[test]
fn storm_outcomes_identical_across_worker_counts_and_scan_jobs() {
    std::env::remove_var("THERMO_SCAN_JOBS");
    let baseline = storm_outcomes(1);
    assert_eq!(baseline.len(), 32, "storm is the advertised 32 tenants");

    for workers in [2, 7, 32] {
        assert_eq!(
            baseline,
            storm_outcomes(workers),
            "worker count {workers} changed shard outcome bytes"
        );
    }
    for scan_jobs in ["0", "1", "4"] {
        std::env::set_var("THERMO_SCAN_JOBS", scan_jobs);
        assert_eq!(
            baseline,
            storm_outcomes(3),
            "THERMO_SCAN_JOBS={scan_jobs} changed shard outcome bytes"
        );
    }
    std::env::remove_var("THERMO_SCAN_JOBS");
}

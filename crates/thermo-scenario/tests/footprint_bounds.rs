//! Shrinking property test: a randomly generated scenario's engine
//! footprint never exceeds its declared bound — not at init, and not
//! after running long enough for every growth schedule to widen, reset,
//! and step. The bound is what `scen_fleet`/`scen_storm` size their
//! tiers from, so a violation here would mean an OOM panic lurking in
//! some corner of the spec space.
//!
//! Specs are built from primitive draws (page counts, pattern selectors,
//! growth knobs), so a failure shrinks toward the smallest
//! region/phase structure that still breaks the bound.

use thermo_scenario::{
    compile, ArrivalSpec, GrowthSpec, MixEntry, PatternSpec, PhaseSpec, PhasedSpec, RegionDecl,
    ScenarioSpec, TenantGroup, WorkloadSpec,
};
use thermo_sim::{run_for, Engine, NoPolicy, SimConfig};
use thermo_util::forall;
use thermo_util::proptest_lite::{range, vec_of};

const PAGE: u64 = 4096;

fn pattern(sel: u64) -> PatternSpec {
    match sel % 4 {
        0 => PatternSpec::Uniform,
        1 => PatternSpec::Zipfian { theta: 0.9 },
        2 => PatternSpec::Hotspot {
            hot_key_fraction: 0.125,
            hot_traffic_fraction: 0.875,
        },
        _ => PatternSpec::Sequential,
    }
}

/// One region from a primitive draw: `pages` total size, `start_pages`
/// clamped into range (0 = growth disabled), and a packed `misc`
/// selector covering sawtooth (`misc % 2`), step growth
/// (`misc / 2 % 2`), and file backing (`misc % 3 == 0`).
fn region(i: usize, draw: &(u64, u64, u64, u64)) -> RegionDecl {
    let (pages, start_pages, pattern_sel, misc) = *draw;
    let grow = (start_pages > 0).then(|| GrowthSpec {
        start_bytes: start_pages.min(pages) * PAGE,
        full_at_ns: 200_000 + 100_000 * (i as u64),
        reset_period_ns: if misc % 2 == 1 { 500_000 } else { 0 },
        step: misc / 2 % 2 == 1,
    });
    RegionDecl {
        name: format!("r{i}"),
        bytes: pages * PAGE,
        pattern: pattern(pattern_sel),
        thp: pattern_sel % 2 == 0,
        file_backed: misc % 3 == 0,
        grow,
    }
}

#[test]
fn random_scenarios_stay_within_declared_footprint_bounds() {
    forall!(
        cases = 24,
        (region_draws in vec_of(
            (
                range(1u64..96),  // pages
                range(0u64..96),  // growth start pages (0 = no growth)
                range(0u64..8),   // pattern selector
                range(0u64..12),  // packed sawtooth/step/file selector
            ),
            1..4,
        )),
        (phase_draws in vec_of(range(1u64..4), 1..3)),
        (seed in range(0u64..1_000_000))
    => {
        let regions: Vec<RegionDecl> = region_draws
            .iter()
            .enumerate()
            .map(|(i, d)| region(i, d))
            .collect();
        // Every phase touches every region so growth windows are
        // exercised wherever they are declared.
        let phases: Vec<PhaseSpec> = phase_draws
            .iter()
            .enumerate()
            .map(|(i, rate)| PhaseSpec {
                name: format!("p{i}"),
                duration_ns: 400_000,
                rate_pct: (*rate * 100) as u32,
                mix: regions
                    .iter()
                    .map(|r| MixEntry {
                        region: r.name.clone(),
                        weight: 1,
                        write_pct: (seed % 101) as u8,
                        lines_per_op: 1 + (seed % 4) as u32,
                    })
                    .collect(),
            })
            .collect();
        let spec = ScenarioSpec {
            name: "prop".to_string(),
            seed_salt: seed,
            groups: vec![TenantGroup {
                name: "g".to_string(),
                count: 1,
                read_pct: 95,
                slo_pct: 3.0,
                arrival: ArrivalSpec::IMMEDIATE,
                workload: WorkloadSpec::Phased(PhasedSpec {
                    compute_ns: 500,
                    repeat: true,
                    regions,
                    phases,
                }),
            }],
        };
        let c = compile(&spec).expect("constructed spec is valid");
        let fp = c.declared_footprint(0, 512);
        let bound = fp.anon_bytes + fp.file_bytes;
        let mut w = c.build_workload(0, c.tenant_seed(7, 0), 512);
        let mut e = Engine::new(SimConfig::paper_defaults(
            bound * 2 + (8 << 20),
            bound + (8 << 20),
        ));
        w.init(&mut e);
        assert!(
            e.rss_bytes() <= bound,
            "after init: rss {} > declared bound {bound}",
            e.rss_bytes()
        );
        // Long enough for every full_at, sawtooth reset, and the whole
        // phase schedule to cycle at least once.
        run_for(&mut e, w.as_mut(), &mut NoPolicy, 1_200_000);
        assert!(
            e.rss_bytes() <= bound,
            "after run: rss {} > declared bound {bound}",
            e.rss_bytes()
        );
    });
}

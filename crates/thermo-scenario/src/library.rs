//! The named scenario library: production-shaped traffic as data.
//!
//! Each constructor returns a [`TenantGroup`] (composable into fleets)
//! or a full [`ScenarioSpec`]. Shapes are deliberately small — a few MB
//! per tenant, millisecond-scale phases — so O(1000)-tenant sweeps stay
//! in smoke-test territory; the *shapes* (skew, growth, spikes,
//! thrash) are what exercise the policies, not the absolute sizes.
//!
//! The named entry points (`named`) are:
//!
//! | name             | shape                                              |
//! |------------------|----------------------------------------------------|
//! | `diurnal`        | day/night phase cycle over hot + archive regions   |
//! | `flash-crowd`    | calm → 16x request spike → recovery                |
//! | `memtable-storm` | sawtooth Memtable growth + compaction, SSTable reads |
//! | `antagonist`     | streaming scan thrashing the fast tier             |
//! | `failover`       | mid-run step-doubling of the footprint             |
//! | `table2`         | the six paper applications, one tenant each        |
//! | `fleet`          | 256-tenant mix of the five shapes above            |
//! | `storm`          | 32-tenant co-schedulable contention mix            |

use crate::spec::{
    ArrivalSpec, GrowthSpec, MixEntry, PatternSpec, PhaseSpec, PhasedSpec, RegionDecl,
    ScenarioSpec, TenantGroup, WorkloadSpec,
};
use thermo_workloads::AppId;

const KB: u64 = 1 << 10;
const MB: u64 = 1 << 20;
/// One "scenario hour": the base phase length every shape is built from.
/// Virtual milliseconds, so a full diurnal cycle fits in a smoke run.
/// Public so harnesses can pin run durations and policy periods in the
/// same unit the shapes are authored in.
pub const HOUR_NS: u64 = 2_000_000;

fn region(name: &str, bytes: u64, pattern: PatternSpec) -> RegionDecl {
    RegionDecl {
        name: name.to_string(),
        bytes,
        pattern,
        thp: true,
        file_backed: false,
        grow: None,
    }
}

fn mix(region: &str, weight: u32, write_pct: u8, lines_per_op: u32) -> MixEntry {
    MixEntry {
        region: region.to_string(),
        weight,
        write_pct,
        lines_per_op,
    }
}

fn phase(name: &str, duration_ns: u64, rate_pct: u32, mix: Vec<MixEntry>) -> PhaseSpec {
    PhaseSpec {
        name: name.to_string(),
        duration_ns,
        rate_pct,
        mix,
    }
}

/// Diurnal load: daytime traffic hammers a hot set; at night the rate
/// drops to a fifth and shifts toward the archive, so yesterday's hot
/// pages go cold and a good policy demotes them before the next day.
pub fn diurnal_group(count: u32) -> TenantGroup {
    TenantGroup {
        name: "diurnal".to_string(),
        count,
        read_pct: 95,
        slo_pct: 3.0,
        arrival: ArrivalSpec::IMMEDIATE,
        workload: WorkloadSpec::Phased(PhasedSpec {
            compute_ns: 800,
            repeat: true,
            regions: vec![
                region("hot", MB, PatternSpec::Zipfian { theta: 0.9 }),
                region("archive", 2 * MB, PatternSpec::Uniform),
            ],
            phases: vec![
                phase(
                    "day",
                    2 * HOUR_NS,
                    100,
                    vec![mix("hot", 9, 10, 1), mix("archive", 1, 0, 1)],
                ),
                phase(
                    "night",
                    2 * HOUR_NS,
                    20,
                    vec![mix("hot", 1, 5, 1), mix("archive", 4, 0, 2)],
                ),
            ],
        }),
    }
}

/// Flash crowd: long calm, a 16x request spike concentrated on the hot
/// keys, then recovery — Jenga's responsiveness-without-thrashing regime.
pub fn flash_crowd_group(count: u32) -> TenantGroup {
    TenantGroup {
        name: "flash".to_string(),
        count,
        read_pct: 95,
        slo_pct: 5.0,
        arrival: ArrivalSpec::IMMEDIATE,
        workload: WorkloadSpec::Phased(PhasedSpec {
            compute_ns: 800,
            repeat: false,
            regions: vec![region(
                "store",
                MB + 512 * KB,
                PatternSpec::Hotspot {
                    hot_key_fraction: 0.001,
                    hot_traffic_fraction: 0.9,
                },
            )],
            phases: vec![
                phase("calm", 2 * HOUR_NS, 50, vec![mix("store", 1, 10, 1)]),
                phase("spike", HOUR_NS, 800, vec![mix("store", 1, 10, 1)]),
                phase("recover", 2 * HOUR_NS, 50, vec![mix("store", 1, 10, 1)]),
            ],
        }),
    }
}

/// Memtable growth + compaction storm: a write-heavy Memtable fills in a
/// sawtooth (compaction resets the window every cycle) while SSTable
/// reads stream from a file-backed region — Cassandra's §4.3 behaviour
/// as a reusable shape.
pub fn memtable_storm_group(count: u32) -> TenantGroup {
    TenantGroup {
        name: "memtable".to_string(),
        count,
        read_pct: 50,
        slo_pct: 5.0,
        arrival: ArrivalSpec::IMMEDIATE,
        workload: WorkloadSpec::Phased(PhasedSpec {
            compute_ns: 800,
            repeat: true,
            regions: vec![
                RegionDecl {
                    name: "memtable".to_string(),
                    bytes: MB,
                    pattern: PatternSpec::Zipfian { theta: 0.9 },
                    thp: true,
                    file_backed: false,
                    grow: Some(GrowthSpec {
                        start_bytes: 128 * KB,
                        full_at_ns: 2 * HOUR_NS,
                        reset_period_ns: 2 * HOUR_NS + HOUR_NS / 2,
                        step: false,
                    }),
                },
                RegionDecl {
                    name: "sstables".to_string(),
                    bytes: 2 * MB,
                    pattern: PatternSpec::Uniform,
                    thp: true,
                    file_backed: true,
                    grow: None,
                },
            ],
            phases: vec![phase(
                "churn",
                HOUR_NS,
                100,
                vec![mix("memtable", 7, 80, 1), mix("sstables", 3, 0, 2)],
            )],
        }),
    }
}

/// Antagonist: a streaming scan with writes over a footprint bigger than
/// any reasonable hot set, at 3x rate — the tenant that thrashes a
/// shared fast tier if arbitration lets it.
pub fn antagonist_group(count: u32) -> TenantGroup {
    TenantGroup {
        name: "antagonist".to_string(),
        count,
        read_pct: 50,
        slo_pct: 30.0,
        arrival: ArrivalSpec::IMMEDIATE,
        workload: WorkloadSpec::Phased(PhasedSpec {
            compute_ns: 800,
            repeat: true,
            regions: vec![region("scan", 4 * MB, PatternSpec::Sequential)],
            phases: vec![phase("thrash", HOUR_NS, 300, vec![mix("scan", 1, 50, 8)])],
        }),
    }
}

/// Mid-run failover: a steady Zipfian tenant whose footprint window
/// step-doubles at `full_at_ns` — the moment it inherits a failed peer's
/// shard. Instances stagger by 1/16 hour so a fleet's failovers spread
/// across the run instead of landing on one tick.
pub fn failover_group(count: u32, full_at_ns: u64) -> TenantGroup {
    TenantGroup {
        name: "failover".to_string(),
        count,
        read_pct: 90,
        slo_pct: 3.0,
        arrival: ArrivalSpec {
            start_ns: 0,
            stagger_ns: HOUR_NS / 16,
        },
        workload: WorkloadSpec::Phased(PhasedSpec {
            compute_ns: 800,
            repeat: true,
            regions: vec![RegionDecl {
                name: "shard".to_string(),
                bytes: 2 * MB,
                pattern: PatternSpec::Zipfian { theta: 0.95 },
                thp: true,
                file_backed: false,
                grow: Some(GrowthSpec {
                    start_bytes: MB,
                    full_at_ns,
                    reset_period_ns: 0,
                    step: true,
                }),
            }],
            phases: vec![phase("serve", HOUR_NS, 100, vec![mix("shard", 1, 10, 1)])],
        }),
    }
}

/// The paper's Table-2 applications as a scenario: one tenant per app,
/// in registry order, everything at the defaults the hand-written
/// harnesses use — compiled streams are byte-identical to
/// `AppId::build`.
pub fn table2() -> ScenarioSpec {
    ScenarioSpec {
        name: "table2".to_string(),
        seed_salt: 0,
        groups: AppId::ALL
            .iter()
            .map(|app| TenantGroup {
                name: app.to_string(),
                count: 1,
                read_pct: 95,
                slo_pct: 3.0,
                arrival: ArrivalSpec::IMMEDIATE,
                workload: WorkloadSpec::App {
                    app: app.to_string(),
                },
            })
            .collect(),
    }
}

/// The 256-tenant fleet mix: every shape above, sized like a production
/// cell (mostly steady serving, a band of spiky and growing tenants, a
/// few antagonists). `scen_fleet` runs four of these — one per policy.
pub fn fleet() -> ScenarioSpec {
    ScenarioSpec {
        name: "fleet".to_string(),
        seed_salt: 0xf1ee7,
        groups: vec![
            diurnal_group(96),
            flash_crowd_group(48),
            memtable_storm_group(48),
            failover_group(48, 2 * HOUR_NS),
            antagonist_group(16),
        ],
    }
}

/// The 32-tenant contention mix for the co-scheduled arbiter run
/// (`scen_storm`): antagonists squeeze a shared pool while growing and
/// spiking tenants need capacity mid-run.
pub fn storm() -> ScenarioSpec {
    ScenarioSpec {
        name: "storm".to_string(),
        seed_salt: 0x5702,
        groups: vec![
            diurnal_group(10),
            flash_crowd_group(8),
            memtable_storm_group(8),
            failover_group(4, 4 * HOUR_NS),
            antagonist_group(2),
        ],
    }
}

/// Looks up a library scenario by name.
pub fn named(name: &str) -> Option<ScenarioSpec> {
    let single = |group: TenantGroup| ScenarioSpec {
        name: name.to_string(),
        seed_salt: 0x11b,
        groups: vec![group],
    };
    match name {
        "diurnal" => Some(single(diurnal_group(1))),
        "flash-crowd" => Some(single(flash_crowd_group(1))),
        "memtable-storm" => Some(single(memtable_storm_group(1))),
        "antagonist" => Some(single(antagonist_group(1))),
        "failover" => Some(single(failover_group(1, 4 * HOUR_NS))),
        "table2" => Some(table2()),
        "fleet" => Some(fleet()),
        "storm" => Some(storm()),
        _ => None,
    }
}

/// All library scenario names, for docs and CLI listings.
pub const NAMES: [&str; 8] = [
    "diurnal",
    "flash-crowd",
    "memtable-storm",
    "antagonist",
    "failover",
    "table2",
    "fleet",
    "storm",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use thermo_util::json::{decode, encode};

    #[test]
    fn every_named_scenario_validates_and_compiles() {
        for name in NAMES {
            let spec = named(name).unwrap_or_else(|| panic!("missing scenario {name}"));
            let c = compile(&spec).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(c.n_tenants() > 0, "{name} has tenants");
        }
        assert!(named("nope").is_none());
    }

    #[test]
    fn named_scenarios_roundtrip_through_json() {
        for name in NAMES {
            let spec = named(name).unwrap();
            let text = encode(&spec);
            let back: ScenarioSpec = decode(&text).unwrap();
            assert_eq!(spec, back, "{name} JSON roundtrip");
        }
    }

    #[test]
    fn fleet_and_storm_have_the_advertised_scale() {
        assert_eq!(fleet().n_tenants(), 256);
        assert_eq!(storm().n_tenants(), 32);
    }

    #[test]
    fn table2_matches_registry_order() {
        let spec = table2();
        assert_eq!(spec.groups.len(), AppId::ALL.len());
        for (g, app) in spec.groups.iter().zip(AppId::ALL.iter()) {
            assert_eq!(g.name, app.to_string());
        }
    }
}

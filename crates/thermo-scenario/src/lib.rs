//! Declarative colocation scenarios for the Thermostat evaluation.
//!
//! A [`ScenarioSpec`] describes a fleet of tenants as data: groups of
//! identical tenants, each a composition of **phases** (day/night,
//! calm/spike) × **access skew** (uniform, Zipfian, hotspot, sequential)
//! × **footprint growth** (linear, sawtooth, step) × **read/write mix**
//! × **arrival pattern** (immediate, staggered). Specs round-trip
//! through the in-tree ordered-JSON codec with no external
//! dependencies, and [`compile`] lowers a spec into the flat shard
//! order the sharded ([`thermo-exec`]) and co-scheduled (PR-7 arbiter)
//! runners consume. Tenant streams are seeded with
//! [`decide::tenant_stream_seed`] — a pure function of
//! `(base_seed, seed_salt, tenant)` — so a compiled scenario is
//! byte-identical across worker counts and schedules.
//!
//! The [`library`] module ships the named scenarios the bench harness
//! runs (`diurnal`, `flash-crowd`, `memtable-storm`, `antagonist`,
//! `failover`, `table2`, `fleet`, `storm`).
//!
//! ```
//! use thermo_scenario::{compile, library};
//!
//! let spec = library::named("storm").unwrap();
//! let compiled = compile(&spec).unwrap();
//! assert_eq!(compiled.n_tenants(), 32);
//! // Shard 3's workload, seeded for run seed 7 — deterministic.
//! let seed = compiled.tenant_seed(7, 3);
//! let w = compiled.build_workload(3, seed, 512);
//! assert!(w.footprint().anon_bytes > 0);
//! ```

#![warn(missing_docs)]

pub mod compile;
pub mod decide;
pub mod library;
pub mod phased;
pub mod spec;

pub use compile::{compile, CompiledScenario, CompiledTenant};
pub use phased::PhasedWorkload;
pub use spec::{
    ArrivalSpec, GrowthSpec, MixEntry, PatternSpec, PhaseSpec, PhasedSpec, RegionDecl,
    ScenarioSpec, SpecError, TenantGroup, WorkloadSpec,
};

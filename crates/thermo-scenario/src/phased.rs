//! The compiled phased workload: one tenant's deterministic access
//! stream, driven by a [`PhasedSpec`].
//!
//! Mapping discipline: every declared region is mapped at its **declared**
//! size in `init`, so the engine-visible footprint never exceeds the
//! spec's bound (the property the shrinking proptest pins). Growth is
//! modelled through demand paging — a growing region only *warms* its
//! start window at init, and the access window widens over virtual time,
//! faulting fresh pages in exactly when a real Memtable or failover
//! spawn would.
//!
//! Determinism: one xoshiro stream per tenant, seeded from the tenant's
//! derived stream seed; every operation draws region pick → write draw →
//! line draw in that fixed order, so the stream is a pure function of
//! `(spec, seed)` regardless of worker counts or scheduling.

use crate::spec::{GrowthSpec, PatternSpec, PhasedSpec};
use thermo_sim::{Access, Engine, FootprintInfo, Workload};
use thermo_util::rng::{Rng, SeedableRng, SmallRng};
use thermo_workloads::common::Region;
use thermo_workloads::dist::{HotspotDist, KeyDist, ScrambledZipfian, UniformDist};

/// Per-region sampler, built once over the declared (full) line count.
enum LineDist {
    Uniform(UniformDist),
    Zipfian(ScrambledZipfian),
    Hotspot(HotspotDist),
    Sequential,
}

/// A phase with its mix resolved to region indices.
struct ResolvedPhase {
    /// Cumulative start within the schedule.
    start_ns: u64,
    /// `compute_ns * 100 / rate_pct`, clamped to >= 1.
    effective_compute_ns: u64,
    total_weight: u32,
    /// (region index, weight, write_pct, lines_per_op)
    mix: Vec<(usize, u32, u8, u32)>,
}

/// A [`Workload`] compiled from a [`PhasedSpec`].
pub struct PhasedWorkload {
    name: String,
    spec: PhasedSpec,
    start_ns: u64,
    rng: SmallRng,
    regions: Vec<Region>,
    dists: Vec<LineDist>,
    cursors: Vec<u64>,
    phases: Vec<ResolvedPhase>,
    schedule_ns: u64,
}

impl PhasedWorkload {
    /// Builds the workload for one tenant. `spec` must already be
    /// validated (the compiler does); `start_ns` is this tenant's
    /// arrival time and `seed` its derived stream seed.
    ///
    /// # Panics
    ///
    /// Panics on specs that `ScenarioSpec::validate` rejects (empty
    /// regions/phases, zero weights, dangling mix references).
    pub fn new(name: String, spec: PhasedSpec, start_ns: u64, seed: u64) -> Self {
        assert!(
            !spec.regions.is_empty() && !spec.phases.is_empty(),
            "compile validates specs before building workloads"
        );
        let mut phases = Vec::with_capacity(spec.phases.len());
        let mut cursor = 0u64;
        for ph in &spec.phases {
            let mix: Vec<(usize, u32, u8, u32)> = ph
                .mix
                .iter()
                .map(|m| {
                    let idx = spec
                        .regions
                        .iter()
                        .position(|r| r.name == m.region)
                        .expect("validated mix region");
                    (idx, m.weight, m.write_pct, m.lines_per_op)
                })
                .collect();
            let total_weight: u32 = mix.iter().map(|(_, w, _, _)| *w).sum();
            assert!(total_weight > 0, "validated positive phase weight");
            phases.push(ResolvedPhase {
                start_ns: cursor,
                effective_compute_ns: (spec.compute_ns * 100 / ph.rate_pct as u64).max(1),
                total_weight,
                mix,
            });
            cursor += ph.duration_ns;
        }
        Self {
            // Constant salt keeps the scenario stream distinct from the
            // `Synthetic` stream under an equal seed.
            rng: SmallRng::seed_from_u64(seed ^ 0x5ce9_a110),
            cursors: vec![0; spec.regions.len()],
            regions: Vec::new(),
            dists: Vec::new(),
            schedule_ns: cursor,
            name,
            spec,
            start_ns,
            phases,
        }
    }

    /// The mapped region handles (available after `init`).
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Index of the phase active at `t` ns past this tenant's arrival.
    fn phase_index_at(&self, t: u64) -> usize {
        let tp = if self.spec.repeat {
            t % self.schedule_ns
        } else {
            t.min(self.schedule_ns - 1)
        };
        self.phases
            .iter()
            .rposition(|p| tp >= p.start_ns)
            .expect("phase 0 starts at 0")
    }

    /// The accessible window of region `idx` in lines, `t` ns past
    /// arrival: the declared size, shrunk by the growth schedule.
    fn window_lines(&self, idx: usize, t: u64) -> u64 {
        let decl = &self.spec.regions[idx];
        let full = decl.bytes / 64;
        match decl.grow {
            None => full,
            Some(GrowthSpec {
                start_bytes,
                full_at_ns,
                reset_period_ns,
                step,
            }) => {
                let start = start_bytes / 64;
                let te = if reset_period_ns > 0 {
                    t % reset_period_ns
                } else {
                    t
                };
                if te >= full_at_ns {
                    full
                } else if step {
                    start
                } else {
                    // Linear fill; u128 keeps ns * bytes products exact.
                    start + ((full - start) as u128 * te as u128 / full_at_ns as u128) as u64
                }
            }
        }
    }
}

impl Workload for PhasedWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn init(&mut self, engine: &mut Engine) {
        for decl in &self.spec.regions {
            let region = Region::map(engine, decl.bytes, decl.thp, decl.file_backed, &decl.name);
            // Growing regions demand-page beyond their start window later;
            // everything else is fully resident before measurement, like
            // the paper's load phase.
            let warm_bytes = decl.grow.map_or(decl.bytes, |g| g.start_bytes);
            let mut off = 0;
            while off < warm_bytes {
                engine.access(region.base + off, true);
                off += 4096;
            }
            let lines = region.bytes / 64;
            self.dists.push(match decl.pattern {
                PatternSpec::Uniform => LineDist::Uniform(UniformDist::new(lines)),
                PatternSpec::Zipfian { theta } => {
                    LineDist::Zipfian(ScrambledZipfian::with_theta(lines, theta))
                }
                PatternSpec::Hotspot {
                    hot_key_fraction,
                    hot_traffic_fraction,
                } => LineDist::Hotspot(HotspotDist::new(
                    lines,
                    hot_key_fraction,
                    hot_traffic_fraction,
                )),
                PatternSpec::Sequential => LineDist::Sequential,
            });
            self.regions.push(region);
        }
    }

    fn next_op(&mut self, now_ns: u64, accesses: &mut Vec<Access>) -> Option<u64> {
        // Not arrived yet: idle (no accesses) until the start time.
        if now_ns < self.start_ns {
            return Some(self.start_ns - now_ns);
        }
        let t = now_ns - self.start_ns;
        let p = self.phase_index_at(t);

        // Draw order is part of the golden contract: region pick, write
        // draw, line draw. Field-projected borrows keep `rng` disjoint
        // from the phase table.
        let mut pick = self.rng.gen_range(0..self.phases[p].total_weight);
        let mut chosen = self.phases[p].mix[0];
        for m in &self.phases[p].mix {
            if pick < m.1 {
                chosen = *m;
                break;
            }
            pick -= m.1;
        }
        let (idx, _, write_pct, lines_per_op) = chosen;
        let write = self.rng.gen_range(0..100u8) < write_pct;
        let window = self.window_lines(idx, t);
        let line = match &self.dists[idx] {
            LineDist::Uniform(d) => d.sample(&mut self.rng) % window,
            LineDist::Zipfian(d) => d.sample(&mut self.rng) % window,
            LineDist::Hotspot(d) => d.sample(&mut self.rng) % window,
            LineDist::Sequential => {
                let c = self.cursors[idx] % window;
                self.cursors[idx] = c + 1;
                c
            }
        };
        let region = self.regions[idx];
        let window_bytes = window * 64;
        for l in 0..lines_per_op as u64 {
            // Wrap within the *window*, not the declared size, so growth
            // alone widens the touched set.
            let va = region.base + ((line + l) * 64) % window_bytes;
            accesses.push(if write {
                Access::write(va)
            } else {
                Access::read(va)
            });
        }
        Some(self.phases[p].effective_compute_ns)
    }

    fn footprint(&self) -> FootprintInfo {
        FootprintInfo {
            anon_bytes: self.spec.anon_bytes(),
            file_bytes: self.spec.file_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{MixEntry, PhaseSpec, RegionDecl};
    use thermo_sim::{run_ops, NoPolicy, SimConfig};

    const PAGE: u64 = 4096;

    fn engine() -> Engine {
        Engine::new(SimConfig::paper_defaults(64 << 20, 64 << 20))
    }

    fn region(name: &str, pages: u64, pattern: PatternSpec) -> RegionDecl {
        RegionDecl {
            name: name.to_string(),
            bytes: pages * PAGE,
            pattern,
            thp: true,
            file_backed: false,
            grow: None,
        }
    }

    fn mix(region: &str, weight: u32) -> MixEntry {
        MixEntry {
            region: region.to_string(),
            weight,
            write_pct: 10,
            lines_per_op: 1,
        }
    }

    fn two_phase_spec() -> PhasedSpec {
        PhasedSpec {
            compute_ns: 500,
            repeat: true,
            regions: vec![
                region("hot", 128, PatternSpec::Uniform),
                region("archive", 256, PatternSpec::Zipfian { theta: 0.9 }),
            ],
            phases: vec![
                PhaseSpec {
                    name: "day".to_string(),
                    duration_ns: 1_000_000,
                    rate_pct: 100,
                    mix: vec![mix("hot", 1)],
                },
                PhaseSpec {
                    name: "night".to_string(),
                    duration_ns: 1_000_000,
                    rate_pct: 10,
                    mix: vec![mix("archive", 1)],
                },
            ],
        }
    }

    #[test]
    fn maps_all_regions_at_declared_size() {
        let mut e = engine();
        let mut w = PhasedWorkload::new("t".to_string(), two_phase_spec(), 0, 1);
        w.init(&mut e);
        assert_eq!(e.rss_bytes(), (128 + 256) * PAGE);
        assert_eq!(w.regions().len(), 2);
        let fp = w.footprint();
        assert_eq!(fp.anon_bytes, (128 + 256) * PAGE);
        assert_eq!(fp.file_bytes, 0);
    }

    #[test]
    fn phases_switch_mix_and_rate() {
        let mut w = PhasedWorkload::new("t".to_string(), two_phase_spec(), 0, 1);
        let mut e = engine();
        w.init(&mut e);
        let hot = w.regions()[0];
        let mut acc = Vec::new();
        // Day phase: traffic in `hot` at base rate.
        let cost_day = w.next_op(0, &mut acc).unwrap();
        assert_eq!(cost_day, 500);
        assert!(acc[0].va.0 >= hot.base.0 && acc[0].va.0 < hot.base.0 + hot.bytes);
        // Night phase: 10% rate => 10x the per-op compute, archive traffic.
        acc.clear();
        let cost_night = w.next_op(1_500_000, &mut acc).unwrap();
        assert_eq!(cost_night, 5_000);
        assert!(acc[0].va.0 >= hot.base.0 + hot.bytes);
        // Repeat wraps back into day.
        acc.clear();
        assert_eq!(w.next_op(2_000_001, &mut acc).unwrap(), 500);
    }

    #[test]
    fn clamps_into_last_phase_without_repeat() {
        let mut spec = two_phase_spec();
        spec.repeat = false;
        let mut w = PhasedWorkload::new("t".to_string(), spec, 0, 1);
        let mut e = engine();
        w.init(&mut e);
        let mut acc = Vec::new();
        assert_eq!(w.next_op(50_000_000, &mut acc).unwrap(), 5_000);
    }

    #[test]
    fn arrival_idles_without_accesses() {
        let mut w = PhasedWorkload::new("t".to_string(), two_phase_spec(), 10_000, 1);
        let mut e = engine();
        w.init(&mut e);
        let mut acc = Vec::new();
        let wait = w.next_op(0, &mut acc).unwrap();
        assert_eq!(wait, 10_000);
        assert!(acc.is_empty(), "no traffic before arrival");
        assert!(w.next_op(10_000, &mut acc).is_some());
        assert!(!acc.is_empty());
    }

    #[test]
    fn growth_widens_the_touched_window() {
        let mut spec = two_phase_spec();
        spec.repeat = false;
        spec.regions[0].grow = Some(GrowthSpec {
            start_bytes: 16 * PAGE,
            full_at_ns: 1_000_000,
            reset_period_ns: 0,
            step: false,
        });
        spec.phases[1].mix = vec![mix("hot", 1)]; // keep traffic in the grower
        let mut w = PhasedWorkload::new("t".to_string(), spec, 0, 1);
        let mut e = engine();
        w.init(&mut e);
        // Only the start window is resident at init.
        assert_eq!(e.rss_bytes(), (16 + 256) * PAGE);
        assert_eq!(w.window_lines(0, 0), 16 * PAGE / 64);
        assert_eq!(w.window_lines(0, 500_000), 72 * PAGE / 64);
        assert_eq!(w.window_lines(0, 2_000_000), 128 * PAGE / 64);
        // Window never exceeds the declared bound.
        for t in [0, 123_456, 999_999, 10_000_000] {
            assert!(w.window_lines(0, t) <= 128 * PAGE / 64);
        }
    }

    #[test]
    fn sawtooth_growth_resets() {
        let g = GrowthSpec {
            start_bytes: 16 * PAGE,
            full_at_ns: 800_000,
            reset_period_ns: 1_000_000,
            step: false,
        };
        let mut spec = two_phase_spec();
        spec.regions[0].grow = Some(g);
        let w = PhasedWorkload::new("t".to_string(), spec, 0, 1);
        let full = 128 * PAGE / 64;
        let start = 16 * PAGE / 64;
        assert_eq!(w.window_lines(0, 900_000), full); // past full_at within period
        assert_eq!(w.window_lines(0, 1_000_000), start); // compaction reset
    }

    #[test]
    fn step_growth_jumps_at_failover() {
        let mut spec = two_phase_spec();
        spec.regions[0].grow = Some(GrowthSpec {
            start_bytes: 64 * PAGE,
            full_at_ns: 500_000,
            reset_period_ns: 0,
            step: true,
        });
        let w = PhasedWorkload::new("t".to_string(), spec, 0, 1);
        assert_eq!(w.window_lines(0, 499_999), 64 * PAGE / 64);
        assert_eq!(w.window_lines(0, 500_000), 128 * PAGE / 64);
    }

    #[test]
    fn stream_is_deterministic_in_seed() {
        let mk = || PhasedWorkload::new("t".to_string(), two_phase_spec(), 0, 42);
        let (mut a, mut b) = (mk(), mk());
        let (mut ea, mut eb) = (engine(), engine());
        a.init(&mut ea);
        b.init(&mut eb);
        let (mut va, mut vb) = (Vec::new(), Vec::new());
        for i in 0..5_000u64 {
            va.clear();
            vb.clear();
            let ca = a.next_op(i * 500, &mut va);
            let cb = b.next_op(i * 500, &mut vb);
            assert_eq!(ca, cb);
            assert_eq!(va, vb);
        }
        let mut c = PhasedWorkload::new("t".to_string(), two_phase_spec(), 0, 43);
        let mut ec = engine();
        c.init(&mut ec);
        let mut vc = Vec::new();
        let mut diverged = false;
        for i in 0..100u64 {
            va.clear();
            vc.clear();
            a.next_op(i * 500, &mut va);
            c.next_op(i * 500, &mut vc);
            if va != vc {
                diverged = true;
            }
        }
        assert!(diverged, "different seeds must give different streams");
    }

    #[test]
    fn runs_under_the_engine() {
        let mut e = engine();
        let mut w = PhasedWorkload::new("t".to_string(), two_phase_spec(), 0, 9);
        w.init(&mut e);
        let out = run_ops(&mut e, &mut w, &mut NoPolicy, 10_000);
        assert_eq!(out.ops, 10_000);
        assert!(e.rss_bytes() <= (128 + 256) * PAGE);
    }
}

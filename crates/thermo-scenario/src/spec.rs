//! The scenario specification model: plain data, JSON in and out.
//!
//! A [`ScenarioSpec`] describes a fleet declaratively — tenant groups,
//! each a composition of *phases* (traffic mix over time) × *access
//! skew* (per-region key distribution) × *footprint growth* × *read/write
//! mix* × *arrival pattern*. Specs carry no behaviour: `compile` turns
//! them into deterministic workload streams, and the JSON codec (the
//! in-tree `thermo-util` writer, no external deps) round-trips them
//! byte-for-byte so scenarios can live in files, goldens, and notes.
//!
//! All byte sizes are absolute and must be 4KB-multiples; durations are
//! virtual nanoseconds. A tenant naming a paper application (kind
//! `"app"`) compiles through the `thermo-workloads` registry and is
//! byte-identical to the hand-constructed generator.

use std::fmt;
use std::str::FromStr;
use thermo_util::json::{FromJson, JsonError, ToJson, Value};
use thermo_workloads::AppId;

/// Error produced by spec validation or compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    msg: String,
}

impl SpecError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario spec error: {}", self.msg)
    }
}

impl std::error::Error for SpecError {}

/// A whole scenario: a named fleet of tenant groups.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (report label).
    pub name: String,
    /// Mixed into every tenant's stream seed so two scenarios with equal
    /// shapes still draw distinct streams.
    pub seed_salt: u64,
    /// Tenant groups; tenants enumerate in group order, then instance
    /// order within the group.
    pub groups: Vec<TenantGroup>,
}

/// A group of `count` identically-shaped tenants.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantGroup {
    /// Group name (row label, VMA tag prefix).
    pub name: String,
    /// Number of tenant instances in the group.
    pub count: u32,
    /// YCSB-style read percentage handed to the workload/daemon configs.
    pub read_pct: u8,
    /// Tolerable-slowdown SLO (%) for this group's tenants.
    pub slo_pct: f64,
    /// When the group's instances start issuing traffic.
    pub arrival: ArrivalSpec,
    /// What each instance runs.
    pub workload: WorkloadSpec,
}

/// Arrival pattern: instance `i` starts at `start_ns + i * stagger_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrivalSpec {
    /// Virtual time the first instance starts.
    pub start_ns: u64,
    /// Extra delay per subsequent instance (0 = all at once).
    pub stagger_ns: u64,
}

impl ArrivalSpec {
    /// Everyone starts at t=0.
    pub const IMMEDIATE: ArrivalSpec = ArrivalSpec {
        start_ns: 0,
        stagger_ns: 0,
    };
}

/// What a tenant runs: a pre-baked paper application or a phased
/// composition.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// One of the six Table-2 applications, by registry name
    /// (`"redis"`, `"mysql-tpcc"`, … — aliases accepted).
    App {
        /// Registry name of the application.
        app: String,
    },
    /// A declarative phased workload.
    Phased(PhasedSpec),
}

/// A phased workload: named regions plus a phase schedule over them.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasedSpec {
    /// Base per-operation compute, virtual ns (scaled by each phase's
    /// `rate_pct`).
    pub compute_ns: u64,
    /// Cycle the phase schedule forever (diurnal) instead of clamping
    /// into the last phase once the schedule is exhausted.
    pub repeat: bool,
    /// The memory regions, mapped at their declared `bytes` at init —
    /// the declared sizes are the tenant's footprint bound.
    pub regions: Vec<RegionDecl>,
    /// The phase schedule, in order.
    pub phases: Vec<PhaseSpec>,
}

/// One declared memory region.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionDecl {
    /// Region name (referenced by phase mixes; VMA tag).
    pub name: String,
    /// Declared size in bytes (4KB multiple); also the growth ceiling.
    pub bytes: u64,
    /// Key distribution for accesses into this region.
    pub pattern: PatternSpec,
    /// Map as THP-eligible.
    pub thp: bool,
    /// Map as file-backed (Table-2 accounting).
    pub file_backed: bool,
    /// Footprint growth over time; `None` = fully resident from t=0.
    pub grow: Option<GrowthSpec>,
}

/// Access skew within one region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PatternSpec {
    /// Uniform random lines.
    Uniform,
    /// YCSB scrambled-Zipfian lines.
    Zipfian {
        /// Skew parameter in (0, 1).
        theta: f64,
    },
    /// Hotspot: a key fraction takes a traffic fraction (Redis-style).
    Hotspot {
        /// Fraction of keys that are hot, in (0, 1).
        hot_key_fraction: f64,
        /// Fraction of traffic the hot keys take, in (0, 1).
        hot_traffic_fraction: f64,
    },
    /// Sequential cursor (streaming scan); wraps around.
    Sequential,
}

/// Footprint growth: the touched window expands from `start_bytes` to the
/// region's declared `bytes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrowthSpec {
    /// Initial touched window, bytes (4KB multiple, ≤ declared bytes).
    pub start_bytes: u64,
    /// Virtual ns after the tenant's arrival at which the window reaches
    /// the declared size.
    pub full_at_ns: u64,
    /// If nonzero, the growth clock wraps with this period — a sawtooth
    /// (Memtable fill + compaction flush). 0 = grow once.
    pub reset_period_ns: u64,
    /// Step instead of linear growth: the window jumps from
    /// `start_bytes` straight to `bytes` at `full_at_ns` (mid-run
    /// failover doubling a tenant's footprint).
    pub step: bool,
}

/// One phase of the schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Phase name (for docs/traces).
    pub name: String,
    /// Phase length, virtual ns.
    pub duration_ns: u64,
    /// Traffic rate relative to `compute_ns`, percent (100 = base rate,
    /// 10 = one tenth, 1000 = ten-fold spike). Effective per-op compute
    /// is `compute_ns * 100 / rate_pct`.
    pub rate_pct: u32,
    /// Traffic mix over the declared regions during this phase.
    pub mix: Vec<MixEntry>,
}

/// One region's share of a phase's traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct MixEntry {
    /// Declared region name.
    pub region: String,
    /// Relative weight (0 = untouched this phase).
    pub weight: u32,
    /// Percentage of this region's operations that write (0..=100).
    pub write_pct: u8,
    /// Lines touched per operation.
    pub lines_per_op: u32,
}

thermo_util::json_struct!(ScenarioSpec {
    name,
    seed_salt,
    groups
});
thermo_util::json_struct!(TenantGroup {
    name,
    count,
    read_pct,
    slo_pct,
    arrival,
    workload
});
thermo_util::json_struct!(ArrivalSpec {
    start_ns,
    stagger_ns
});
thermo_util::json_struct!(PhasedSpec {
    compute_ns,
    repeat,
    regions,
    phases
});
thermo_util::json_struct!(RegionDecl {
    name,
    bytes,
    pattern,
    thp,
    file_backed,
    grow
});
thermo_util::json_struct!(GrowthSpec {
    start_bytes,
    full_at_ns,
    reset_period_ns,
    step
});
thermo_util::json_struct!(PhaseSpec {
    name,
    duration_ns,
    rate_pct,
    mix
});
thermo_util::json_struct!(MixEntry {
    region,
    weight,
    write_pct,
    lines_per_op
});

// `json_enum!` only covers unit variants; the two data-carrying enums get
// explicit tagged-object codecs (`{"kind": ..., ...fields}`).

impl ToJson for WorkloadSpec {
    fn to_json(&self) -> Value {
        match self {
            WorkloadSpec::App { app } => Value::Obj(vec![
                ("kind".to_string(), Value::Str("app".to_string())),
                ("app".to_string(), Value::Str(app.clone())),
            ]),
            WorkloadSpec::Phased(p) => Value::Obj(vec![
                ("kind".to_string(), Value::Str("phased".to_string())),
                ("phased".to_string(), p.to_json()),
            ]),
        }
    }
}

impl FromJson for WorkloadSpec {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let kind = v
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| JsonError::new("WorkloadSpec: missing `kind`"))?;
        match kind {
            "app" => Ok(WorkloadSpec::App {
                app: String::from_json(
                    v.get("app")
                        .ok_or_else(|| JsonError::new("WorkloadSpec: missing `app`"))?,
                )?,
            }),
            "phased" => Ok(WorkloadSpec::Phased(PhasedSpec::from_json(
                v.get("phased")
                    .ok_or_else(|| JsonError::new("WorkloadSpec: missing `phased`"))?,
            )?)),
            other => Err(JsonError::new(format!(
                "WorkloadSpec: unknown kind `{other}`"
            ))),
        }
    }
}

impl ToJson for PatternSpec {
    fn to_json(&self) -> Value {
        match self {
            PatternSpec::Uniform => Value::Obj(vec![(
                "kind".to_string(),
                Value::Str("uniform".to_string()),
            )]),
            PatternSpec::Zipfian { theta } => Value::Obj(vec![
                ("kind".to_string(), Value::Str("zipfian".to_string())),
                ("theta".to_string(), Value::F64(*theta)),
            ]),
            PatternSpec::Hotspot {
                hot_key_fraction,
                hot_traffic_fraction,
            } => Value::Obj(vec![
                ("kind".to_string(), Value::Str("hotspot".to_string())),
                (
                    "hot_key_fraction".to_string(),
                    Value::F64(*hot_key_fraction),
                ),
                (
                    "hot_traffic_fraction".to_string(),
                    Value::F64(*hot_traffic_fraction),
                ),
            ]),
            PatternSpec::Sequential => Value::Obj(vec![(
                "kind".to_string(),
                Value::Str("sequential".to_string()),
            )]),
        }
    }
}

impl FromJson for PatternSpec {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let kind = v
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| JsonError::new("PatternSpec: missing `kind`"))?;
        let field = |name: &str| -> Result<f64, JsonError> {
            v.get(name)
                .and_then(Value::as_f64)
                .ok_or_else(|| JsonError::new(format!("PatternSpec: missing number `{name}`")))
        };
        match kind {
            "uniform" => Ok(PatternSpec::Uniform),
            "zipfian" => Ok(PatternSpec::Zipfian {
                theta: field("theta")?,
            }),
            "hotspot" => Ok(PatternSpec::Hotspot {
                hot_key_fraction: field("hot_key_fraction")?,
                hot_traffic_fraction: field("hot_traffic_fraction")?,
            }),
            "sequential" => Ok(PatternSpec::Sequential),
            other => Err(JsonError::new(format!(
                "PatternSpec: unknown kind `{other}`"
            ))),
        }
    }
}

const PAGE: u64 = 4096;

impl ScenarioSpec {
    /// Total tenant count across all groups.
    pub fn n_tenants(&self) -> usize {
        self.groups.iter().map(|g| g.count as usize).sum()
    }

    /// Structural validation: every constraint `compile` relies on, with
    /// messages naming the offending group/region/phase.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.name.is_empty() {
            return Err(SpecError::new("scenario name must be nonempty"));
        }
        if self.groups.is_empty() {
            return Err(SpecError::new(format!("{}: no tenant groups", self.name)));
        }
        for g in &self.groups {
            let at = |what: &str| format!("{}/{}: {what}", self.name, g.name);
            if g.count == 0 {
                return Err(SpecError::new(at("count must be >= 1")));
            }
            if g.read_pct > 100 {
                return Err(SpecError::new(at("read_pct must be <= 100")));
            }
            if !(g.slo_pct.is_finite() && g.slo_pct > 0.0) {
                return Err(SpecError::new(at("slo_pct must be finite and > 0")));
            }
            match &g.workload {
                WorkloadSpec::App { app } => {
                    if AppId::from_str(app).is_err() {
                        return Err(SpecError::new(at(&format!("unknown application `{app}`"))));
                    }
                }
                WorkloadSpec::Phased(p) => validate_phased(p, &at)?,
            }
        }
        Ok(())
    }
}

fn validate_phased(p: &PhasedSpec, at: &dyn Fn(&str) -> String) -> Result<(), SpecError> {
    if p.compute_ns == 0 {
        return Err(SpecError::new(at("compute_ns must be >= 1")));
    }
    if p.regions.is_empty() {
        return Err(SpecError::new(at("phased workload needs regions")));
    }
    if p.phases.is_empty() {
        return Err(SpecError::new(at("phased workload needs phases")));
    }
    for r in &p.regions {
        let rat = |what: &str| at(&format!("region `{}`: {what}", r.name));
        if p.regions.iter().filter(|o| o.name == r.name).count() > 1 {
            return Err(SpecError::new(rat("duplicate region name")));
        }
        if r.bytes == 0 || r.bytes % PAGE != 0 {
            return Err(SpecError::new(rat("bytes must be a nonzero 4KB multiple")));
        }
        match r.pattern {
            PatternSpec::Zipfian { theta } => {
                if !(theta > 0.0 && theta < 1.0) {
                    return Err(SpecError::new(rat("zipfian theta must be in (0,1)")));
                }
            }
            PatternSpec::Hotspot {
                hot_key_fraction,
                hot_traffic_fraction,
            } => {
                for f in [hot_key_fraction, hot_traffic_fraction] {
                    if !(f > 0.0 && f < 1.0) {
                        return Err(SpecError::new(rat("hotspot fractions must be in (0,1)")));
                    }
                }
            }
            PatternSpec::Uniform | PatternSpec::Sequential => {}
        }
        if let Some(gr) = &r.grow {
            if gr.start_bytes == 0 || gr.start_bytes % PAGE != 0 || gr.start_bytes > r.bytes {
                return Err(SpecError::new(rat(
                    "grow.start_bytes must be a nonzero 4KB multiple <= bytes",
                )));
            }
            if gr.full_at_ns == 0 {
                return Err(SpecError::new(rat("grow.full_at_ns must be >= 1")));
            }
        }
    }
    for ph in &p.phases {
        let pat = |what: &str| at(&format!("phase `{}`: {what}", ph.name));
        if ph.duration_ns == 0 {
            return Err(SpecError::new(pat("duration_ns must be >= 1")));
        }
        if ph.rate_pct == 0 || ph.rate_pct > 10_000 {
            return Err(SpecError::new(pat("rate_pct must be in 1..=10000")));
        }
        if ph.mix.is_empty() {
            return Err(SpecError::new(pat("mix must be nonempty")));
        }
        if ph.mix.iter().map(|m| m.weight as u64).sum::<u64>() == 0 {
            return Err(SpecError::new(pat("mix needs a positive total weight")));
        }
        for m in &ph.mix {
            if !p.regions.iter().any(|r| r.name == m.region) {
                return Err(SpecError::new(pat(&format!(
                    "mix references undeclared region `{}`",
                    m.region
                ))));
            }
            if m.write_pct > 100 {
                return Err(SpecError::new(pat("write_pct must be <= 100")));
            }
            if m.lines_per_op == 0 || m.lines_per_op > 64 {
                return Err(SpecError::new(pat("lines_per_op must be in 1..=64")));
            }
        }
    }
    Ok(())
}

impl PhasedSpec {
    /// Declared anonymous bytes — the footprint bound for the anon half.
    pub fn anon_bytes(&self) -> u64 {
        self.regions
            .iter()
            .filter(|r| !r.file_backed)
            .map(|r| r.bytes)
            .sum()
    }

    /// Declared file-backed bytes.
    pub fn file_bytes(&self) -> u64 {
        self.regions
            .iter()
            .filter(|r| r.file_backed)
            .map(|r| r.bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermo_util::json::{decode, encode};

    fn tiny_phased() -> PhasedSpec {
        PhasedSpec {
            compute_ns: 500,
            repeat: true,
            regions: vec![RegionDecl {
                name: "hot".to_string(),
                bytes: 64 * PAGE,
                pattern: PatternSpec::Zipfian { theta: 0.9 },
                thp: true,
                file_backed: false,
                grow: None,
            }],
            phases: vec![PhaseSpec {
                name: "steady".to_string(),
                duration_ns: 1_000_000,
                rate_pct: 100,
                mix: vec![MixEntry {
                    region: "hot".to_string(),
                    weight: 1,
                    write_pct: 10,
                    lines_per_op: 2,
                }],
            }],
        }
    }

    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "tiny".to_string(),
            seed_salt: 7,
            groups: vec![
                TenantGroup {
                    name: "apps".to_string(),
                    count: 2,
                    read_pct: 95,
                    slo_pct: 3.0,
                    arrival: ArrivalSpec::IMMEDIATE,
                    workload: WorkloadSpec::App {
                        app: "redis".to_string(),
                    },
                },
                TenantGroup {
                    name: "phased".to_string(),
                    count: 1,
                    read_pct: 90,
                    slo_pct: 10.0,
                    arrival: ArrivalSpec {
                        start_ns: 5_000,
                        stagger_ns: 1_000,
                    },
                    workload: WorkloadSpec::Phased(tiny_phased()),
                },
            ],
        }
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let spec = tiny_spec();
        let text = encode(&spec);
        let back: ScenarioSpec = decode(&text).unwrap();
        assert_eq!(spec, back);
        // Deterministic output: equal specs encode to equal bytes.
        assert_eq!(text, encode(&back));
    }

    #[test]
    fn pattern_codec_covers_all_variants() {
        for p in [
            PatternSpec::Uniform,
            PatternSpec::Zipfian { theta: 0.73 },
            PatternSpec::Hotspot {
                hot_key_fraction: 0.001,
                hot_traffic_fraction: 0.9,
            },
            PatternSpec::Sequential,
        ] {
            let back: PatternSpec = decode(&encode(&p)).unwrap();
            assert_eq!(p, back);
        }
        assert!(decode::<PatternSpec>(r#"{"kind":"wat"}"#).is_err());
    }

    #[test]
    fn validates_good_spec() {
        tiny_spec().validate().unwrap();
        assert_eq!(tiny_spec().n_tenants(), 3);
    }

    #[test]
    fn rejects_bad_specs() {
        let mut s = tiny_spec();
        s.groups.clear();
        assert!(s.validate().is_err());

        let mut s = tiny_spec();
        s.groups[0].workload = WorkloadSpec::App {
            app: "mongodb".to_string(),
        };
        assert!(s.validate().unwrap_err().to_string().contains("mongodb"));

        let mut s = tiny_spec();
        if let WorkloadSpec::Phased(p) = &mut s.groups[1].workload {
            p.regions[0].bytes = 100; // not a page multiple
        }
        assert!(s.validate().is_err());

        let mut s = tiny_spec();
        if let WorkloadSpec::Phased(p) = &mut s.groups[1].workload {
            p.phases[0].mix[0].region = "nope".to_string();
        }
        assert!(s.validate().unwrap_err().to_string().contains("nope"));

        let mut s = tiny_spec();
        if let WorkloadSpec::Phased(p) = &mut s.groups[1].workload {
            p.regions[0].grow = Some(GrowthSpec {
                start_bytes: p.regions[0].bytes + PAGE,
                full_at_ns: 1,
                reset_period_ns: 0,
                step: false,
            });
        }
        assert!(s.validate().is_err());
    }

    #[test]
    fn declared_footprint_sums_by_backing() {
        let mut p = tiny_phased();
        p.regions.push(RegionDecl {
            name: "sstables".to_string(),
            bytes: 32 * PAGE,
            pattern: PatternSpec::Uniform,
            thp: false,
            file_backed: true,
            grow: None,
        });
        assert_eq!(p.anon_bytes(), 64 * PAGE);
        assert_eq!(p.file_bytes(), 32 * PAGE);
    }
}

//! Seed derivation for scenario tenant streams — the crate's only legal
//! home for the seed-splitting primitives (thermo-lint D3,
//! `rng_containment`).
//!
//! Every tenant's stream seed is a pure function of
//! `(base_seed, seed_salt, tenant_index)`: independent of compile order,
//! worker count, and scheduling, which is what makes compiled scenarios
//! byte-identical across `THERMO_JOBS` settings.

use thermo_util::rng::derive_stream_seed;

/// The stream seed for tenant `tenant` of a scenario salted with
/// `seed_salt`, under the run's `base_seed`.
///
/// Matches the seed the sharded/co-scheduled runners hand to shard
/// `tenant` when the runner's base seed is `base_seed ^ seed_salt`, so a
/// scenario can be driven either by the runners or standalone and draw
/// identical streams.
pub fn tenant_stream_seed(base_seed: u64, seed_salt: u64, tenant: u64) -> u64 {
    derive_stream_seed(base_seed ^ seed_salt, tenant)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_and_distinct_per_tenant() {
        let a = tenant_stream_seed(1, 2, 0);
        assert_eq!(a, tenant_stream_seed(1, 2, 0));
        assert_ne!(a, tenant_stream_seed(1, 2, 1));
        assert_ne!(a, tenant_stream_seed(1, 3, 0));
    }
}

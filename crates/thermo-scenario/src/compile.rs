//! Scenario compilation: [`ScenarioSpec`] → a flat, ordered tenant list
//! whose workload streams are pure functions of `(spec, seed)`.
//!
//! Tenants enumerate in group order, then instance order within each
//! group — the enumeration **is** the shard order, so shard `i` of a
//! sharded or co-scheduled run always maps to the same tenant and the
//! merged outcome vector is stable across worker counts.

use crate::phased::PhasedWorkload;
use crate::spec::{ScenarioSpec, SpecError, WorkloadSpec};
use std::str::FromStr;
use thermo_sim::{Access, Engine, FootprintInfo, Workload};
use thermo_workloads::{AppConfig, AppId};

/// What one compiled tenant runs.
#[derive(Debug, Clone)]
enum TenantKind {
    /// A registry application (pre-baked Table-2 spec).
    App(AppId),
    /// A phased composition, by group index into the spec.
    Phased,
}

/// One tenant of a compiled scenario.
#[derive(Clone)]
pub struct CompiledTenant {
    /// Owning group's name.
    pub group: String,
    /// Instance number within the group (0-based).
    pub instance: u32,
    /// Stable row label, `group[instance]`.
    pub label: String,
    /// YCSB-style read percentage.
    pub read_pct: u8,
    /// Tolerable-slowdown SLO (%).
    pub slo_pct: f64,
    /// Arrival time, virtual ns (start + instance * stagger).
    pub start_ns: u64,
    group_idx: usize,
    kind: TenantKind,
}

/// A compiled scenario: the validated spec plus its flat tenant list.
pub struct CompiledScenario {
    spec: ScenarioSpec,
    tenants: Vec<CompiledTenant>,
}

/// Validates and compiles `spec`.
pub fn compile(spec: &ScenarioSpec) -> Result<CompiledScenario, SpecError> {
    spec.validate()?;
    let mut tenants = Vec::with_capacity(spec.n_tenants());
    for (group_idx, g) in spec.groups.iter().enumerate() {
        let kind = match &g.workload {
            WorkloadSpec::App { app } => {
                TenantKind::App(AppId::from_str(app).expect("validated app name"))
            }
            WorkloadSpec::Phased(_) => TenantKind::Phased,
        };
        for instance in 0..g.count {
            tenants.push(CompiledTenant {
                group: g.name.clone(),
                instance,
                label: format!("{}[{instance}]", g.name),
                read_pct: g.read_pct,
                slo_pct: g.slo_pct,
                start_ns: g.arrival.start_ns + g.arrival.stagger_ns * instance as u64,
                group_idx,
                kind: kind.clone(),
            });
        }
    }
    Ok(CompiledScenario {
        spec: spec.clone(),
        tenants,
    })
}

impl CompiledScenario {
    /// The validated source spec.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Number of tenants (= shards).
    pub fn n_tenants(&self) -> usize {
        self.tenants.len()
    }

    /// The compiled tenants, in shard order.
    pub fn tenants(&self) -> &[CompiledTenant] {
        &self.tenants
    }

    /// The stream seed for tenant `tenant` under `base_seed` (see
    /// [`crate::decide::tenant_stream_seed`]).
    pub fn tenant_seed(&self, base_seed: u64, tenant: u64) -> u64 {
        crate::decide::tenant_stream_seed(base_seed, self.spec.seed_salt, tenant)
    }

    /// Builds tenant `shard_id`'s workload with stream seed `seed`.
    /// `scale` is the Table-2 footprint divisor applied to `app`-kind
    /// tenants (phased tenants declare absolute bytes).
    ///
    /// # Panics
    ///
    /// Panics if `shard_id` is out of range.
    pub fn build_workload(&self, shard_id: u64, seed: u64, scale: u64) -> Box<dyn Workload> {
        let t = &self.tenants[shard_id as usize];
        match &t.kind {
            TenantKind::App(app) => {
                let inner = app.build(AppConfig {
                    scale,
                    seed,
                    read_pct: t.read_pct,
                });
                if t.start_ns == 0 {
                    // No gate: byte-identical to the registry-built app.
                    inner
                } else {
                    Box::new(ArrivalGate {
                        start_ns: t.start_ns,
                        inner,
                    })
                }
            }
            TenantKind::Phased => {
                let WorkloadSpec::Phased(p) = &self.spec.groups[t.group_idx].workload else {
                    unreachable!("kind matches group workload");
                };
                Box::new(PhasedWorkload::new(
                    t.label.clone(),
                    p.clone(),
                    t.start_ns,
                    seed,
                ))
            }
        }
    }

    /// Tenant `shard_id`'s declared footprint bound at `scale`:
    /// phased tenants bound by their declared region bytes, app tenants
    /// by the registry's scaled Table-2 sizes (2MB-rounded per region,
    /// so the generous `+ 4MB` slack per app absorbs region rounding).
    pub fn declared_footprint(&self, shard_id: u64, scale: u64) -> FootprintInfo {
        let t = &self.tenants[shard_id as usize];
        match &t.kind {
            TenantKind::App(app) => {
                let cfg = AppConfig {
                    scale,
                    seed: 0,
                    read_pct: t.read_pct,
                };
                FootprintInfo {
                    anon_bytes: cfg.scaled(app.paper_rss_bytes()) + (4 << 20),
                    file_bytes: cfg.scaled(app.paper_file_bytes()) + (4 << 20),
                }
            }
            TenantKind::Phased => {
                let WorkloadSpec::Phased(p) = &self.spec.groups[t.group_idx].workload else {
                    unreachable!("kind matches group workload");
                };
                FootprintInfo {
                    anon_bytes: p.anon_bytes(),
                    file_bytes: p.file_bytes(),
                }
            }
        }
    }
}

/// Delays an application workload's traffic until its arrival time while
/// leaving its stream untouched: before `start_ns` the tenant idles; from
/// `start_ns` on, the inner app sees time relative to its own start (a
/// failover spawn behaves exactly like a fresh instance).
struct ArrivalGate {
    start_ns: u64,
    inner: Box<dyn Workload>,
}

impl Workload for ArrivalGate {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn init(&mut self, engine: &mut Engine) {
        self.inner.init(engine);
    }

    fn next_op(&mut self, now_ns: u64, accesses: &mut Vec<Access>) -> Option<u64> {
        if now_ns < self.start_ns {
            return Some(self.start_ns - now_ns);
        }
        self.inner.next_op(now_ns - self.start_ns, accesses)
    }

    fn footprint(&self) -> FootprintInfo {
        self.inner.footprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{
        ArrivalSpec, MixEntry, PatternSpec, PhaseSpec, PhasedSpec, RegionDecl, TenantGroup,
    };
    use thermo_sim::SimConfig;

    fn spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "compile-test".to_string(),
            seed_salt: 0xabc,
            groups: vec![
                TenantGroup {
                    name: "redis".to_string(),
                    count: 2,
                    read_pct: 90,
                    slo_pct: 3.0,
                    arrival: ArrivalSpec {
                        start_ns: 0,
                        stagger_ns: 1_000,
                    },
                    workload: WorkloadSpec::App {
                        app: "redis".to_string(),
                    },
                },
                TenantGroup {
                    name: "scan".to_string(),
                    count: 3,
                    read_pct: 95,
                    slo_pct: 10.0,
                    arrival: ArrivalSpec::IMMEDIATE,
                    workload: WorkloadSpec::Phased(PhasedSpec {
                        compute_ns: 400,
                        repeat: true,
                        regions: vec![RegionDecl {
                            name: "buf".to_string(),
                            bytes: 256 << 10,
                            pattern: PatternSpec::Sequential,
                            thp: true,
                            file_backed: false,
                            grow: None,
                        }],
                        phases: vec![PhaseSpec {
                            name: "scan".to_string(),
                            duration_ns: 1_000_000,
                            rate_pct: 100,
                            mix: vec![MixEntry {
                                region: "buf".to_string(),
                                weight: 1,
                                write_pct: 50,
                                lines_per_op: 4,
                            }],
                        }],
                    }),
                },
            ],
        }
    }

    #[test]
    fn tenants_enumerate_in_group_then_instance_order() {
        let c = compile(&spec()).unwrap();
        assert_eq!(c.n_tenants(), 5);
        let labels: Vec<&str> = c.tenants().iter().map(|t| t.label.as_str()).collect();
        assert_eq!(
            labels,
            ["redis[0]", "redis[1]", "scan[0]", "scan[1]", "scan[2]"]
        );
        assert_eq!(c.tenants()[1].start_ns, 1_000, "stagger applies");
    }

    #[test]
    fn app_tenant_at_t0_is_byte_identical_to_registry() {
        let c = compile(&spec()).unwrap();
        let seed = c.tenant_seed(7, 42);
        // tenant 42 doesn't exist; seeds are pure functions either way.
        let mut via_scenario = {
            // Rebuild with start 0 (tenant 0's stagger is 0).
            c.build_workload(0, seed, 512)
        };
        let mut via_registry = AppId::Redis.build(AppConfig {
            scale: 512,
            seed,
            read_pct: 90,
        });
        assert_eq!(via_scenario.name(), via_registry.name());
        let cfg = SimConfig::paper_defaults(256 << 20, 256 << 20);
        let mut ea = Engine::new(cfg.clone());
        let mut eb = Engine::new(cfg);
        via_scenario.init(&mut ea);
        via_registry.init(&mut eb);
        assert_eq!(ea.rss_bytes(), eb.rss_bytes());
        let (mut va, mut vb) = (Vec::new(), Vec::new());
        for i in 0..2_000u64 {
            va.clear();
            vb.clear();
            assert_eq!(
                via_scenario.next_op(i * 500, &mut va),
                via_registry.next_op(i * 500, &mut vb)
            );
            assert_eq!(va, vb, "op {i} diverged");
        }
    }

    #[test]
    fn staggered_app_tenant_idles_then_replays_from_zero() {
        let c = compile(&spec()).unwrap();
        let seed = 99;
        let mut gated = c.build_workload(1, seed, 512); // start_ns = 1000
        let mut raw = AppId::Redis.build(AppConfig {
            scale: 512,
            seed,
            read_pct: 90,
        });
        let cfg = SimConfig::paper_defaults(256 << 20, 256 << 20);
        let mut ea = Engine::new(cfg.clone());
        let mut eb = Engine::new(cfg);
        gated.init(&mut ea);
        raw.init(&mut eb);
        let (mut va, mut vb) = (Vec::new(), Vec::new());
        assert_eq!(gated.next_op(0, &mut va), Some(1_000));
        assert!(va.is_empty());
        // From arrival on, the gated stream replays the raw stream.
        assert_eq!(gated.next_op(1_000, &mut va), raw.next_op(0, &mut vb));
        assert_eq!(va, vb);
    }

    #[test]
    fn declared_footprint_bounds_mapped_bytes() {
        let c = compile(&spec()).unwrap();
        for shard in 0..c.n_tenants() as u64 {
            let mut w = c.build_workload(shard, c.tenant_seed(1, shard), 512);
            let mut e = Engine::new(SimConfig::paper_defaults(256 << 20, 256 << 20));
            w.init(&mut e);
            let bound = c.declared_footprint(shard, 512);
            assert!(
                e.rss_bytes() <= bound.anon_bytes + bound.file_bytes,
                "shard {shard}: rss {} above declared bound {}",
                e.rss_bytes(),
                bound.anon_bytes + bound.file_bytes
            );
        }
    }

    #[test]
    fn compile_rejects_invalid_specs() {
        let mut s = spec();
        s.groups[0].count = 0;
        assert!(compile(&s).is_err());
    }
}

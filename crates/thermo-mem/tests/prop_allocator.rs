//! Property-based tests for the frame allocator: no double allocation, full
//! coalescing, and conservation of the used-frame count under arbitrary
//! interleavings of allocs and frees.

use std::collections::HashSet;
use thermo_mem::{FrameAllocator, PageSize, Pfn, PAGES_PER_HUGE};
use thermo_util::forall;
use thermo_util::proptest_lite::{any, frange, vec_of, weighted, Just, Strategy};

#[derive(Debug, Clone)]
enum Action {
    AllocSmall,
    AllocHuge,
    FreeSmall(usize),
    FreeHuge(usize),
}

fn action_strategy() -> impl Strategy<Value = Action> {
    weighted(vec![
        (3, Just(Action::AllocSmall).boxed()),
        (2, Just(Action::AllocHuge).boxed()),
        (2, any::<usize>().prop_map(Action::FreeSmall).boxed()),
        (1, any::<usize>().prop_map(Action::FreeHuge).boxed()),
    ])
}

#[test]
fn allocator_invariants() {
    forall!(cases = 64, (actions in vec_of(action_strategy(), 1..200)) => {
        let blocks = 4u64;
        let mut a = FrameAllocator::new(Pfn(0), blocks * PAGES_PER_HUGE as u64);
        let mut live_small: Vec<Pfn> = Vec::new();
        let mut live_huge: Vec<Pfn> = Vec::new();
        let mut live_set: HashSet<u64> = HashSet::new(); // occupied 4KB frame numbers

        for act in actions {
            match act {
                Action::AllocSmall => {
                    if let Ok(f) = a.alloc(PageSize::Small4K) {
                        assert!(live_set.insert(f.0), "frame {f} double-allocated");
                        live_small.push(f);
                    }
                }
                Action::AllocHuge => {
                    if let Ok(f) = a.alloc(PageSize::Huge2M) {
                        assert!(f.is_huge_aligned());
                        for i in 0..PAGES_PER_HUGE as u64 {
                            assert!(live_set.insert(f.0 + i), "huge frame overlaps live frame");
                        }
                        live_huge.push(f);
                    }
                }
                Action::FreeSmall(i) => {
                    if !live_small.is_empty() {
                        let f = live_small.swap_remove(i % live_small.len());
                        a.free(f, PageSize::Small4K);
                        live_set.remove(&f.0);
                    }
                }
                Action::FreeHuge(i) => {
                    if !live_huge.is_empty() {
                        let f = live_huge.swap_remove(i % live_huge.len());
                        a.free(f, PageSize::Huge2M);
                        for j in 0..PAGES_PER_HUGE as u64 {
                            live_set.remove(&(f.0 + j));
                        }
                    }
                }
            }
            // Conservation: stats agree with our model.
            assert_eq!(a.stats().used_frames as usize, live_set.len());
        }

        // Free everything: allocator must coalesce back to fully-free state.
        for f in live_small {
            a.free(f, PageSize::Small4K);
        }
        for f in live_huge {
            a.free(f, PageSize::Huge2M);
        }
        assert_eq!(a.stats().used_frames, 0);
        assert_eq!(a.free_huge_blocks(), blocks);
    });
}

#[test]
fn cost_model_savings_monotone_in_cold_fraction() {
    forall!(cases = 64,
        (ratio in frange(0.05f64..1.0)),
        (c1 in frange(0.0f64..1.0)),
        (c2 in frange(0.0f64..1.0)) => {
        let m = thermo_mem::CostModel::new(ratio);
        let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        assert!(m.evaluate(lo).savings_fraction <= m.evaluate(hi).savings_fraction + 1e-12);
        // Spend + savings == 1.
        let r = m.evaluate(c1);
        assert!((r.relative_spend + r.savings_fraction - 1.0).abs() < 1e-12);
    });
}

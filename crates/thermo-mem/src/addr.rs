//! Typed addresses and page-size arithmetic.
//!
//! The whole reproduction works in the x86-64 regime the paper assumes:
//! 4KB base pages, 2MB huge pages (512 base pages), 64-byte cache lines.
//! Newtypes keep virtual addresses, physical addresses, virtual page numbers
//! and physical frame numbers from being mixed up (the classic source of
//! bugs in memory-management code).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Bytes in a 4KB base page.
pub const SMALL_PAGE_BYTES: usize = 4096;
/// Bytes in a 2MB huge page.
pub const HUGE_PAGE_BYTES: usize = 2 * 1024 * 1024;
/// Number of 4KB pages per 2MB huge page.
pub const PAGES_PER_HUGE: usize = HUGE_PAGE_BYTES / SMALL_PAGE_BYTES;
/// Bytes in a cache line.
pub const CACHE_LINE_BYTES: usize = 64;

const SMALL_SHIFT: u32 = 12;
const HUGE_SHIFT: u32 = 21;

/// Page granularity: the paper's mechanism is explicitly *huge-page-aware*
/// and manipulates both sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PageSize {
    /// 4KB base page.
    Small4K,
    /// 2MB huge page.
    Huge2M,
}

impl PageSize {
    /// Size in bytes.
    pub const fn bytes(self) -> usize {
        match self {
            PageSize::Small4K => SMALL_PAGE_BYTES,
            PageSize::Huge2M => HUGE_PAGE_BYTES,
        }
    }

    /// log2 of the size in bytes (12 or 21).
    pub const fn shift(self) -> u32 {
        match self {
            PageSize::Small4K => SMALL_SHIFT,
            PageSize::Huge2M => HUGE_SHIFT,
        }
    }

    /// Number of 4KB frames this page occupies (1 or 512).
    pub const fn small_pages(self) -> usize {
        match self {
            PageSize::Small4K => 1,
            PageSize::Huge2M => PAGES_PER_HUGE,
        }
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Small4K => write!(f, "4KB"),
            PageSize::Huge2M => write!(f, "2MB"),
        }
    }
}

/// A virtual address in the simulated process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(pub u64);

/// A physical address in the simulated two-tier memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

/// A virtual page number: a [`VirtAddr`] shifted down by 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vpn(pub u64);

/// A physical frame number: a [`PhysAddr`] shifted down by 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pfn(pub u64);

impl VirtAddr {
    /// The virtual page number containing this address.
    pub const fn vpn(self) -> Vpn {
        Vpn(self.0 >> SMALL_SHIFT)
    }

    /// The 2MB-aligned virtual page number of the huge page containing this
    /// address (still expressed in 4KB units, i.e. a multiple of 512).
    pub const fn huge_vpn(self) -> Vpn {
        Vpn((self.0 >> HUGE_SHIFT) << (HUGE_SHIFT - SMALL_SHIFT))
    }

    /// Byte offset within the containing 4KB page.
    pub const fn page_offset(self) -> u64 {
        self.0 & (SMALL_PAGE_BYTES as u64 - 1)
    }

    /// True if 2MB-aligned.
    pub const fn is_huge_aligned(self) -> bool {
        self.0 & (HUGE_PAGE_BYTES as u64 - 1) == 0
    }

    /// Rounds down to the containing page of `size`.
    pub const fn align_down(self, size: PageSize) -> VirtAddr {
        VirtAddr(self.0 & !(size.bytes() as u64 - 1))
    }

    /// Rounds up to the next boundary of `size` (identity if aligned).
    pub const fn align_up(self, size: PageSize) -> VirtAddr {
        let mask = size.bytes() as u64 - 1;
        VirtAddr((self.0 + mask) & !mask)
    }
}

impl Add<u64> for VirtAddr {
    type Output = VirtAddr;
    fn add(self, rhs: u64) -> VirtAddr {
        VirtAddr(self.0 + rhs)
    }
}

impl AddAssign<u64> for VirtAddr {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<VirtAddr> for VirtAddr {
    type Output = u64;
    fn sub(self, rhs: VirtAddr) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "va:{:#x}", self.0)
    }
}

impl fmt::LowerHex for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl PhysAddr {
    /// The physical frame number containing this address.
    pub const fn pfn(self) -> Pfn {
        Pfn(self.0 >> SMALL_SHIFT)
    }

    /// The cache-line index of this address (64-byte lines).
    pub const fn cache_line(self) -> u64 {
        self.0 / CACHE_LINE_BYTES as u64
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pa:{:#x}", self.0)
    }
}

impl Vpn {
    /// First byte address of this page.
    pub const fn addr(self) -> VirtAddr {
        VirtAddr(self.0 << SMALL_SHIFT)
    }

    /// True if this VPN is the first page of a 2MB-aligned region.
    pub const fn is_huge_aligned(self) -> bool {
        self.0.is_multiple_of(PAGES_PER_HUGE as u64)
    }

    /// VPN of the huge page containing this page (a multiple of 512).
    pub const fn huge_base(self) -> Vpn {
        Vpn(self.0 - self.0 % PAGES_PER_HUGE as u64)
    }

    /// Index of this 4KB page within its 2MB huge page, in `0..512`.
    pub const fn index_in_huge(self) -> usize {
        (self.0 % PAGES_PER_HUGE as u64) as usize
    }

    /// The `i`-th 4KB page after this one.
    pub const fn offset(self, i: u64) -> Vpn {
        Vpn(self.0 + i)
    }
}

impl Add<u64> for Vpn {
    type Output = Vpn;
    fn add(self, rhs: u64) -> Vpn {
        Vpn(self.0 + rhs)
    }
}

impl Sub<Vpn> for Vpn {
    type Output = u64;
    fn sub(self, rhs: Vpn) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vpn:{:#x}", self.0)
    }
}

impl Pfn {
    /// First byte address of this frame.
    pub const fn addr(self) -> PhysAddr {
        PhysAddr(self.0 << SMALL_SHIFT)
    }

    /// True if this PFN starts a 2MB-aligned frame run.
    pub const fn is_huge_aligned(self) -> bool {
        self.0.is_multiple_of(PAGES_PER_HUGE as u64)
    }

    /// The `i`-th 4KB frame after this one.
    pub const fn offset(self, i: u64) -> Pfn {
        Pfn(self.0 + i)
    }
}

impl Add<u64> for Pfn {
    type Output = Pfn;
    fn add(self, rhs: u64) -> Pfn {
        Pfn(self.0 + rhs)
    }
}

impl fmt::Display for Pfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfn:{:#x}", self.0)
    }
}

/// Translates a virtual address to a physical address given the frame that
/// backs its page of size `size`.
///
/// The frame must be the base frame of the page (huge-aligned for 2MB pages).
pub fn translate(va: VirtAddr, base_frame: Pfn, size: PageSize) -> PhysAddr {
    let offset = va.0 & (size.bytes() as u64 - 1);
    PhysAddr(base_frame.addr().0 + offset)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_constants_consistent() {
        assert_eq!(PageSize::Small4K.bytes(), 1 << PageSize::Small4K.shift());
        assert_eq!(PageSize::Huge2M.bytes(), 1 << PageSize::Huge2M.shift());
        assert_eq!(PageSize::Huge2M.small_pages(), 512);
        assert_eq!(PageSize::Small4K.small_pages(), 1);
    }

    #[test]
    fn vpn_roundtrip() {
        let va = VirtAddr(0x7f00_1234_5678);
        assert_eq!(va.vpn().addr().0, va.0 & !0xfff);
        assert_eq!(va.page_offset(), 0x678);
    }

    #[test]
    fn huge_vpn_is_512_aligned() {
        let va = VirtAddr(0x4030_2010);
        let h = va.huge_vpn();
        assert!(h.is_huge_aligned());
        assert_eq!(h, va.vpn().huge_base());
    }

    #[test]
    fn index_in_huge_covers_full_range() {
        let base = VirtAddr(2 * HUGE_PAGE_BYTES as u64);
        assert_eq!(base.vpn().index_in_huge(), 0);
        let last = VirtAddr(base.0 + HUGE_PAGE_BYTES as u64 - 1);
        assert_eq!(last.vpn().index_in_huge(), 511);
    }

    #[test]
    fn align_up_down() {
        let va = VirtAddr(HUGE_PAGE_BYTES as u64 + 5);
        assert_eq!(va.align_down(PageSize::Huge2M).0, HUGE_PAGE_BYTES as u64);
        assert_eq!(va.align_up(PageSize::Huge2M).0, 2 * HUGE_PAGE_BYTES as u64);
        let aligned = VirtAddr(HUGE_PAGE_BYTES as u64);
        assert_eq!(aligned.align_up(PageSize::Huge2M), aligned);
    }

    #[test]
    fn translate_small_and_huge() {
        let va = VirtAddr(0x20_0123);
        let pa = translate(va, Pfn(0x500), PageSize::Small4K);
        assert_eq!(pa.0, (0x500 << 12) + 0x123);

        let va = VirtAddr(0x60_1234); // within huge page [0x40_0000, 0x80_0000)
        let pa = translate(va, Pfn(512), PageSize::Huge2M); // frame base = 2MB
        assert_eq!(pa.0, (512 << 12) + (va.0 & (HUGE_PAGE_BYTES as u64 - 1)));
    }

    #[test]
    fn cache_line_arithmetic() {
        assert_eq!(PhysAddr(0).cache_line(), 0);
        assert_eq!(PhysAddr(63).cache_line(), 0);
        assert_eq!(PhysAddr(64).cache_line(), 1);
    }

    #[test]
    fn display_impls_nonempty() {
        assert!(!format!("{}", VirtAddr(1)).is_empty());
        assert!(!format!("{}", PhysAddr(1)).is_empty());
        assert!(!format!("{}", Vpn(1)).is_empty());
        assert!(!format!("{}", Pfn(1)).is_empty());
        assert_eq!(format!("{}", PageSize::Huge2M), "2MB");
    }
}

thermo_util::json_newtype!(VirtAddr);
thermo_util::json_newtype!(Vpn);
thermo_util::json_newtype!(Pfn);

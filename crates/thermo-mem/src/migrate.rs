//! Page-migration accounting and cost model.
//!
//! Thermostat migrates cold pages to slow memory (§3.6, via the guest NUMA
//! mechanism) and migrates mis-classified pages back (§3.5). Table 3 of the
//! paper reports the resulting *migration rate* and *false-classification
//! rate* in MB/s and argues both are far below slow-memory bandwidth. This
//! module provides the engine that charges migration costs and keeps those
//! statistics.
//!
//! The actual remapping (frame allocation, PTE update, TLB shootdown) is
//! performed by the simulator's MMU layer; this engine is the accounting and
//! latency authority.

use crate::addr::PageSize;
use crate::tier::Tier;
use std::fmt;

/// Direction/intent of a migration, matching Table 3's two columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MigrationKind {
    /// A page classified cold being demoted to slow memory.
    ToSlow,
    /// A page brought back to fast memory by the §3.5 correction mechanism,
    /// i.e. a false classification (or a page whose behaviour changed).
    BackToFast,
}

impl fmt::Display for MigrationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrationKind::ToSlow => write!(f, "migration"),
            MigrationKind::BackToFast => write!(f, "false-classification"),
        }
    }
}

/// One completed migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationRecord {
    /// Virtual time at which the migration completed (ns).
    pub at_ns: u64,
    /// Bytes copied.
    pub bytes: u64,
    /// Direction.
    pub kind: MigrationKind,
    /// Page size moved.
    pub size: PageSize,
}

/// Aggregate migration statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MigrationStats {
    /// Pages demoted to slow memory.
    pub to_slow_pages: u64,
    /// Bytes demoted to slow memory.
    pub to_slow_bytes: u64,
    /// Pages promoted back to fast memory.
    pub back_to_fast_pages: u64,
    /// Bytes promoted back to fast memory.
    pub back_to_fast_bytes: u64,
    /// Total time spent copying, in ns.
    pub copy_time_ns: u64,
}

impl MigrationStats {
    /// Average demotion bandwidth over `elapsed_ns`, in MB/s (Table 3 left
    /// column).
    pub fn to_slow_mbps(&self, elapsed_ns: u64) -> f64 {
        rate_mbps(self.to_slow_bytes, elapsed_ns)
    }

    /// Average false-classification bandwidth over `elapsed_ns`, in MB/s
    /// (Table 3 right column).
    pub fn back_to_fast_mbps(&self, elapsed_ns: u64) -> f64 {
        rate_mbps(self.back_to_fast_bytes, elapsed_ns)
    }
}

fn rate_mbps(bytes: u64, elapsed_ns: u64) -> f64 {
    if elapsed_ns == 0 {
        return 0.0;
    }
    (bytes as f64 / 1e6) / (elapsed_ns as f64 / 1e9)
}

/// Charges migration costs and keeps Table 3 statistics.
#[derive(Debug)]
pub struct MigrationEngine {
    /// Copy bandwidth in bytes/sec; a migration of `b` bytes takes
    /// `b / bandwidth` seconds of virtual time (charged to the kernel, not
    /// to application threads — migrations happen asynchronously in the
    /// paper's setup, so the cost here models bus occupancy, not stall time).
    copy_bandwidth_bytes_per_sec: u64,
    /// Fixed per-page software overhead (page-table updates, TLB shootdown).
    per_page_overhead_ns: u64,
    stats: MigrationStats,
    history: Vec<MigrationRecord>,
    keep_history: bool,
}

impl MigrationEngine {
    /// Creates an engine with the given copy bandwidth and fixed per-page
    /// overhead.
    pub fn new(copy_bandwidth_bytes_per_sec: u64, per_page_overhead_ns: u64) -> Self {
        Self {
            copy_bandwidth_bytes_per_sec,
            per_page_overhead_ns,
            stats: MigrationStats::default(),
            history: Vec::new(),
            keep_history: false,
        }
    }

    /// Default parameters: the slow tier's ~2GB/s write bandwidth and 5us of
    /// kernel overhead per page (move_pages()-class costs).
    pub fn with_defaults() -> Self {
        Self::new(2_000_000_000, 5_000)
    }

    /// Enables recording of individual [`MigrationRecord`]s (off by default;
    /// the fig/table harnesses only need aggregates).
    pub fn set_keep_history(&mut self, keep: bool) {
        self.keep_history = keep;
    }

    /// Time to migrate one page of `size`, in ns.
    pub fn migration_cost_ns(&self, size: PageSize) -> u64 {
        let copy = size.bytes() as u64 * 1_000_000_000 / self.copy_bandwidth_bytes_per_sec;
        copy + self.per_page_overhead_ns
    }

    /// Records a migration of one page of `size` towards `target` completing
    /// at virtual time `now_ns`; returns the charged copy time in ns.
    pub fn record(&mut self, target: Tier, size: PageSize, now_ns: u64) -> u64 {
        let bytes = size.bytes() as u64;
        let kind = match target {
            Tier::Slow => MigrationKind::ToSlow,
            Tier::Fast => MigrationKind::BackToFast,
        };
        match kind {
            MigrationKind::ToSlow => {
                self.stats.to_slow_pages += 1;
                self.stats.to_slow_bytes += bytes;
            }
            MigrationKind::BackToFast => {
                self.stats.back_to_fast_pages += 1;
                self.stats.back_to_fast_bytes += bytes;
            }
        }
        let cost = self.migration_cost_ns(size);
        self.stats.copy_time_ns += cost;
        if self.keep_history {
            self.history.push(MigrationRecord {
                at_ns: now_ns,
                bytes,
                kind,
                size,
            });
        }
        cost
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> MigrationStats {
        self.stats
    }

    /// Recorded individual migrations (empty unless history is enabled).
    pub fn history(&self) -> &[MigrationRecord] {
        &self.history
    }
}

impl Default for MigrationEngine {
    fn default() -> Self {
        Self::with_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_scales_with_page_size() {
        let e = MigrationEngine::new(1_000_000_000, 1_000); // 1 GB/s
        let small = e.migration_cost_ns(PageSize::Small4K);
        let huge = e.migration_cost_ns(PageSize::Huge2M);
        assert_eq!(small, 4096 + 1_000);
        assert_eq!(huge, 2 * 1024 * 1024 + 1_000);
        assert!(huge > small);
    }

    #[test]
    fn record_accumulates_by_kind() {
        let mut e = MigrationEngine::with_defaults();
        e.record(Tier::Slow, PageSize::Huge2M, 100);
        e.record(Tier::Slow, PageSize::Small4K, 200);
        e.record(Tier::Fast, PageSize::Huge2M, 300);
        let s = e.stats();
        assert_eq!(s.to_slow_pages, 2);
        assert_eq!(s.to_slow_bytes, (2 * 1024 * 1024 + 4096) as u64);
        assert_eq!(s.back_to_fast_pages, 1);
        assert_eq!(s.back_to_fast_bytes, 2 * 1024 * 1024);
    }

    #[test]
    fn rates_in_mbps() {
        let mut e = MigrationEngine::with_defaults();
        // 20 MB demoted over 2 seconds -> 10 MB/s.
        for _ in 0..10 {
            e.record(Tier::Slow, PageSize::Huge2M, 0);
        }
        let mbps = e.stats().to_slow_mbps(2_000_000_000);
        assert!((mbps - 10.485).abs() < 0.1, "got {mbps}");
    }

    #[test]
    fn zero_elapsed_rate_is_zero() {
        let s = MigrationStats::default();
        assert_eq!(s.to_slow_mbps(0), 0.0);
        assert_eq!(s.back_to_fast_mbps(0), 0.0);
    }

    #[test]
    fn history_only_when_enabled() {
        let mut e = MigrationEngine::with_defaults();
        e.record(Tier::Slow, PageSize::Small4K, 1);
        assert!(e.history().is_empty());
        e.set_keep_history(true);
        e.record(Tier::Fast, PageSize::Small4K, 2);
        assert_eq!(e.history().len(), 1);
        assert_eq!(e.history()[0].kind, MigrationKind::BackToFast);
    }

    #[test]
    fn kind_display() {
        assert_eq!(format!("{}", MigrationKind::ToSlow), "migration");
        assert_eq!(
            format!("{}", MigrationKind::BackToFast),
            "false-classification"
        );
    }
}

//! NUMA-zone façade over the two tiers.
//!
//! Paper §3.6: "The NVM memory space is exposed to the guest OS as a
//! separate NUMA zone, to which the guest OS can then transfer memory." The
//! simulator mirrors that: the fast tier is node 0, the slow tier is node 1,
//! and policy code asks the topology for the zone backing a tier exactly the
//! way Thermostat's kernel patch asks for the NVM node.

use crate::tier::Tier;
use std::fmt;

/// A NUMA zone id as exposed to the (simulated) guest OS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NumaZone(pub u32);

impl fmt::Display for NumaZone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// The guest-visible topology: one zone per tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NumaTopology {
    _private: (),
}

impl NumaTopology {
    /// The topology used throughout the reproduction (node 0 = DRAM,
    /// node 1 = slow memory), matching the paper's libvirt setup.
    pub fn new() -> Self {
        Self::default()
    }

    /// Zone backing `tier`.
    pub fn zone_of(&self, tier: Tier) -> NumaZone {
        match tier {
            Tier::Fast => NumaZone(0),
            Tier::Slow => NumaZone(1),
        }
    }

    /// Tier behind `zone`, or `None` for an unknown zone id.
    pub fn tier_of(&self, zone: NumaZone) -> Option<Tier> {
        match zone.0 {
            0 => Some(Tier::Fast),
            1 => Some(Tier::Slow),
            _ => None,
        }
    }

    /// All zones in the topology.
    pub fn zones(&self) -> [NumaZone; 2] {
        [NumaZone(0), NumaZone(1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zone_tier_roundtrip() {
        let t = NumaTopology::new();
        for tier in [Tier::Fast, Tier::Slow] {
            assert_eq!(t.tier_of(t.zone_of(tier)), Some(tier));
        }
    }

    #[test]
    fn unknown_zone_is_none() {
        assert_eq!(NumaTopology::new().tier_of(NumaZone(7)), None);
    }

    #[test]
    fn zone_display() {
        assert_eq!(format!("{}", NumaZone(1)), "node1");
    }

    #[test]
    fn zones_are_distinct() {
        let [a, b] = NumaTopology::new().zones();
        assert_ne!(a, b);
    }
}

//! Per-tier physical frame allocator.
//!
//! The allocator hands out 4KB frames and physically contiguous, 2MB-aligned
//! 512-frame runs for huge pages. It is buddy-like at exactly two sizes,
//! which is all the THP machinery needs: a huge page must be backed by a
//! huge frame so that splitting it (Thermostat samples huge pages by
//! splitting, §3.2) is a pure page-table operation that never copies data.
//!
//! Freed 4KB frames coalesce back into their 2MB block once all 512 siblings
//! are free, so long policy runs (which split, collapse and migrate
//! continuously) do not fragment a tier permanently.

use crate::addr::{PageSize, Pfn, PAGES_PER_HUGE};
use crate::error::MemError;
use crate::tier::Tier;
use std::collections::{BTreeMap, BTreeSet};

const WORDS_PER_BITMAP: usize = PAGES_PER_HUGE / 64;

/// Occupancy bitmap for one 2MB block: bit set = 4KB frame free.
type Bitmap = [u64; WORDS_PER_BITMAP];

const FULL_FREE: Bitmap = [u64::MAX; WORDS_PER_BITMAP];

/// Allocation statistics of one tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrameStats {
    /// Total 4KB frames managed.
    pub total_frames: u64,
    /// Currently allocated 4KB frames (huge pages count as 512).
    pub used_frames: u64,
    /// Cumulative 4KB allocations served.
    pub small_allocs: u64,
    /// Cumulative 2MB allocations served.
    pub huge_allocs: u64,
    /// Cumulative allocation failures.
    pub failed_allocs: u64,
}

impl FrameStats {
    /// Bytes currently allocated.
    pub fn used_bytes(&self) -> u64 {
        self.used_frames * 4096
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> u64 {
        (self.total_frames - self.used_frames) * 4096
    }
}

/// Frame allocator for a contiguous PFN range belonging to one tier.
#[derive(Debug)]
pub struct FrameAllocator {
    base: Pfn,
    n_blocks: u64,
    /// Fully free 2MB blocks, by block index (ascending allocation order for
    /// determinism).
    free_huge: BTreeSet<u64>,
    /// Partially allocated blocks: block index -> bitmap of free 4KB frames.
    partial: BTreeMap<u64, Bitmap>,
    stats: FrameStats,
}

impl FrameAllocator {
    /// Creates an allocator over `n_frames` 4KB frames starting at `base`.
    ///
    /// `base` must be 2MB aligned; `n_frames` is rounded down to a whole
    /// number of 2MB blocks.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not huge-aligned.
    pub fn new(base: Pfn, n_frames: u64) -> Self {
        assert!(base.is_huge_aligned(), "allocator base must be 2MB aligned");
        let n_blocks = n_frames / PAGES_PER_HUGE as u64;
        let free_huge: BTreeSet<u64> = (0..n_blocks).collect();
        Self {
            base,
            n_blocks,
            free_huge,
            partial: BTreeMap::new(),
            stats: FrameStats {
                total_frames: n_blocks * PAGES_PER_HUGE as u64,
                ..FrameStats::default()
            },
        }
    }

    /// True if `pfn` lies inside this allocator's range.
    #[inline]
    pub fn owns(&self, pfn: Pfn) -> bool {
        pfn.0 >= self.base.0 && pfn.0 < self.base.0 + self.stats.total_frames
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> FrameStats {
        self.stats
    }

    /// Allocates one page of `size`.
    ///
    /// 4KB allocations are served from partially-used 2MB blocks first (so
    /// huge blocks are preserved for huge allocations as long as possible),
    /// lowest block index first for determinism.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfMemory`] if no frame of the requested size is free.
    pub fn alloc(&mut self, size: PageSize) -> Result<Pfn, MemError> {
        match size {
            PageSize::Huge2M => self.alloc_huge(),
            PageSize::Small4K => self.alloc_small(),
        }
    }

    /// Frees a page previously allocated with [`alloc`](Self::alloc).
    ///
    /// # Panics
    ///
    /// Panics on double free, on freeing an unowned frame, or on freeing a
    /// misaligned huge page.
    pub fn free(&mut self, pfn: Pfn, size: PageSize) {
        assert!(
            self.owns(pfn),
            "freeing frame {pfn} not owned by this allocator"
        );
        match size {
            PageSize::Huge2M => self.free_huge_block(pfn),
            PageSize::Small4K => self.free_small(pfn),
        }
    }

    fn block_of(&self, pfn: Pfn) -> (u64, usize) {
        let rel = pfn.0 - self.base.0;
        (
            rel / PAGES_PER_HUGE as u64,
            (rel % PAGES_PER_HUGE as u64) as usize,
        )
    }

    fn pfn_of(&self, block: u64, idx: usize) -> Pfn {
        Pfn(self.base.0 + block * PAGES_PER_HUGE as u64 + idx as u64)
    }

    fn alloc_huge(&mut self) -> Result<Pfn, MemError> {
        let Some(&block) = self.free_huge.iter().next() else {
            self.stats.failed_allocs += 1;
            return Err(MemError::OutOfMemory {
                tier: self.tier_hint(),
                size: PageSize::Huge2M,
            });
        };
        self.free_huge.remove(&block);
        self.stats.huge_allocs += 1;
        self.stats.used_frames += PAGES_PER_HUGE as u64;
        Ok(self.pfn_of(block, 0))
    }

    fn alloc_small(&mut self) -> Result<Pfn, MemError> {
        // Prefer an already-partial block.
        if let Some((&block, bitmap)) = self.partial.iter_mut().next() {
            let idx = first_set_bit(bitmap).expect("partial block must have a free frame");
            clear_bit(bitmap, idx);
            if bitmap.iter().all(|w| *w == 0) {
                self.partial.remove(&block);
            }
            self.stats.small_allocs += 1;
            self.stats.used_frames += 1;
            return Ok(self.pfn_of(block, idx));
        }
        // Break a fully-free huge block.
        let Some(&block) = self.free_huge.iter().next() else {
            self.stats.failed_allocs += 1;
            return Err(MemError::OutOfMemory {
                tier: self.tier_hint(),
                size: PageSize::Small4K,
            });
        };
        self.free_huge.remove(&block);
        let mut bitmap = FULL_FREE;
        clear_bit(&mut bitmap, 0);
        self.partial.insert(block, bitmap);
        self.stats.small_allocs += 1;
        self.stats.used_frames += 1;
        Ok(self.pfn_of(block, 0))
    }

    fn free_huge_block(&mut self, pfn: Pfn) {
        assert!(pfn.is_huge_aligned(), "freeing misaligned huge frame {pfn}");
        let (block, _) = self.block_of(pfn);
        assert!(
            !self.free_huge.contains(&block) && !self.partial.contains_key(&block),
            "double free of huge frame {pfn}"
        );
        self.free_huge.insert(block);
        self.stats.used_frames -= PAGES_PER_HUGE as u64;
    }

    fn free_small(&mut self, pfn: Pfn) {
        let (block, idx) = self.block_of(pfn);
        assert!(
            !self.free_huge.contains(&block),
            "double free of small frame {pfn}"
        );
        let bitmap = self.partial.entry(block).or_insert([0; WORDS_PER_BITMAP]);
        assert!(!test_bit(bitmap, idx), "double free of small frame {pfn}");
        set_bit(bitmap, idx);
        self.stats.used_frames -= 1;
        // Coalesce: all 512 siblings free again -> whole block is huge-free.
        if *bitmap == FULL_FREE {
            self.partial.remove(&block);
            self.free_huge.insert(block);
        }
    }

    /// Number of fully-free 2MB blocks currently available.
    pub fn free_huge_blocks(&self) -> u64 {
        self.free_huge.len() as u64
    }

    fn tier_hint(&self) -> Tier {
        // The allocator does not know its tier; base 0 is fast by the
        // `PhysicalMemory` layout convention. Only used for error messages.
        if self.base.0 == 0 {
            Tier::Fast
        } else {
            Tier::Slow
        }
    }

    /// Total number of 2MB blocks managed.
    pub fn total_blocks(&self) -> u64 {
        self.n_blocks
    }
}

fn first_set_bit(bitmap: &Bitmap) -> Option<usize> {
    for (w, word) in bitmap.iter().enumerate() {
        if *word != 0 {
            return Some(w * 64 + word.trailing_zeros() as usize);
        }
    }
    None
}

fn test_bit(bitmap: &Bitmap, idx: usize) -> bool {
    bitmap[idx / 64] & (1u64 << (idx % 64)) != 0
}

fn set_bit(bitmap: &mut Bitmap, idx: usize) {
    bitmap[idx / 64] |= 1u64 << (idx % 64);
}

fn clear_bit(bitmap: &mut Bitmap, idx: usize) {
    bitmap[idx / 64] &= !(1u64 << (idx % 64));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::HUGE_PAGE_BYTES;

    fn alloc_2_blocks() -> FrameAllocator {
        FrameAllocator::new(Pfn(0), 2 * PAGES_PER_HUGE as u64)
    }

    #[test]
    fn huge_then_small_then_exhaust() {
        let mut a = alloc_2_blocks();
        let h = a.alloc(PageSize::Huge2M).unwrap();
        assert!(h.is_huge_aligned());
        // 512 small allocations fit in the remaining block.
        for _ in 0..PAGES_PER_HUGE {
            a.alloc(PageSize::Small4K).unwrap();
        }
        assert!(matches!(
            a.alloc(PageSize::Small4K),
            Err(MemError::OutOfMemory {
                size: PageSize::Small4K,
                ..
            })
        ));
        assert_eq!(a.stats().failed_allocs, 1);
    }

    #[test]
    fn small_allocs_prefer_partial_blocks() {
        let mut a = alloc_2_blocks();
        let s = a.alloc(PageSize::Small4K).unwrap();
        assert_eq!(a.free_huge_blocks(), 1);
        let s2 = a.alloc(PageSize::Small4K).unwrap();
        // Still only one broken block.
        assert_eq!(a.free_huge_blocks(), 1);
        assert_eq!(s.0 / PAGES_PER_HUGE as u64, s2.0 / PAGES_PER_HUGE as u64);
    }

    #[test]
    fn coalescing_restores_huge_block() {
        let mut a = alloc_2_blocks();
        let frames: Vec<Pfn> = (0..PAGES_PER_HUGE)
            .map(|_| a.alloc(PageSize::Small4K).unwrap())
            .collect();
        assert_eq!(a.free_huge_blocks(), 1);
        for f in frames {
            a.free(f, PageSize::Small4K);
        }
        assert_eq!(a.free_huge_blocks(), 2);
        assert_eq!(a.stats().used_frames, 0);
    }

    #[test]
    fn distinct_frames_never_repeated() {
        let mut a = alloc_2_blocks();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2 * PAGES_PER_HUGE {
            let f = a.alloc(PageSize::Small4K).unwrap();
            assert!(seen.insert(f), "frame {f} handed out twice");
        }
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_small_panics() {
        let mut a = alloc_2_blocks();
        let f = a.alloc(PageSize::Small4K).unwrap();
        a.free(f, PageSize::Small4K);
        a.free(f, PageSize::Small4K);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_huge_panics() {
        let mut a = alloc_2_blocks();
        let f = a.alloc(PageSize::Huge2M).unwrap();
        a.free(f, PageSize::Huge2M);
        a.free(f, PageSize::Huge2M);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn free_misaligned_huge_panics() {
        let mut a = alloc_2_blocks();
        let f = a.alloc(PageSize::Huge2M).unwrap();
        a.free(Pfn(f.0 + 1), PageSize::Huge2M);
    }

    #[test]
    fn owns_range() {
        let a = FrameAllocator::new(Pfn(PAGES_PER_HUGE as u64), PAGES_PER_HUGE as u64);
        assert!(!a.owns(Pfn(0)));
        assert!(a.owns(Pfn(PAGES_PER_HUGE as u64)));
        assert!(!a.owns(Pfn(2 * PAGES_PER_HUGE as u64)));
    }

    #[test]
    fn stats_bytes() {
        let mut a = alloc_2_blocks();
        a.alloc(PageSize::Huge2M).unwrap();
        assert_eq!(a.stats().used_bytes(), HUGE_PAGE_BYTES as u64);
        assert_eq!(a.stats().free_bytes(), HUGE_PAGE_BYTES as u64);
    }

    #[test]
    fn bitmap_helpers() {
        let mut b = [0u64; WORDS_PER_BITMAP];
        assert_eq!(first_set_bit(&b), None);
        set_bit(&mut b, 130);
        assert!(test_bit(&b, 130));
        assert_eq!(first_set_bit(&b), Some(130));
        clear_bit(&mut b, 130);
        assert!(!test_bit(&b, 130));
    }
}

//! Memory tiers and their performance/cost parameters.
//!
//! The paper's setting (§1, §2.1): DRAM at 50–100ns versus a dense memory at
//! 400ns–several microseconds, with the dense part costing 1/3 to 1/5 of
//! DRAM per bit (Table 4). The evaluation assumes a 1us slow-memory access
//! (the BadgerTrap fault latency, §4.2), which is what
//! [`TierParams::slow_1us`] encodes.

use std::fmt;

/// Which of the two memory tiers a frame belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// Conventional DRAM ("fast memory" in the paper).
    Fast,
    /// Dense, cheap, slow memory (3D XPoint class; "slow memory", "cold
    /// memory" or "NVM" in the paper).
    Slow,
}

impl Tier {
    /// The other tier.
    pub const fn other(self) -> Tier {
        match self {
            Tier::Fast => Tier::Slow,
            Tier::Slow => Tier::Fast,
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tier::Fast => write!(f, "fast"),
            Tier::Slow => write!(f, "slow"),
        }
    }
}

/// Performance and cost parameters of one memory tier.
#[derive(Debug, Clone, PartialEq)]
pub struct TierParams {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Latency of a read that misses all caches, in nanoseconds.
    pub read_latency_ns: u64,
    /// Latency of a write that misses all caches, in nanoseconds.
    pub write_latency_ns: u64,
    /// Peak sustainable bandwidth in bytes per second (used to check that
    /// migration traffic is realizable, Table 3).
    pub bandwidth_bytes_per_sec: u64,
    /// Cost per gigabyte relative to DRAM (DRAM = 1.0). Table 4 studies
    /// slow:DRAM ratios of 1/3, 1/4 and 1/5.
    pub relative_cost_per_gb: f64,
}

impl TierParams {
    /// Conventional DRAM: 80ns loads, ~25.6 GB/s per channel, unit cost.
    pub fn dram(capacity_bytes: u64) -> Self {
        Self {
            capacity_bytes,
            read_latency_ns: 80,
            write_latency_ns: 80,
            bandwidth_bytes_per_sec: 25_600_000_000,
            relative_cost_per_gb: 1.0,
        }
    }

    /// The paper's evaluated slow memory: 1us access latency (the BadgerTrap
    /// fault cost used as the emulated slow-memory latency, §4.2), a few GB/s
    /// of bandwidth, cost 1/4 of DRAM.
    pub fn slow_1us(capacity_bytes: u64) -> Self {
        Self {
            capacity_bytes,
            read_latency_ns: 1_000,
            write_latency_ns: 1_000,
            bandwidth_bytes_per_sec: 2_000_000_000,
            relative_cost_per_gb: 0.25,
        }
    }

    /// An optimistic near-future slow memory: 400ns (the low end of the
    /// projections cited in §1).
    pub fn slow_400ns(capacity_bytes: u64) -> Self {
        Self {
            read_latency_ns: 400,
            write_latency_ns: 400,
            ..Self::slow_1us(capacity_bytes)
        }
    }

    /// A pessimistic slow memory: 3us (the "several microseconds" end of the
    /// §1 projection range).
    pub fn slow_3us(capacity_bytes: u64) -> Self {
        Self {
            read_latency_ns: 3_000,
            write_latency_ns: 3_000,
            ..Self::slow_1us(capacity_bytes)
        }
    }

    /// Latency of an access of the given kind.
    pub fn latency_ns(&self, write: bool) -> u64 {
        if write {
            self.write_latency_ns
        } else {
            self.read_latency_ns
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_tier_flips() {
        assert_eq!(Tier::Fast.other(), Tier::Slow);
        assert_eq!(Tier::Slow.other(), Tier::Fast);
    }

    #[test]
    fn presets_have_expected_latency_ordering() {
        let d = TierParams::dram(1 << 30);
        let s4 = TierParams::slow_400ns(1 << 30);
        let s1 = TierParams::slow_1us(1 << 30);
        let s3 = TierParams::slow_3us(1 << 30);
        assert!(d.read_latency_ns < s4.read_latency_ns);
        assert!(s4.read_latency_ns < s1.read_latency_ns);
        assert!(s1.read_latency_ns < s3.read_latency_ns);
    }

    #[test]
    fn slow_memory_is_cheaper() {
        assert!(
            TierParams::slow_1us(1).relative_cost_per_gb < TierParams::dram(1).relative_cost_per_gb
        );
    }

    #[test]
    fn latency_selects_by_kind() {
        let mut p = TierParams::dram(1);
        p.write_latency_ns = 123;
        assert_eq!(p.latency_ns(true), 123);
        assert_eq!(p.latency_ns(false), 80);
    }

    #[test]
    fn tier_display() {
        assert_eq!(format!("{}", Tier::Fast), "fast");
        assert_eq!(format!("{}", Tier::Slow), "slow");
    }
}

thermo_util::json_struct!(TierParams {
    capacity_bytes,
    read_latency_ns,
    write_latency_ns,
    bandwidth_bytes_per_sec,
    relative_cost_per_gb,
});

//! Memory-cost savings model (paper §5.3, Table 4).
//!
//! The paper's analysis: if a fraction `c` of an application's footprint can
//! live in slow memory that costs `r` (relative to DRAM per GB), the memory
//! spend relative to an all-DRAM system is `(1 - c) + c * r`, i.e. a saving
//! of `c * (1 - r)`. Table 4 evaluates r ∈ {1/3, 1/4, 1/5}.

/// Cost model for a two-tier configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Slow-memory cost per GB relative to DRAM (e.g. 0.25).
    pub slow_cost_ratio: f64,
}

/// Outcome of a cost evaluation for one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostReport {
    /// Fraction of the footprint placed in slow memory (0..=1).
    pub cold_fraction: f64,
    /// Memory spend relative to all-DRAM (0..=1).
    pub relative_spend: f64,
    /// Savings relative to all-DRAM (0..=1). This is the Table 4 number.
    pub savings_fraction: f64,
}

impl CostModel {
    /// Creates a model with the given slow:DRAM cost ratio.
    ///
    /// # Panics
    ///
    /// Panics if the ratio is not in `(0, 1]` — slow memory costing more
    /// than DRAM makes tiering pointless.
    pub fn new(slow_cost_ratio: f64) -> Self {
        assert!(
            slow_cost_ratio > 0.0 && slow_cost_ratio <= 1.0,
            "slow memory cost ratio must be in (0, 1], got {slow_cost_ratio}"
        );
        Self { slow_cost_ratio }
    }

    /// The three ratios evaluated in Table 4: 1/3, 1/4 and 1/5 of DRAM cost.
    pub fn table4_models() -> [CostModel; 3] {
        [
            CostModel::new(1.0 / 3.0),
            CostModel::new(0.25),
            CostModel::new(0.2),
        ]
    }

    /// Evaluates savings when `cold_fraction` of the footprint is in slow
    /// memory.
    ///
    /// # Panics
    ///
    /// Panics if `cold_fraction` is outside `[0, 1]`.
    pub fn evaluate(&self, cold_fraction: f64) -> CostReport {
        assert!(
            (0.0..=1.0).contains(&cold_fraction),
            "cold fraction must be in [0, 1], got {cold_fraction}"
        );
        let relative_spend = (1.0 - cold_fraction) + cold_fraction * self.slow_cost_ratio;
        CostReport {
            cold_fraction,
            relative_spend,
            savings_fraction: 1.0 - relative_spend,
        }
    }

    /// Evaluates savings from absolute footprints in bytes.
    pub fn evaluate_bytes(&self, fast_bytes: u64, slow_bytes: u64) -> CostReport {
        let total = fast_bytes + slow_bytes;
        let cold_fraction = if total == 0 {
            0.0
        } else {
            slow_bytes as f64 / total as f64
        };
        self.evaluate(cold_fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table4_cassandra_row() {
        // Cassandra: ~40% cold. Table 4: 27% / 30% / 32% savings.
        let cold = 0.40;
        let [third, quarter, fifth] = CostModel::table4_models();
        assert!((third.evaluate(cold).savings_fraction - 0.2667).abs() < 0.01);
        assert!((quarter.evaluate(cold).savings_fraction - 0.30).abs() < 0.01);
        assert!((fifth.evaluate(cold).savings_fraction - 0.32).abs() < 0.01);
    }

    #[test]
    fn paper_table4_aerospike_row() {
        // Aerospike: ~15% cold. Table 4: 10% / 11% / 12%.
        let cold = 0.15;
        let [third, quarter, fifth] = CostModel::table4_models();
        assert!((third.evaluate(cold).savings_fraction - 0.10).abs() < 0.01);
        assert!((quarter.evaluate(cold).savings_fraction - 0.1125).abs() < 0.01);
        assert!((fifth.evaluate(cold).savings_fraction - 0.12).abs() < 0.01);
    }

    #[test]
    fn zero_cold_zero_savings() {
        let m = CostModel::new(0.25);
        let r = m.evaluate(0.0);
        assert_eq!(r.savings_fraction, 0.0);
        assert_eq!(r.relative_spend, 1.0);
    }

    #[test]
    fn all_cold_max_savings() {
        let m = CostModel::new(0.2);
        let r = m.evaluate(1.0);
        assert!((r.savings_fraction - 0.8).abs() < 1e-12);
    }

    #[test]
    fn evaluate_bytes_matches_fraction() {
        let m = CostModel::new(0.25);
        let r = m.evaluate_bytes(60, 40);
        assert!((r.cold_fraction - 0.4).abs() < 1e-12);
        let empty = m.evaluate_bytes(0, 0);
        assert_eq!(empty.savings_fraction, 0.0);
    }

    #[test]
    #[should_panic(expected = "cost ratio")]
    fn invalid_ratio_panics() {
        CostModel::new(1.5);
    }

    #[test]
    #[should_panic(expected = "cold fraction")]
    fn invalid_fraction_panics() {
        CostModel::new(0.25).evaluate(1.5);
    }
}

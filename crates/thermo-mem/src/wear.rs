//! Write-endurance tracking for the slow tier.
//!
//! Paper §6 ("Device wear"): candidate slow-memory technologies wear out
//! under writes; the paper argues Thermostat's traffic to slow memory
//! (Table 3) is far below endurance limits. This tracker records per-frame
//! and aggregate write volume so harnesses can verify that claim, and also
//! reports a simple hot-spot metric (max per-frame writes) that a start-gap
//! style wear-leveller would flatten.

use crate::addr::Pfn;
use std::collections::BTreeMap;

/// Aggregate wear statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WearStats {
    /// Total bytes ever written to the slow tier.
    pub total_bytes_written: u64,
    /// Number of distinct frames written.
    pub frames_written: u64,
    /// Maximum bytes written to any single frame.
    pub max_frame_bytes: u64,
}

impl WearStats {
    /// Average device-level write rate in MB/s over `elapsed_ns`.
    pub fn write_mbps(&self, elapsed_ns: u64) -> f64 {
        if elapsed_ns == 0 {
            return 0.0;
        }
        (self.total_bytes_written as f64 / 1e6) / (elapsed_ns as f64 / 1e9)
    }

    /// Estimated years to reach `endurance_cycles` full-device overwrites of
    /// a device of `capacity_bytes`, at the observed write rate.
    ///
    /// Returns `f64::INFINITY` when nothing has been written.
    pub fn lifetime_years(
        &self,
        capacity_bytes: u64,
        endurance_cycles: u64,
        elapsed_ns: u64,
    ) -> f64 {
        let rate = self.write_mbps(elapsed_ns) * 1e6; // bytes/sec
        if rate == 0.0 {
            return f64::INFINITY;
        }
        let total_writable = capacity_bytes as f64 * endurance_cycles as f64;
        total_writable / rate / (365.25 * 24.0 * 3600.0)
    }
}

/// Per-frame write tracker for the slow tier.
#[derive(Debug, Default)]
pub struct WearTracker {
    per_frame: BTreeMap<Pfn, u64>,
    total: u64,
}

impl WearTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` written to `pfn`.
    pub fn record_write(&mut self, pfn: Pfn, bytes: u64) {
        *self.per_frame.entry(pfn).or_insert(0) += bytes;
        self.total += bytes;
    }

    /// Aggregate statistics snapshot.
    pub fn stats(&self) -> WearStats {
        WearStats {
            total_bytes_written: self.total,
            frames_written: self.per_frame.len() as u64,
            max_frame_bytes: self.per_frame.values().copied().max().unwrap_or(0),
        }
    }

    /// Bytes written to one frame.
    pub fn frame_bytes(&self, pfn: Pfn) -> u64 {
        self.per_frame.get(&pfn).copied().unwrap_or(0)
    }

    /// Clears all recorded wear (used when the tracked device is logically
    /// replaced between experiment phases).
    pub fn reset(&mut self) {
        self.per_frame.clear();
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_aggregates() {
        let mut w = WearTracker::new();
        w.record_write(Pfn(1), 64);
        w.record_write(Pfn(1), 64);
        w.record_write(Pfn(2), 100);
        let s = w.stats();
        assert_eq!(s.total_bytes_written, 228);
        assert_eq!(s.frames_written, 2);
        assert_eq!(s.max_frame_bytes, 128);
        assert_eq!(w.frame_bytes(Pfn(1)), 128);
        assert_eq!(w.frame_bytes(Pfn(99)), 0);
    }

    #[test]
    fn write_rate() {
        let mut w = WearTracker::new();
        w.record_write(Pfn(0), 10_000_000); // 10 MB over 1s
        assert!((w.stats().write_mbps(1_000_000_000) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn lifetime_infinite_without_writes() {
        let s = WearStats::default();
        assert!(s
            .lifetime_years(1 << 30, 1_000_000, 1_000_000_000)
            .is_infinite());
    }

    #[test]
    fn lifetime_finite_with_writes() {
        let mut w = WearTracker::new();
        // 100 MB/s onto a 1 GiB device with 10^6 cycle endurance.
        w.record_write(Pfn(0), 100_000_000);
        let years = w.stats().lifetime_years(1 << 30, 1_000_000, 1_000_000_000);
        // 2^30 B * 1e6 cycles / 1e8 B/s ~= 1.07e7 s ~= 0.34 years.
        assert!((years - 0.34).abs() < 0.01, "got {years}");
    }

    #[test]
    fn reset_clears() {
        let mut w = WearTracker::new();
        w.record_write(Pfn(0), 1);
        w.reset();
        assert_eq!(w.stats().total_bytes_written, 0);
        assert_eq!(w.stats().frames_written, 0);
    }
}

//! Physical memory substrate for the Thermostat (ASPLOS'17) reproduction.
//!
//! The paper evaluates a *two-tiered* main memory: conventional DRAM plus a
//! denser-but-slower technology (3D XPoint class, 400ns..several us access
//! latency). This crate models the physical side of that system:
//!
//! * [`addr`] — typed virtual/physical addresses and page-number arithmetic,
//!   including the 4KB / 2MB page-size algebra that everything else builds on.
//! * [`tier`] — the two memory tiers and their latency / bandwidth / cost
//!   parameters.
//! * [`frame`] — a per-tier physical frame allocator with native huge-frame
//!   (2MB) support, so a 2MB page always occupies 512 physically contiguous
//!   4KB frames.
//! * [`migrate`] — the page migration engine (paper §3.6 moves pages between
//!   NUMA zones; here between tiers) with bandwidth and false-classification
//!   accounting for Table 3.
//! * [`wear`] — write-endurance tracking for the slow tier (paper §6,
//!   "Device wear").
//! * [`cost`] — the memory-cost savings model behind Table 4.
//! * [`numa`] — a thin NUMA-zone façade mirroring how the paper exposes slow
//!   memory to the guest as a separate zone.
//!
//! # Example
//!
//! ```
//! use thermo_mem::{PhysicalMemory, Tier, TierParams, PageSize};
//!
//! # fn main() -> Result<(), thermo_mem::MemError> {
//! let mut mem = PhysicalMemory::new(
//!     TierParams::dram(64 << 20),      // 64 MiB of fast memory
//!     TierParams::slow_1us(256 << 20), // 256 MiB of slow memory
//! );
//! let huge = mem.alloc(Tier::Fast, PageSize::Huge2M)?;
//! assert!(huge.is_huge_aligned());
//! mem.free(Tier::Fast, huge, PageSize::Huge2M);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
pub mod addr;
pub mod cost;
pub mod error;
pub mod frame;
pub mod migrate;
pub mod numa;
pub mod startgap;
pub mod tier;
pub mod wear;

pub use addr::{
    translate, PageSize, Pfn, PhysAddr, VirtAddr, Vpn, CACHE_LINE_BYTES, HUGE_PAGE_BYTES,
    PAGES_PER_HUGE, SMALL_PAGE_BYTES,
};
pub use cost::{CostModel, CostReport};
pub use error::MemError;
pub use frame::{FrameAllocator, FrameStats};
pub use migrate::{MigrationEngine, MigrationKind, MigrationRecord, MigrationStats};
pub use numa::{NumaTopology, NumaZone};
pub use startgap::{StartGap, StartGapStats};
pub use tier::{Tier, TierParams};
pub use wear::{WearStats, WearTracker};

use std::fmt;

/// The complete two-tier physical memory: one allocator per tier plus the
/// shared bookkeeping (migration statistics, wear tracking).
///
/// This is the object the simulator's engine owns; the OS-side policies
/// (Thermostat itself, kstaled) act on it only through migrations performed
/// by [`MigrationEngine`].
#[derive(Debug)]
pub struct PhysicalMemory {
    fast: FrameAllocator,
    slow: FrameAllocator,
    fast_params: TierParams,
    slow_params: TierParams,
    wear: WearTracker,
}

impl PhysicalMemory {
    /// Creates a two-tier memory with the given per-tier parameters.
    ///
    /// The fast tier owns physical frame numbers `[0, fast_frames)` and the
    /// slow tier `[fast_frames, fast_frames + slow_frames)`, so a [`Pfn`]
    /// unambiguously identifies its tier.
    pub fn new(fast_params: TierParams, slow_params: TierParams) -> Self {
        // Round each tier down to whole 2MB blocks so the slow tier's PFN
        // base stays huge-aligned and every frame belongs to exactly one
        // tier.
        let block = PAGES_PER_HUGE as u64;
        let fast_frames = fast_params.capacity_bytes / SMALL_PAGE_BYTES as u64 / block * block;
        let slow_frames = slow_params.capacity_bytes / SMALL_PAGE_BYTES as u64 / block * block;
        let fast = FrameAllocator::new(Pfn(0), fast_frames);
        let slow = FrameAllocator::new(Pfn(fast_frames), slow_frames);
        Self {
            fast,
            slow,
            fast_params,
            slow_params,
            wear: WearTracker::new(),
        }
    }

    /// Returns the tier that owns `pfn`.
    ///
    /// # Panics
    ///
    /// Panics if `pfn` is outside both tiers.
    #[inline]
    pub fn tier_of(&self, pfn: Pfn) -> Tier {
        if self.fast.owns(pfn) {
            Tier::Fast
        } else if self.slow.owns(pfn) {
            Tier::Slow
        } else {
            panic!("pfn {pfn:?} is outside physical memory");
        }
    }

    /// Parameters of `tier`.
    pub fn params(&self, tier: Tier) -> &TierParams {
        match tier {
            Tier::Fast => &self.fast_params,
            Tier::Slow => &self.slow_params,
        }
    }

    /// Allocates one page of `size` in `tier`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfMemory`] when the tier cannot satisfy the
    /// request (for huge pages: no 2MB-aligned contiguous run is free).
    pub fn alloc(&mut self, tier: Tier, size: PageSize) -> Result<Pfn, MemError> {
        self.allocator_mut(tier).alloc(size)
    }

    /// Frees a page previously returned by [`alloc`](Self::alloc).
    ///
    /// # Panics
    ///
    /// Panics if the frame is not currently allocated in that tier (double
    /// free) or is misaligned for `size`.
    pub fn free(&mut self, tier: Tier, pfn: Pfn, size: PageSize) {
        self.allocator_mut(tier).free(pfn, size);
    }

    /// Access to the per-tier allocator statistics.
    pub fn stats(&self, tier: Tier) -> FrameStats {
        self.allocator(tier).stats()
    }

    /// Records `bytes` written to the frame's tier; slow-tier writes feed the
    /// wear tracker (paper §6).
    pub fn record_write(&mut self, pfn: Pfn, bytes: u64) {
        if self.tier_of(pfn) == Tier::Slow {
            self.wear.record_write(pfn, bytes);
        }
    }

    /// Wear statistics for the slow tier.
    pub fn wear(&self) -> &WearTracker {
        &self.wear
    }

    /// Total bytes of memory currently allocated in `tier`.
    pub fn used_bytes(&self, tier: Tier) -> u64 {
        self.allocator(tier).stats().used_bytes()
    }

    /// Free bytes remaining in `tier`.
    pub fn free_bytes(&self, tier: Tier) -> u64 {
        self.allocator(tier).stats().free_bytes()
    }

    fn allocator(&self, tier: Tier) -> &FrameAllocator {
        match tier {
            Tier::Fast => &self.fast,
            Tier::Slow => &self.slow,
        }
    }

    fn allocator_mut(&mut self, tier: Tier) -> &mut FrameAllocator {
        match tier {
            Tier::Fast => &mut self.fast,
            Tier::Slow => &mut self.slow,
        }
    }
}

impl fmt::Display for PhysicalMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fast: {}/{} MiB used, slow: {}/{} MiB used",
            self.used_bytes(Tier::Fast) >> 20,
            self.fast_params.capacity_bytes >> 20,
            self.used_bytes(Tier::Slow) >> 20,
            self.slow_params.capacity_bytes >> 20,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_mem() -> PhysicalMemory {
        PhysicalMemory::new(TierParams::dram(8 << 20), TierParams::slow_1us(8 << 20))
    }

    #[test]
    fn tiers_are_disjoint_pfn_ranges() {
        let mut mem = small_mem();
        let f = mem.alloc(Tier::Fast, PageSize::Small4K).unwrap();
        let s = mem.alloc(Tier::Slow, PageSize::Small4K).unwrap();
        assert_eq!(mem.tier_of(f), Tier::Fast);
        assert_eq!(mem.tier_of(s), Tier::Slow);
        assert_ne!(f, s);
    }

    #[test]
    fn huge_alloc_is_aligned() {
        let mut mem = small_mem();
        let h = mem.alloc(Tier::Fast, PageSize::Huge2M).unwrap();
        assert!(h.is_huge_aligned());
    }

    #[test]
    fn used_bytes_tracks_alloc_free() {
        let mut mem = small_mem();
        assert_eq!(mem.used_bytes(Tier::Fast), 0);
        let h = mem.alloc(Tier::Fast, PageSize::Huge2M).unwrap();
        assert_eq!(mem.used_bytes(Tier::Fast), HUGE_PAGE_BYTES as u64);
        mem.free(Tier::Fast, h, PageSize::Huge2M);
        assert_eq!(mem.used_bytes(Tier::Fast), 0);
    }

    #[test]
    fn slow_writes_feed_wear_tracker() {
        let mut mem = small_mem();
        let s = mem.alloc(Tier::Slow, PageSize::Small4K).unwrap();
        mem.record_write(s, 64);
        mem.record_write(s, 64);
        assert_eq!(mem.wear().stats().total_bytes_written, 128);
    }

    #[test]
    fn fast_writes_do_not_feed_wear_tracker() {
        let mut mem = small_mem();
        let f = mem.alloc(Tier::Fast, PageSize::Small4K).unwrap();
        mem.record_write(f, 64);
        assert_eq!(mem.wear().stats().total_bytes_written, 0);
    }

    #[test]
    #[should_panic(expected = "outside physical memory")]
    fn tier_of_out_of_range_panics() {
        let mem = small_mem();
        mem.tier_of(Pfn(u64::MAX / SMALL_PAGE_BYTES as u64));
    }

    #[test]
    fn display_is_nonempty() {
        let mem = small_mem();
        assert!(!format!("{mem}").is_empty());
    }
}

//! Start-Gap wear levelling (Qureshi et al., MICRO'09), referenced by the
//! paper's §6 device-wear discussion: *"a simple wear-leveling technique
//! that uses an algebraic mapping between logical addresses and physical
//! addresses ... to improve the lifetime of memory devices subject to
//! wear."*
//!
//! The scheme: a region of `n` logical lines is backed by `n + 1` physical
//! slots; one slot (the *gap*) is unused. Every `rotate_every` writes the
//! gap swaps with its predecessor, slowly rotating the whole address
//! mapping so hot logical lines migrate across physical slots. The
//! logical→physical map stays algebraic — two registers (`start`, `gap`)
//! — so no translation table is needed.

/// Start-Gap remapper over `n` logical lines in `n + 1` physical slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StartGap {
    n: u64,
    start: u64,
    gap: u64,
    rotate_every: u64,
    writes_since_move: u64,
    stats: StartGapStats,
}

/// Wear-levelling statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StartGapStats {
    /// Total writes observed.
    pub writes: u64,
    /// Gap movements performed (each costs one line copy).
    pub gap_moves: u64,
    /// Full rotations of the start register.
    pub full_rotations: u64,
}

impl StartGap {
    /// Creates a remapper for `n` lines that moves the gap every
    /// `rotate_every` writes (Qureshi et al. use ψ = 100).
    ///
    /// # Panics
    ///
    /// Panics if `n` or `rotate_every` is zero.
    pub fn new(n: u64, rotate_every: u64) -> Self {
        assert!(n > 0, "need at least one line");
        assert!(rotate_every > 0, "rotation period must be positive");
        Self {
            n,
            start: 0,
            gap: n, // the spare slot starts at the end
            rotate_every,
            writes_since_move: 0,
            stats: StartGapStats::default(),
        }
    }

    /// Number of logical lines.
    pub fn n_lines(&self) -> u64 {
        self.n
    }

    /// Physical slot currently backing logical line `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn physical_of(&self, i: u64) -> u64 {
        assert!(i < self.n, "logical line {i} out of range");
        let slots = self.n + 1;
        // Position of the gap in the rotated scan order.
        let gap_pos = (self.gap + slots - self.start) % slots;
        let skip = u64::from(i >= gap_pos);
        (self.start + i + skip) % slots
    }

    /// Records a write to logical line `i` and returns the physical slot it
    /// lands in. Every `rotate_every` writes the gap moves one slot
    /// backwards (one internal line copy, counted in the statistics).
    pub fn write(&mut self, i: u64) -> u64 {
        let phys = self.physical_of(i);
        self.stats.writes += 1;
        self.writes_since_move += 1;
        if self.writes_since_move >= self.rotate_every {
            self.writes_since_move = 0;
            self.move_gap();
        }
        phys
    }

    fn move_gap(&mut self) {
        let slots = self.n + 1;
        // Copy the predecessor slot's line into the gap; the predecessor
        // becomes the new gap.
        let pred = (self.gap + slots - 1) % slots;
        self.gap = pred;
        self.stats.gap_moves += 1;
        if self.gap == self.start {
            // The gap moved past the scan origin: advance it too.
            self.start = (self.start + 1) % slots;
            if self.start == 0 {
                self.stats.full_rotations += 1;
            }
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> StartGapStats {
        self.stats
    }

    /// Extra write amplification from gap copies:
    /// `gap_moves / writes` (0 when no writes).
    pub fn write_amplification(&self) -> f64 {
        if self.stats.writes == 0 {
            0.0
        } else {
            self.stats.gap_moves as f64 / self.stats.writes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// The core invariant: the mapping is always a bijection into the n+1
    /// slots minus the gap, and it tracks data movement correctly.
    fn check_bijection(sg: &StartGap) {
        let mut seen = HashSet::new();
        for i in 0..sg.n_lines() {
            let p = sg.physical_of(i);
            assert!(p <= sg.n_lines(), "slot out of range");
            assert_ne!(p, sg.gap, "logical line mapped onto the gap");
            assert!(seen.insert(p), "two lines share slot {p}");
        }
    }

    #[test]
    fn identity_before_any_rotation() {
        let sg = StartGap::new(8, 100);
        for i in 0..8 {
            assert_eq!(sg.physical_of(i), i);
        }
    }

    #[test]
    fn mapping_rotates_but_stays_bijective() {
        let mut sg = StartGap::new(5, 1); // gap moves on every write
        for w in 0..200 {
            sg.write(w % 5);
            check_bijection(&sg);
        }
        assert_eq!(sg.stats().gap_moves, 200);
    }

    #[test]
    fn data_follows_the_mapping() {
        // Shadow model: slot contents as logical ids; verify each gap move
        // keeps physical_of(i) pointing at the slot that holds i.
        let n = 7u64;
        let mut sg = StartGap::new(n, 1);
        let mut slots: Vec<Option<u64>> = (0..n).map(Some).chain([None]).collect();
        for w in 0..300u64 {
            // Emulate the gap copy the hardware would do.
            let before_gap = sg.gap;
            let slots_n = n + 1;
            let pred = (before_gap + slots_n - 1) % slots_n;
            sg.write(w % n);
            if sg.stats().gap_moves > w {
                // A move happened: data copied pred -> old gap.
                slots[before_gap as usize] = slots[pred as usize].take();
            }
            for i in 0..n {
                let p = sg.physical_of(i) as usize;
                assert_eq!(slots[p], Some(i), "line {i} lost after {w} writes");
            }
        }
    }

    #[test]
    fn hot_line_wear_spreads_over_slots() {
        // Hammer a single logical line; with rotation its physical slot
        // must change over time (that is the whole point).
        let mut sg = StartGap::new(16, 4);
        let mut slots_used = HashSet::new();
        for _ in 0..17 * 16 * 4 {
            slots_used.insert(sg.write(3));
        }
        assert!(
            slots_used.len() > 8,
            "hot line must migrate across slots, used only {:?}",
            slots_used.len()
        );
    }

    #[test]
    fn write_amplification_matches_period() {
        let mut sg = StartGap::new(64, 100);
        for i in 0..10_000 {
            sg.write(i % 64);
        }
        // One gap copy per 100 writes -> 1% amplification.
        assert!((sg.write_amplification() - 0.01).abs() < 0.001);
    }

    #[test]
    fn full_rotation_counted() {
        let mut sg = StartGap::new(4, 1);
        // A full rotation needs (n+1) * (n+1) gap moves to bring start back
        // to 0; just check it eventually increments.
        for i in 0..1_000 {
            sg.write(i % 4);
        }
        assert!(sg.stats().full_rotations > 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        StartGap::new(4, 1).physical_of(4);
    }
}

//! Error types for the physical-memory substrate.

use crate::addr::{PageSize, Pfn};
use crate::tier::Tier;
use std::error::Error;
use std::fmt;

/// Errors returned by physical-memory operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// The tier has no free page of the requested size.
    OutOfMemory {
        /// Tier that was exhausted.
        tier: Tier,
        /// Requested page size.
        size: PageSize,
    },
    /// A migration was requested for a frame that is already in the target
    /// tier.
    AlreadyInTier {
        /// The frame in question.
        pfn: Pfn,
        /// The tier it already resides in.
        tier: Tier,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfMemory { tier, size } => {
                write!(f, "out of memory in {tier} tier for a {size} page")
            }
            MemError::AlreadyInTier { pfn, tier } => {
                write!(f, "frame {pfn} already resides in {tier} tier")
            }
        }
    }
}

impl Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = MemError::OutOfMemory {
            tier: Tier::Fast,
            size: PageSize::Huge2M,
        };
        assert!(format!("{e}").contains("out of memory"));
        let e = MemError::AlreadyInTier {
            pfn: Pfn(3),
            tier: Tier::Slow,
        };
        assert!(format!("{e}").contains("already resides"));
    }

    #[test]
    fn implements_error_send_sync() {
        fn assert_err<T: Error + Send + Sync + 'static>() {}
        assert_err::<MemError>();
    }
}

//! Every RNG draw of this crate's policies, in historical draw order.
//!
//! Mirrors `thermostat/src/daemon/decide.rs`: randomized policy decisions
//! live in pure helpers in one module, so the sequence of draws per tick —
//! part of the golden-artifact contract — is auditable in one place and
//! the `rng_containment` lint (DESIGN.md §11) can enforce that no draw
//! site appears anywhere else.
//!
//! Draw order per [`crate::Damon`] sampling pass: exactly one
//! [`draw_probe_offset`] draw per region, in region order.

use thermo_util::rng::{Rng, SmallRng};

/// Picks the 4KB-page offset to probe within a region of `n_pages` pages
/// (one A-bit sample per region per sampling interval, DAMON-style).
///
/// One uniform draw in `[0, n_pages)`; `n_pages` must be nonzero (regions
/// are filtered to nonzero length at construction).
pub fn draw_probe_offset(rng: &mut SmallRng, n_pages: u64) -> u64 {
    rng.gen_range(0..n_pages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermo_util::rng::SeedableRng;

    #[test]
    fn draw_probe_offset_is_in_range_and_seed_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for n in [1u64, 2, 512, 1 << 20] {
            let x = draw_probe_offset(&mut a, n);
            assert!(x < n);
            assert_eq!(x, draw_probe_offset(&mut b, n), "same seed, same draw");
        }
    }
}

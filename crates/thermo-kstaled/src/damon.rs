//! A DAMON-style adaptive region monitor and tiering scheme.
//!
//! Thermostat predates and inspired the DAMON-era tiering work that later
//! landed in Linux. This module implements that design point as a third
//! baseline: instead of per-page poisoning, DAMON tracks *regions* —
//! address ranges assumed homogeneous — by sampling one page per region
//! per sampling interval and counting A-bit hits; regions are split and
//! merged adaptively so the region set tracks the workload's structure at
//! bounded overhead. A DAMOS-like scheme then demotes regions that stay
//! cold for several aggregation windows and promotes slow regions that
//! show accesses again.
//!
//! Comparing this against Thermostat isolates the trade-off the paper's
//! design makes: DAMON's region granularity is cheap and huge-page
//! friendly, but its A-bit samples estimate access *frequency of the
//! sampled page*, not the region's aggregate access *rate* — so, like all
//! A-bit schemes, it cannot bound the slowdown of a placement decision.

use thermo_mem::{PageSize, Tier, Vpn, PAGES_PER_HUGE};
use thermo_sim::{Engine, OpOutcome, PlanOp, PolicyHook, PolicyPlan};
use thermo_util::rng::SeedableRng;
use thermo_util::rng::SmallRng;

/// Configuration of the DAMON-style monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DamonConfig {
    /// Sampling interval: one A-bit probe per region per interval.
    pub sample_interval_ns: u64,
    /// Samples per aggregation window (Linux default: aggregation =
    /// 20 samples).
    pub samples_per_aggregation: u32,
    /// Bounds on the adaptive region count.
    pub min_regions: usize,
    /// Upper bound on regions (splitting stops here).
    pub max_regions: usize,
    /// A region with zero observed accesses for this many consecutive
    /// aggregation windows is demoted.
    pub cold_age_windows: u32,
    /// RNG seed for sampling decisions.
    pub seed: u64,
}

impl Default for DamonConfig {
    fn default() -> Self {
        Self {
            sample_interval_ns: 100_000_000,
            samples_per_aggregation: 20,
            min_regions: 10,
            max_regions: 200,
            cold_age_windows: 3,
            seed: 0xda30,
        }
    }
}

/// One monitored region: `[start, start + n_pages)` in 4KB page units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First 4KB page.
    pub start: Vpn,
    /// Length in 4KB pages.
    pub n_pages: u64,
    /// A-bit hits in the current aggregation window.
    pub nr_accesses: u32,
    /// Consecutive aggregation windows with zero accesses.
    pub age: u32,
}

impl Region {
    fn huge_aligned_range(&self) -> (u64, u64) {
        // Whole huge pages covered by this region.
        let first = self.start.0.div_ceil(PAGES_PER_HUGE as u64);
        let last = (self.start.0 + self.n_pages) / PAGES_PER_HUGE as u64;
        (first, last)
    }
}

/// Statistics for the DAMON baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DamonStats {
    /// Sampling passes performed.
    pub samples: u64,
    /// Aggregation windows completed.
    pub aggregations: u64,
    /// Region splits performed.
    pub splits: u64,
    /// Region merges performed.
    pub merges: u64,
    /// Huge pages demoted by the cold scheme.
    pub demotions: u64,
    /// Huge pages promoted after renewed access.
    pub promotions: u64,
}

/// The DAMON-style monitor + tiering scheme.
#[derive(Debug)]
pub struct Damon {
    config: DamonConfig,
    next_due_ns: u64,
    regions: Vec<Region>,
    samples_in_window: u32,
    rng: SmallRng,
    stats: DamonStats,
    initialized: bool,
    scan_workers: usize,
}

impl Damon {
    /// Creates the monitor; regions are built from the VMAs on first tick.
    /// Snapshot scans use `THERMO_SCAN_JOBS` shard workers (inline when
    /// unset).
    pub fn new(config: DamonConfig) -> Self {
        Self::with_scan_workers(config, thermo_exec::scan_jobs_from_env())
    }

    /// [`Damon::new`] with an explicit snapshot worker count.
    pub fn with_scan_workers(config: DamonConfig, scan_workers: usize) -> Self {
        Self {
            next_due_ns: config.sample_interval_ns,
            rng: SmallRng::seed_from_u64(config.seed),
            config,
            regions: Vec::new(),
            samples_in_window: 0,
            stats: DamonStats::default(),
            initialized: false,
            scan_workers,
        }
    }

    /// Current region set.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> DamonStats {
        self.stats
    }

    fn init_regions(&mut self, engine: &mut Engine) {
        self.regions = engine
            .vmas()
            .iter()
            .map(|v| Region {
                start: v.start.vpn(),
                n_pages: v.len / 4096,
                nr_accesses: 0,
                age: 0,
            })
            .filter(|r| r.n_pages > 0)
            .collect();
        // Start from a clean slate: load-phase Accessed bits would
        // otherwise read as activity for dozens of windows.
        let ranges: Vec<(Vpn, u64)> = self.regions.iter().map(|r| (r.start, r.n_pages)).collect();
        let view = engine.memory_view(&ranges, self.scan_workers);
        let receipt = engine.apply_plan(&crate::clear_accessed_plan(&view));
        debug_assert!(
            receipt.outcomes().iter().all(|o| *o == OpOutcome::Done),
            "ClearAccessed is synchronous"
        );
        // Split down to at least min_regions.
        while self.regions.len() < self.config.min_regions {
            if !self.split_largest() {
                break;
            }
        }
        self.initialized = true;
    }

    fn split_largest(&mut self) -> bool {
        // Never split below huge-page granularity: a 2MB leaf has a single
        // Accessed bit, so sub-huge regions would alias each other's
        // samples (the first probe of a pass steals the bit).
        let Some((idx, _)) = self
            .regions
            .iter()
            .enumerate()
            .max_by_key(|(_, r)| r.n_pages)
            .filter(|(_, r)| r.n_pages >= 2 * PAGES_PER_HUGE as u64)
        else {
            return false;
        };
        let r = self.regions[idx];
        let left_pages = (r.n_pages / 2).div_ceil(PAGES_PER_HUGE as u64) * PAGES_PER_HUGE as u64;
        self.regions[idx].n_pages = left_pages;
        self.regions.insert(
            idx + 1,
            Region {
                start: Vpn(r.start.0 + left_pages),
                n_pages: r.n_pages - left_pages,
                nr_accesses: r.nr_accesses,
                age: r.age,
            },
        );
        self.stats.splits += 1;
        true
    }

    /// One sampling pass: probe one random page per region.
    ///
    /// The probes are snapshotted in one [`MemoryView`] pass and cleared
    /// with one plan. Two probes landing in the same leaf keep the old
    /// sequential semantics: only the first observes the Accessed bit.
    fn sample(&mut self, engine: &mut Engine) {
        let ranges: Vec<(Vpn, u64)> = self
            .regions
            .iter()
            .map(|r| {
                let probe =
                    Vpn(r.start.0 + crate::decide::draw_probe_offset(&mut self.rng, r.n_pages));
                (probe, 1)
            })
            .collect();
        let view = engine.memory_view(&ranges, self.scan_workers);
        let mut cleared: Vec<(Vpn, PageSize)> = Vec::new();
        for (i, r) in self.regions.iter_mut().enumerate() {
            let Some(p) = view.range_pages(i).first() else {
                continue;
            };
            if p.accessed && !cleared.iter().any(|&(b, _)| b == p.base_vpn) {
                r.nr_accesses += 1;
                cleared.push((p.base_vpn, p.size));
            }
        }
        let mut plan = PolicyPlan::new();
        plan.push(PlanOp::ClearAccessed { pages: cleared });
        let receipt = engine.apply_plan(&plan);
        debug_assert!(
            receipt.outcomes().iter().all(|o| *o == OpOutcome::Done),
            "ClearAccessed is synchronous"
        );
        self.stats.samples += 1;
    }

    /// Aggregation: age bookkeeping, the cold/promote scheme, then
    /// split/merge adaptation.
    fn aggregate(&mut self, engine: &mut Engine) {
        // 1. Scheme actions on whole huge pages inside each region: decide
        // against the live tier/leaf state (reads are free), then execute
        // one batched plan in region order. Each huge page belongs to at
        // most one region, so the decisions are independent and OOM
        // fallbacks resolve in the same order the sequential scheme used.
        let regions = std::mem::take(&mut self.regions);
        let mut plan = PolicyPlan::new();
        let mut is_demote: Vec<bool> = Vec::new();
        for r in &regions {
            let (first, last) = r.huge_aligned_range();
            if r.nr_accesses == 0 && r.age + 1 >= self.config.cold_age_windows {
                for h in first..last {
                    let vpn = Vpn(h * PAGES_PER_HUGE as u64);
                    if engine.tier_of_vpn(vpn) == Some(Tier::Fast)
                        && engine
                            .page_table()
                            .lookup(vpn)
                            .map(|m| (m.base_vpn, m.size))
                            == Some((vpn, PageSize::Huge2M))
                    {
                        plan.push(PlanOp::DemoteWholeHuge { vpn });
                        is_demote.push(true);
                    }
                }
            } else if r.nr_accesses > 0 {
                for h in first..last {
                    let vpn = Vpn(h * PAGES_PER_HUGE as u64);
                    if engine.tier_of_vpn(vpn) == Some(Tier::Slow)
                        && engine
                            .page_table()
                            .lookup(vpn)
                            .map(|m| (m.base_vpn, m.size))
                            == Some((vpn, PageSize::Huge2M))
                    {
                        plan.push(PlanOp::PromoteHuge { vpn, split: false });
                        is_demote.push(false);
                    }
                }
            }
        }
        let receipt = engine.apply_plan(&plan);
        for (oc, demote) in receipt.outcomes().iter().zip(&is_demote) {
            if *oc == OpOutcome::Done {
                if *demote {
                    self.stats.demotions += 1;
                } else {
                    self.stats.promotions += 1;
                }
            }
        }
        self.regions = regions;

        // 2. Age + reset counters.
        for r in &mut self.regions {
            if r.nr_accesses == 0 {
                r.age += 1;
            } else {
                r.age = 0;
            }
        }

        // 3. Merge adjacent regions with similar access counts.
        let mut merged: Vec<Region> = Vec::with_capacity(self.regions.len());
        let mut merges_done = 0u64;
        for r in self.regions.drain(..) {
            let can_merge = merged.len() > 1
                && merged.last().is_some_and(|last| {
                    last.start.0 + last.n_pages == r.start.0
                        && last.nr_accesses.abs_diff(r.nr_accesses) <= 1
                });
            if can_merge {
                let last = merged.last_mut().expect("nonempty");
                last.n_pages += r.n_pages;
                last.nr_accesses = last.nr_accesses.max(r.nr_accesses);
                last.age = last.age.min(r.age);
                merges_done += 1;
            } else {
                merged.push(r);
            }
        }
        self.stats.merges += merges_done;
        self.regions = merged;

        // 4. Split back up toward the floor of the adaptive range.
        while self.regions.len() < self.config.min_regions {
            if !self.split_largest() {
                break;
            }
        }
        for r in &mut self.regions {
            r.nr_accesses = 0;
        }
        self.stats.aggregations += 1;
    }
}

impl PolicyHook for Damon {
    fn next_due_ns(&self) -> u64 {
        self.next_due_ns
    }

    fn policy_name(&self) -> &str {
        "damon"
    }

    fn tick(&mut self, engine: &mut Engine) {
        if !self.initialized {
            self.init_regions(engine);
        }
        self.sample(engine);
        self.samples_in_window += 1;
        if self.samples_in_window >= self.config.samples_per_aggregation {
            self.samples_in_window = 0;
            self.aggregate(engine);
        }
        self.next_due_ns += self.config.sample_interval_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermo_mem::VirtAddr;
    use thermo_sim::{run_for, Access, SimConfig, Workload};

    struct HalfHot {
        base: VirtAddr,
        n_huge: u64,
        i: u64,
    }

    impl Workload for HalfHot {
        fn name(&self) -> &str {
            "halfhot"
        }

        fn init(&mut self, engine: &mut Engine) {
            self.base = engine.mmap(self.n_huge * (2 << 20), true, true, false, "heap");
            for p in 0..self.n_huge {
                engine.access(self.base + p * (2 << 20), true);
            }
        }

        fn next_op(&mut self, _now: u64, acc: &mut Vec<Access>) -> Option<u64> {
            let page = self.i % (self.n_huge / 2);
            acc.push(Access::read(
                self.base + page * (2 << 20) + (self.i * 64) % (2 << 20),
            ));
            self.i += 1;
            Some(2_000)
        }
    }

    fn engine() -> Engine {
        Engine::new(SimConfig::paper_defaults(256 << 20, 256 << 20))
    }

    #[test]
    fn damon_builds_and_adapts_regions() {
        let mut e = engine();
        let mut w = HalfHot {
            base: VirtAddr(0),
            n_huge: 16,
            i: 0,
        };
        w.init(&mut e);
        let mut d = Damon::new(DamonConfig {
            min_regions: 8,
            ..DamonConfig::default()
        });
        run_for(&mut e, &mut w, &mut d, 8_000_000_000);
        assert!(d.stats().samples > 50);
        assert!(d.stats().aggregations >= 2);
        assert!(d.regions().len() >= 8);
        // Regions always tile mapped space without overlap.
        let mut prev_end = 0;
        for r in d.regions() {
            assert!(r.start.0 >= prev_end, "regions must not overlap");
            prev_end = r.start.0 + r.n_pages;
        }
    }

    #[test]
    fn damon_demotes_the_idle_half_and_keeps_the_hot_half() {
        let mut e = engine();
        let mut w = HalfHot {
            base: VirtAddr(0),
            n_huge: 16,
            i: 0,
        };
        w.init(&mut e);
        let mut d = Damon::new(DamonConfig {
            min_regions: 16,
            ..DamonConfig::default()
        });
        run_for(&mut e, &mut w, &mut d, 20_000_000_000);
        assert!(d.stats().demotions > 0, "idle half must be demoted");
        // The hot half must still be fast.
        for p in 0..8u64 {
            assert_eq!(
                e.tier_of_vpn((w.base + p * (2 << 20)).vpn()),
                Some(Tier::Fast),
                "hot page {p} wrongly demoted"
            );
        }
        let fb = e.footprint_breakdown();
        assert!(fb.cold_fraction() > 0.2, "cold half should be placed");
    }

    #[test]
    fn damon_promotes_on_renewed_access() {
        struct Shift {
            base: VirtAddr,
            n_huge: u64,
            i: u64,
            shift_at: u64,
        }
        impl Workload for Shift {
            fn name(&self) -> &str {
                "shift"
            }
            fn init(&mut self, engine: &mut Engine) {
                self.base = engine.mmap(self.n_huge * (2 << 20), true, true, false, "heap");
                for p in 0..self.n_huge {
                    engine.access(self.base + p * (2 << 20), true);
                }
            }
            fn next_op(&mut self, now: u64, acc: &mut Vec<Access>) -> Option<u64> {
                let page = if now < self.shift_at {
                    0
                } else {
                    self.n_huge - 1
                };
                acc.push(Access::read(
                    self.base + page * (2 << 20) + (self.i * 64) % (2 << 20),
                ));
                self.i += 1;
                Some(2_000)
            }
        }
        let mut e = engine();
        let mut w = Shift {
            base: VirtAddr(0),
            n_huge: 8,
            i: 0,
            shift_at: 12_000_000_000,
        };
        w.init(&mut e);
        let mut d = Damon::new(DamonConfig {
            min_regions: 8,
            ..DamonConfig::default()
        });
        run_for(&mut e, &mut w, &mut d, 24_000_000_000);
        assert!(d.stats().demotions > 0);
        assert!(d.stats().promotions > 0, "renewed access must promote");
        // The new hot page ends up fast again.
        let last = (w.base + (w.n_huge - 1) * (2 << 20)).vpn();
        assert_eq!(e.tier_of_vpn(last), Some(Tier::Fast));
    }
}

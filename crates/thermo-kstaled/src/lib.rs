//! kstaled-style idle page tracking — the paper's baseline and motivation.
//!
//! Figure 1 of the paper uses an existing Linux mechanism (kstaled, an
//! Accessed-bit scanner) to show how much data sits idle for ≥10s; Figure 2
//! shows why A-bit scanning is *insufficient*: the number of "hot" 4KB
//! regions inside a 2MB page (hot = accessed in three consecutive scan
//! intervals at the highest affordable scan frequency) correlates poorly
//! with the page's true memory access rate, so A-bit-only policies cannot
//! bound the slowdown of cold placement.
//!
//! Three components:
//!
//! * [`Kstaled`] — a periodic whole-address-space A-bit scanner that tracks
//!   per-huge-page idle age (Figure 1).
//! * [`HotRegionMonitor`] — splits chosen huge pages and tracks per-4KB
//!   consecutive-access streaks (Figure 2's horizontal axis).
//! * [`clock::ClockPolicy`] — a CLOCK-style capacity-driven placement
//!   baseline (the §7 related-work design point Thermostat improves on).

#![warn(missing_docs)]
pub mod clock;
pub mod damon;
pub mod decide;

pub use clock::{ClockConfig, ClockPolicy, ClockStats};
pub use damon::{Damon, DamonConfig, DamonStats};

use std::collections::BTreeMap;
use thermo_mem::{PageSize, Vpn, PAGES_PER_HUGE};
use thermo_sim::{Engine, MemoryView, PlanOp, PolicyHook, PolicyPlan};

/// Configuration for the [`Kstaled`] scanner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KstaledConfig {
    /// Scan period in virtual ns (Linux's kstaled defaults to seconds-scale
    /// scanning; the paper detects idleness over 10s windows).
    pub scan_period_ns: u64,
}

impl Default for KstaledConfig {
    fn default() -> Self {
        Self {
            scan_period_ns: 2_000_000_000,
        }
    }
}

/// Per-huge-page idle bookkeeping.
#[derive(Debug, Clone, Copy, Default)]
struct IdleState {
    /// Consecutive scans with the A bit clear.
    idle_scans: u32,
}

/// The periodic Accessed-bit scanner.
///
/// Works entirely through the engine's snapshot/plan seam: each tick takes
/// a [`MemoryView`] of every VMA (built by `THERMO_SCAN_JOBS` shard
/// workers off the app thread when configured), updates idle ages from the
/// snapshot, and clears the observed Accessed bits with one
/// [`PolicyPlan`] — charging exactly what the historical fused
/// scan-and-clear paid.
#[derive(Debug)]
pub struct Kstaled {
    config: KstaledConfig,
    next_due_ns: u64,
    ages: BTreeMap<Vpn, IdleState>,
    scans: u64,
    scan_workers: usize,
}

impl Kstaled {
    /// Creates a scanner whose first scan fires one period from t=0.
    /// Snapshot scans use `THERMO_SCAN_JOBS` shard workers (inline when
    /// unset).
    pub fn new(config: KstaledConfig) -> Self {
        Self::with_scan_workers(config, thermo_exec::scan_jobs_from_env())
    }

    /// [`Kstaled::new`] with an explicit snapshot worker count instead of
    /// the `THERMO_SCAN_JOBS` environment default.
    pub fn with_scan_workers(config: KstaledConfig, scan_workers: usize) -> Self {
        Self {
            next_due_ns: config.scan_period_ns,
            config,
            ages: BTreeMap::new(),
            scans: 0,
            scan_workers,
        }
    }

    /// Number of completed scan passes.
    pub fn scans(&self) -> u64 {
        self.scans
    }

    /// Fraction of tracked huge pages idle for at least `min_idle_ns`
    /// (Figure 1's metric with `min_idle_ns` = 10s). Pages split to 4KB are
    /// not counted — the baseline works at 2MB granularity.
    pub fn idle_fraction(&self, min_idle_ns: u64) -> f64 {
        if self.ages.is_empty() {
            return 0.0;
        }
        let need = min_idle_ns.div_ceil(self.config.scan_period_ns).max(1) as u32;
        let idle = self.ages.values().filter(|s| s.idle_scans >= need).count();
        idle as f64 / self.ages.len() as f64
    }

    /// Huge pages idle for at least `min_idle_ns`, by base VPN.
    pub fn idle_pages(&self, min_idle_ns: u64) -> Vec<Vpn> {
        let need = min_idle_ns.div_ceil(self.config.scan_period_ns).max(1) as u32;
        self.ages
            .iter()
            .filter(|(_, s)| s.idle_scans >= need)
            .map(|(k, _)| *k)
            .collect()
    }

    /// Number of huge pages currently tracked.
    pub fn tracked_pages(&self) -> usize {
        self.ages.len()
    }
}

impl PolicyHook for Kstaled {
    fn next_due_ns(&self) -> u64 {
        self.next_due_ns
    }

    fn policy_name(&self) -> &str {
        "kstaled"
    }

    fn tick(&mut self, engine: &mut Engine) {
        let ranges = engine.vma_ranges();
        let view = engine.memory_view(&ranges, self.scan_workers);
        for p in view.pages() {
            if p.size != PageSize::Huge2M {
                continue;
            }
            let st = self.ages.entry(p.base_vpn).or_default();
            if p.accessed {
                st.idle_scans = 0;
            } else {
                st.idle_scans += 1;
            }
        }
        engine.apply_plan(&clear_accessed_plan(&view));
        self.scans += 1;
        self.next_due_ns += self.config.scan_period_ns;
    }
}

/// One [`PlanOp::ClearAccessed`] covering every accessed leaf of `view` —
/// the mutation half of a snapshot-based A-bit scan (same shootdown
/// charges as the historical fused scan over the same ranges).
pub(crate) fn clear_accessed_plan(view: &MemoryView) -> PolicyPlan {
    let mut plan = PolicyPlan::new();
    plan.push(PlanOp::ClearAccessed {
        pages: view
            .pages()
            .iter()
            .filter(|p| p.accessed)
            .map(|p| (p.base_vpn, p.size))
            .collect(),
    });
    plan
}

/// Number of consecutive accessed scans after which a 4KB region counts as
/// "hot" (the paper's Figure 2 definition).
pub const HOT_STREAK: u32 = 3;

/// Splits target huge pages and counts hot 4KB regions per huge page.
#[derive(Debug)]
pub struct HotRegionMonitor {
    period_ns: u64,
    next_due_ns: u64,
    max_scans: u32,
    scans_done: u32,
    /// Per target huge page: per-child consecutive-access streaks.
    streaks: BTreeMap<Vpn, Box<[u8; PAGES_PER_HUGE]>>,
    /// Per target huge page: children that ever reached [`HOT_STREAK`].
    ever_hot: BTreeMap<Vpn, Box<[bool; PAGES_PER_HUGE]>>,
    scan_workers: usize,
    finished: bool,
}

impl HotRegionMonitor {
    /// Splits every `target` huge page in `engine` and prepares monitoring
    /// with `max_scans` passes at `period_ns`.
    ///
    /// # Panics
    ///
    /// Panics if any target is not a mapped huge page.
    pub fn start(engine: &mut Engine, targets: &[Vpn], period_ns: u64, max_scans: u32) -> Self {
        let mut streaks = BTreeMap::new();
        let mut ever_hot = BTreeMap::new();
        // Split each target and clear its children's A bits so the first
        // interval starts clean (one SplitSample op per page).
        let mut plan = PolicyPlan::new();
        for &t in targets {
            plan.push(PlanOp::SplitSample { vpn: t });
            streaks.insert(t, Box::new([0u8; PAGES_PER_HUGE]));
            ever_hot.insert(t, Box::new([false; PAGES_PER_HUGE]));
        }
        engine.apply_plan(&plan);
        Self {
            period_ns,
            next_due_ns: period_ns,
            max_scans,
            scans_done: 0,
            streaks,
            ever_hot,
            scan_workers: thermo_exec::scan_jobs_from_env(),
            finished: false,
        }
    }

    /// True once all scans have run (the monitor stops ticking by reporting
    /// `u64::MAX` from [`PolicyHook::next_due_ns`]).
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Collapses the targets back and returns `(huge_vpn, hot_region_count)`
    /// per target, sorted by VPN.
    ///
    /// # Panics
    ///
    /// Panics if called before [`finished`](Self::finished).
    pub fn finish(self, engine: &mut Engine) -> Vec<(Vpn, u32)> {
        assert!(self.finished, "finish() before monitoring completed");
        let out: Vec<(Vpn, u32)> = self
            .ever_hot
            .iter()
            .map(|(vpn, hot)| (*vpn, hot.iter().filter(|h| **h).count() as u32))
            .collect();
        let mut plan = PolicyPlan::new();
        for &vpn in self.ever_hot.keys() {
            plan.push(PlanOp::Collapse { vpn });
        }
        engine.apply_plan(&plan);
        out
    }
}

impl PolicyHook for HotRegionMonitor {
    fn next_due_ns(&self) -> u64 {
        if self.finished {
            u64::MAX
        } else {
            self.next_due_ns
        }
    }

    fn policy_name(&self) -> &str {
        "hot-region-monitor"
    }

    fn tick(&mut self, engine: &mut Engine) {
        let ranges: Vec<(Vpn, u64)> = self
            .streaks
            .keys()
            .map(|&t| (t, PAGES_PER_HUGE as u64))
            .collect();
        let view = engine.memory_view(&ranges, self.scan_workers);
        for (i, (&t, streaks)) in self.streaks.iter_mut().enumerate() {
            let ever = self.ever_hot.get_mut(&t).expect("target tracked");
            for p in view.range_pages(i) {
                if p.size != PageSize::Small4K {
                    continue; // page got collapsed/migrated underneath us
                }
                let idx = p.base_vpn.index_in_huge();
                if p.accessed {
                    streaks[idx] = streaks[idx].saturating_add(1);
                    if u32::from(streaks[idx]) >= HOT_STREAK {
                        ever[idx] = true;
                    }
                } else {
                    streaks[idx] = 0;
                }
            }
        }
        engine.apply_plan(&clear_accessed_plan(&view));
        self.scans_done += 1;
        if self.scans_done >= self.max_scans {
            self.finished = true;
        } else {
            self.next_due_ns += self.period_ns;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermo_mem::VirtAddr;
    use thermo_sim::{run_for, Access, SimConfig, Workload};

    /// Touches the first `hot_huge` huge pages of its buffer every op.
    struct PartialToucher {
        base: VirtAddr,
        hot_huge: u64,
        i: u64,
    }

    impl Workload for PartialToucher {
        fn name(&self) -> &str {
            "partial"
        }

        fn init(&mut self, _e: &mut Engine) {}

        fn next_op(&mut self, _now: u64, acc: &mut Vec<Access>) -> Option<u64> {
            let page = self.i % self.hot_huge;
            acc.push(Access::read(
                self.base + page * (2 << 20) + (self.i * 64) % (2 << 20),
            ));
            self.i += 1;
            Some(10_000)
        }
    }

    fn setup(total_huge: u64) -> (Engine, VirtAddr) {
        let mut e = Engine::new(SimConfig::paper_defaults(256 << 20, 256 << 20));
        let base = e.mmap(total_huge * (2 << 20), true, true, false, "heap");
        for i in 0..total_huge {
            e.access(base + i * (2 << 20), true);
        }
        (e, base)
    }

    #[test]
    fn idle_fraction_detects_untouched_pages() {
        let (mut e, base) = setup(10);
        let mut w = PartialToucher {
            base,
            hot_huge: 3,
            i: 0,
        };
        let mut ks = Kstaled::new(KstaledConfig {
            scan_period_ns: 1_000_000_000,
        });
        run_for(&mut e, &mut w, &mut ks, 12_000_000_000);
        assert!(ks.scans() >= 10);
        assert_eq!(ks.tracked_pages(), 10);
        let idle = ks.idle_fraction(10_000_000_000);
        assert!((idle - 0.7).abs() < 0.05, "expected ~70% idle, got {idle}");
        assert_eq!(ks.idle_pages(10_000_000_000).len(), 7);
    }

    #[test]
    fn fully_hot_workload_has_no_idle_pages() {
        let (mut e, base) = setup(4);
        let mut w = PartialToucher {
            base,
            hot_huge: 4,
            i: 0,
        };
        let mut ks = Kstaled::new(KstaledConfig {
            scan_period_ns: 500_000_000,
        });
        run_for(&mut e, &mut w, &mut ks, 6_000_000_000);
        assert_eq!(ks.idle_fraction(2_000_000_000), 0.0);
    }

    #[test]
    fn idle_fraction_empty_is_zero() {
        let ks = Kstaled::new(KstaledConfig::default());
        assert_eq!(ks.idle_fraction(1), 0.0);
    }

    #[test]
    fn hot_region_monitor_counts_streaky_children() {
        let (mut e, base) = setup(2);
        struct TwoChildren {
            base: VirtAddr,
        }
        impl Workload for TwoChildren {
            fn name(&self) -> &str {
                "two"
            }
            fn init(&mut self, _e: &mut Engine) {}
            fn next_op(&mut self, _n: u64, acc: &mut Vec<Access>) -> Option<u64> {
                acc.push(Access::read(self.base));
                acc.push(Access::read(self.base + 5 * 4096));
                Some(1_000_000)
            }
        }
        let mut w = TwoChildren { base };
        let mut mon = HotRegionMonitor::start(&mut e, &[base.vpn()], 1_000_000_000, 5);
        run_for(&mut e, &mut w, &mut mon, 7_000_000_000);
        assert!(mon.finished());
        let report = mon.finish(&mut e);
        assert_eq!(report.len(), 1);
        let (vpn, hot) = report[0];
        assert_eq!(vpn, base.vpn());
        assert_eq!(hot, 2, "exactly children 0 and 5 are hot");
        assert_eq!(e.page_table().mapped_huge_pages(), 2);
    }

    #[test]
    #[should_panic(expected = "before monitoring completed")]
    fn finish_early_panics() {
        let (mut e, base) = setup(1);
        let mon = HotRegionMonitor::start(&mut e, &[base.vpn()], 1_000_000_000, 5);
        let _ = mon.finish(&mut e);
    }
}

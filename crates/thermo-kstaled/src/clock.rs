//! A CLOCK-style, capacity-driven placement baseline.
//!
//! Classic software two-tier systems (the paper's §7 "software-managed
//! two-level memory" related work) are *capacity*-driven: they keep the
//! fast tier within a size budget and evict not-recently-used pages,
//! rather than bounding slowdown. [`ClockPolicy`] reproduces that design
//! point: a CLOCK hand sweeps huge pages' Accessed bits; when fast-tier
//! usage exceeds the target, pages with a clear A bit are demoted, and any
//! slow page that gets referenced is promoted back on the next sweep.
//!
//! Comparing this against Thermostat isolates the paper's core insight:
//! reference bits say *whether* a page was touched, not *how much placing
//! it in slow memory will hurt.

use std::collections::VecDeque;
use thermo_mem::{PageSize, Tier, Vpn};
use thermo_sim::{Engine, OpOutcome, PlanOp, PolicyHook, PolicyPlan};

/// Configuration for [`ClockPolicy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockConfig {
    /// Sweep period, virtual ns.
    pub sweep_period_ns: u64,
    /// Target fraction of the resident footprint kept in fast memory
    /// (e.g. 0.6 = demote until at most 60% is fast).
    pub fast_target_fraction: f64,
}

impl Default for ClockConfig {
    fn default() -> Self {
        Self {
            sweep_period_ns: 1_000_000_000,
            fast_target_fraction: 0.6,
        }
    }
}

/// Statistics for the CLOCK baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClockStats {
    /// Sweeps completed.
    pub sweeps: u64,
    /// Huge pages demoted.
    pub demotions: u64,
    /// Huge pages promoted after a reference in slow memory.
    pub promotions: u64,
}

/// The CLOCK-with-capacity-target baseline policy.
///
/// Works through the engine's snapshot/plan seam: each sweep takes one
/// [`MemoryView`](thermo_sim::MemoryView), decides on it, and mutates the
/// machine only via [`PolicyPlan`]s. When the migration fabric is enabled
/// (`SimConfig::fabric.enabled`) demotions go through transactional
/// `BeginMigrate`/`CommitMigrate` ops — the copy runs asynchronously and
/// the next sweep collects the receipts.
#[derive(Debug)]
pub struct ClockPolicy {
    config: ClockConfig,
    next_due_ns: u64,
    /// Demotion candidates observed idle last sweep, FIFO hand order.
    idle_queue: VecDeque<Vpn>,
    /// Fabric demotions in flight, as `(vpn, txn_id)`.
    pending: Vec<(Vpn, u64)>,
    stats: ClockStats,
    scan_workers: usize,
}

impl ClockPolicy {
    /// Creates the policy; the first sweep fires one period in. Snapshot
    /// scans use `THERMO_SCAN_JOBS` shard workers (inline when unset).
    pub fn new(config: ClockConfig) -> Self {
        Self::with_scan_workers(config, thermo_exec::scan_jobs_from_env())
    }

    /// [`ClockPolicy::new`] with an explicit snapshot worker count.
    pub fn with_scan_workers(config: ClockConfig, scan_workers: usize) -> Self {
        Self {
            next_due_ns: config.sweep_period_ns,
            config,
            idle_queue: VecDeque::new(),
            pending: Vec::new(),
            stats: ClockStats::default(),
            scan_workers,
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ClockStats {
        self.stats
    }

    /// Collect receipts for fabric demotions begun on earlier sweeps: a
    /// completed copy commits (and the now-slow page is poisoned so the
    /// fault-emulated methodology keeps charging it), an in-flight copy
    /// stays pending, an aborted one is simply dropped — the page stayed
    /// fast and the hand will see it again.
    fn commit_pending(&mut self, engine: &mut Engine) {
        if self.pending.is_empty() {
            return;
        }
        let mut plan = PolicyPlan::new();
        for &(_, id) in &self.pending {
            plan.push(PlanOp::CommitMigrate { txn: id });
        }
        let receipt = engine.apply_plan(&plan);
        let mut follow = PolicyPlan::new();
        let mut still = Vec::new();
        for ((vpn, id), oc) in std::mem::take(&mut self.pending)
            .into_iter()
            .zip(receipt.outcomes())
        {
            match oc {
                OpOutcome::Done => {
                    follow.push(PlanOp::Poison {
                        vpn,
                        size: PageSize::Huge2M,
                    });
                    self.stats.demotions += 1;
                }
                OpOutcome::Pending => still.push((vpn, id)),
                _ => {} // aborted or target-OOM: the page stayed fast
            }
        }
        self.pending = still;
        if !follow.is_empty() {
            let receipt = engine.apply_plan(&follow);
            debug_assert!(
                receipt.outcomes().iter().all(|o| *o == OpOutcome::Done),
                "poison follow-ups complete synchronously"
            );
        }
    }

    fn sweep(&mut self, engine: &mut Engine) {
        let fabric_mode = engine.config().fabric.enabled;
        if fabric_mode {
            self.commit_pending(engine);
        }
        // Pass 1: snapshot A bits everywhere, then one plan that clears
        // them and promotes referenced slow pages (CLOCK second chance
        // across tiers); idle fast pages enter the demotion queue.
        let ranges = engine.vma_ranges();
        let view = engine.memory_view(&ranges, self.scan_workers);
        self.idle_queue.clear();
        let mut plan = crate::clear_accessed_plan(&view);
        for p in view.pages() {
            if p.size != PageSize::Huge2M {
                continue;
            }
            match p.tier {
                Tier::Fast if !p.accessed => self.idle_queue.push_back(p.base_vpn),
                Tier::Slow if p.accessed => {
                    plan.push(PlanOp::PromoteWholeHuge { vpn: p.base_vpn });
                }
                _ => {}
            }
        }
        let receipt = engine.apply_plan(&plan);
        for oc in &receipt.outcomes()[1..] {
            if *oc == OpOutcome::Done {
                self.stats.promotions += 1;
            }
        }
        // Pass 2: demote idle pages until the fast share is at target.
        let total = engine.rss_bytes().max(1);
        let target_fast = (total as f64 * self.config.fast_target_fraction) as u64;
        if fabric_mode {
            // Transactional demotion: the footprint only changes at commit,
            // so work against a projected fast-tier size instead of
            // re-reading it per page.
            let fb = engine.footprint_breakdown();
            let mut fast_bytes = fb.huge_fast + fb.small_fast;
            while let Some(vpn) = self.idle_queue.pop_front() {
                if fast_bytes <= target_fast {
                    break;
                }
                if self.pending.iter().any(|&(v, _)| v == vpn) {
                    continue;
                }
                if engine.tier_of_vpn(vpn) != Some(Tier::Fast) {
                    continue;
                }
                let mut plan = PolicyPlan::new();
                plan.push(PlanOp::BeginMigrate {
                    vpn,
                    target: Tier::Slow,
                });
                let receipt = engine.apply_plan(&plan);
                if let OpOutcome::Begun(id) = receipt.outcomes()[0] {
                    self.pending.push((vpn, id));
                    fast_bytes -= PageSize::Huge2M.bytes() as u64;
                }
            }
        } else {
            while let Some(vpn) = self.idle_queue.pop_front() {
                let fb = engine.footprint_breakdown();
                if fb.huge_fast + fb.small_fast <= target_fast {
                    break;
                }
                if engine.tier_of_vpn(vpn) != Some(Tier::Fast) {
                    continue;
                }
                // Capacity policies do not monitor cold pages; but under
                // the paper's fault-based evaluation methodology slow pages
                // must be poisoned so accesses pay the emulated latency —
                // DemoteWholeHuge is exactly migrate+poison (or stay-hot on
                // a full slow tier).
                let mut plan = PolicyPlan::new();
                plan.push(PlanOp::DemoteWholeHuge { vpn });
                let receipt = engine.apply_plan(&plan);
                if receipt.outcomes()[0] == OpOutcome::Done {
                    self.stats.demotions += 1;
                }
            }
        }
        self.stats.sweeps += 1;
    }
}

impl PolicyHook for ClockPolicy {
    fn next_due_ns(&self) -> u64 {
        self.next_due_ns
    }

    fn policy_name(&self) -> &str {
        "clock"
    }

    fn tick(&mut self, engine: &mut Engine) {
        self.sweep(engine);
        self.next_due_ns += self.config.sweep_period_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermo_mem::VirtAddr;
    use thermo_sim::{run_for, Access, SimConfig, Workload};

    struct HalfHot {
        base: VirtAddr,
        n_huge: u64,
        i: u64,
    }

    impl Workload for HalfHot {
        fn name(&self) -> &str {
            "halfhot"
        }

        fn init(&mut self, engine: &mut Engine) {
            self.base = engine.mmap(self.n_huge * (2 << 20), true, true, false, "heap");
            for p in 0..self.n_huge {
                engine.access(self.base + p * (2 << 20), true);
            }
        }

        fn next_op(&mut self, _now: u64, acc: &mut Vec<Access>) -> Option<u64> {
            let page = self.i % (self.n_huge / 2); // first half hot
            acc.push(Access::read(
                self.base + page * (2 << 20) + (self.i * 64) % (2 << 20),
            ));
            self.i += 1;
            Some(2_000)
        }
    }

    #[test]
    fn clock_enforces_capacity_target_on_idle_pages() {
        let mut engine = Engine::new(SimConfig::paper_defaults(128 << 20, 128 << 20));
        let mut w = HalfHot {
            base: VirtAddr(0),
            n_huge: 16,
            i: 0,
        };
        w.init(&mut engine);
        let mut clock = ClockPolicy::new(ClockConfig {
            sweep_period_ns: 200_000_000,
            fast_target_fraction: 0.5,
        });
        run_for(&mut engine, &mut w, &mut clock, 3_000_000_000);
        assert!(clock.stats().sweeps > 5);
        let fb = engine.footprint_breakdown();
        let fast_frac = 1.0 - fb.cold_fraction();
        assert!(
            fast_frac <= 0.60,
            "capacity target must be enforced, fast fraction {fast_frac:.2}"
        );
        // The hot half must be in fast memory (second chance protects it).
        for p in 0..8u64 {
            assert_eq!(
                engine.tier_of_vpn((w.base + p * (2 << 20)).vpn()),
                Some(Tier::Fast),
                "hot page {p} must stay fast"
            );
        }
    }

    /// The hot page rotates slowly, so previously-idle (demoted) pages get
    /// referenced again later — CLOCK must promote them.
    struct RotatingHot {
        base: VirtAddr,
        n_huge: u64,
        i: u64,
    }

    impl Workload for RotatingHot {
        fn name(&self) -> &str {
            "rotatinghot"
        }

        fn init(&mut self, engine: &mut Engine) {
            self.base = engine.mmap(self.n_huge * (2 << 20), true, true, false, "heap");
            for p in 0..self.n_huge {
                engine.access(self.base + p * (2 << 20), true);
            }
        }

        fn next_op(&mut self, _now: u64, acc: &mut Vec<Access>) -> Option<u64> {
            let page = (self.i / 200_000) % self.n_huge; // shift every ~0.4s
            acc.push(Access::read(
                self.base + page * (2 << 20) + (self.i * 64) % (2 << 20),
            ));
            self.i += 1;
            Some(2_000)
        }
    }

    #[test]
    fn referenced_slow_pages_get_promoted() {
        let mut engine = Engine::new(SimConfig::paper_defaults(128 << 20, 128 << 20));
        let mut w = RotatingHot {
            base: VirtAddr(0),
            n_huge: 6,
            i: 0,
        };
        w.init(&mut engine);
        let mut clock = ClockPolicy::new(ClockConfig {
            sweep_period_ns: 100_000_000,
            fast_target_fraction: 0.4,
        });
        run_for(&mut engine, &mut w, &mut clock, 3_000_000_000);
        assert!(clock.stats().demotions > 0);
        // The hot spot rotated onto demoted pages, so promotions must have
        // pulled referenced pages back.
        assert!(
            clock.stats().promotions > 0,
            "CLOCK must give referenced pages a second chance"
        );
    }
}

//! A CLOCK-style, capacity-driven placement baseline.
//!
//! Classic software two-tier systems (the paper's §7 "software-managed
//! two-level memory" related work) are *capacity*-driven: they keep the
//! fast tier within a size budget and evict not-recently-used pages,
//! rather than bounding slowdown. [`ClockPolicy`] reproduces that design
//! point: a CLOCK hand sweeps huge pages' Accessed bits; when fast-tier
//! usage exceeds the target, pages with a clear A bit are demoted, and any
//! slow page that gets referenced is promoted back on the next sweep.
//!
//! Comparing this against Thermostat isolates the paper's core insight:
//! reference bits say *whether* a page was touched, not *how much placing
//! it in slow memory will hurt.

use std::collections::VecDeque;
use thermo_mem::{PageSize, Tier, Vpn};
use thermo_sim::{Engine, PolicyHook};
use thermo_vm::ScanHit;

/// Configuration for [`ClockPolicy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockConfig {
    /// Sweep period, virtual ns.
    pub sweep_period_ns: u64,
    /// Target fraction of the resident footprint kept in fast memory
    /// (e.g. 0.6 = demote until at most 60% is fast).
    pub fast_target_fraction: f64,
}

impl Default for ClockConfig {
    fn default() -> Self {
        Self {
            sweep_period_ns: 1_000_000_000,
            fast_target_fraction: 0.6,
        }
    }
}

/// Statistics for the CLOCK baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClockStats {
    /// Sweeps completed.
    pub sweeps: u64,
    /// Huge pages demoted.
    pub demotions: u64,
    /// Huge pages promoted after a reference in slow memory.
    pub promotions: u64,
}

/// The CLOCK-with-capacity-target baseline policy.
#[derive(Debug)]
pub struct ClockPolicy {
    config: ClockConfig,
    next_due_ns: u64,
    /// Demotion candidates observed idle last sweep, FIFO hand order.
    idle_queue: VecDeque<Vpn>,
    stats: ClockStats,
    scratch: Vec<ScanHit>,
}

impl ClockPolicy {
    /// Creates the policy; the first sweep fires one period in.
    pub fn new(config: ClockConfig) -> Self {
        Self {
            next_due_ns: config.sweep_period_ns,
            config,
            idle_queue: VecDeque::new(),
            stats: ClockStats::default(),
            scratch: Vec::new(),
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ClockStats {
        self.stats
    }

    fn sweep(&mut self, engine: &mut Engine) {
        // Pass 1: read+clear A bits everywhere; referenced slow pages get
        // promoted (CLOCK second chance across tiers), idle fast pages
        // enter the demotion queue.
        let regions: Vec<(Vpn, u64)> = engine
            .vmas()
            .iter()
            .map(|v| (v.start.vpn(), v.len / 4096))
            .collect();
        self.idle_queue.clear();
        for (start, n) in regions {
            self.scratch.clear();
            engine.scan_and_clear_accessed(start, n, &mut self.scratch);
            for hit in &self.scratch {
                if hit.size != PageSize::Huge2M {
                    continue;
                }
                match engine.tier_of_vpn(hit.base_vpn) {
                    Some(Tier::Fast) if !hit.accessed => self.idle_queue.push_back(hit.base_vpn),
                    Some(Tier::Slow) if hit.accessed => {
                        if engine.migrate_page(hit.base_vpn, Tier::Fast).is_ok() {
                            self.stats.promotions += 1;
                        }
                    }
                    _ => {}
                }
            }
        }
        // Pass 2: demote idle pages until the fast share is at target.
        let total = engine.rss_bytes().max(1);
        let target_fast = (total as f64 * self.config.fast_target_fraction) as u64;
        while let Some(vpn) = self.idle_queue.pop_front() {
            let fb = engine.footprint_breakdown();
            if fb.huge_fast + fb.small_fast <= target_fast {
                break;
            }
            if engine.tier_of_vpn(vpn) == Some(Tier::Fast)
                && engine.migrate_page(vpn, Tier::Slow).is_ok()
            {
                // Capacity policies do not monitor cold pages; but under
                // the paper's fault-based evaluation methodology slow pages
                // must be poisoned so accesses pay the emulated latency.
                engine.poison_page(vpn, PageSize::Huge2M);
                self.stats.demotions += 1;
            }
        }
        self.stats.sweeps += 1;
    }
}

impl PolicyHook for ClockPolicy {
    fn next_due_ns(&self) -> u64 {
        self.next_due_ns
    }

    fn tick(&mut self, engine: &mut Engine) {
        self.sweep(engine);
        self.next_due_ns += self.config.sweep_period_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermo_mem::VirtAddr;
    use thermo_sim::{run_for, Access, SimConfig, Workload};

    struct HalfHot {
        base: VirtAddr,
        n_huge: u64,
        i: u64,
    }

    impl Workload for HalfHot {
        fn name(&self) -> &str {
            "halfhot"
        }

        fn init(&mut self, engine: &mut Engine) {
            self.base = engine.mmap(self.n_huge * (2 << 20), true, true, false, "heap");
            for p in 0..self.n_huge {
                engine.access(self.base + p * (2 << 20), true);
            }
        }

        fn next_op(&mut self, _now: u64, acc: &mut Vec<Access>) -> Option<u64> {
            let page = self.i % (self.n_huge / 2); // first half hot
            acc.push(Access::read(
                self.base + page * (2 << 20) + (self.i * 64) % (2 << 20),
            ));
            self.i += 1;
            Some(2_000)
        }
    }

    #[test]
    fn clock_enforces_capacity_target_on_idle_pages() {
        let mut engine = Engine::new(SimConfig::paper_defaults(128 << 20, 128 << 20));
        let mut w = HalfHot {
            base: VirtAddr(0),
            n_huge: 16,
            i: 0,
        };
        w.init(&mut engine);
        let mut clock = ClockPolicy::new(ClockConfig {
            sweep_period_ns: 200_000_000,
            fast_target_fraction: 0.5,
        });
        run_for(&mut engine, &mut w, &mut clock, 3_000_000_000);
        assert!(clock.stats().sweeps > 5);
        let fb = engine.footprint_breakdown();
        let fast_frac = 1.0 - fb.cold_fraction();
        assert!(
            fast_frac <= 0.60,
            "capacity target must be enforced, fast fraction {fast_frac:.2}"
        );
        // The hot half must be in fast memory (second chance protects it).
        for p in 0..8u64 {
            assert_eq!(
                engine.tier_of_vpn((w.base + p * (2 << 20)).vpn()),
                Some(Tier::Fast),
                "hot page {p} must stay fast"
            );
        }
    }

    /// The hot page rotates slowly, so previously-idle (demoted) pages get
    /// referenced again later — CLOCK must promote them.
    struct RotatingHot {
        base: VirtAddr,
        n_huge: u64,
        i: u64,
    }

    impl Workload for RotatingHot {
        fn name(&self) -> &str {
            "rotatinghot"
        }

        fn init(&mut self, engine: &mut Engine) {
            self.base = engine.mmap(self.n_huge * (2 << 20), true, true, false, "heap");
            for p in 0..self.n_huge {
                engine.access(self.base + p * (2 << 20), true);
            }
        }

        fn next_op(&mut self, _now: u64, acc: &mut Vec<Access>) -> Option<u64> {
            let page = (self.i / 200_000) % self.n_huge; // shift every ~0.4s
            acc.push(Access::read(
                self.base + page * (2 << 20) + (self.i * 64) % (2 << 20),
            ));
            self.i += 1;
            Some(2_000)
        }
    }

    #[test]
    fn referenced_slow_pages_get_promoted() {
        let mut engine = Engine::new(SimConfig::paper_defaults(128 << 20, 128 << 20));
        let mut w = RotatingHot {
            base: VirtAddr(0),
            n_huge: 6,
            i: 0,
        };
        w.init(&mut engine);
        let mut clock = ClockPolicy::new(ClockConfig {
            sweep_period_ns: 100_000_000,
            fast_target_fraction: 0.4,
        });
        run_for(&mut engine, &mut w, &mut clock, 3_000_000_000);
        assert!(clock.stats().demotions > 0);
        // The hot spot rotated onto demoted pages, so promotions must have
        // pulled referenced pages back.
        assert!(
            clock.stats().promotions > 0,
            "CLOCK must give referenced pages a second chance"
        );
    }
}

//! Property tests for the VM substrate: translation correctness under
//! arbitrary map/split/collapse sequences, and TLB coherence after
//! shootdowns.

use proptest::prelude::*;
use std::collections::HashMap;
use thermo_mem::{PageSize, Pfn, Vpn, PAGES_PER_HUGE};
use thermo_vm::{PageTable, Tlb, TlbOutcome, Vpid};

#[derive(Debug, Clone)]
enum Action {
    MapHuge(u8),
    Split(u8),
    Collapse(u8),
    Unmap(u8),
    Touch(u8, u16),
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0u8..8).prop_map(Action::MapHuge),
        (0u8..8).prop_map(Action::Split),
        (0u8..8).prop_map(Action::Collapse),
        (0u8..8).prop_map(Action::Unmap),
        ((0u8..8), (0u16..512)).prop_map(|(s, o)| Action::Touch(s, o)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever sequence of huge-page operations runs, every mapped 4KB page
    /// translates to the frame implied by its huge page's base frame, and
    /// split/collapse never change translations.
    #[test]
    fn translations_stable_under_split_collapse(actions in prop::collection::vec(action_strategy(), 1..120)) {
        let mut pt = PageTable::new();
        // slot i <-> huge page at vpn 512*i; frame base 512*(i+1) when mapped.
        let mut mapped = [false; 8];
        let mut split = [false; 8];

        for a in actions {
            match a {
                Action::MapHuge(s) => {
                    let s = s as usize;
                    if !mapped[s] {
                        pt.map_huge(Vpn((s * PAGES_PER_HUGE) as u64), Pfn(((s + 1) * PAGES_PER_HUGE) as u64), true).unwrap();
                        mapped[s] = true;
                        split[s] = false;
                    }
                }
                Action::Split(s) => {
                    let s = s as usize;
                    if mapped[s] && !split[s] {
                        pt.split_huge(Vpn((s * PAGES_PER_HUGE) as u64)).unwrap();
                        split[s] = true;
                    }
                }
                Action::Collapse(s) => {
                    let s = s as usize;
                    if mapped[s] && split[s] {
                        pt.collapse_huge(Vpn((s * PAGES_PER_HUGE) as u64)).unwrap();
                        split[s] = false;
                    }
                }
                Action::Unmap(s) => {
                    let s = s as usize;
                    if mapped[s] {
                        if split[s] {
                            for i in 0..PAGES_PER_HUGE {
                                pt.unmap(Vpn((s * PAGES_PER_HUGE + i) as u64)).unwrap();
                            }
                        } else {
                            pt.unmap(Vpn((s * PAGES_PER_HUGE) as u64)).unwrap();
                        }
                        mapped[s] = false;
                        split[s] = false;
                    }
                }
                Action::Touch(s, off) => {
                    let s = s as usize;
                    let vpn = Vpn((s * PAGES_PER_HUGE) as u64 + off as u64);
                    match pt.lookup(vpn) {
                        Some(m) => {
                            prop_assert!(mapped[s]);
                            let expect = Pfn(((s + 1) * PAGES_PER_HUGE) as u64 + off as u64);
                            prop_assert_eq!(m.frame_for(vpn), expect);
                            let expect_size = if split[s] { PageSize::Small4K } else { PageSize::Huge2M };
                            prop_assert_eq!(m.size, expect_size);
                        }
                        None => prop_assert!(!mapped[s]),
                    }
                }
            }
            // Leaf counters stay consistent.
            let hs = mapped.iter().zip(split.iter()).filter(|(m, s)| **m && !**s).count() as u64;
            let ss = mapped.iter().zip(split.iter()).filter(|(m, s)| **m && **s).count() as u64 * PAGES_PER_HUGE as u64;
            prop_assert_eq!(pt.mapped_huge_pages(), hs);
            prop_assert_eq!(pt.mapped_small_pages(), ss);
        }
    }

    /// The TLB never returns a stale frame: after any interleaving of
    /// inserts and shootdowns, a hit must agree with the shadow map.
    #[test]
    fn tlb_never_stale(ops in prop::collection::vec((0u64..64, 0u64..1000, any::<bool>()), 1..300)) {
        let mut tlb = Tlb::default();
        let vpid = Vpid(1);
        let mut shadow: HashMap<u64, u64> = HashMap::new();
        for (vpn, pfn, remove) in ops {
            if remove {
                tlb.shootdown(Vpn(vpn), PageSize::Small4K, vpid);
                shadow.remove(&vpn);
            } else {
                tlb.insert(Vpn(vpn), Pfn(pfn), PageSize::Small4K, vpid);
                shadow.insert(vpn, pfn);
            }
            // Probe a few pages.
            for probe in [vpn, vpn ^ 1, 0] {
                match tlb.lookup(Vpn(probe), vpid) {
                    TlbOutcome::HitL1 { pfn, .. } | TlbOutcome::HitL2 { pfn, .. } => {
                        prop_assert_eq!(Some(&pfn.0), shadow.get(&probe), "stale TLB entry for vpn {}", probe);
                    }
                    TlbOutcome::Miss => {} // misses are always legal
                }
            }
        }
    }

    /// Splitting preserves the poison and A/D bits on all children, and
    /// collapse folds them back, so no monitoring state is ever lost.
    #[test]
    fn split_collapse_preserve_bits(poison in any::<bool>(), accessed in any::<bool>()) {
        let mut pt = PageTable::new();
        pt.map_huge(Vpn(0), Pfn(512), true).unwrap();
        pt.with_pte_mut(Vpn(0), |p| {
            if poison { p.poison(); }
            if accessed { p.set_accessed(); }
        });
        pt.split_huge(Vpn(0)).unwrap();
        for i in [0u64, 200, 511] {
            let pte = pt.lookup(Vpn(i)).unwrap().pte;
            prop_assert_eq!(pte.poisoned(), poison);
            prop_assert_eq!(pte.accessed(), accessed);
        }
        pt.collapse_huge(Vpn(0)).unwrap();
        let pte = pt.lookup(Vpn(0)).unwrap().pte;
        prop_assert_eq!(pte.poisoned(), poison);
        prop_assert_eq!(pte.accessed(), accessed);
        prop_assert_eq!(pte.pfn(), Pfn(512));
    }
}

//! Property tests for the VM substrate: translation correctness under
//! arbitrary map/split/collapse sequences, and TLB coherence after
//! shootdowns.

use std::collections::HashMap;
use thermo_mem::{PageSize, Pfn, Vpn, PAGES_PER_HUGE};
use thermo_util::forall;
use thermo_util::proptest_lite::{any, range, vec_of, weighted, Strategy};
use thermo_vm::{PageTable, Tlb, TlbOutcome, Vpid};

#[derive(Debug, Clone)]
enum Action {
    MapHuge(u8),
    Split(u8),
    Collapse(u8),
    Unmap(u8),
    Touch(u8, u16),
}

fn action_strategy() -> impl Strategy<Value = Action> {
    weighted(vec![
        (1, range(0u8..8).prop_map(Action::MapHuge).boxed()),
        (1, range(0u8..8).prop_map(Action::Split).boxed()),
        (1, range(0u8..8).prop_map(Action::Collapse).boxed()),
        (1, range(0u8..8).prop_map(Action::Unmap).boxed()),
        (
            1,
            (range(0u8..8), range(0u16..512))
                .prop_map(|(s, o)| Action::Touch(s, o))
                .boxed(),
        ),
    ])
}

/// Whatever sequence of huge-page operations runs, every mapped 4KB page
/// translates to the frame implied by its huge page's base frame, and
/// split/collapse never change translations.
#[test]
fn translations_stable_under_split_collapse() {
    forall!(cases = 48, (actions in vec_of(action_strategy(), 1..120)) => {
        let mut pt = PageTable::new();
        // slot i <-> huge page at vpn 512*i; frame base 512*(i+1) when mapped.
        let mut mapped = [false; 8];
        let mut split = [false; 8];

        for a in actions {
            match a {
                Action::MapHuge(s) => {
                    let s = s as usize;
                    if !mapped[s] {
                        pt.map_huge(Vpn((s * PAGES_PER_HUGE) as u64), Pfn(((s + 1) * PAGES_PER_HUGE) as u64), true).unwrap();
                        mapped[s] = true;
                        split[s] = false;
                    }
                }
                Action::Split(s) => {
                    let s = s as usize;
                    if mapped[s] && !split[s] {
                        pt.split_huge(Vpn((s * PAGES_PER_HUGE) as u64)).unwrap();
                        split[s] = true;
                    }
                }
                Action::Collapse(s) => {
                    let s = s as usize;
                    if mapped[s] && split[s] {
                        pt.collapse_huge(Vpn((s * PAGES_PER_HUGE) as u64)).unwrap();
                        split[s] = false;
                    }
                }
                Action::Unmap(s) => {
                    let s = s as usize;
                    if mapped[s] {
                        if split[s] {
                            for i in 0..PAGES_PER_HUGE {
                                pt.unmap(Vpn((s * PAGES_PER_HUGE + i) as u64)).unwrap();
                            }
                        } else {
                            pt.unmap(Vpn((s * PAGES_PER_HUGE) as u64)).unwrap();
                        }
                        mapped[s] = false;
                        split[s] = false;
                    }
                }
                Action::Touch(s, off) => {
                    let s = s as usize;
                    let vpn = Vpn((s * PAGES_PER_HUGE) as u64 + off as u64);
                    match pt.lookup(vpn) {
                        Some(m) => {
                            assert!(mapped[s]);
                            let expect = Pfn(((s + 1) * PAGES_PER_HUGE) as u64 + off as u64);
                            assert_eq!(m.frame_for(vpn), expect);
                            let expect_size = if split[s] { PageSize::Small4K } else { PageSize::Huge2M };
                            assert_eq!(m.size, expect_size);
                        }
                        None => assert!(!mapped[s]),
                    }
                }
            }
            // Leaf counters stay consistent.
            let hs = mapped.iter().zip(split.iter()).filter(|(m, s)| **m && !**s).count() as u64;
            let ss = mapped.iter().zip(split.iter()).filter(|(m, s)| **m && **s).count() as u64 * PAGES_PER_HUGE as u64;
            assert_eq!(pt.mapped_huge_pages(), hs);
            assert_eq!(pt.mapped_small_pages(), ss);
        }
    });
}

/// The TLB never returns a stale frame: after any interleaving of
/// inserts and shootdowns, a hit must agree with the shadow map.
#[test]
fn tlb_never_stale() {
    let op = (range(0u64..64), range(0u64..1000), any::<bool>());
    forall!(cases = 48, (ops in vec_of(op, 1..300)) => {
        let mut tlb = Tlb::default();
        let vpid = Vpid(1);
        let mut shadow: HashMap<u64, u64> = HashMap::new();
        for (vpn, pfn, remove) in ops {
            if remove {
                tlb.shootdown(Vpn(vpn), PageSize::Small4K, vpid);
                shadow.remove(&vpn);
            } else {
                tlb.insert(Vpn(vpn), Pfn(pfn), PageSize::Small4K, vpid);
                shadow.insert(vpn, pfn);
            }
            // Probe a few pages.
            for probe in [vpn, vpn ^ 1, 0] {
                match tlb.lookup(Vpn(probe), vpid) {
                    TlbOutcome::HitL1 { pfn, .. } | TlbOutcome::HitL2 { pfn, .. } => {
                        assert_eq!(Some(&pfn.0), shadow.get(&probe), "stale TLB entry for vpn {probe}");
                    }
                    TlbOutcome::Miss => {} // misses are always legal
                }
            }
        }
    });
}

/// Splitting preserves the poison and A/D bits on all children, and
/// collapse folds them back, so no monitoring state is ever lost.
#[test]
fn split_collapse_preserve_bits() {
    forall!(cases = 48, (poison in any::<bool>()), (accessed in any::<bool>()) => {
        let mut pt = PageTable::new();
        pt.map_huge(Vpn(0), Pfn(512), true).unwrap();
        pt.with_pte_mut(Vpn(0), |p| {
            if poison { p.poison(); }
            if accessed { p.set_accessed(); }
        });
        pt.split_huge(Vpn(0)).unwrap();
        for i in [0u64, 200, 511] {
            let pte = pt.lookup(Vpn(i)).unwrap().pte;
            assert_eq!(pte.poisoned(), poison);
            assert_eq!(pte.accessed(), accessed);
        }
        pt.collapse_huge(Vpn(0)).unwrap();
        let pte = pt.lookup(Vpn(0)).unwrap().pte;
        assert_eq!(pte.poisoned(), poison);
        assert_eq!(pte.accessed(), accessed);
        assert_eq!(pte.pfn(), Pfn(512));
    });
}

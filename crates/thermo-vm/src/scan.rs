//! Accessed-bit scanning primitives.
//!
//! Both the kstaled baseline (paper §2.1) and step one of Thermostat's
//! two-step monitor (§3.2: "We first rely on the hardware-maintained
//! Accessed bits to monitor all 512 4KB pages and identify those with a
//! non-zero access rate") are built from the same primitive: read the A bit
//! of each PTE, clear it, and shoot down the TLB entry so the next access
//! performs a walk and re-sets the bit. The shootdown is precisely the
//! overhead that makes high-frequency A-bit scanning unaffordable — the
//! paper's central motivation.

use crate::pagetable::PageTable;
use crate::tlb::{Tlb, Vpid};
use thermo_mem::{PageSize, Vpn};

/// One scanned leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanHit {
    /// Base VPN of the leaf.
    pub base_vpn: Vpn,
    /// Leaf size.
    pub size: PageSize,
    /// Accessed-bit value before clearing.
    pub accessed: bool,
    /// Dirty-bit value (not cleared).
    pub dirty: bool,
}

/// Cost accounting for a scan pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanCost {
    /// PTEs visited.
    pub ptes_visited: u64,
    /// TLB shootdowns issued (one per cleared A bit).
    pub shootdowns: u64,
}

impl ScanCost {
    /// Kernel time consumed by the pass: `visit_ns` per PTE visit plus
    /// `shootdown_ns` per shootdown (IPIs + INVLPG are the expensive part).
    pub fn time_ns(&self, visit_ns: u64, shootdown_ns: u64) -> u64 {
        self.ptes_visited * visit_ns + self.shootdowns * shootdown_ns
    }
}

/// Reads and clears the Accessed bit of every leaf in
/// `[start, start + n_pages)`, shooting down translations whose bit was set,
/// and reports each leaf's prior state.
pub fn scan_and_clear(
    pt: &mut PageTable,
    tlb: &mut Tlb,
    vpid: Vpid,
    start: Vpn,
    n_pages: u64,
    out: &mut Vec<ScanHit>,
) -> ScanCost {
    let mut cost = ScanCost::default();
    let mut to_flush: Vec<(Vpn, PageSize)> = Vec::new();
    pt.for_each_leaf_mut(start, n_pages, |base_vpn, size, pte| {
        cost.ptes_visited += 1;
        let accessed = pte.accessed();
        out.push(ScanHit {
            base_vpn,
            size,
            accessed,
            dirty: pte.dirty(),
        });
        if accessed {
            pte.clear_accessed();
            to_flush.push((base_vpn, size));
        }
    });
    for (vpn, size) in to_flush {
        tlb.shootdown(vpn, size, vpid);
        cost.shootdowns += 1;
    }
    cost
}

/// Reads the Accessed bits in `[start, start + n_pages)` without clearing
/// them (no shootdowns, so no overhead — but the bits saturate: once set
/// they stay set).
pub fn read_accessed(
    pt: &mut PageTable,
    start: Vpn,
    n_pages: u64,
    out: &mut Vec<ScanHit>,
) -> ScanCost {
    let mut cost = ScanCost::default();
    pt.for_each_leaf_mut(start, n_pages, |base_vpn, size, pte| {
        cost.ptes_visited += 1;
        out.push(ScanHit {
            base_vpn,
            size,
            accessed: pte.accessed(),
            dirty: pte.dirty(),
        });
    });
    cost
}

/// Shared-borrow variant of [`read_accessed`]: reads every leaf's A/D bits
/// in `[start, start + n_pages)` without clearing anything.
///
/// Taking `&PageTable` (instead of the historical `&mut`) is what lets the
/// snapshot phase run from scoped worker threads — several shards can walk
/// the same page table concurrently because nothing is written.
pub fn read_leaves(pt: &PageTable, start: Vpn, n_pages: u64, out: &mut Vec<ScanHit>) -> ScanCost {
    let mut cost = ScanCost::default();
    pt.for_each_leaf(start, n_pages, |base_vpn, size, pte| {
        cost.ptes_visited += 1;
        out.push(ScanHit {
            base_vpn,
            size,
            accessed: pte.accessed(),
            dirty: pte.dirty(),
        });
    });
    cost
}

/// Clears the Accessed bit of exactly the given leaves, shooting down each
/// one whose bit was actually set.
///
/// This is the mutation half of a split read/clear scan: a read-only
/// snapshot ([`read_leaves`]) finds the accessed leaves (possibly off the
/// app thread), then this targeted pass clears only those — O(accessed)
/// mutating work instead of a second full walk. `ptes_visited` stays 0 so
/// that `snapshot cost + clear cost` charges exactly what a fused
/// [`scan_and_clear`] over the same range would have: the visits were
/// already paid for by the snapshot.
pub fn clear_accessed_set(
    pt: &mut PageTable,
    tlb: &mut Tlb,
    vpid: Vpid,
    pages: &[(Vpn, PageSize)],
) -> ScanCost {
    let mut cost = ScanCost::default();
    for &(vpn, size) in pages {
        let mut was_set = false;
        pt.with_pte_mut(vpn, |pte| {
            was_set = pte.accessed();
            pte.clear_accessed();
        });
        if was_set {
            tlb.shootdown(vpn, size, vpid);
            cost.shootdowns += 1;
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermo_mem::Pfn;

    const V: Vpid = Vpid(0);

    fn setup() -> (PageTable, Tlb) {
        let mut pt = PageTable::new();
        pt.map_huge(Vpn(0), Pfn(0), true).unwrap();
        pt.map_small(Vpn(512), Pfn(5000), true).unwrap();
        (pt, Tlb::default())
    }

    #[test]
    fn scan_reports_and_clears() {
        let (mut pt, mut tlb) = setup();
        pt.with_pte_mut(Vpn(0), |p| p.set_accessed());
        tlb.insert(Vpn(0), Pfn(0), PageSize::Huge2M, V);

        let mut hits = Vec::new();
        let cost = scan_and_clear(&mut pt, &mut tlb, V, Vpn(0), 1024, &mut hits);
        assert_eq!(hits.len(), 2);
        assert!(hits[0].accessed);
        assert!(!hits[1].accessed);
        assert_eq!(cost.ptes_visited, 2);
        assert_eq!(cost.shootdowns, 1);
        // Bit is cleared and the TLB entry is gone.
        assert!(!pt.lookup(Vpn(0)).unwrap().pte.accessed());
        assert!(matches!(
            tlb.lookup(Vpn(3), V),
            crate::tlb::TlbOutcome::Miss
        ));
    }

    #[test]
    fn second_scan_sees_no_access_without_new_walks() {
        let (mut pt, mut tlb) = setup();
        pt.with_pte_mut(Vpn(0), |p| p.set_accessed());
        let mut hits = Vec::new();
        scan_and_clear(&mut pt, &mut tlb, V, Vpn(0), 1024, &mut hits);
        hits.clear();
        scan_and_clear(&mut pt, &mut tlb, V, Vpn(0), 1024, &mut hits);
        assert!(hits.iter().all(|h| !h.accessed));
    }

    #[test]
    fn read_accessed_does_not_clear() {
        let (mut pt, tlb) = setup();
        pt.with_pte_mut(Vpn(512), |p| p.set_accessed());
        let mut hits = Vec::new();
        let cost = read_accessed(&mut pt, Vpn(0), 1024, &mut hits);
        assert_eq!(cost.shootdowns, 0);
        assert!(hits.iter().any(|h| h.accessed));
        assert!(pt.lookup(Vpn(512)).unwrap().pte.accessed());
        let _ = tlb; // unchanged
    }

    #[test]
    fn read_leaves_matches_read_accessed() {
        let (mut pt, _tlb) = setup();
        pt.with_pte_mut(Vpn(0), |p| p.set_accessed());
        let mut via_mut = Vec::new();
        let cost_mut = read_accessed(&mut pt, Vpn(0), 1024, &mut via_mut);
        let mut via_shared = Vec::new();
        let cost_shared = read_leaves(&pt, Vpn(0), 1024, &mut via_shared);
        assert_eq!(via_mut, via_shared);
        assert_eq!(cost_mut, cost_shared);
    }

    #[test]
    fn snapshot_then_targeted_clear_equals_fused_scan() {
        // Two identical page tables: one scanned with the fused
        // scan_and_clear, one with read_leaves + clear_accessed_set. The
        // resulting PTE state, hits, and total cost must agree.
        let build = || {
            let mut pt = PageTable::new();
            pt.map_huge(Vpn(0), Pfn(0), true).unwrap();
            pt.map_small(Vpn(512), Pfn(5000), true).unwrap();
            pt.map_small(Vpn(513), Pfn(5001), true).unwrap();
            pt.with_pte_mut(Vpn(0), |p| p.set_accessed());
            pt.with_pte_mut(Vpn(513), |p| p.set_accessed());
            pt
        };
        let (mut pt_fused, mut tlb_fused) = (build(), Tlb::default());
        let mut fused_hits = Vec::new();
        let fused = scan_and_clear(
            &mut pt_fused,
            &mut tlb_fused,
            V,
            Vpn(0),
            1024,
            &mut fused_hits,
        );

        let (mut pt_split, mut tlb_split) = (build(), Tlb::default());
        let mut snap_hits = Vec::new();
        let snap = read_leaves(&pt_split, Vpn(0), 1024, &mut snap_hits);
        let accessed: Vec<(Vpn, PageSize)> = snap_hits
            .iter()
            .filter(|h| h.accessed)
            .map(|h| (h.base_vpn, h.size))
            .collect();
        let clear = clear_accessed_set(&mut pt_split, &mut tlb_split, V, &accessed);

        assert_eq!(fused_hits, snap_hits);
        assert_eq!(fused.ptes_visited, snap.ptes_visited + clear.ptes_visited);
        assert_eq!(fused.shootdowns, clear.shootdowns);
        for vpn in [Vpn(0), Vpn(512), Vpn(513)] {
            assert_eq!(
                pt_fused.lookup(vpn).unwrap().pte.accessed(),
                pt_split.lookup(vpn).unwrap().pte.accessed()
            );
        }
    }

    #[test]
    fn clear_accessed_set_skips_clear_bits_and_holes() {
        let (mut pt, mut tlb) = setup();
        // Vpn(512) mapped but not accessed; Vpn(9999) unmapped.
        let cost = clear_accessed_set(
            &mut pt,
            &mut tlb,
            V,
            &[
                (Vpn(512), PageSize::Small4K),
                (Vpn(9999), PageSize::Small4K),
            ],
        );
        assert_eq!(cost.shootdowns, 0);
        assert_eq!(cost.ptes_visited, 0);
    }

    #[test]
    fn scan_cost_time() {
        let c = ScanCost {
            ptes_visited: 10,
            shootdowns: 3,
        };
        assert_eq!(c.time_ns(100, 1000), 10 * 100 + 3 * 1000);
    }
}

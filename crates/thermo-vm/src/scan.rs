//! Accessed-bit scanning primitives.
//!
//! Both the kstaled baseline (paper §2.1) and step one of Thermostat's
//! two-step monitor (§3.2: "We first rely on the hardware-maintained
//! Accessed bits to monitor all 512 4KB pages and identify those with a
//! non-zero access rate") are built from the same primitive: read the A bit
//! of each PTE, clear it, and shoot down the TLB entry so the next access
//! performs a walk and re-sets the bit. The shootdown is precisely the
//! overhead that makes high-frequency A-bit scanning unaffordable — the
//! paper's central motivation.

use crate::pagetable::PageTable;
use crate::tlb::{Tlb, Vpid};
use thermo_mem::{PageSize, Vpn};

/// One scanned leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanHit {
    /// Base VPN of the leaf.
    pub base_vpn: Vpn,
    /// Leaf size.
    pub size: PageSize,
    /// Accessed-bit value before clearing.
    pub accessed: bool,
    /// Dirty-bit value (not cleared).
    pub dirty: bool,
}

/// Cost accounting for a scan pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanCost {
    /// PTEs visited.
    pub ptes_visited: u64,
    /// TLB shootdowns issued (one per cleared A bit).
    pub shootdowns: u64,
}

impl ScanCost {
    /// Kernel time consumed by the pass: `visit_ns` per PTE visit plus
    /// `shootdown_ns` per shootdown (IPIs + INVLPG are the expensive part).
    pub fn time_ns(&self, visit_ns: u64, shootdown_ns: u64) -> u64 {
        self.ptes_visited * visit_ns + self.shootdowns * shootdown_ns
    }
}

/// Reads and clears the Accessed bit of every leaf in
/// `[start, start + n_pages)`, shooting down translations whose bit was set,
/// and reports each leaf's prior state.
pub fn scan_and_clear(
    pt: &mut PageTable,
    tlb: &mut Tlb,
    vpid: Vpid,
    start: Vpn,
    n_pages: u64,
    out: &mut Vec<ScanHit>,
) -> ScanCost {
    let mut cost = ScanCost::default();
    let mut to_flush: Vec<(Vpn, PageSize)> = Vec::new();
    pt.for_each_leaf_mut(start, n_pages, |base_vpn, size, pte| {
        cost.ptes_visited += 1;
        let accessed = pte.accessed();
        out.push(ScanHit {
            base_vpn,
            size,
            accessed,
            dirty: pte.dirty(),
        });
        if accessed {
            pte.clear_accessed();
            to_flush.push((base_vpn, size));
        }
    });
    for (vpn, size) in to_flush {
        tlb.shootdown(vpn, size, vpid);
        cost.shootdowns += 1;
    }
    cost
}

/// Reads the Accessed bits in `[start, start + n_pages)` without clearing
/// them (no shootdowns, so no overhead — but the bits saturate: once set
/// they stay set).
pub fn read_accessed(
    pt: &mut PageTable,
    start: Vpn,
    n_pages: u64,
    out: &mut Vec<ScanHit>,
) -> ScanCost {
    let mut cost = ScanCost::default();
    pt.for_each_leaf_mut(start, n_pages, |base_vpn, size, pte| {
        cost.ptes_visited += 1;
        out.push(ScanHit {
            base_vpn,
            size,
            accessed: pte.accessed(),
            dirty: pte.dirty(),
        });
    });
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermo_mem::Pfn;

    const V: Vpid = Vpid(0);

    fn setup() -> (PageTable, Tlb) {
        let mut pt = PageTable::new();
        pt.map_huge(Vpn(0), Pfn(0), true).unwrap();
        pt.map_small(Vpn(512), Pfn(5000), true).unwrap();
        (pt, Tlb::default())
    }

    #[test]
    fn scan_reports_and_clears() {
        let (mut pt, mut tlb) = setup();
        pt.with_pte_mut(Vpn(0), |p| p.set_accessed());
        tlb.insert(Vpn(0), Pfn(0), PageSize::Huge2M, V);

        let mut hits = Vec::new();
        let cost = scan_and_clear(&mut pt, &mut tlb, V, Vpn(0), 1024, &mut hits);
        assert_eq!(hits.len(), 2);
        assert!(hits[0].accessed);
        assert!(!hits[1].accessed);
        assert_eq!(cost.ptes_visited, 2);
        assert_eq!(cost.shootdowns, 1);
        // Bit is cleared and the TLB entry is gone.
        assert!(!pt.lookup(Vpn(0)).unwrap().pte.accessed());
        assert!(matches!(
            tlb.lookup(Vpn(3), V),
            crate::tlb::TlbOutcome::Miss
        ));
    }

    #[test]
    fn second_scan_sees_no_access_without_new_walks() {
        let (mut pt, mut tlb) = setup();
        pt.with_pte_mut(Vpn(0), |p| p.set_accessed());
        let mut hits = Vec::new();
        scan_and_clear(&mut pt, &mut tlb, V, Vpn(0), 1024, &mut hits);
        hits.clear();
        scan_and_clear(&mut pt, &mut tlb, V, Vpn(0), 1024, &mut hits);
        assert!(hits.iter().all(|h| !h.accessed));
    }

    #[test]
    fn read_accessed_does_not_clear() {
        let (mut pt, tlb) = setup();
        pt.with_pte_mut(Vpn(512), |p| p.set_accessed());
        let mut hits = Vec::new();
        let cost = read_accessed(&mut pt, Vpn(0), 1024, &mut hits);
        assert_eq!(cost.shootdowns, 0);
        assert!(hits.iter().any(|h| h.accessed));
        assert!(pt.lookup(Vpn(512)).unwrap().pte.accessed());
        let _ = tlb; // unchanged
    }

    #[test]
    fn scan_cost_time() {
        let c = ScanCost {
            ptes_visited: 10,
            shootdowns: 3,
        };
        assert_eq!(c.time_ns(100, 1000), 10 * 100 + 3 * 1000);
    }
}

//! Two-level TLB model with VPID tags.
//!
//! The paper's testbed (§4.1): "There is a 64-entry TLB per core and a
//! shared 1024 entry L2 TLB." TLB behaviour matters to Thermostat twice
//! over: (1) huge pages earn their Table-1 speedups through TLB reach and
//! cheaper walks, and (2) BadgerTrap access counting observes TLB *misses*,
//! so the temporal locality captured by the TLB is exactly what the
//! estimator does and doesn't see.
//!
//! The model: per-page-size L1 arrays plus a unified L2, all set-associative
//! with true-LRU within a set, tagged with a VPID (the paper discusses KVM's
//! use of VPIDs in §4.2).

use thermo_mem::{PageSize, Pfn, Vpn, PAGES_PER_HUGE};

/// Virtual processor id tag (KVM tags guest TLB entries with a VPID).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Vpid(pub u16);

/// Geometry of one TLB array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbGeometry {
    /// Total entries.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
}

impl TlbGeometry {
    /// Creates a geometry; `entries` must be a multiple of `ways`.
    ///
    /// # Panics
    ///
    /// Panics when `entries % ways != 0` or either is zero.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(
            entries > 0 && ways > 0 && entries.is_multiple_of(ways),
            "bad TLB geometry {entries}/{ways}"
        );
        Self { entries, ways }
    }

    fn sets(&self) -> usize {
        self.entries / self.ways
    }
}

/// Configuration of the full TLB hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// L1 array for 4KB translations.
    pub l1_small: TlbGeometry,
    /// L1 array for 2MB translations.
    pub l1_huge: TlbGeometry,
    /// Unified L2 (holds both sizes).
    pub l2: TlbGeometry,
    /// Latency charged on an L2 hit (an L1 hit is free), ns.
    pub l2_hit_ns: u64,
}

impl Default for TlbConfig {
    /// The paper's §4.1 hardware: 64-entry L1 (we give 2MB entries their own
    /// 32-entry array, as on Haswell-class cores), 1024-entry shared L2.
    fn default() -> Self {
        Self {
            l1_small: TlbGeometry::new(64, 4),
            l1_huge: TlbGeometry::new(32, 4),
            l2: TlbGeometry::new(1024, 8),
            l2_hit_ns: 7,
        }
    }
}

impl TlbConfig {
    /// TLB scaled down in proportion to the reproduction's scaled
    /// footprints (DESIGN.md §1): the paper's machine has ~4-9GB of hot
    /// application footprint against a 2GB huge-page L2 reach (1024
    /// entries); with footprints scaled ~16x, the same
    /// footprint-to-reach ratio needs a ~128-entry L2. Without this
    /// scaling, every translation fits in the L2 forever and TLB-miss-based
    /// access counting (BadgerTrap's whole premise) observes nothing.
    pub fn paper_scaled() -> Self {
        Self {
            l1_small: TlbGeometry::new(32, 4),
            l1_huge: TlbGeometry::new(16, 4),
            l2: TlbGeometry::new(128, 8),
            l2_hit_ns: 7,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    valid: bool,
    vpn: Vpn, // base VPN of the page (huge-aligned for 2MB entries)
    pfn: Pfn,
    size: PageSize,
    vpid: Vpid,
    lru: u64,
}

impl Entry {
    const INVALID: Entry = Entry {
        valid: false,
        vpn: Vpn(0),
        pfn: Pfn(0),
        size: PageSize::Small4K,
        vpid: Vpid(0),
        lru: 0,
    };
}

/// Result of a TLB lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbOutcome {
    /// Hit in the L1 array (no latency).
    HitL1 {
        /// Base frame of the page.
        pfn: Pfn,
        /// Page size of the entry.
        size: PageSize,
    },
    /// Hit in the shared L2 (charged `l2_hit_ns`; entry promoted to L1).
    HitL2 {
        /// Base frame of the page.
        pfn: Pfn,
        /// Page size of the entry.
        size: PageSize,
    },
    /// Miss everywhere; a page walk is required.
    Miss,
}

/// Per-level hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// Full misses.
    pub misses: u64,
    /// Entries invalidated by shootdowns.
    pub shootdowns: u64,
}

impl TlbStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.misses
    }

    /// Miss ratio in `[0,1]`; 0 when no lookups.
    pub fn miss_ratio(&self) -> f64 {
        let n = self.lookups();
        if n == 0 {
            0.0
        } else {
            self.misses as f64 / n as f64
        }
    }
}

struct Array {
    geo: TlbGeometry,
    sets: Vec<Entry>,
}

impl Array {
    fn new(geo: TlbGeometry) -> Self {
        Self {
            geo,
            sets: vec![Entry::INVALID; geo.entries],
        }
    }

    fn set_index(&self, vpn: Vpn, size: PageSize) -> usize {
        // Index huge entries by their huge-page number so neighbours spread.
        let key = match size {
            PageSize::Small4K => vpn.0,
            PageSize::Huge2M => vpn.0 / PAGES_PER_HUGE as u64,
        };
        (key as usize) % self.geo.sets()
    }

    fn slots(&mut self, set: usize) -> &mut [Entry] {
        let w = self.geo.ways;
        &mut self.sets[set * w..(set + 1) * w]
    }

    fn lookup(&mut self, vpn: Vpn, size: PageSize, vpid: Vpid, tick: u64) -> Option<Pfn> {
        let set = self.set_index(vpn, size);
        for e in self.slots(set) {
            if e.valid && e.size == size && e.vpn == vpn && e.vpid == vpid {
                e.lru = tick;
                return Some(e.pfn);
            }
        }
        None
    }

    fn insert(&mut self, vpn: Vpn, pfn: Pfn, size: PageSize, vpid: Vpid, tick: u64) {
        let set = self.set_index(vpn, size);
        let slots = self.slots(set);
        // Reuse an existing entry for the same tag, else invalid, else LRU.
        let mut victim = 0;
        let mut best = u64::MAX;
        for (i, e) in slots.iter().enumerate() {
            if !e.valid || (e.size == size && e.vpn == vpn && e.vpid == vpid) {
                victim = i;
                break;
            }
            if e.lru < best {
                best = e.lru;
                victim = i;
            }
        }
        slots[victim] = Entry {
            valid: true,
            vpn,
            pfn,
            size,
            vpid,
            lru: tick,
        };
    }

    fn invalidate(&mut self, vpn: Vpn, size: PageSize, vpid: Vpid) -> bool {
        let set = self.set_index(vpn, size);
        let mut hit = false;
        for e in self.slots(set) {
            if e.valid && e.size == size && e.vpn == vpn && e.vpid == vpid {
                e.valid = false;
                hit = true;
            }
        }
        hit
    }

    fn flush_all(&mut self) {
        for e in &mut self.sets {
            e.valid = false;
        }
    }

    fn flush_vpid(&mut self, vpid: Vpid) {
        for e in &mut self.sets {
            if e.vpid == vpid {
                e.valid = false;
            }
        }
    }
}

/// The TLB hierarchy: split L1 + unified L2.
pub struct Tlb {
    config: TlbConfig,
    l1_small: Array,
    l1_huge: Array,
    l2: Array,
    tick: u64,
    stats: TlbStats,
}

impl std::fmt::Debug for Tlb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tlb")
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Tlb {
    /// Creates a TLB with the given geometry.
    pub fn new(config: TlbConfig) -> Self {
        Self {
            config,
            l1_small: Array::new(config.l1_small),
            l1_huge: Array::new(config.l1_huge),
            l2: Array::new(config.l2),
            tick: 0,
            stats: TlbStats::default(),
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Looks up the translation for the 4KB page `vpn` under `vpid`,
    /// probing both page sizes (huge entries are tagged by their base VPN).
    ///
    /// L2 hits are promoted into the appropriate L1 array.
    pub fn lookup(&mut self, vpn: Vpn, vpid: Vpid) -> TlbOutcome {
        self.tick += 1;
        let tick = self.tick;
        let hbase = vpn.huge_base();
        if let Some(pfn) = self.l1_small.lookup(vpn, PageSize::Small4K, vpid, tick) {
            self.stats.l1_hits += 1;
            return TlbOutcome::HitL1 {
                pfn,
                size: PageSize::Small4K,
            };
        }
        if let Some(pfn) = self.l1_huge.lookup(hbase, PageSize::Huge2M, vpid, tick) {
            self.stats.l1_hits += 1;
            return TlbOutcome::HitL1 {
                pfn,
                size: PageSize::Huge2M,
            };
        }
        if let Some(pfn) = self.l2.lookup(vpn, PageSize::Small4K, vpid, tick) {
            self.stats.l2_hits += 1;
            self.l1_small
                .insert(vpn, pfn, PageSize::Small4K, vpid, tick);
            return TlbOutcome::HitL2 {
                pfn,
                size: PageSize::Small4K,
            };
        }
        if let Some(pfn) = self.l2.lookup(hbase, PageSize::Huge2M, vpid, tick) {
            self.stats.l2_hits += 1;
            self.l1_huge
                .insert(hbase, pfn, PageSize::Huge2M, vpid, tick);
            return TlbOutcome::HitL2 {
                pfn,
                size: PageSize::Huge2M,
            };
        }
        self.stats.misses += 1;
        TlbOutcome::Miss
    }

    /// Installs a translation after a walk. `vpn` must be the page's base
    /// (huge-aligned for 2MB), `pfn` the base frame.
    pub fn insert(&mut self, vpn: Vpn, pfn: Pfn, size: PageSize, vpid: Vpid) {
        self.tick += 1;
        let tick = self.tick;
        match size {
            PageSize::Small4K => self.l1_small.insert(vpn, pfn, size, vpid, tick),
            PageSize::Huge2M => self.l1_huge.insert(vpn, pfn, size, vpid, tick),
        }
        self.l2.insert(vpn, pfn, size, vpid, tick);
    }

    /// Invalidates one page's translation everywhere (INVLPG / a shootdown
    /// for one page). `vpn` must be the page base for the given size.
    pub fn shootdown(&mut self, vpn: Vpn, size: PageSize, vpid: Vpid) {
        let mut any = false;
        match size {
            PageSize::Small4K => any |= self.l1_small.invalidate(vpn, size, vpid),
            PageSize::Huge2M => any |= self.l1_huge.invalidate(vpn, size, vpid),
        }
        any |= self.l2.invalidate(vpn, size, vpid);
        if any {
            self.stats.shootdowns += 1;
        }
    }

    /// Flushes every entry (CR3 write without PCID).
    pub fn flush_all(&mut self) {
        self.l1_small.flush_all();
        self.l1_huge.flush_all();
        self.l2.flush_all();
        self.stats.shootdowns += 1;
    }

    /// Flushes every entry belonging to `vpid` (the vmexit side effect
    /// discussed in §4.2).
    pub fn flush_vpid(&mut self, vpid: Vpid) {
        self.l1_small.flush_vpid(vpid);
        self.l1_huge.flush_vpid(vpid);
        self.l2.flush_vpid(vpid);
        self.stats.shootdowns += 1;
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }
}

impl Default for Tlb {
    fn default() -> Self {
        Self::new(TlbConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const V0: Vpid = Vpid(1);

    #[test]
    fn miss_then_insert_then_hit() {
        let mut tlb = Tlb::default();
        assert_eq!(tlb.lookup(Vpn(5), V0), TlbOutcome::Miss);
        tlb.insert(Vpn(5), Pfn(50), PageSize::Small4K, V0);
        assert_eq!(
            tlb.lookup(Vpn(5), V0),
            TlbOutcome::HitL1 {
                pfn: Pfn(50),
                size: PageSize::Small4K
            }
        );
        assert_eq!(tlb.stats().l1_hits, 1);
        assert_eq!(tlb.stats().misses, 1);
    }

    #[test]
    fn huge_entry_covers_interior_pages() {
        let mut tlb = Tlb::default();
        tlb.insert(Vpn(512), Pfn(1024), PageSize::Huge2M, V0);
        match tlb.lookup(Vpn(512 + 77), V0) {
            TlbOutcome::HitL1 { pfn, size } => {
                assert_eq!(pfn, Pfn(1024));
                assert_eq!(size, PageSize::Huge2M);
            }
            other => panic!("expected huge L1 hit, got {other:?}"),
        }
    }

    #[test]
    fn l2_hit_promotes_to_l1() {
        // Tiny L1 so we can evict deterministically.
        let cfg = TlbConfig {
            l1_small: TlbGeometry::new(2, 2),
            l1_huge: TlbGeometry::new(2, 2),
            l2: TlbGeometry::new(16, 4),
            l2_hit_ns: 7,
        };
        let mut tlb = Tlb::new(cfg);
        tlb.insert(Vpn(1), Pfn(11), PageSize::Small4K, V0);
        tlb.insert(Vpn(2), Pfn(12), PageSize::Small4K, V0);
        tlb.insert(Vpn(3), Pfn(13), PageSize::Small4K, V0); // evicts vpn 1 from L1
        assert!(matches!(
            tlb.lookup(Vpn(1), V0),
            TlbOutcome::HitL2 { pfn: Pfn(11), .. }
        ));
        // Promoted: now an L1 hit.
        assert!(matches!(
            tlb.lookup(Vpn(1), V0),
            TlbOutcome::HitL1 { pfn: Pfn(11), .. }
        ));
    }

    #[test]
    fn vpid_isolation() {
        let mut tlb = Tlb::default();
        tlb.insert(Vpn(5), Pfn(50), PageSize::Small4K, Vpid(1));
        assert_eq!(tlb.lookup(Vpn(5), Vpid(2)), TlbOutcome::Miss);
    }

    #[test]
    fn shootdown_removes_all_copies() {
        let mut tlb = Tlb::default();
        tlb.insert(Vpn(5), Pfn(50), PageSize::Small4K, V0);
        tlb.shootdown(Vpn(5), PageSize::Small4K, V0);
        assert_eq!(tlb.lookup(Vpn(5), V0), TlbOutcome::Miss);
        assert_eq!(tlb.stats().shootdowns, 1);
    }

    #[test]
    fn shootdown_huge() {
        let mut tlb = Tlb::default();
        tlb.insert(Vpn(1024), Pfn(2048), PageSize::Huge2M, V0);
        tlb.shootdown(Vpn(1024), PageSize::Huge2M, V0);
        assert_eq!(tlb.lookup(Vpn(1024 + 3), V0), TlbOutcome::Miss);
    }

    #[test]
    fn flush_vpid_only_affects_that_vpid() {
        let mut tlb = Tlb::default();
        tlb.insert(Vpn(5), Pfn(50), PageSize::Small4K, Vpid(1));
        tlb.insert(Vpn(6), Pfn(60), PageSize::Small4K, Vpid(2));
        tlb.flush_vpid(Vpid(1));
        assert_eq!(tlb.lookup(Vpn(5), Vpid(1)), TlbOutcome::Miss);
        assert!(matches!(
            tlb.lookup(Vpn(6), Vpid(2)),
            TlbOutcome::HitL1 { .. }
        ));
    }

    #[test]
    fn flush_all_clears_everything() {
        let mut tlb = Tlb::default();
        tlb.insert(Vpn(5), Pfn(50), PageSize::Small4K, V0);
        tlb.insert(Vpn(512), Pfn(512), PageSize::Huge2M, V0);
        tlb.flush_all();
        assert_eq!(tlb.lookup(Vpn(5), V0), TlbOutcome::Miss);
        assert_eq!(tlb.lookup(Vpn(600), V0), TlbOutcome::Miss);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let cfg = TlbConfig {
            l1_small: TlbGeometry::new(2, 2),
            l1_huge: TlbGeometry::new(2, 2),
            l2: TlbGeometry::new(2, 2),
            l2_hit_ns: 7,
        };
        let mut tlb = Tlb::new(cfg);
        tlb.insert(Vpn(1), Pfn(11), PageSize::Small4K, V0);
        tlb.insert(Vpn(2), Pfn(12), PageSize::Small4K, V0);
        tlb.lookup(Vpn(1), V0); // touch 1 -> 2 becomes L1-LRU
        tlb.insert(Vpn(3), Pfn(13), PageSize::Small4K, V0); // evicts 2 from L1
        assert!(matches!(tlb.lookup(Vpn(1), V0), TlbOutcome::HitL1 { .. }));
        // 2 was evicted from L1; it may still hit in L2 but never in L1.
        assert!(!matches!(tlb.lookup(Vpn(2), V0), TlbOutcome::HitL1 { .. }));
        // 1 was the L2 LRU victim when 3 was inserted, so after the
        // promotion of 2 above, a fresh entry 4 in the same universe still
        // leaves 3 reachable.
        assert!(!matches!(tlb.lookup(Vpn(3), V0), TlbOutcome::Miss));
    }

    #[test]
    fn reinsert_same_tag_updates_in_place() {
        let mut tlb = Tlb::default();
        tlb.insert(Vpn(1), Pfn(11), PageSize::Small4K, V0);
        tlb.insert(Vpn(1), Pfn(99), PageSize::Small4K, V0);
        assert!(matches!(
            tlb.lookup(Vpn(1), V0),
            TlbOutcome::HitL1 { pfn: Pfn(99), .. }
        ));
    }

    #[test]
    fn miss_ratio() {
        let mut tlb = Tlb::default();
        tlb.lookup(Vpn(1), V0);
        tlb.insert(Vpn(1), Pfn(1), PageSize::Small4K, V0);
        tlb.lookup(Vpn(1), V0);
        assert!((tlb.stats().miss_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(tlb.stats().lookups(), 2);
    }

    #[test]
    #[should_panic(expected = "bad TLB geometry")]
    fn bad_geometry_panics() {
        TlbGeometry::new(10, 3);
    }
}

thermo_util::json_newtype!(Vpid);
thermo_util::json_struct!(TlbGeometry { entries, ways });
thermo_util::json_struct!(TlbConfig {
    l1_small,
    l1_huge,
    l2,
    l2_hit_ns
});

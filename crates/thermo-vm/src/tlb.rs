//! Two-level TLB model with VPID tags.
//!
//! The paper's testbed (§4.1): "There is a 64-entry TLB per core and a
//! shared 1024 entry L2 TLB." TLB behaviour matters to Thermostat twice
//! over: (1) huge pages earn their Table-1 speedups through TLB reach and
//! cheaper walks, and (2) BadgerTrap access counting observes TLB *misses*,
//! so the temporal locality captured by the TLB is exactly what the
//! estimator does and doesn't see.
//!
//! The model: per-page-size L1 arrays plus a unified L2, all set-associative
//! with true-LRU within a set, tagged with a VPID (the paper discusses KVM's
//! use of VPIDs in §4.2).

use thermo_mem::{PageSize, Pfn, Vpn, PAGES_PER_HUGE};

/// Virtual processor id tag (KVM tags guest TLB entries with a VPID).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Vpid(pub u16);

/// Geometry of one TLB array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbGeometry {
    /// Total entries.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
}

impl TlbGeometry {
    /// Creates a geometry; `entries` must be a multiple of `ways`.
    ///
    /// # Panics
    ///
    /// Panics when `entries % ways != 0` or either is zero.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(
            entries > 0 && ways > 0 && entries.is_multiple_of(ways),
            "bad TLB geometry {entries}/{ways}"
        );
        Self { entries, ways }
    }

    fn sets(&self) -> usize {
        self.entries / self.ways
    }
}

/// Configuration of the full TLB hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// L1 array for 4KB translations.
    pub l1_small: TlbGeometry,
    /// L1 array for 2MB translations.
    pub l1_huge: TlbGeometry,
    /// Unified L2 (holds both sizes).
    pub l2: TlbGeometry,
    /// Latency charged on an L2 hit (an L1 hit is free), ns.
    pub l2_hit_ns: u64,
}

impl Default for TlbConfig {
    /// The paper's §4.1 hardware: 64-entry L1 (we give 2MB entries their own
    /// 32-entry array, as on Haswell-class cores), 1024-entry shared L2.
    fn default() -> Self {
        Self {
            l1_small: TlbGeometry::new(64, 4),
            l1_huge: TlbGeometry::new(32, 4),
            l2: TlbGeometry::new(1024, 8),
            l2_hit_ns: 7,
        }
    }
}

impl TlbConfig {
    /// TLB scaled down in proportion to the reproduction's scaled
    /// footprints (DESIGN.md §1): the paper's machine has ~4-9GB of hot
    /// application footprint against a 2GB huge-page L2 reach (1024
    /// entries); with footprints scaled ~16x, the same
    /// footprint-to-reach ratio needs a ~128-entry L2. Without this
    /// scaling, every translation fits in the L2 forever and TLB-miss-based
    /// access counting (BadgerTrap's whole premise) observes nothing.
    pub fn paper_scaled() -> Self {
        Self {
            l1_small: TlbGeometry::new(32, 4),
            l1_huge: TlbGeometry::new(16, 4),
            l2: TlbGeometry::new(128, 8),
            l2_hit_ns: 7,
        }
    }
}

// Entries are stored packed: one u64 tag word (valid bit, page-size bit,
// VPID, base VPN) plus parallel pfn/lru arrays. A probe is then a single
// integer compare per way over a dense tag row instead of a five-field
// struct walk — this array scan is the hottest loop in the simulator.
const TAG_VALID: u64 = 1;
const TAG_HUGE: u64 = 1 << 1;
const TAG_VPID_SHIFT: u32 = 2;
const TAG_VPN_SHIFT: u32 = 18;

#[inline]
fn pack_tag(vpn: Vpn, size: PageSize, vpid: Vpid) -> u64 {
    debug_assert!(vpn.0 < 1 << (64 - TAG_VPN_SHIFT), "VPN overflows tag");
    let size_bit = match size {
        PageSize::Small4K => 0,
        PageSize::Huge2M => TAG_HUGE,
    };
    (vpn.0 << TAG_VPN_SHIFT) | ((vpid.0 as u64) << TAG_VPID_SHIFT) | size_bit | TAG_VALID
}

/// Result of a TLB lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbOutcome {
    /// Hit in the L1 array (no latency).
    HitL1 {
        /// Base frame of the page.
        pfn: Pfn,
        /// Page size of the entry.
        size: PageSize,
    },
    /// Hit in the shared L2 (charged `l2_hit_ns`; entry promoted to L1).
    HitL2 {
        /// Base frame of the page.
        pfn: Pfn,
        /// Page size of the entry.
        size: PageSize,
    },
    /// Miss everywhere; a page walk is required.
    Miss,
}

/// Per-level hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// Full misses.
    pub misses: u64,
    /// Entries invalidated by shootdowns.
    pub shootdowns: u64,
}

impl TlbStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.misses
    }

    /// Miss ratio in `[0,1]`; 0 when no lookups.
    pub fn miss_ratio(&self) -> f64 {
        let n = self.lookups();
        if n == 0 {
            0.0
        } else {
            self.misses as f64 / n as f64
        }
    }
}

struct Array {
    ways: usize,
    sets: usize,
    /// `sets - 1` when `sets` is a power of two (every shipped geometry);
    /// selects the mask fast path over the division in `set_index`.
    mask: usize,
    pow2: bool,
    /// Valid-entry counts per page size (`[small, huge]`). A probe for a
    /// size with zero resident entries cannot hit and has no side effects,
    /// so `Tlb::lookup` skips it entirely.
    valid: [u32; 2],
    tags: Vec<u64>,
    pfns: Vec<u64>,
    lrus: Vec<u64>,
}

#[inline]
fn size_class(size: PageSize) -> usize {
    match size {
        PageSize::Small4K => 0,
        PageSize::Huge2M => 1,
    }
}

impl Array {
    fn new(geo: TlbGeometry) -> Self {
        let sets = geo.sets();
        Self {
            ways: geo.ways,
            sets,
            mask: sets.wrapping_sub(1),
            pow2: sets.is_power_of_two(),
            valid: [0, 0],
            tags: vec![0; geo.entries],
            pfns: vec![0; geo.entries],
            lrus: vec![0; geo.entries],
        }
    }

    #[inline]
    fn holds(&self, size: PageSize) -> bool {
        self.valid[size_class(size)] > 0
    }

    #[inline]
    fn note_cleared(&mut self, tag: u64) {
        if tag & TAG_VALID != 0 {
            self.valid[(tag & TAG_HUGE != 0) as usize] -= 1;
        }
    }

    /// Set-selection key: huge entries index by their huge-page number so
    /// neighbours spread.
    #[inline]
    fn key_of(vpn: Vpn, size: PageSize) -> usize {
        let key = match size {
            PageSize::Small4K => vpn.0,
            PageSize::Huge2M => vpn.0 / PAGES_PER_HUGE as u64,
        };
        key as usize
    }

    #[inline]
    fn set_of(&self, key: usize) -> usize {
        if self.pow2 {
            key & self.mask
        } else {
            key % self.sets
        }
    }

    #[inline]
    fn set_index(&self, vpn: Vpn, size: PageSize) -> usize {
        self.set_of(Self::key_of(vpn, size))
    }

    /// Probes one set for a pre-packed tag. `Tlb::lookup` packs each
    /// size's tag and key once and reuses them across the L1 and L2
    /// probes of the same (page, size, vpid); the slice borrow hoists the
    /// bounds check out of the way loop.
    #[inline]
    fn probe(&mut self, want: u64, key: usize, tick: u64) -> Option<Pfn> {
        let base = self.set_of(key) * self.ways;
        let tags = &self.tags[base..base + self.ways];
        for (i, t) in tags.iter().enumerate() {
            if *t == want {
                self.lrus[base + i] = tick;
                return Some(Pfn(self.pfns[base + i]));
            }
        }
        None
    }

    fn insert(&mut self, vpn: Vpn, pfn: Pfn, size: PageSize, vpid: Vpid, tick: u64) {
        let want = pack_tag(vpn, size, vpid);
        let base = self.set_index(vpn, size) * self.ways;
        // Reuse an existing entry for the same tag, else invalid, else LRU.
        let mut victim = base;
        let mut best = u64::MAX;
        let tags = &self.tags[base..base + self.ways];
        let lrus = &self.lrus[base..base + self.ways];
        for (i, (&t, &l)) in tags.iter().zip(lrus).enumerate() {
            if t & TAG_VALID == 0 || t == want {
                victim = base + i;
                break;
            }
            if l < best {
                best = l;
                victim = base + i;
            }
        }
        self.note_cleared(self.tags[victim]);
        self.valid[size_class(size)] += 1;
        self.tags[victim] = want;
        self.pfns[victim] = pfn.0;
        self.lrus[victim] = tick;
    }

    fn invalidate(&mut self, vpn: Vpn, size: PageSize, vpid: Vpid) -> bool {
        let want = pack_tag(vpn, size, vpid);
        let base = self.set_index(vpn, size) * self.ways;
        let mut hit = false;
        for i in base..base + self.ways {
            if self.tags[i] == want {
                self.note_cleared(want);
                self.tags[i] &= !TAG_VALID;
                hit = true;
            }
        }
        hit
    }

    fn flush_all(&mut self) {
        for t in &mut self.tags {
            *t &= !TAG_VALID;
        }
        self.valid = [0, 0];
    }

    fn flush_vpid(&mut self, vpid: Vpid) {
        let want = (vpid.0 as u64) << TAG_VPID_SHIFT;
        let field = 0xFFFFu64 << TAG_VPID_SHIFT;
        for i in 0..self.tags.len() {
            if self.tags[i] & field == want {
                self.note_cleared(self.tags[i]);
                self.tags[i] &= !TAG_VALID;
            }
        }
    }
}

/// The TLB hierarchy: split L1 + unified L2.
pub struct Tlb {
    config: TlbConfig,
    l1_small: Array,
    l1_huge: Array,
    l2: Array,
    tick: u64,
    stats: TlbStats,
}

impl std::fmt::Debug for Tlb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tlb")
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Tlb {
    /// Creates a TLB with the given geometry.
    pub fn new(config: TlbConfig) -> Self {
        Self {
            config,
            l1_small: Array::new(config.l1_small),
            l1_huge: Array::new(config.l1_huge),
            l2: Array::new(config.l2),
            tick: 0,
            stats: TlbStats::default(),
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Looks up the translation for the 4KB page `vpn` under `vpid`,
    /// probing both page sizes (huge entries are tagged by their base VPN).
    ///
    /// L2 hits are promoted into the appropriate L1 array.
    #[inline]
    pub fn lookup(&mut self, vpn: Vpn, vpid: Vpid) -> TlbOutcome {
        self.tick += 1;
        let tick = self.tick;
        let hbase = vpn.huge_base();
        // Pack each size's tag and set key once — the L1 and L2 probes of
        // the same (page, size, vpid) compare against the same word.
        let want_small = pack_tag(vpn, PageSize::Small4K, vpid);
        let want_huge = pack_tag(hbase, PageSize::Huge2M, vpid);
        let key_small = Array::key_of(vpn, PageSize::Small4K);
        let key_huge = Array::key_of(hbase, PageSize::Huge2M);
        // Probes of an array holding zero entries of the probed size cannot
        // hit and have no side effects, so they are skipped outright; probe
        // order among the remaining ones is unchanged (stale entries of
        // either size can coexist, so order is observable).
        if self.l1_small.holds(PageSize::Small4K) {
            if let Some(pfn) = self.l1_small.probe(want_small, key_small, tick) {
                self.stats.l1_hits += 1;
                return TlbOutcome::HitL1 {
                    pfn,
                    size: PageSize::Small4K,
                };
            }
        }
        if self.l1_huge.holds(PageSize::Huge2M) {
            if let Some(pfn) = self.l1_huge.probe(want_huge, key_huge, tick) {
                self.stats.l1_hits += 1;
                return TlbOutcome::HitL1 {
                    pfn,
                    size: PageSize::Huge2M,
                };
            }
        }
        if self.l2.holds(PageSize::Small4K) {
            if let Some(pfn) = self.l2.probe(want_small, key_small, tick) {
                self.stats.l2_hits += 1;
                self.l1_small
                    .insert(vpn, pfn, PageSize::Small4K, vpid, tick);
                return TlbOutcome::HitL2 {
                    pfn,
                    size: PageSize::Small4K,
                };
            }
        }
        if self.l2.holds(PageSize::Huge2M) {
            if let Some(pfn) = self.l2.probe(want_huge, key_huge, tick) {
                self.stats.l2_hits += 1;
                self.l1_huge
                    .insert(hbase, pfn, PageSize::Huge2M, vpid, tick);
                return TlbOutcome::HitL2 {
                    pfn,
                    size: PageSize::Huge2M,
                };
            }
        }
        self.stats.misses += 1;
        TlbOutcome::Miss
    }

    /// Installs a translation after a walk. `vpn` must be the page's base
    /// (huge-aligned for 2MB), `pfn` the base frame.
    pub fn insert(&mut self, vpn: Vpn, pfn: Pfn, size: PageSize, vpid: Vpid) {
        self.tick += 1;
        let tick = self.tick;
        match size {
            PageSize::Small4K => self.l1_small.insert(vpn, pfn, size, vpid, tick),
            PageSize::Huge2M => self.l1_huge.insert(vpn, pfn, size, vpid, tick),
        }
        self.l2.insert(vpn, pfn, size, vpid, tick);
    }

    /// Invalidates one page's translation everywhere (INVLPG / a shootdown
    /// for one page). `vpn` must be the page base for the given size.
    pub fn shootdown(&mut self, vpn: Vpn, size: PageSize, vpid: Vpid) {
        let mut any = false;
        match size {
            PageSize::Small4K => any |= self.l1_small.invalidate(vpn, size, vpid),
            PageSize::Huge2M => any |= self.l1_huge.invalidate(vpn, size, vpid),
        }
        any |= self.l2.invalidate(vpn, size, vpid);
        if any {
            self.stats.shootdowns += 1;
        }
    }

    /// Flushes every entry (CR3 write without PCID).
    pub fn flush_all(&mut self) {
        self.l1_small.flush_all();
        self.l1_huge.flush_all();
        self.l2.flush_all();
        self.stats.shootdowns += 1;
    }

    /// Flushes every entry belonging to `vpid` (the vmexit side effect
    /// discussed in §4.2).
    pub fn flush_vpid(&mut self, vpid: Vpid) {
        self.l1_small.flush_vpid(vpid);
        self.l1_huge.flush_vpid(vpid);
        self.l2.flush_vpid(vpid);
        self.stats.shootdowns += 1;
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }
}

impl Default for Tlb {
    fn default() -> Self {
        Self::new(TlbConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const V0: Vpid = Vpid(1);

    #[test]
    fn miss_then_insert_then_hit() {
        let mut tlb = Tlb::default();
        assert_eq!(tlb.lookup(Vpn(5), V0), TlbOutcome::Miss);
        tlb.insert(Vpn(5), Pfn(50), PageSize::Small4K, V0);
        assert_eq!(
            tlb.lookup(Vpn(5), V0),
            TlbOutcome::HitL1 {
                pfn: Pfn(50),
                size: PageSize::Small4K
            }
        );
        assert_eq!(tlb.stats().l1_hits, 1);
        assert_eq!(tlb.stats().misses, 1);
    }

    #[test]
    fn huge_entry_covers_interior_pages() {
        let mut tlb = Tlb::default();
        tlb.insert(Vpn(512), Pfn(1024), PageSize::Huge2M, V0);
        match tlb.lookup(Vpn(512 + 77), V0) {
            TlbOutcome::HitL1 { pfn, size } => {
                assert_eq!(pfn, Pfn(1024));
                assert_eq!(size, PageSize::Huge2M);
            }
            other => panic!("expected huge L1 hit, got {other:?}"),
        }
    }

    #[test]
    fn l2_hit_promotes_to_l1() {
        // Tiny L1 so we can evict deterministically.
        let cfg = TlbConfig {
            l1_small: TlbGeometry::new(2, 2),
            l1_huge: TlbGeometry::new(2, 2),
            l2: TlbGeometry::new(16, 4),
            l2_hit_ns: 7,
        };
        let mut tlb = Tlb::new(cfg);
        tlb.insert(Vpn(1), Pfn(11), PageSize::Small4K, V0);
        tlb.insert(Vpn(2), Pfn(12), PageSize::Small4K, V0);
        tlb.insert(Vpn(3), Pfn(13), PageSize::Small4K, V0); // evicts vpn 1 from L1
        assert!(matches!(
            tlb.lookup(Vpn(1), V0),
            TlbOutcome::HitL2 { pfn: Pfn(11), .. }
        ));
        // Promoted: now an L1 hit.
        assert!(matches!(
            tlb.lookup(Vpn(1), V0),
            TlbOutcome::HitL1 { pfn: Pfn(11), .. }
        ));
    }

    #[test]
    fn vpid_isolation() {
        let mut tlb = Tlb::default();
        tlb.insert(Vpn(5), Pfn(50), PageSize::Small4K, Vpid(1));
        assert_eq!(tlb.lookup(Vpn(5), Vpid(2)), TlbOutcome::Miss);
    }

    #[test]
    fn shootdown_removes_all_copies() {
        let mut tlb = Tlb::default();
        tlb.insert(Vpn(5), Pfn(50), PageSize::Small4K, V0);
        tlb.shootdown(Vpn(5), PageSize::Small4K, V0);
        assert_eq!(tlb.lookup(Vpn(5), V0), TlbOutcome::Miss);
        assert_eq!(tlb.stats().shootdowns, 1);
    }

    #[test]
    fn shootdown_huge() {
        let mut tlb = Tlb::default();
        tlb.insert(Vpn(1024), Pfn(2048), PageSize::Huge2M, V0);
        tlb.shootdown(Vpn(1024), PageSize::Huge2M, V0);
        assert_eq!(tlb.lookup(Vpn(1024 + 3), V0), TlbOutcome::Miss);
    }

    #[test]
    fn flush_vpid_only_affects_that_vpid() {
        let mut tlb = Tlb::default();
        tlb.insert(Vpn(5), Pfn(50), PageSize::Small4K, Vpid(1));
        tlb.insert(Vpn(6), Pfn(60), PageSize::Small4K, Vpid(2));
        tlb.flush_vpid(Vpid(1));
        assert_eq!(tlb.lookup(Vpn(5), Vpid(1)), TlbOutcome::Miss);
        assert!(matches!(
            tlb.lookup(Vpn(6), Vpid(2)),
            TlbOutcome::HitL1 { .. }
        ));
    }

    #[test]
    fn flush_all_clears_everything() {
        let mut tlb = Tlb::default();
        tlb.insert(Vpn(5), Pfn(50), PageSize::Small4K, V0);
        tlb.insert(Vpn(512), Pfn(512), PageSize::Huge2M, V0);
        tlb.flush_all();
        assert_eq!(tlb.lookup(Vpn(5), V0), TlbOutcome::Miss);
        assert_eq!(tlb.lookup(Vpn(600), V0), TlbOutcome::Miss);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let cfg = TlbConfig {
            l1_small: TlbGeometry::new(2, 2),
            l1_huge: TlbGeometry::new(2, 2),
            l2: TlbGeometry::new(2, 2),
            l2_hit_ns: 7,
        };
        let mut tlb = Tlb::new(cfg);
        tlb.insert(Vpn(1), Pfn(11), PageSize::Small4K, V0);
        tlb.insert(Vpn(2), Pfn(12), PageSize::Small4K, V0);
        tlb.lookup(Vpn(1), V0); // touch 1 -> 2 becomes L1-LRU
        tlb.insert(Vpn(3), Pfn(13), PageSize::Small4K, V0); // evicts 2 from L1
        assert!(matches!(tlb.lookup(Vpn(1), V0), TlbOutcome::HitL1 { .. }));
        // 2 was evicted from L1; it may still hit in L2 but never in L1.
        assert!(!matches!(tlb.lookup(Vpn(2), V0), TlbOutcome::HitL1 { .. }));
        // 1 was the L2 LRU victim when 3 was inserted, so after the
        // promotion of 2 above, a fresh entry 4 in the same universe still
        // leaves 3 reachable.
        assert!(!matches!(tlb.lookup(Vpn(3), V0), TlbOutcome::Miss));
    }

    #[test]
    fn reinsert_same_tag_updates_in_place() {
        let mut tlb = Tlb::default();
        tlb.insert(Vpn(1), Pfn(11), PageSize::Small4K, V0);
        tlb.insert(Vpn(1), Pfn(99), PageSize::Small4K, V0);
        assert!(matches!(
            tlb.lookup(Vpn(1), V0),
            TlbOutcome::HitL1 { pfn: Pfn(99), .. }
        ));
    }

    #[test]
    fn miss_ratio() {
        let mut tlb = Tlb::default();
        tlb.lookup(Vpn(1), V0);
        tlb.insert(Vpn(1), Pfn(1), PageSize::Small4K, V0);
        tlb.lookup(Vpn(1), V0);
        assert!((tlb.stats().miss_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(tlb.stats().lookups(), 2);
    }

    #[test]
    #[should_panic(expected = "bad TLB geometry")]
    fn bad_geometry_panics() {
        TlbGeometry::new(10, 3);
    }
}

thermo_util::json_newtype!(Vpid);
thermo_util::json_struct!(TlbGeometry { entries, ways });
thermo_util::json_struct!(TlbConfig {
    l1_small,
    l1_huge,
    l2,
    l2_hit_ns
});

//! Four-level radix page table with transparent-huge-page support.
//!
//! The structure mirrors x86-64: PML4 → PDPT → PD → PT, 512 entries per
//! level. A PD entry either points at a PT of 512 4KB PTEs or is itself a
//! 2MB leaf (PS bit set). Thermostat's sampling (paper §3.2) *splits* a huge
//! page into its 512 constituent 4KB PTEs to monitor them individually and
//! later *collapses* it back; both are pure page-table transformations here
//! because a huge page is always backed by a physically contiguous huge
//! frame (see `thermo-mem::frame`).

use crate::pte::Pte;
use std::error::Error;
use std::fmt;
use thermo_mem::{PageSize, Pfn, Vpn, PAGES_PER_HUGE};

const FANOUT: usize = 512;

/// Errors returned by page-table operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// The target range already holds a mapping.
    AlreadyMapped {
        /// First conflicting page.
        vpn: Vpn,
    },
    /// The virtual page is not mapped.
    NotMapped {
        /// The page in question.
        vpn: Vpn,
    },
    /// Attempted a huge-page operation on a misaligned VPN.
    Misaligned {
        /// The offending page number.
        vpn: Vpn,
    },
    /// Split/collapse was applied to the wrong mapping kind (e.g. collapsing
    /// a range that is not 512 compatible 4KB PTEs).
    WrongKind {
        /// Base page of the operation.
        vpn: Vpn,
        /// Explanation.
        reason: &'static str,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::AlreadyMapped { vpn } => write!(f, "page {vpn} is already mapped"),
            MapError::NotMapped { vpn } => write!(f, "page {vpn} is not mapped"),
            MapError::Misaligned { vpn } => write!(f, "page {vpn} is not 2MB aligned"),
            MapError::WrongKind { vpn, reason } => {
                write!(f, "wrong mapping kind at {vpn}: {reason}")
            }
        }
    }
}

impl Error for MapError {}

/// A resolved translation, as returned by [`PageTable::lookup`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mapping {
    /// The leaf entry (copied; use the `with_pte_mut` family to modify).
    pub pte: Pte,
    /// Leaf size.
    pub size: PageSize,
    /// Base VPN of the leaf (equal to the queried VPN for 4KB leaves, the
    /// 2MB-aligned base for huge leaves).
    pub base_vpn: Vpn,
}

impl Mapping {
    /// Physical frame backing the *queried* 4KB page: for huge leaves this
    /// is the base frame offset by the page's index within the huge page.
    pub fn frame_for(&self, vpn: Vpn) -> Pfn {
        match self.size {
            PageSize::Small4K => self.pte.pfn(),
            PageSize::Huge2M => self
                .pte
                .pfn()
                .offset((vpn - self.base_vpn) % PAGES_PER_HUGE as u64),
        }
    }
}

enum PdEntry {
    Empty,
    Huge(Pte),
    Table(Box<Pt>),
}

struct Pt {
    entries: [Pte; FANOUT],
    present: u16,
}

impl Pt {
    fn new() -> Box<Self> {
        Box::new(Pt {
            entries: [Pte::empty(); FANOUT],
            present: 0,
        })
    }
}

struct Pd {
    entries: Vec<PdEntry>,
    present: u16,
}

impl Pd {
    fn new() -> Box<Self> {
        let mut entries = Vec::with_capacity(FANOUT);
        entries.resize_with(FANOUT, || PdEntry::Empty);
        Box::new(Pd {
            entries,
            present: 0,
        })
    }
}

struct Pdpt {
    entries: Vec<Option<Box<Pd>>>,
}

impl Pdpt {
    fn new() -> Box<Self> {
        let mut entries = Vec::with_capacity(FANOUT);
        entries.resize_with(FANOUT, || None);
        Box::new(Pdpt { entries })
    }
}

struct Pml4 {
    entries: Vec<Option<Box<Pdpt>>>,
}

impl Pml4 {
    fn new() -> Box<Self> {
        let mut entries = Vec::with_capacity(FANOUT);
        entries.resize_with(FANOUT, || None);
        Box::new(Pml4 { entries })
    }
}

fn indices(vpn: Vpn) -> (usize, usize, usize, usize) {
    let v = vpn.0;
    (
        ((v >> 27) & 0x1ff) as usize, // PML4
        ((v >> 18) & 0x1ff) as usize, // PDPT
        ((v >> 9) & 0x1ff) as usize,  // PD
        (v & 0x1ff) as usize,         // PT
    )
}

/// The per-process page table.
pub struct PageTable {
    root: Box<Pml4>,
    mapped_small: u64,
    mapped_huge: u64,
}

impl fmt::Debug for PageTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PageTable")
            .field("mapped_small", &self.mapped_small)
            .field("mapped_huge", &self.mapped_huge)
            .finish()
    }
}

impl Default for PageTable {
    fn default() -> Self {
        Self::new()
    }
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        Self {
            root: Pml4::new(),
            mapped_small: 0,
            mapped_huge: 0,
        }
    }

    /// Number of mapped 4KB leaves.
    pub fn mapped_small_pages(&self) -> u64 {
        self.mapped_small
    }

    /// Number of mapped 2MB leaves.
    pub fn mapped_huge_pages(&self) -> u64 {
        self.mapped_huge
    }

    /// Total mapped bytes.
    pub fn mapped_bytes(&self) -> u64 {
        self.mapped_small * 4096 + self.mapped_huge * (PAGES_PER_HUGE as u64) * 4096
    }

    /// Maps `vpn` to a 4KB frame.
    ///
    /// # Errors
    ///
    /// [`MapError::AlreadyMapped`] if `vpn` is covered by an existing 4KB or
    /// 2MB mapping.
    pub fn map_small(&mut self, vpn: Vpn, pfn: Pfn, writable: bool) -> Result<(), MapError> {
        let (i4, i3, i2, i1) = indices(vpn);
        let pd = self.pd_mut(i4, i3);
        match &mut pd.entries[i2] {
            PdEntry::Huge(_) => return Err(MapError::AlreadyMapped { vpn }),
            e @ PdEntry::Empty => {
                *e = PdEntry::Table(Pt::new());
                pd.present += 1;
            }
            PdEntry::Table(_) => {}
        }
        let PdEntry::Table(pt) = &mut pd.entries[i2] else {
            unreachable!()
        };
        if pt.entries[i1].present() {
            return Err(MapError::AlreadyMapped { vpn });
        }
        pt.entries[i1] = Pte::new(pfn, writable, false);
        pt.present += 1;
        self.mapped_small += 1;
        Ok(())
    }

    /// Maps the 2MB page starting at `vpn` (must be huge-aligned) to a huge
    /// frame (must be huge-aligned).
    ///
    /// # Errors
    ///
    /// [`MapError::Misaligned`] for an unaligned base, and
    /// [`MapError::AlreadyMapped`] if any page in the range is mapped.
    pub fn map_huge(&mut self, vpn: Vpn, pfn: Pfn, writable: bool) -> Result<(), MapError> {
        if !vpn.is_huge_aligned() || !pfn.is_huge_aligned() {
            return Err(MapError::Misaligned { vpn });
        }
        let (i4, i3, i2, _) = indices(vpn);
        let pd = self.pd_mut(i4, i3);
        match &pd.entries[i2] {
            PdEntry::Empty => {}
            _ => return Err(MapError::AlreadyMapped { vpn }),
        }
        pd.entries[i2] = PdEntry::Huge(Pte::new(pfn, writable, true));
        pd.present += 1;
        self.mapped_huge += 1;
        Ok(())
    }

    /// Removes the leaf mapping covering `vpn` and returns it.
    ///
    /// For a huge leaf, `vpn` may be any page within the 2MB range.
    ///
    /// # Errors
    ///
    /// [`MapError::NotMapped`] if nothing covers `vpn`.
    pub fn unmap(&mut self, vpn: Vpn) -> Result<Mapping, MapError> {
        let (i4, i3, i2, i1) = indices(vpn);
        let Some(pdpt) = self.root.entries[i4].as_mut() else {
            return Err(MapError::NotMapped { vpn });
        };
        let Some(pd) = pdpt.entries[i3].as_mut() else {
            return Err(MapError::NotMapped { vpn });
        };
        match &mut pd.entries[i2] {
            PdEntry::Empty => Err(MapError::NotMapped { vpn }),
            PdEntry::Huge(pte) => {
                let m = Mapping {
                    pte: *pte,
                    size: PageSize::Huge2M,
                    base_vpn: vpn.huge_base(),
                };
                pd.entries[i2] = PdEntry::Empty;
                pd.present -= 1;
                self.mapped_huge -= 1;
                Ok(m)
            }
            PdEntry::Table(pt) => {
                if !pt.entries[i1].present() {
                    return Err(MapError::NotMapped { vpn });
                }
                let m = Mapping {
                    pte: pt.entries[i1],
                    size: PageSize::Small4K,
                    base_vpn: vpn,
                };
                pt.entries[i1] = Pte::empty();
                pt.present -= 1;
                self.mapped_small -= 1;
                if pt.present == 0 {
                    pd.entries[i2] = PdEntry::Empty;
                    pd.present -= 1;
                }
                Ok(m)
            }
        }
    }

    /// Looks up the leaf covering `vpn` without modifying anything.
    pub fn lookup(&self, vpn: Vpn) -> Option<Mapping> {
        let (i4, i3, i2, i1) = indices(vpn);
        let pdpt = self.root.entries[i4].as_ref()?;
        let pd = pdpt.entries[i3].as_ref()?;
        match &pd.entries[i2] {
            PdEntry::Empty => None,
            PdEntry::Huge(pte) => Some(Mapping {
                pte: *pte,
                size: PageSize::Huge2M,
                base_vpn: vpn.huge_base(),
            }),
            PdEntry::Table(pt) => {
                let pte = pt.entries[i1];
                pte.present().then_some(Mapping {
                    pte,
                    size: PageSize::Small4K,
                    base_vpn: vpn,
                })
            }
        }
    }

    /// Applies `f` to the leaf PTE covering `vpn` (huge or small), returning
    /// `f`'s result, or `None` when unmapped.
    ///
    /// This is how the walker sets Accessed/Dirty bits and how Thermostat
    /// poisons/unpoisons entries.
    pub fn with_pte_mut<R>(&mut self, vpn: Vpn, f: impl FnOnce(&mut Pte) -> R) -> Option<R> {
        let (i4, i3, i2, i1) = indices(vpn);
        let pdpt = self.root.entries[i4].as_mut()?;
        let pd = pdpt.entries[i3].as_mut()?;
        match &mut pd.entries[i2] {
            PdEntry::Empty => None,
            PdEntry::Huge(pte) => Some(f(pte)),
            PdEntry::Table(pt) => {
                let pte = &mut pt.entries[i1];
                pte.present().then(|| f(pte))
            }
        }
    }

    /// Splits the huge page at huge-aligned `vpn` into 512 4KB PTEs mapping
    /// the same frames with the same flags (paper §3.2 step 1: "we split a
    /// random sample of huge pages into 4KB pages").
    ///
    /// The Accessed/Dirty/poison bits of the huge PTE are propagated to every
    /// child so no history is lost; callers typically clear child A bits
    /// right after splitting to start a monitoring interval.
    ///
    /// # Errors
    ///
    /// [`MapError::Misaligned`], [`MapError::NotMapped`], or
    /// [`MapError::WrongKind`] if the entry is not a huge leaf.
    pub fn split_huge(&mut self, vpn: Vpn) -> Result<(), MapError> {
        if !vpn.is_huge_aligned() {
            return Err(MapError::Misaligned { vpn });
        }
        let (i4, i3, i2, _) = indices(vpn);
        let Some(pdpt) = self.root.entries[i4].as_mut() else {
            return Err(MapError::NotMapped { vpn });
        };
        let Some(pd) = pdpt.entries[i3].as_mut() else {
            return Err(MapError::NotMapped { vpn });
        };
        let huge_pte = match &pd.entries[i2] {
            PdEntry::Empty => return Err(MapError::NotMapped { vpn }),
            PdEntry::Table(_) => {
                return Err(MapError::WrongKind {
                    vpn,
                    reason: "already split (4KB table)",
                })
            }
            PdEntry::Huge(pte) => *pte,
        };
        let mut pt = Pt::new();
        let base = huge_pte.pfn();
        for (i, entry) in pt.entries.iter_mut().enumerate() {
            let mut child = Pte::new(base.offset(i as u64), huge_pte.writable(), false);
            child.0 |= huge_pte.0
                & (crate::pte::BIT_ACCESSED | crate::pte::BIT_DIRTY | crate::pte::BIT_POISON);
            *entry = child;
        }
        pt.present = FANOUT as u16;
        pd.entries[i2] = PdEntry::Table(pt);
        self.mapped_huge -= 1;
        self.mapped_small += FANOUT as u64;
        Ok(())
    }

    /// Collapses 512 4KB PTEs back into one huge leaf (the inverse of
    /// [`split_huge`](Self::split_huge); Linux's khugepaged-style collapse).
    ///
    /// Requires all 512 children to be present, physically contiguous
    /// starting at a huge-aligned frame, and to agree on writability and
    /// poison state. Accessed/Dirty bits are OR-folded into the huge PTE.
    ///
    /// # Errors
    ///
    /// [`MapError::Misaligned`], [`MapError::NotMapped`], or
    /// [`MapError::WrongKind`] when the children cannot form a huge page.
    pub fn collapse_huge(&mut self, vpn: Vpn) -> Result<(), MapError> {
        if !vpn.is_huge_aligned() {
            return Err(MapError::Misaligned { vpn });
        }
        let (i4, i3, i2, _) = indices(vpn);
        let Some(pdpt) = self.root.entries[i4].as_mut() else {
            return Err(MapError::NotMapped { vpn });
        };
        let Some(pd) = pdpt.entries[i3].as_mut() else {
            return Err(MapError::NotMapped { vpn });
        };
        let pt = match &pd.entries[i2] {
            PdEntry::Empty => return Err(MapError::NotMapped { vpn }),
            PdEntry::Huge(_) => {
                return Err(MapError::WrongKind {
                    vpn,
                    reason: "already a huge page",
                })
            }
            PdEntry::Table(pt) => pt,
        };
        if pt.present as usize != FANOUT {
            return Err(MapError::WrongKind {
                vpn,
                reason: "not all 512 children present",
            });
        }
        let first = pt.entries[0];
        if !first.pfn().is_huge_aligned() {
            return Err(MapError::WrongKind {
                vpn,
                reason: "base frame not huge-aligned",
            });
        }
        let mut acc = first.0 & (crate::pte::BIT_ACCESSED | crate::pte::BIT_DIRTY);
        for (i, child) in pt.entries.iter().enumerate() {
            if child.pfn() != first.pfn().offset(i as u64) {
                return Err(MapError::WrongKind {
                    vpn,
                    reason: "frames not contiguous",
                });
            }
            if child.writable() != first.writable() || child.poisoned() != first.poisoned() {
                return Err(MapError::WrongKind {
                    vpn,
                    reason: "children flags disagree",
                });
            }
            acc |= child.0 & (crate::pte::BIT_ACCESSED | crate::pte::BIT_DIRTY);
        }
        let mut huge = Pte::new(first.pfn(), first.writable(), true);
        huge.0 |= acc;
        if first.poisoned() {
            huge.poison();
        }
        pd.entries[i2] = PdEntry::Huge(huge);
        self.mapped_small -= FANOUT as u64;
        self.mapped_huge += 1;
        Ok(())
    }

    /// Visits every leaf PTE in `[start, start + n_pages)` (4KB page units),
    /// passing `(base_vpn, size, &mut pte)`.
    ///
    /// Huge leaves are visited once at their base. Unmapped holes are
    /// skipped.
    pub fn for_each_leaf_mut(
        &mut self,
        start: Vpn,
        n_pages: u64,
        mut f: impl FnMut(Vpn, PageSize, &mut Pte),
    ) {
        let end = Vpn(start.0 + n_pages);
        let mut vpn = start;
        while vpn.0 < end.0 {
            let (i4, i3, i2, i1) = indices(vpn);
            let Some(pdpt) = self.root.entries[i4].as_mut() else {
                vpn = Vpn((vpn.0 | 0x7ff_ffff) + 1); // skip to next PML4 slot
                continue;
            };
            let Some(pd) = pdpt.entries[i3].as_mut() else {
                vpn = Vpn((vpn.0 | 0x3ffff) + 1); // next PDPT slot
                continue;
            };
            match &mut pd.entries[i2] {
                PdEntry::Empty => {
                    vpn = Vpn((vpn.0 | 0x1ff) + 1); // next PD slot
                }
                PdEntry::Huge(pte) => {
                    f(vpn.huge_base(), PageSize::Huge2M, pte);
                    vpn = Vpn((vpn.0 | 0x1ff) + 1);
                }
                PdEntry::Table(pt) => {
                    let upto = std::cmp::min(end.0 - (vpn.0 - i1 as u64), FANOUT as u64) as usize;
                    for i in i1..upto {
                        let pte = &mut pt.entries[i];
                        if pte.present() {
                            f(Vpn(vpn.0 - i1 as u64 + i as u64), PageSize::Small4K, pte);
                        }
                    }
                    vpn = Vpn((vpn.0 | 0x1ff) + 1);
                }
            }
        }
    }

    /// Shared-borrow variant of [`for_each_leaf_mut`](Self::for_each_leaf_mut):
    /// visits every leaf PTE in `[start, start + n_pages)` read-only, passing
    /// `(base_vpn, size, &pte)`.
    ///
    /// Huge leaves are visited once at their base; unmapped holes are
    /// skipped. Because `&self` suffices, concurrent walkers over disjoint
    /// (or even overlapping) ranges can run from scoped threads — the basis
    /// of the off-thread scan pipeline (`thermo_sim::MemoryView`).
    pub fn for_each_leaf(&self, start: Vpn, n_pages: u64, mut f: impl FnMut(Vpn, PageSize, &Pte)) {
        let end = Vpn(start.0 + n_pages);
        let mut vpn = start;
        while vpn.0 < end.0 {
            let (i4, i3, i2, i1) = indices(vpn);
            let Some(pdpt) = self.root.entries[i4].as_ref() else {
                vpn = Vpn((vpn.0 | 0x7ff_ffff) + 1); // skip to next PML4 slot
                continue;
            };
            let Some(pd) = pdpt.entries[i3].as_ref() else {
                vpn = Vpn((vpn.0 | 0x3ffff) + 1); // next PDPT slot
                continue;
            };
            match &pd.entries[i2] {
                PdEntry::Empty => {
                    vpn = Vpn((vpn.0 | 0x1ff) + 1); // next PD slot
                }
                PdEntry::Huge(pte) => {
                    f(vpn.huge_base(), PageSize::Huge2M, pte);
                    vpn = Vpn((vpn.0 | 0x1ff) + 1);
                }
                PdEntry::Table(pt) => {
                    let upto = std::cmp::min(end.0 - (vpn.0 - i1 as u64), FANOUT as u64) as usize;
                    for i in i1..upto {
                        let pte = &pt.entries[i];
                        if pte.present() {
                            f(Vpn(vpn.0 - i1 as u64 + i as u64), PageSize::Small4K, pte);
                        }
                    }
                    vpn = Vpn((vpn.0 | 0x1ff) + 1);
                }
            }
        }
    }

    fn pd_mut(&mut self, i4: usize, i3: usize) -> &mut Pd {
        let pdpt = self.root.entries[i4].get_or_insert_with(Pdpt::new);
        pdpt.entries[i3].get_or_insert_with(Pd::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermo_mem::HUGE_PAGE_BYTES;

    const HUGE_VPN: Vpn = Vpn(512 * 3); // arbitrary aligned base

    #[test]
    fn map_lookup_unmap_small() {
        let mut pt = PageTable::new();
        pt.map_small(Vpn(42), Pfn(7), true).unwrap();
        let m = pt.lookup(Vpn(42)).unwrap();
        assert_eq!(m.size, PageSize::Small4K);
        assert_eq!(m.pte.pfn(), Pfn(7));
        assert_eq!(m.frame_for(Vpn(42)), Pfn(7));
        assert_eq!(pt.mapped_small_pages(), 1);
        let un = pt.unmap(Vpn(42)).unwrap();
        assert_eq!(un.pte.pfn(), Pfn(7));
        assert!(pt.lookup(Vpn(42)).is_none());
        assert_eq!(pt.mapped_small_pages(), 0);
    }

    #[test]
    fn map_lookup_huge_with_interior_frame() {
        let mut pt = PageTable::new();
        pt.map_huge(HUGE_VPN, Pfn(1024), true).unwrap();
        // Any interior page resolves to the offset frame.
        let probe = Vpn(HUGE_VPN.0 + 37);
        let m = pt.lookup(probe).unwrap();
        assert_eq!(m.size, PageSize::Huge2M);
        assert_eq!(m.base_vpn, HUGE_VPN);
        assert_eq!(m.frame_for(probe), Pfn(1024 + 37));
        assert_eq!(pt.mapped_bytes(), HUGE_PAGE_BYTES as u64);
    }

    #[test]
    fn overlapping_maps_rejected() {
        let mut pt = PageTable::new();
        pt.map_huge(HUGE_VPN, Pfn(1024), true).unwrap();
        assert!(matches!(
            pt.map_small(Vpn(HUGE_VPN.0 + 5), Pfn(9), true),
            Err(MapError::AlreadyMapped { .. })
        ));
        let mut pt = PageTable::new();
        pt.map_small(Vpn(HUGE_VPN.0 + 5), Pfn(9), true).unwrap();
        assert!(matches!(
            pt.map_huge(HUGE_VPN, Pfn(1024), true),
            Err(MapError::AlreadyMapped { .. })
        ));
    }

    #[test]
    fn misaligned_huge_rejected() {
        let mut pt = PageTable::new();
        assert!(matches!(
            pt.map_huge(Vpn(3), Pfn(1024), true),
            Err(MapError::Misaligned { .. })
        ));
        assert!(matches!(
            pt.map_huge(HUGE_VPN, Pfn(1000), true),
            Err(MapError::Misaligned { .. })
        ));
    }

    #[test]
    fn split_preserves_translation_and_flags() {
        let mut pt = PageTable::new();
        pt.map_huge(HUGE_VPN, Pfn(2048), true).unwrap();
        pt.with_pte_mut(HUGE_VPN, |p| p.set_accessed());
        pt.split_huge(HUGE_VPN).unwrap();
        assert_eq!(pt.mapped_small_pages(), 512);
        assert_eq!(pt.mapped_huge_pages(), 0);
        for i in [0u64, 1, 100, 511] {
            let m = pt.lookup(Vpn(HUGE_VPN.0 + i)).unwrap();
            assert_eq!(m.size, PageSize::Small4K);
            assert_eq!(m.pte.pfn(), Pfn(2048 + i));
            assert!(m.pte.accessed(), "A bit must propagate to children");
            assert!(m.pte.writable());
        }
    }

    #[test]
    fn collapse_restores_huge_and_folds_bits() {
        let mut pt = PageTable::new();
        pt.map_huge(HUGE_VPN, Pfn(2048), true).unwrap();
        pt.split_huge(HUGE_VPN).unwrap();
        // Touch one child's A bit and another's D bit.
        pt.with_pte_mut(Vpn(HUGE_VPN.0 + 3), |p| p.set_accessed());
        pt.with_pte_mut(Vpn(HUGE_VPN.0 + 9), |p| p.set_dirty());
        pt.collapse_huge(HUGE_VPN).unwrap();
        let m = pt.lookup(Vpn(HUGE_VPN.0 + 100)).unwrap();
        assert_eq!(m.size, PageSize::Huge2M);
        assert_eq!(m.pte.pfn(), Pfn(2048));
        assert!(m.pte.accessed() && m.pte.dirty(), "A/D bits must OR-fold");
    }

    #[test]
    fn collapse_rejects_non_contiguous() {
        let mut pt = PageTable::new();
        pt.map_huge(HUGE_VPN, Pfn(2048), true).unwrap();
        pt.split_huge(HUGE_VPN).unwrap();
        // Remap one child to a different frame.
        pt.unmap(Vpn(HUGE_VPN.0 + 5)).unwrap();
        pt.map_small(Vpn(HUGE_VPN.0 + 5), Pfn(9999), true).unwrap();
        assert!(matches!(
            pt.collapse_huge(HUGE_VPN),
            Err(MapError::WrongKind {
                reason: "frames not contiguous",
                ..
            })
        ));
    }

    #[test]
    fn collapse_rejects_holes() {
        let mut pt = PageTable::new();
        pt.map_huge(HUGE_VPN, Pfn(2048), true).unwrap();
        pt.split_huge(HUGE_VPN).unwrap();
        pt.unmap(Vpn(HUGE_VPN.0 + 5)).unwrap();
        assert!(matches!(
            pt.collapse_huge(HUGE_VPN),
            Err(MapError::WrongKind { .. })
        ));
    }

    #[test]
    fn split_of_split_or_missing_fails() {
        let mut pt = PageTable::new();
        assert!(matches!(
            pt.split_huge(HUGE_VPN),
            Err(MapError::NotMapped { .. })
        ));
        pt.map_huge(HUGE_VPN, Pfn(2048), true).unwrap();
        pt.split_huge(HUGE_VPN).unwrap();
        assert!(matches!(
            pt.split_huge(HUGE_VPN),
            Err(MapError::WrongKind { .. })
        ));
    }

    #[test]
    fn split_propagates_poison() {
        let mut pt = PageTable::new();
        pt.map_huge(HUGE_VPN, Pfn(2048), true).unwrap();
        pt.with_pte_mut(HUGE_VPN, |p| p.poison());
        pt.split_huge(HUGE_VPN).unwrap();
        assert!(pt.lookup(Vpn(HUGE_VPN.0 + 7)).unwrap().pte.poisoned());
        pt.collapse_huge(HUGE_VPN).unwrap();
        assert!(pt.lookup(HUGE_VPN).unwrap().pte.poisoned());
    }

    #[test]
    fn unmap_huge_by_interior_page() {
        let mut pt = PageTable::new();
        pt.map_huge(HUGE_VPN, Pfn(2048), true).unwrap();
        let m = pt.unmap(Vpn(HUGE_VPN.0 + 300)).unwrap();
        assert_eq!(m.size, PageSize::Huge2M);
        assert_eq!(m.base_vpn, HUGE_VPN);
        assert!(pt.lookup(HUGE_VPN).is_none());
    }

    #[test]
    fn for_each_leaf_visits_mixed_mappings() {
        let mut pt = PageTable::new();
        pt.map_huge(Vpn(0), Pfn(0), true).unwrap();
        pt.map_small(Vpn(512 + 4), Pfn(5000), true).unwrap();
        pt.map_small(Vpn(512 + 6), Pfn(5001), true).unwrap();
        pt.map_huge(Vpn(1024), Pfn(1024), true).unwrap();
        let mut seen = Vec::new();
        pt.for_each_leaf_mut(Vpn(0), 1536, |vpn, size, _| seen.push((vpn, size)));
        assert_eq!(
            seen,
            vec![
                (Vpn(0), PageSize::Huge2M),
                (Vpn(516), PageSize::Small4K),
                (Vpn(518), PageSize::Small4K),
                (Vpn(1024), PageSize::Huge2M),
            ]
        );
    }

    #[test]
    fn shared_walk_matches_mut_walk() {
        let mut pt = PageTable::new();
        pt.map_huge(Vpn(0), Pfn(0), true).unwrap();
        pt.map_small(Vpn(516), Pfn(516), true).unwrap();
        pt.map_small(Vpn(518), Pfn(518), false).unwrap();
        pt.map_huge(Vpn(1024), Pfn(1024), true).unwrap();
        let mut via_mut = Vec::new();
        pt.for_each_leaf_mut(Vpn(0), 1536, |vpn, size, pte| {
            via_mut.push((vpn, size, *pte))
        });
        let mut via_shared = Vec::new();
        pt.for_each_leaf(Vpn(0), 1536, |vpn, size, pte| {
            via_shared.push((vpn, size, *pte))
        });
        assert_eq!(via_mut, via_shared);
    }

    #[test]
    fn for_each_leaf_respects_range_bounds() {
        let mut pt = PageTable::new();
        for i in 0..10 {
            pt.map_small(Vpn(i), Pfn(100 + i), true).unwrap();
        }
        let mut seen = Vec::new();
        pt.for_each_leaf_mut(Vpn(2), 5, |vpn, _, _| seen.push(vpn.0));
        assert_eq!(seen, vec![2, 3, 4, 5, 6]);
    }

    #[test]
    fn for_each_leaf_mut_can_mutate() {
        let mut pt = PageTable::new();
        pt.map_small(Vpn(1), Pfn(1), true).unwrap();
        pt.for_each_leaf_mut(Vpn(0), 512, |_, _, pte| pte.set_accessed());
        assert!(pt.lookup(Vpn(1)).unwrap().pte.accessed());
    }

    #[test]
    fn for_each_leaf_skips_huge_gaps_across_table_levels() {
        // Pages in different PML4/PDPT/PD subtrees with vast holes between
        // them; the range walk must skip the holes without visiting them.
        let mut pt = PageTable::new();
        let far_apart = [
            Vpn(0),               // PML4 slot 0
            Vpn(1 << 18),         // next PDPT slot
            Vpn(1 << 27),         // next PML4 slot
            Vpn((1 << 27) + 512), // same PML4, next PD entry
        ];
        for (i, vpn) in far_apart.iter().enumerate() {
            pt.map_small(*vpn, Pfn(10 + i as u64), true).unwrap();
        }
        let mut seen = Vec::new();
        pt.for_each_leaf_mut(Vpn(0), (1 << 27) + 1024, |vpn, _, _| seen.push(vpn));
        assert_eq!(seen, far_apart.to_vec());
    }

    #[test]
    fn for_each_leaf_starting_mid_huge_page_visits_it_once() {
        let mut pt = PageTable::new();
        pt.map_huge(Vpn(0), Pfn(0), true).unwrap();
        let mut seen = Vec::new();
        // Start in the middle of the huge page.
        pt.for_each_leaf_mut(Vpn(100), 1000, |vpn, size, _| seen.push((vpn, size)));
        assert_eq!(seen, vec![(Vpn(0), PageSize::Huge2M)]);
    }

    #[test]
    fn with_pte_mut_none_for_unmapped() {
        let mut pt = PageTable::new();
        assert_eq!(pt.with_pte_mut(Vpn(9), |_| ()), None);
    }

    #[test]
    fn unmap_missing_errors() {
        let mut pt = PageTable::new();
        assert!(matches!(pt.unmap(Vpn(1)), Err(MapError::NotMapped { .. })));
    }

    #[test]
    fn map_error_display() {
        assert!(format!("{}", MapError::AlreadyMapped { vpn: Vpn(1) }).contains("already"));
        assert!(format!("{}", MapError::NotMapped { vpn: Vpn(1) }).contains("not mapped"));
        assert!(format!("{}", MapError::Misaligned { vpn: Vpn(1) }).contains("aligned"));
        assert!(format!(
            "{}",
            MapError::WrongKind {
                vpn: Vpn(1),
                reason: "x"
            }
        )
        .contains("x"));
    }
}

//! Flat-leaf page table with transparent-huge-page support.
//!
//! Semantically this mirrors the x86-64 radix tree (PML4 → PDPT → PD → PT,
//! 512 entries per level): a 2MB-aligned virtual slot either is a 2MB leaf
//! (PS bit set on the PD entry) or holds a table of 512 4KB PTEs.
//! Thermostat's sampling (paper §3.2) *splits* a huge page into its 512
//! constituent 4KB PTEs to monitor them individually and later *collapses*
//! it back; both are pure page-table transformations here because a huge
//! page is always backed by a physically contiguous huge frame (see
//! `thermo-mem::frame`).
//!
//! The representation, however, is flat: one dense array of per-slot leaf
//! rows indexed by `vpn >> 9`, offset from the lowest mapped slot. The
//! simulated process bump-allocates VMAs contiguously, so the slot space is
//! dense and a translation is one bounds-checked index instead of three
//! pointer hops; range scans (`for_each_leaf`) are linear array sweeps, the
//! shape the off-thread scan pipeline (`thermo_sim::MemoryView`) reads.
//! Walk *costs* are still charged by the simulator per radix level — the
//! model is unchanged, only the host representation is flat.
//!
//! Every structural change (map/unmap/split/collapse) bumps a generation
//! stamp, giving engine-level translation caches a cheap invalidation
//! signal; leaf-flag updates (A/D/poison) do not change translations and
//! leave the generation alone.

use crate::pte::Pte;
use std::error::Error;
use std::fmt;
use thermo_mem::{PageSize, Pfn, Vpn, PAGES_PER_HUGE};

const FANOUT: usize = 512;

/// Errors returned by page-table operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// The target range already holds a mapping.
    AlreadyMapped {
        /// First conflicting page.
        vpn: Vpn,
    },
    /// The virtual page is not mapped.
    NotMapped {
        /// The page in question.
        vpn: Vpn,
    },
    /// Attempted a huge-page operation on a misaligned VPN.
    Misaligned {
        /// The offending page number.
        vpn: Vpn,
    },
    /// Split/collapse was applied to the wrong mapping kind (e.g. collapsing
    /// a range that is not 512 compatible 4KB PTEs).
    WrongKind {
        /// Base page of the operation.
        vpn: Vpn,
        /// Explanation.
        reason: &'static str,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::AlreadyMapped { vpn } => write!(f, "page {vpn} is already mapped"),
            MapError::NotMapped { vpn } => write!(f, "page {vpn} is not mapped"),
            MapError::Misaligned { vpn } => write!(f, "page {vpn} is not 2MB aligned"),
            MapError::WrongKind { vpn, reason } => {
                write!(f, "wrong mapping kind at {vpn}: {reason}")
            }
        }
    }
}

impl Error for MapError {}

/// A resolved translation, as returned by [`PageTable::lookup`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mapping {
    /// The leaf entry (copied; use the `with_pte_mut` family to modify).
    pub pte: Pte,
    /// Leaf size.
    pub size: PageSize,
    /// Base VPN of the leaf (equal to the queried VPN for 4KB leaves, the
    /// 2MB-aligned base for huge leaves).
    pub base_vpn: Vpn,
}

impl Mapping {
    /// Physical frame backing the *queried* 4KB page: for huge leaves this
    /// is the base frame offset by the page's index within the huge page.
    pub fn frame_for(&self, vpn: Vpn) -> Pfn {
        match self.size {
            PageSize::Small4K => self.pte.pfn(),
            PageSize::Huge2M => self
                .pte
                .pfn()
                .offset((vpn - self.base_vpn) % PAGES_PER_HUGE as u64),
        }
    }
}

/// One 2MB-aligned slot of the flat leaf array.
enum Slot {
    /// Nothing mapped in this 2MB window.
    Empty,
    /// A 2MB leaf (PD entry with the PS bit).
    Huge(Pte),
    /// A table of 512 4KB PTEs (non-present entries are `Pte::empty()`).
    Table(Box<Table>),
}

struct Table {
    entries: [Pte; FANOUT],
    present: u16,
}

impl Table {
    fn new() -> Box<Self> {
        Box::new(Table {
            entries: [Pte::empty(); FANOUT],
            present: 0,
        })
    }
}

/// The per-process page table.
pub struct PageTable {
    /// Dense per-slot leaf rows; slot `k` (i.e. `vpn >> 9 == k`) lives at
    /// `slots[k - slot_base]`. Grown on demand at either end.
    slots: Vec<Slot>,
    /// Slot key of `slots[0]`; fixed by the first mapping.
    slot_base: u64,
    mapped_small: u64,
    mapped_huge: u64,
    /// Bumped on every structural change (map/unmap/split/collapse); leaf
    /// flag updates do not move it.
    generation: u64,
}

impl fmt::Debug for PageTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PageTable")
            .field("mapped_small", &self.mapped_small)
            .field("mapped_huge", &self.mapped_huge)
            .finish()
    }
}

impl Default for PageTable {
    fn default() -> Self {
        Self::new()
    }
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            slot_base: 0,
            mapped_small: 0,
            mapped_huge: 0,
            generation: 0,
        }
    }

    /// Number of mapped 4KB leaves.
    pub fn mapped_small_pages(&self) -> u64 {
        self.mapped_small
    }

    /// Number of mapped 2MB leaves.
    pub fn mapped_huge_pages(&self) -> u64 {
        self.mapped_huge
    }

    /// Total mapped bytes.
    pub fn mapped_bytes(&self) -> u64 {
        self.mapped_small * 4096 + self.mapped_huge * (PAGES_PER_HUGE as u64) * 4096
    }

    /// Structural-generation stamp: changes whenever a translation is
    /// created, destroyed, split, or collapsed. Engine-level caches over
    /// the leaf array key their validity on this.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Read access to slot `key`'s row, `None` when outside the populated
    /// window.
    #[inline]
    fn slot(&self, key: u64) -> Option<&Slot> {
        let idx = key.wrapping_sub(self.slot_base);
        self.slots.get(idx as usize)
    }

    #[inline]
    fn slot_mut(&mut self, key: u64) -> Option<&mut Slot> {
        let idx = key.wrapping_sub(self.slot_base);
        self.slots.get_mut(idx as usize)
    }

    /// Mutable access to slot `key`'s row, growing the dense window to
    /// cover it (the grow path is cold: VMAs are bump-allocated, so new
    /// slots almost always extend the high end by one).
    fn slot_grow(&mut self, key: u64) -> &mut Slot {
        if self.slots.is_empty() {
            self.slot_base = key;
            self.slots.push(Slot::Empty);
        } else if key < self.slot_base {
            let shortfall = (self.slot_base - key) as usize;
            self.slots
                .splice(0..0, std::iter::repeat_with(|| Slot::Empty).take(shortfall));
            self.slot_base = key;
        } else {
            let idx = (key - self.slot_base) as usize;
            if idx >= self.slots.len() {
                self.slots.resize_with(idx + 1, || Slot::Empty);
            }
        }
        let idx = (key - self.slot_base) as usize;
        &mut self.slots[idx]
    }

    /// Maps `vpn` to a 4KB frame.
    ///
    /// # Errors
    ///
    /// [`MapError::AlreadyMapped`] if `vpn` is covered by an existing 4KB or
    /// 2MB mapping.
    pub fn map_small(&mut self, vpn: Vpn, pfn: Pfn, writable: bool) -> Result<(), MapError> {
        let slot = self.slot_grow(vpn.0 >> 9);
        let i1 = (vpn.0 & 0x1ff) as usize;
        match slot {
            Slot::Huge(_) => return Err(MapError::AlreadyMapped { vpn }),
            Slot::Empty => *slot = Slot::Table(Table::new()),
            Slot::Table(_) => {}
        }
        let Slot::Table(t) = slot else { unreachable!() };
        if t.entries[i1].present() {
            return Err(MapError::AlreadyMapped { vpn });
        }
        t.entries[i1] = Pte::new(pfn, writable, false);
        t.present += 1;
        self.mapped_small += 1;
        self.generation += 1;
        Ok(())
    }

    /// Maps the 2MB page starting at `vpn` (must be huge-aligned) to a huge
    /// frame (must be huge-aligned).
    ///
    /// # Errors
    ///
    /// [`MapError::Misaligned`] for an unaligned base, and
    /// [`MapError::AlreadyMapped`] if any page in the range is mapped.
    pub fn map_huge(&mut self, vpn: Vpn, pfn: Pfn, writable: bool) -> Result<(), MapError> {
        if !vpn.is_huge_aligned() || !pfn.is_huge_aligned() {
            return Err(MapError::Misaligned { vpn });
        }
        let slot = self.slot_grow(vpn.0 >> 9);
        match slot {
            Slot::Empty => {}
            _ => return Err(MapError::AlreadyMapped { vpn }),
        }
        *slot = Slot::Huge(Pte::new(pfn, writable, true));
        self.mapped_huge += 1;
        self.generation += 1;
        Ok(())
    }

    /// Removes the leaf mapping covering `vpn` and returns it.
    ///
    /// For a huge leaf, `vpn` may be any page within the 2MB range.
    ///
    /// # Errors
    ///
    /// [`MapError::NotMapped`] if nothing covers `vpn`.
    pub fn unmap(&mut self, vpn: Vpn) -> Result<Mapping, MapError> {
        let Some(slot) = self.slot_mut(vpn.0 >> 9) else {
            return Err(MapError::NotMapped { vpn });
        };
        let i1 = (vpn.0 & 0x1ff) as usize;
        match slot {
            Slot::Empty => Err(MapError::NotMapped { vpn }),
            Slot::Huge(pte) => {
                let m = Mapping {
                    pte: *pte,
                    size: PageSize::Huge2M,
                    base_vpn: vpn.huge_base(),
                };
                *slot = Slot::Empty;
                self.mapped_huge -= 1;
                self.generation += 1;
                Ok(m)
            }
            Slot::Table(t) => {
                if !t.entries[i1].present() {
                    return Err(MapError::NotMapped { vpn });
                }
                let m = Mapping {
                    pte: t.entries[i1],
                    size: PageSize::Small4K,
                    base_vpn: vpn,
                };
                t.entries[i1] = Pte::empty();
                t.present -= 1;
                if t.present == 0 {
                    *slot = Slot::Empty;
                }
                self.mapped_small -= 1;
                self.generation += 1;
                Ok(m)
            }
        }
    }

    /// Looks up the leaf covering `vpn` without modifying anything.
    pub fn lookup(&self, vpn: Vpn) -> Option<Mapping> {
        match self.slot(vpn.0 >> 9)? {
            Slot::Empty => None,
            Slot::Huge(pte) => Some(Mapping {
                pte: *pte,
                size: PageSize::Huge2M,
                base_vpn: vpn.huge_base(),
            }),
            Slot::Table(t) => {
                let pte = t.entries[(vpn.0 & 0x1ff) as usize];
                pte.present().then_some(Mapping {
                    pte,
                    size: PageSize::Small4K,
                    base_vpn: vpn,
                })
            }
        }
    }

    /// Fused walk step: resolves the leaf covering `vpn` and sets its
    /// Accessed (and, for a write, Dirty) bit in one descent. The returned
    /// mapping is the pre-update copy, matching the
    /// `lookup` + `with_pte_mut` sequence it replaces on the simulator's
    /// TLB-miss path.
    #[inline]
    pub fn touch(&mut self, vpn: Vpn, write: bool) -> Option<Mapping> {
        match self.slot_mut(vpn.0 >> 9)? {
            Slot::Empty => None,
            Slot::Huge(pte) => {
                let m = Mapping {
                    pte: *pte,
                    size: PageSize::Huge2M,
                    base_vpn: vpn.huge_base(),
                };
                pte.set_accessed();
                if write {
                    pte.set_dirty();
                }
                Some(m)
            }
            Slot::Table(t) => {
                let e = &mut t.entries[(vpn.0 & 0x1ff) as usize];
                if !e.present() {
                    return None;
                }
                let m = Mapping {
                    pte: *e,
                    size: PageSize::Small4K,
                    base_vpn: vpn,
                };
                e.set_accessed();
                if write {
                    e.set_dirty();
                }
                Some(m)
            }
        }
    }

    /// Applies `f` to the leaf PTE covering `vpn` (huge or small), returning
    /// `f`'s result, or `None` when unmapped.
    ///
    /// This is how Thermostat poisons/unpoisons entries and how scan
    /// helpers clear A bits.
    pub fn with_pte_mut<R>(&mut self, vpn: Vpn, f: impl FnOnce(&mut Pte) -> R) -> Option<R> {
        match self.slot_mut(vpn.0 >> 9)? {
            Slot::Empty => None,
            Slot::Huge(pte) => Some(f(pte)),
            Slot::Table(t) => {
                let pte = &mut t.entries[(vpn.0 & 0x1ff) as usize];
                pte.present().then(|| f(pte))
            }
        }
    }

    /// Splits the huge page at huge-aligned `vpn` into 512 4KB PTEs mapping
    /// the same frames with the same flags (paper §3.2 step 1: "we split a
    /// random sample of huge pages into 4KB pages").
    ///
    /// The Accessed/Dirty/poison bits of the huge PTE are propagated to every
    /// child so no history is lost; callers typically clear child A bits
    /// right after splitting to start a monitoring interval.
    ///
    /// # Errors
    ///
    /// [`MapError::Misaligned`], [`MapError::NotMapped`], or
    /// [`MapError::WrongKind`] if the entry is not a huge leaf.
    pub fn split_huge(&mut self, vpn: Vpn) -> Result<(), MapError> {
        if !vpn.is_huge_aligned() {
            return Err(MapError::Misaligned { vpn });
        }
        let Some(slot) = self.slot_mut(vpn.0 >> 9) else {
            return Err(MapError::NotMapped { vpn });
        };
        let huge_pte = match slot {
            Slot::Empty => return Err(MapError::NotMapped { vpn }),
            Slot::Table(_) => {
                return Err(MapError::WrongKind {
                    vpn,
                    reason: "already split (4KB table)",
                })
            }
            Slot::Huge(pte) => *pte,
        };
        let mut t = Table::new();
        let base = huge_pte.pfn();
        for (i, entry) in t.entries.iter_mut().enumerate() {
            let mut child = Pte::new(base.offset(i as u64), huge_pte.writable(), false);
            child.0 |= huge_pte.0
                & (crate::pte::BIT_ACCESSED | crate::pte::BIT_DIRTY | crate::pte::BIT_POISON);
            *entry = child;
        }
        t.present = FANOUT as u16;
        *slot = Slot::Table(t);
        self.mapped_huge -= 1;
        self.mapped_small += FANOUT as u64;
        self.generation += 1;
        Ok(())
    }

    /// Collapses 512 4KB PTEs back into one huge leaf (the inverse of
    /// [`split_huge`](Self::split_huge); Linux's khugepaged-style collapse).
    ///
    /// Requires all 512 children to be present, physically contiguous
    /// starting at a huge-aligned frame, and to agree on writability and
    /// poison state. Accessed/Dirty bits are OR-folded into the huge PTE.
    ///
    /// # Errors
    ///
    /// [`MapError::Misaligned`], [`MapError::NotMapped`], or
    /// [`MapError::WrongKind`] when the children cannot form a huge page.
    pub fn collapse_huge(&mut self, vpn: Vpn) -> Result<(), MapError> {
        if !vpn.is_huge_aligned() {
            return Err(MapError::Misaligned { vpn });
        }
        let Some(slot) = self.slot_mut(vpn.0 >> 9) else {
            return Err(MapError::NotMapped { vpn });
        };
        let t = match slot {
            Slot::Empty => return Err(MapError::NotMapped { vpn }),
            Slot::Huge(_) => {
                return Err(MapError::WrongKind {
                    vpn,
                    reason: "already a huge page",
                })
            }
            Slot::Table(t) => t,
        };
        if t.present as usize != FANOUT {
            return Err(MapError::WrongKind {
                vpn,
                reason: "not all 512 children present",
            });
        }
        let first = t.entries[0];
        if !first.pfn().is_huge_aligned() {
            return Err(MapError::WrongKind {
                vpn,
                reason: "base frame not huge-aligned",
            });
        }
        let mut acc = first.0 & (crate::pte::BIT_ACCESSED | crate::pte::BIT_DIRTY);
        for (i, child) in t.entries.iter().enumerate() {
            if child.pfn() != first.pfn().offset(i as u64) {
                return Err(MapError::WrongKind {
                    vpn,
                    reason: "frames not contiguous",
                });
            }
            if child.writable() != first.writable() || child.poisoned() != first.poisoned() {
                return Err(MapError::WrongKind {
                    vpn,
                    reason: "children flags disagree",
                });
            }
            acc |= child.0 & (crate::pte::BIT_ACCESSED | crate::pte::BIT_DIRTY);
        }
        let mut huge = Pte::new(first.pfn(), first.writable(), true);
        huge.0 |= acc;
        if first.poisoned() {
            huge.poison();
        }
        *slot = Slot::Huge(huge);
        self.mapped_small -= FANOUT as u64;
        self.mapped_huge += 1;
        self.generation += 1;
        Ok(())
    }

    /// Visits every leaf PTE in `[start, start + n_pages)` (4KB page units),
    /// passing `(base_vpn, size, &mut pte)`.
    ///
    /// Huge leaves are visited once at their base. Unmapped holes are
    /// skipped.
    pub fn for_each_leaf_mut(
        &mut self,
        start: Vpn,
        n_pages: u64,
        mut f: impl FnMut(Vpn, PageSize, &mut Pte),
    ) {
        if n_pages == 0 || self.slots.is_empty() {
            return;
        }
        let end = start.0 + n_pages;
        let first_key = (start.0 >> 9).max(self.slot_base);
        let last_key = ((end - 1) >> 9).min(self.slot_base + self.slots.len() as u64 - 1);
        let mut key = first_key;
        while key <= last_key {
            let base = key << 9;
            match &mut self.slots[(key - self.slot_base) as usize] {
                Slot::Empty => {}
                Slot::Huge(pte) => f(Vpn(base), PageSize::Huge2M, pte),
                Slot::Table(t) => {
                    let lo = start.0.saturating_sub(base).min(FANOUT as u64) as usize;
                    let hi = (end - base).min(FANOUT as u64) as usize;
                    for (i, pte) in t.entries[lo..hi].iter_mut().enumerate() {
                        if pte.present() {
                            f(Vpn(base + (lo + i) as u64), PageSize::Small4K, pte);
                        }
                    }
                }
            }
            key += 1;
        }
    }

    /// Shared-borrow variant of [`for_each_leaf_mut`](Self::for_each_leaf_mut):
    /// visits every leaf PTE in `[start, start + n_pages)` read-only, passing
    /// `(base_vpn, size, &pte)`.
    ///
    /// Huge leaves are visited once at their base; unmapped holes are
    /// skipped. Because `&self` suffices, concurrent walkers over disjoint
    /// (or even overlapping) ranges can run from scoped threads — the basis
    /// of the off-thread scan pipeline (`thermo_sim::MemoryView`), whose
    /// shards all read this same flat leaf array.
    pub fn for_each_leaf(&self, start: Vpn, n_pages: u64, mut f: impl FnMut(Vpn, PageSize, &Pte)) {
        if n_pages == 0 || self.slots.is_empty() {
            return;
        }
        let end = start.0 + n_pages;
        let first_key = (start.0 >> 9).max(self.slot_base);
        let last_key = ((end - 1) >> 9).min(self.slot_base + self.slots.len() as u64 - 1);
        let mut key = first_key;
        while key <= last_key {
            let base = key << 9;
            match &self.slots[(key - self.slot_base) as usize] {
                Slot::Empty => {}
                Slot::Huge(pte) => f(Vpn(base), PageSize::Huge2M, pte),
                Slot::Table(t) => {
                    let lo = start.0.saturating_sub(base).min(FANOUT as u64) as usize;
                    let hi = (end - base).min(FANOUT as u64) as usize;
                    for (i, pte) in t.entries[lo..hi].iter().enumerate() {
                        if pte.present() {
                            f(Vpn(base + (lo + i) as u64), PageSize::Small4K, pte);
                        }
                    }
                }
            }
            key += 1;
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use thermo_mem::HUGE_PAGE_BYTES;

    const HUGE_VPN: Vpn = Vpn(512 * 3); // arbitrary aligned base

    #[test]
    fn map_lookup_unmap_small() {
        let mut pt = PageTable::new();
        pt.map_small(Vpn(42), Pfn(7), true).unwrap();
        let m = pt.lookup(Vpn(42)).unwrap();
        assert_eq!(m.size, PageSize::Small4K);
        assert_eq!(m.pte.pfn(), Pfn(7));
        assert_eq!(m.frame_for(Vpn(42)), Pfn(7));
        assert_eq!(pt.mapped_small_pages(), 1);
        let un = pt.unmap(Vpn(42)).unwrap();
        assert_eq!(un.pte.pfn(), Pfn(7));
        assert!(pt.lookup(Vpn(42)).is_none());
        assert_eq!(pt.mapped_small_pages(), 0);
    }

    #[test]
    fn map_lookup_huge_with_interior_frame() {
        let mut pt = PageTable::new();
        pt.map_huge(HUGE_VPN, Pfn(1024), true).unwrap();
        // Any interior page resolves to the offset frame.
        let probe = Vpn(HUGE_VPN.0 + 37);
        let m = pt.lookup(probe).unwrap();
        assert_eq!(m.size, PageSize::Huge2M);
        assert_eq!(m.base_vpn, HUGE_VPN);
        assert_eq!(m.frame_for(probe), Pfn(1024 + 37));
        assert_eq!(pt.mapped_bytes(), HUGE_PAGE_BYTES as u64);
    }

    #[test]
    fn overlapping_maps_rejected() {
        let mut pt = PageTable::new();
        pt.map_huge(HUGE_VPN, Pfn(1024), true).unwrap();
        assert!(matches!(
            pt.map_small(Vpn(HUGE_VPN.0 + 5), Pfn(9), true),
            Err(MapError::AlreadyMapped { .. })
        ));
        let mut pt = PageTable::new();
        pt.map_small(Vpn(HUGE_VPN.0 + 5), Pfn(9), true).unwrap();
        assert!(matches!(
            pt.map_huge(HUGE_VPN, Pfn(1024), true),
            Err(MapError::AlreadyMapped { .. })
        ));
    }

    #[test]
    fn misaligned_huge_rejected() {
        let mut pt = PageTable::new();
        assert!(matches!(
            pt.map_huge(Vpn(3), Pfn(1024), true),
            Err(MapError::Misaligned { .. })
        ));
        assert!(matches!(
            pt.map_huge(HUGE_VPN, Pfn(1000), true),
            Err(MapError::Misaligned { .. })
        ));
    }

    #[test]
    fn split_preserves_translation_and_flags() {
        let mut pt = PageTable::new();
        pt.map_huge(HUGE_VPN, Pfn(2048), true).unwrap();
        pt.with_pte_mut(HUGE_VPN, |p| p.set_accessed());
        pt.split_huge(HUGE_VPN).unwrap();
        assert_eq!(pt.mapped_small_pages(), 512);
        assert_eq!(pt.mapped_huge_pages(), 0);
        for i in [0u64, 1, 100, 511] {
            let m = pt.lookup(Vpn(HUGE_VPN.0 + i)).unwrap();
            assert_eq!(m.size, PageSize::Small4K);
            assert_eq!(m.pte.pfn(), Pfn(2048 + i));
            assert!(m.pte.accessed(), "A bit must propagate to children");
            assert!(m.pte.writable());
        }
    }

    #[test]
    fn collapse_restores_huge_and_folds_bits() {
        let mut pt = PageTable::new();
        pt.map_huge(HUGE_VPN, Pfn(2048), true).unwrap();
        pt.split_huge(HUGE_VPN).unwrap();
        // Touch one child's A bit and another's D bit.
        pt.with_pte_mut(Vpn(HUGE_VPN.0 + 3), |p| p.set_accessed());
        pt.with_pte_mut(Vpn(HUGE_VPN.0 + 9), |p| p.set_dirty());
        pt.collapse_huge(HUGE_VPN).unwrap();
        let m = pt.lookup(Vpn(HUGE_VPN.0 + 100)).unwrap();
        assert_eq!(m.size, PageSize::Huge2M);
        assert_eq!(m.pte.pfn(), Pfn(2048));
        assert!(m.pte.accessed() && m.pte.dirty(), "A/D bits must OR-fold");
    }

    #[test]
    fn collapse_rejects_non_contiguous() {
        let mut pt = PageTable::new();
        pt.map_huge(HUGE_VPN, Pfn(2048), true).unwrap();
        pt.split_huge(HUGE_VPN).unwrap();
        // Remap one child to a different frame.
        pt.unmap(Vpn(HUGE_VPN.0 + 5)).unwrap();
        pt.map_small(Vpn(HUGE_VPN.0 + 5), Pfn(9999), true).unwrap();
        assert!(matches!(
            pt.collapse_huge(HUGE_VPN),
            Err(MapError::WrongKind {
                reason: "frames not contiguous",
                ..
            })
        ));
    }

    #[test]
    fn collapse_rejects_holes() {
        let mut pt = PageTable::new();
        pt.map_huge(HUGE_VPN, Pfn(2048), true).unwrap();
        pt.split_huge(HUGE_VPN).unwrap();
        pt.unmap(Vpn(HUGE_VPN.0 + 5)).unwrap();
        assert!(matches!(
            pt.collapse_huge(HUGE_VPN),
            Err(MapError::WrongKind { .. })
        ));
    }

    #[test]
    fn split_of_split_or_missing_fails() {
        let mut pt = PageTable::new();
        assert!(matches!(
            pt.split_huge(HUGE_VPN),
            Err(MapError::NotMapped { .. })
        ));
        pt.map_huge(HUGE_VPN, Pfn(2048), true).unwrap();
        pt.split_huge(HUGE_VPN).unwrap();
        assert!(matches!(
            pt.split_huge(HUGE_VPN),
            Err(MapError::WrongKind { .. })
        ));
    }

    #[test]
    fn split_propagates_poison() {
        let mut pt = PageTable::new();
        pt.map_huge(HUGE_VPN, Pfn(2048), true).unwrap();
        pt.with_pte_mut(HUGE_VPN, |p| p.poison());
        pt.split_huge(HUGE_VPN).unwrap();
        assert!(pt.lookup(Vpn(HUGE_VPN.0 + 7)).unwrap().pte.poisoned());
        pt.collapse_huge(HUGE_VPN).unwrap();
        assert!(pt.lookup(HUGE_VPN).unwrap().pte.poisoned());
    }

    #[test]
    fn unmap_huge_by_interior_page() {
        let mut pt = PageTable::new();
        pt.map_huge(HUGE_VPN, Pfn(2048), true).unwrap();
        let m = pt.unmap(Vpn(HUGE_VPN.0 + 300)).unwrap();
        assert_eq!(m.size, PageSize::Huge2M);
        assert_eq!(m.base_vpn, HUGE_VPN);
        assert!(pt.lookup(HUGE_VPN).is_none());
    }

    #[test]
    fn for_each_leaf_visits_mixed_mappings() {
        let mut pt = PageTable::new();
        pt.map_huge(Vpn(0), Pfn(0), true).unwrap();
        pt.map_small(Vpn(512 + 4), Pfn(5000), true).unwrap();
        pt.map_small(Vpn(512 + 6), Pfn(5001), true).unwrap();
        pt.map_huge(Vpn(1024), Pfn(1024), true).unwrap();
        let mut seen = Vec::new();
        pt.for_each_leaf_mut(Vpn(0), 1536, |vpn, size, _| seen.push((vpn, size)));
        assert_eq!(
            seen,
            vec![
                (Vpn(0), PageSize::Huge2M),
                (Vpn(516), PageSize::Small4K),
                (Vpn(518), PageSize::Small4K),
                (Vpn(1024), PageSize::Huge2M),
            ]
        );
    }

    #[test]
    fn shared_walk_matches_mut_walk() {
        let mut pt = PageTable::new();
        pt.map_huge(Vpn(0), Pfn(0), true).unwrap();
        pt.map_small(Vpn(516), Pfn(516), true).unwrap();
        pt.map_small(Vpn(518), Pfn(518), false).unwrap();
        pt.map_huge(Vpn(1024), Pfn(1024), true).unwrap();
        let mut via_mut = Vec::new();
        pt.for_each_leaf_mut(Vpn(0), 1536, |vpn, size, pte| {
            via_mut.push((vpn, size, *pte))
        });
        let mut via_shared = Vec::new();
        pt.for_each_leaf(Vpn(0), 1536, |vpn, size, pte| {
            via_shared.push((vpn, size, *pte))
        });
        assert_eq!(via_mut, via_shared);
    }

    #[test]
    fn for_each_leaf_respects_range_bounds() {
        let mut pt = PageTable::new();
        for i in 0..10 {
            pt.map_small(Vpn(i), Pfn(100 + i), true).unwrap();
        }
        let mut seen = Vec::new();
        pt.for_each_leaf_mut(Vpn(2), 5, |vpn, _, _| seen.push(vpn.0));
        assert_eq!(seen, vec![2, 3, 4, 5, 6]);
    }

    #[test]
    fn for_each_leaf_mut_can_mutate() {
        let mut pt = PageTable::new();
        pt.map_small(Vpn(1), Pfn(1), true).unwrap();
        pt.for_each_leaf_mut(Vpn(0), 512, |_, _, pte| pte.set_accessed());
        assert!(pt.lookup(Vpn(1)).unwrap().pte.accessed());
    }

    #[test]
    fn for_each_leaf_skips_huge_gaps_across_table_levels() {
        // Pages in different PML4/PDPT/PD subtrees with vast holes between
        // them; the range walk must skip the holes without visiting them.
        let mut pt = PageTable::new();
        let far_apart = [
            Vpn(0),               // PML4 slot 0
            Vpn(1 << 18),         // next PDPT slot
            Vpn(1 << 27),         // next PML4 slot
            Vpn((1 << 27) + 512), // same PML4, next PD entry
        ];
        for (i, vpn) in far_apart.iter().enumerate() {
            pt.map_small(*vpn, Pfn(10 + i as u64), true).unwrap();
        }
        let mut seen = Vec::new();
        pt.for_each_leaf_mut(Vpn(0), (1 << 27) + 1024, |vpn, _, _| seen.push(vpn));
        assert_eq!(seen, far_apart.to_vec());
    }

    #[test]
    fn for_each_leaf_starting_mid_huge_page_visits_it_once() {
        let mut pt = PageTable::new();
        pt.map_huge(Vpn(0), Pfn(0), true).unwrap();
        let mut seen = Vec::new();
        // Start in the middle of the huge page.
        pt.for_each_leaf_mut(Vpn(100), 1000, |vpn, size, _| seen.push((vpn, size)));
        assert_eq!(seen, vec![(Vpn(0), PageSize::Huge2M)]);
    }

    #[test]
    fn with_pte_mut_none_for_unmapped() {
        let mut pt = PageTable::new();
        assert_eq!(pt.with_pte_mut(Vpn(9), |_| ()), None);
    }

    #[test]
    fn unmap_missing_errors() {
        let mut pt = PageTable::new();
        assert!(matches!(pt.unmap(Vpn(1)), Err(MapError::NotMapped { .. })));
    }

    #[test]
    fn touch_sets_flags_and_returns_pre_update_copy() {
        let mut pt = PageTable::new();
        pt.map_small(Vpn(42), Pfn(7), true).unwrap();
        let m = pt.touch(Vpn(42), false).unwrap();
        assert!(!m.pte.accessed(), "copy must predate the A-bit set");
        assert!(pt.lookup(Vpn(42)).unwrap().pte.accessed());
        assert!(!pt.lookup(Vpn(42)).unwrap().pte.dirty());
        let m2 = pt.touch(Vpn(42), true).unwrap();
        assert!(m2.pte.accessed(), "second copy sees the first touch");
        assert!(!m2.pte.dirty(), "copy must predate the D-bit set");
        assert!(pt.lookup(Vpn(42)).unwrap().pte.dirty());

        // Huge leaf: any interior page touches the single huge PTE.
        pt.map_huge(HUGE_VPN, Pfn(1024), true).unwrap();
        let probe = Vpn(HUGE_VPN.0 + 99);
        let m3 = pt.touch(probe, true).unwrap();
        assert_eq!(m3.base_vpn, HUGE_VPN);
        assert_eq!(m3.frame_for(probe), Pfn(1024 + 99));
        let after = pt.lookup(probe).unwrap().pte;
        assert!(after.accessed() && after.dirty());

        assert!(pt.touch(Vpn(9999), false).is_none());
    }

    #[test]
    fn touch_matches_lookup_then_with_pte_mut() {
        // `touch` must be observationally identical to the two-descent
        // sequence it replaces on the simulator walk path.
        let mut a = PageTable::new();
        let mut b = PageTable::new();
        for pt in [&mut a, &mut b] {
            pt.map_small(Vpn(5), Pfn(1), true).unwrap();
            pt.map_huge(HUGE_VPN, Pfn(1024), false).unwrap();
        }
        for (vpn, write) in [
            (Vpn(5), false),
            (Vpn(5), true),
            (Vpn(HUGE_VPN.0 + 3), false),
            (Vpn(HUGE_VPN.0 + 4), true),
        ] {
            let fused = a.touch(vpn, write);
            let looked = b.lookup(vpn);
            b.with_pte_mut(vpn, |pte| {
                pte.set_accessed();
                if write {
                    pte.set_dirty();
                }
            });
            assert_eq!(fused, looked);
            assert_eq!(a.lookup(vpn), b.lookup(vpn));
        }
    }

    #[test]
    fn generation_bumps_on_structural_ops_only() {
        let mut pt = PageTable::new();
        let g0 = pt.generation();
        pt.map_small(Vpn(1), Pfn(1), true).unwrap();
        let g1 = pt.generation();
        assert!(g1 > g0, "map_small is structural");
        pt.map_huge(HUGE_VPN, Pfn(1024), true).unwrap();
        let g2 = pt.generation();
        assert!(g2 > g1, "map_huge is structural");
        pt.split_huge(HUGE_VPN).unwrap();
        let g3 = pt.generation();
        assert!(g3 > g2, "split is structural");
        pt.collapse_huge(HUGE_VPN).unwrap();
        let g4 = pt.generation();
        assert!(g4 > g3, "collapse is structural");
        pt.unmap(Vpn(1)).unwrap();
        let g5 = pt.generation();
        assert!(g5 > g4, "unmap is structural");

        // Flag updates do not move the stamp: translations are unchanged.
        pt.touch(Vpn(HUGE_VPN.0), true).unwrap();
        pt.with_pte_mut(Vpn(HUGE_VPN.0), |pte| pte.poison());
        assert_eq!(pt.generation(), g5);

        // Failed structural ops leave it alone too.
        assert!(pt.map_huge(HUGE_VPN, Pfn(2048), true).is_err());
        assert_eq!(pt.generation(), g5);
    }

    #[test]
    fn sparse_low_then_high_mappings_resolve() {
        // Exercise the dense-window growth at both ends.
        let mut pt = PageTable::new();
        pt.map_small(Vpn(512 * 100), Pfn(1), true).unwrap();
        pt.map_small(Vpn(512 * 200 + 7), Pfn(2), true).unwrap(); // grow high
        pt.map_small(Vpn(512 * 2 + 3), Pfn(3), true).unwrap(); // grow low
        assert_eq!(pt.lookup(Vpn(512 * 100)).unwrap().pte.pfn(), Pfn(1));
        assert_eq!(pt.lookup(Vpn(512 * 200 + 7)).unwrap().pte.pfn(), Pfn(2));
        assert_eq!(pt.lookup(Vpn(512 * 2 + 3)).unwrap().pte.pfn(), Pfn(3));
        assert!(pt.lookup(Vpn(512 * 50)).is_none(), "hole stays unmapped");
        assert!(pt.lookup(Vpn(0)).is_none(), "below the window");
        assert!(pt.lookup(Vpn(512 * 300)).is_none(), "above the window");
        let mut seen = Vec::new();
        pt.for_each_leaf(Vpn(0), 512 * 400, |vpn, _, _| seen.push(vpn));
        assert_eq!(
            seen,
            vec![Vpn(512 * 2 + 3), Vpn(512 * 100), Vpn(512 * 200 + 7)],
            "ascending order across the grown window"
        );
    }

    #[test]
    fn map_error_display() {
        assert!(format!("{}", MapError::AlreadyMapped { vpn: Vpn(1) }).contains("already"));
        assert!(format!("{}", MapError::NotMapped { vpn: Vpn(1) }).contains("not mapped"));
        assert!(format!("{}", MapError::Misaligned { vpn: Vpn(1) }).contains("aligned"));
        assert!(format!(
            "{}",
            MapError::WrongKind {
                vpn: Vpn(1),
                reason: "x"
            }
        )
        .contains("x"));
    }
}

//! Virtual-memory substrate for the Thermostat (ASPLOS'17) reproduction.
//!
//! Thermostat is a page-management policy and lives entirely in the
//! machinery this crate models:
//!
//! * [`pte`] — x86-64 page-table entries, including the hardware Accessed /
//!   Dirty bits and the reserved **bit 51** that BadgerTrap poisons to
//!   intercept TLB misses (paper §3.3).
//! * [`pagetable`] — a 4-level radix page table with first-class huge-page
//!   leaves and the split/collapse transformations Thermostat's sampling
//!   performs (§3.2).
//! * [`tlb`] — a two-level set-associative TLB with VPID tags, matching the
//!   paper's hardware (§4.1) and KVM discussion (§4.2).
//! * [`walker`] — native and nested (two-dimensional) page-walk cost models
//!   behind the paper's Table 1 huge-page argument (§2.2).
//! * [`scan`] — Accessed-bit scan/clear primitives shared by the kstaled
//!   baseline and Thermostat's prefilter.
//!
//! # Example
//!
//! ```
//! use thermo_vm::{PageTable, Tlb, Vpid};
//! use thermo_mem::{Vpn, Pfn, PageSize};
//!
//! # fn main() -> Result<(), thermo_vm::MapError> {
//! let mut pt = PageTable::new();
//! pt.map_huge(Vpn(0), Pfn(0), true)?;
//! // Thermostat samples this page: split, monitor 4KB children, collapse.
//! pt.split_huge(Vpn(0))?;
//! pt.with_pte_mut(Vpn(7), |pte| pte.poison());
//! assert!(pt.lookup(Vpn(7)).unwrap().pte.poisoned());
//! pt.with_pte_mut(Vpn(7), |pte| pte.unpoison());
//! pt.collapse_huge(Vpn(0))?;
//! assert_eq!(pt.mapped_huge_pages(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
pub mod pagetable;
pub mod pte;
pub mod scan;
pub mod tlb;
pub mod walker;

pub use pagetable::{MapError, Mapping, PageTable};
pub use pte::Pte;
pub use scan::{clear_accessed_set, read_accessed, read_leaves, scan_and_clear, ScanCost, ScanHit};
pub use tlb::{Tlb, TlbConfig, TlbGeometry, TlbOutcome, TlbStats, Vpid};
pub use walker::{PagingMode, WalkConfig, WalkSteps};

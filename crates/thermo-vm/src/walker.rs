//! Page-walk cost model, native and nested (two-dimensional).
//!
//! Paper §2.2: a native 4KB walk needs up to 4 memory accesses; under
//! virtualization with EPT/NPT the two-dimensional walk costs up to **24**
//! accesses for 4KB pages, reduced to **15** when both guest and host map
//! 2MB huge pages. This asymmetry is the entire source of Table 1's
//! huge-page throughput gains, so the model keeps the step counts explicit
//! and lets the per-step cost blend page-walk-cache hits with real memory
//! accesses ("2MB huge pages ... improve the cacheability of intermediate
//! levels of the page tables").

use thermo_mem::PageSize;

/// Paging mode of the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PagingMode {
    /// Bare-metal one-dimensional walks.
    Native,
    /// KVM-style nested paging (guest walk × host walk).
    Nested,
}

/// Maximum page-walk step counts (memory accesses), per §2.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkSteps {
    /// Native, 4KB leaf: 4-level walk.
    pub native_small: u32,
    /// Native, 2MB leaf: walk stops at the PD.
    pub native_huge: u32,
    /// Nested, 4KB in guest and host: (4+1) × (4+1) - 1 = 24.
    pub nested_small: u32,
    /// Nested, 2MB in guest and host: 15.
    pub nested_huge: u32,
}

impl Default for WalkSteps {
    fn default() -> Self {
        Self {
            native_small: 4,
            native_huge: 3,
            nested_small: 24,
            nested_huge: 15,
        }
    }
}

/// Cost model for page walks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkConfig {
    /// Paging mode.
    pub mode: PagingMode,
    /// Step counts (defaults follow the paper).
    pub steps: WalkSteps,
    /// Fraction of steps served by the page-walk caches / data cache
    /// (upper levels of the radix tree are hot).
    pub pwc_hit_fraction: f64,
    /// Cost of a cached step, ns.
    pub cached_step_ns: u64,
    /// Cost of a step that goes to DRAM, ns.
    pub memory_step_ns: u64,
}

impl WalkConfig {
    /// Native paging with default costs.
    pub fn native() -> Self {
        Self {
            mode: PagingMode::Native,
            steps: WalkSteps::default(),
            pwc_hit_fraction: 0.9,
            cached_step_ns: 4,
            memory_step_ns: 80,
        }
    }

    /// Nested paging (the paper's KVM environment) with default costs.
    pub fn nested() -> Self {
        Self {
            mode: PagingMode::Nested,
            ..Self::native()
        }
    }

    /// Number of steps for a walk resolving a leaf of `size`.
    pub fn steps_for(&self, size: PageSize) -> u32 {
        match (self.mode, size) {
            (PagingMode::Native, PageSize::Small4K) => self.steps.native_small,
            (PagingMode::Native, PageSize::Huge2M) => self.steps.native_huge,
            (PagingMode::Nested, PageSize::Small4K) => self.steps.nested_small,
            (PagingMode::Nested, PageSize::Huge2M) => self.steps.nested_huge,
        }
    }

    /// Latency of one full walk resolving a leaf of `size`, in ns.
    ///
    /// Each step costs the PWC-blended average
    /// `pwc_hit_fraction * cached + (1 - pwc_hit_fraction) * memory`.
    pub fn walk_cost_ns(&self, size: PageSize) -> u64 {
        let per_step = self.pwc_hit_fraction * self.cached_step_ns as f64
            + (1.0 - self.pwc_hit_fraction) * self.memory_step_ns as f64;
        (self.steps_for(size) as f64 * per_step).round() as u64
    }
}

impl Default for WalkConfig {
    fn default() -> Self {
        Self::nested()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_step_counts_match_paper() {
        let s = WalkSteps::default();
        assert_eq!(s.native_small, 4);
        assert_eq!(s.native_huge, 3);
        assert_eq!(s.nested_small, 24);
        assert_eq!(s.nested_huge, 15);
    }

    #[test]
    fn nested_walks_cost_more_than_native() {
        let native = WalkConfig::native();
        let nested = WalkConfig::nested();
        for size in [PageSize::Small4K, PageSize::Huge2M] {
            assert!(nested.walk_cost_ns(size) > native.walk_cost_ns(size));
        }
    }

    #[test]
    fn huge_walks_cost_less_than_small() {
        for cfg in [WalkConfig::native(), WalkConfig::nested()] {
            assert!(cfg.walk_cost_ns(PageSize::Huge2M) < cfg.walk_cost_ns(PageSize::Small4K));
        }
    }

    #[test]
    fn huge_page_benefit_is_larger_under_virtualization() {
        // The §2.2 argument: the 4KB -> 2MB walk-cost saving is larger in
        // nested mode (24 -> 15) than native (4 -> 3).
        let native = WalkConfig::native();
        let nested = WalkConfig::nested();
        let native_saving =
            native.walk_cost_ns(PageSize::Small4K) - native.walk_cost_ns(PageSize::Huge2M);
        let nested_saving =
            nested.walk_cost_ns(PageSize::Small4K) - nested.walk_cost_ns(PageSize::Huge2M);
        assert!(nested_saving > native_saving);
    }

    #[test]
    fn pwc_fraction_scales_cost() {
        let mut cfg = WalkConfig::nested();
        cfg.pwc_hit_fraction = 0.0;
        let all_mem = cfg.walk_cost_ns(PageSize::Small4K);
        assert_eq!(all_mem, 24 * 80);
        cfg.pwc_hit_fraction = 1.0;
        let all_cached = cfg.walk_cost_ns(PageSize::Small4K);
        assert_eq!(all_cached, 24 * 4);
    }
}

thermo_util::json_enum!(PagingMode { Native, Nested });
thermo_util::json_struct!(WalkSteps {
    native_small,
    native_huge,
    nested_small,
    nested_huge
});
thermo_util::json_struct!(WalkConfig {
    mode,
    steps,
    pwc_hit_fraction,
    cached_step_ns,
    memory_step_ns
});

//! Page-table entries with the x86-64 bit layout Thermostat relies on.
//!
//! Thermostat's access-counting mechanism (paper §3.3) is built entirely out
//! of PTE bits: the hardware-maintained **Accessed** bit (bit 5) for the
//! cheap prefilter, and a software-defined **reserved bit (bit 51)** used to
//! *poison* a translation so that the next TLB miss to the page traps into
//! the BadgerTrap-style fault handler. We reproduce the exact bit positions
//! so the mechanism reads like the kernel code it models.

use std::fmt;
use thermo_mem::Pfn;

/// Bit 0: translation is valid.
pub const BIT_PRESENT: u64 = 1 << 0;
/// Bit 1: page is writable.
pub const BIT_WRITABLE: u64 = 1 << 1;
/// Bit 5: set by the page walker on every walk that touches this entry.
pub const BIT_ACCESSED: u64 = 1 << 5;
/// Bit 6: set by the page walker on write accesses.
pub const BIT_DIRTY: u64 = 1 << 6;
/// Bit 7 (PS): entry maps a 2MB huge page (valid at the PD level).
pub const BIT_HUGE: u64 = 1 << 7;
/// Bit 51: reserved bit used by BadgerTrap to poison the PTE (paper §3.3:
/// "Thermostat poisons its PTE by setting a reserved bit (bit 51)").
pub const BIT_POISON: u64 = 1 << 51;

const PFN_SHIFT: u32 = 12;
/// PFN field: bits 12..48 (36 bits), safely below the bit-51 poison bit.
const PFN_MASK: u64 = 0x0000_ffff_ffff_f000;

/// A 64-bit page-table entry.
///
/// The PFN field occupies bits 12..48 (36 bits, enough for any simulated
/// memory size); flag bits follow the x86-64 layout above.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Pte(pub u64);

impl Pte {
    /// An empty (not-present) entry.
    pub const fn empty() -> Self {
        Pte(0)
    }

    /// Creates a present leaf entry mapping `pfn`.
    pub fn new(pfn: Pfn, writable: bool, huge: bool) -> Self {
        let mut bits = BIT_PRESENT | (pfn.0 << PFN_SHIFT);
        if writable {
            bits |= BIT_WRITABLE;
        }
        if huge {
            bits |= BIT_HUGE;
        }
        debug_assert!(pfn.0 << PFN_SHIFT <= PFN_MASK, "pfn too large for PTE");
        Pte(bits)
    }

    /// True if the entry is valid.
    pub const fn present(self) -> bool {
        self.0 & BIT_PRESENT != 0
    }

    /// True if writable.
    pub const fn writable(self) -> bool {
        self.0 & BIT_WRITABLE != 0
    }

    /// True if the hardware Accessed bit is set.
    pub const fn accessed(self) -> bool {
        self.0 & BIT_ACCESSED != 0
    }

    /// True if the Dirty bit is set.
    pub const fn dirty(self) -> bool {
        self.0 & BIT_DIRTY != 0
    }

    /// True if this is a huge-page (PS) leaf.
    pub const fn huge(self) -> bool {
        self.0 & BIT_HUGE != 0
    }

    /// True if the reserved poison bit (bit 51) is set.
    pub const fn poisoned(self) -> bool {
        self.0 & BIT_POISON != 0
    }

    /// Physical frame number this entry maps.
    pub const fn pfn(self) -> Pfn {
        Pfn((self.0 & PFN_MASK) >> PFN_SHIFT)
    }

    /// Replaces the mapped frame, preserving all flag bits.
    pub fn set_pfn(&mut self, pfn: Pfn) {
        self.0 = (self.0 & !PFN_MASK) | (pfn.0 << PFN_SHIFT);
    }

    /// Sets the Accessed bit (done by the walker on a successful walk).
    pub fn set_accessed(&mut self) {
        self.0 |= BIT_ACCESSED;
    }

    /// Clears the Accessed bit (done by scanners such as kstaled; the
    /// corresponding TLB entry must be flushed for the bit to be re-set on
    /// the next access — the paper's §2.1 overhead argument).
    pub fn clear_accessed(&mut self) {
        self.0 &= !BIT_ACCESSED;
    }

    /// Sets the Dirty bit.
    pub fn set_dirty(&mut self) {
        self.0 |= BIT_DIRTY;
    }

    /// Clears the Dirty bit.
    pub fn clear_dirty(&mut self) {
        self.0 &= !BIT_DIRTY;
    }

    /// Poisons the entry (sets reserved bit 51). A poisoned entry still
    /// carries a valid translation; the hardware walk "fails" with a
    /// reserved-bit fault, which is what BadgerTrap intercepts.
    pub fn poison(&mut self) {
        self.0 |= BIT_POISON;
    }

    /// Removes the poison bit.
    pub fn unpoison(&mut self) {
        self.0 &= !BIT_POISON;
    }
}

impl fmt::Display for Pte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.present() {
            return write!(f, "pte(-)");
        }
        write!(
            f,
            "pte({}{}{}{}{} -> {})",
            if self.writable() { "W" } else { "r" },
            if self.accessed() { "A" } else { "-" },
            if self.dirty() { "D" } else { "-" },
            if self.huge() { "H" } else { "-" },
            if self.poisoned() { "P" } else { "-" },
            self.pfn(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sets_expected_bits() {
        let p = Pte::new(Pfn(0x1234), true, false);
        assert!(p.present());
        assert!(p.writable());
        assert!(!p.huge());
        assert!(!p.accessed());
        assert!(!p.poisoned());
        assert_eq!(p.pfn(), Pfn(0x1234));
    }

    #[test]
    fn huge_flag() {
        let p = Pte::new(Pfn(512), false, true);
        assert!(p.huge());
        assert!(!p.writable());
    }

    #[test]
    fn accessed_dirty_roundtrip() {
        let mut p = Pte::new(Pfn(1), true, false);
        p.set_accessed();
        p.set_dirty();
        assert!(p.accessed() && p.dirty());
        p.clear_accessed();
        assert!(!p.accessed() && p.dirty());
        p.clear_dirty();
        assert!(!p.dirty());
    }

    #[test]
    fn poison_does_not_disturb_translation() {
        let mut p = Pte::new(Pfn(0xabcd), true, true);
        p.set_accessed();
        p.poison();
        assert!(p.poisoned());
        assert!(p.present());
        assert_eq!(p.pfn(), Pfn(0xabcd));
        assert!(p.accessed());
        p.unpoison();
        assert!(!p.poisoned());
        assert_eq!(p.pfn(), Pfn(0xabcd));
    }

    #[test]
    fn poison_bit_is_bit_51() {
        let mut p = Pte::empty();
        p.poison();
        assert_eq!(p.0, 1u64 << 51);
    }

    #[test]
    fn set_pfn_preserves_flags() {
        let mut p = Pte::new(Pfn(7), true, false);
        p.set_accessed();
        p.poison();
        p.set_pfn(Pfn(99));
        assert_eq!(p.pfn(), Pfn(99));
        assert!(p.writable() && p.accessed() && p.poisoned());
    }

    #[test]
    fn empty_is_not_present() {
        assert!(!Pte::empty().present());
        assert_eq!(format!("{}", Pte::empty()), "pte(-)");
    }

    #[test]
    fn display_shows_flags() {
        let mut p = Pte::new(Pfn(2), true, true);
        p.set_accessed();
        let s = format!("{p}");
        assert!(s.contains('W') && s.contains('A') && s.contains('H'));
    }
}

//! Deterministic parallel job execution for the Thermostat reproduction.
//!
//! The simulation stack is a pure function of its seed, and the golden
//! regression gate (`scripts/golden.sh`) depends on artifacts staying
//! byte-identical run over run. That rules out the usual "spray work onto
//! a thread pool and collect whatever finishes first" approach: scheduling
//! must never be observable in any output. This crate is the execution
//! substrate that makes parallelism safe under that constraint:
//!
//! * **Jobs are values.** A [`Job`] is consumed by [`Job::run`]; any
//!   `FnOnce(&JobCtx) -> T + Send` closure is a job via the blanket impl.
//! * **Stable job ids.** Jobs are numbered by their position in the batch
//!   (`0..n`); the id is the job's identity in errors and seeds.
//! * **Per-job seed derivation.** Each job receives
//!   `seed = derive_stream_seed(base_seed, job_id)`
//!   ([`thermo_util::rng::derive_stream_seed`], two splitmix64 rounds),
//!   giving every job a statistically disjoint random stream that depends
//!   only on `(base_seed, job_id)` — never on which worker ran it.
//! * **Work stealing for load balance.** Jobs are dealt onto per-worker
//!   deques up front; an idle worker steals from the back of a victim's
//!   deque (Chase-Lev style: the owner takes from the front, thieves from
//!   the back), so a batch with one slow job near the end still keeps
//!   every core busy. Stealing changes only *which worker* runs a job —
//!   never its id, its seed, or its place in the merged output.
//! * **Merge strictly in job-id order.** Every job writes its result into
//!   a slot indexed by its id; [`run_jobs`] returns the slots in id order
//!   regardless of completion order, worker count, steal interleaving, or
//!   OS scheduling, so downstream artifacts are byte-identical for
//!   `workers = 1` and `workers = 64`.
//! * **Steal-order fuzzing.** `THERMO_EXEC_FUZZ=<seed>` (see
//!   [`exec_fuzz_from_env`]) perturbs the initial job deal and each
//!   worker's steal-victim order from a seeded stream — the executor
//!   mirror of `THERMO_SCHED_FUZZ`. The golden gate runs several seeds and
//!   asserts byte-identity, turning "scheduling is unobservable" from an
//!   argument into a tested property (`tests/exec_determinism.rs`).
//! * **Panic capture.** A panicking job never takes down a worker: the
//!   panic is caught, the remaining jobs still run (workers drain
//!   cleanly), and the batch fails with the lowest panicking job id and
//!   its message ([`ExecError::JobPanicked`]).
//!
//! Worker threads are plain `std::thread` + atomics — no external
//! dependencies, per the workspace's hermetic-build policy. Wall-clock
//! time is intentionally absent from every type here: timing belongs to
//! the caller's logs, never to merged results (DESIGN.md §9).
//!
//! # Why duplicates are benign
//!
//! The deque ends race only on the last remaining item: the owner's
//! front-claim and a thief's back-claim can both report the same job id
//! (claims can duplicate, never skip — each end moves only towards the
//! other, and only after observing room). Ownership of the *job itself*
//! is arbitrated by the job slot, a `Mutex<Option<J>>` whose `take()` has
//! exactly one winner; the loser simply claims again. This keeps the
//! deques wait-free-ish without the full Chase-Lev top-tag protocol while
//! guaranteeing each job runs exactly once.
//!
//! # Example
//!
//! ```
//! use thermo_exec::{run_jobs, ExecConfig, JobCtx};
//!
//! let cfg = ExecConfig::new(4, 0xa5_2017);
//! let jobs: Vec<_> = (0..8u64)
//!     .map(|i| move |ctx: &JobCtx| (i, ctx.seed))
//!     .collect();
//! let out = run_jobs(jobs, &cfg).unwrap();
//! // Outputs are in job-id order no matter which worker ran what.
//! assert_eq!(out.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
//!            (0..8).collect::<Vec<_>>());
//! ```

#![warn(missing_docs)]

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

use thermo_util::rng::{derive_stream_seed, SeedableRng, SmallRng};

/// Per-job execution context handed to [`Job::run`].
///
/// Everything here is a pure function of the batch configuration and the
/// job's position — re-running the same batch reproduces the same
/// contexts, which is what keeps seeded jobs deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobCtx {
    /// This job's stable id: its index in the submitted batch.
    pub job_id: u64,
    /// This job's derived seed:
    /// `derive_stream_seed(base_seed, job_id)`. Jobs that need
    /// randomness must draw from a generator seeded with this value (or
    /// ignore it and carry their own fixed seed); they must never consult
    /// wall-clock time or thread identity.
    pub seed: u64,
}

/// A unit of work the pool can execute.
///
/// Implemented for any `FnOnce(&JobCtx) -> T + Send` closure, so most
/// call sites never name this trait. Implement it directly when a job
/// carries enough state that a named struct reads better.
pub trait Job: Send {
    /// The job's result type, sent back to the submitting thread.
    type Output: Send;

    /// Runs the job to completion, consuming it.
    fn run(self, ctx: &JobCtx) -> Self::Output;
}

impl<F, T> Job for F
where
    F: FnOnce(&JobCtx) -> T + Send,
    T: Send,
{
    type Output = T;

    fn run(self, ctx: &JobCtx) -> T {
        self(ctx)
    }
}

/// Batch execution configuration: worker count, the base seed every
/// per-job seed derives from, and the optional steal-order fuzz seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker threads (clamped to at least 1 and at most the job count).
    pub workers: usize,
    /// Base seed; job `i` runs with `derive_stream_seed(base_seed, i)`.
    pub base_seed: u64,
    /// Steal-order fuzz seed (`THERMO_EXEC_FUZZ`). `Some(s)` perturbs the
    /// initial job deal and every worker's steal-victim order from a
    /// stream seeded by `s`; results are byte-identical regardless — the
    /// knob exists so tests can *prove* that, not to change behavior.
    pub fuzz: Option<u64>,
}

impl ExecConfig {
    /// Explicit worker count and base seed, no fuzz.
    pub fn new(workers: usize, base_seed: u64) -> Self {
        Self {
            workers,
            base_seed,
            fuzz: None,
        }
    }

    /// Single-worker configuration (serial execution, same semantics).
    pub fn serial(base_seed: u64) -> Self {
        Self::new(1, base_seed)
    }

    /// Returns this configuration with the given steal-order fuzz seed.
    pub fn with_fuzz(self, fuzz: Option<u64>) -> Self {
        Self { fuzz, ..self }
    }

    /// Worker count and fuzz seed from the environment: `THERMO_JOBS`
    /// ([`jobs_from_env`]) and `THERMO_EXEC_FUZZ` ([`exec_fuzz_from_env`]).
    pub fn from_env(base_seed: u64) -> Self {
        Self::new(jobs_from_env(), base_seed).with_fuzz(exec_fuzz_from_env())
    }
}

/// Reads the worker count from `THERMO_JOBS` (any positive integer),
/// defaulting to [`std::thread::available_parallelism`] (1 if unknown).
pub fn jobs_from_env() -> usize {
    std::env::var("THERMO_JOBS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Reads the steal-order fuzz seed from `THERMO_EXEC_FUZZ` (any u64;
/// unset or unparsable means no fuzzing).
///
/// The executor mirror of `THERMO_SCHED_FUZZ`: the seed perturbs which
/// worker runs which job (initial deal and steal-victim order) without
/// touching job ids, per-job seeds, or merge order, so artifacts must
/// stay byte-identical for every value. `scripts/ci.sh` sweeps several
/// seeds against the golden registry to enforce exactly that.
pub fn exec_fuzz_from_env() -> Option<u64> {
    std::env::var("THERMO_EXEC_FUZZ")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
}

/// Reads the off-thread scan worker count from `THERMO_SCAN_JOBS`.
///
/// Unlike [`jobs_from_env`] (experiment-level fan-out), this knob gates the
/// *scan pipeline inside* a simulation: how many workers snapshot page-table
/// shards when a policy builds a `thermo_sim::MemoryView`. Unset, `0`, or
/// `1` all mean "inline on the app thread" — the conservative default,
/// since shard-parallel snapshots only pay off when spare cores exist.
/// Artifacts are byte-identical for every value (shard boundaries and merge
/// order are fixed, never worker-derived); see
/// `tests/scan_parallel_determinism.rs`.
pub fn scan_jobs_from_env() -> usize {
    std::env::var("THERMO_SCAN_JOBS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Why a batch failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A job panicked. All other jobs still ran to completion (workers
    /// drain every deque regardless); the batch reports the lowest
    /// panicking job id so reruns reproduce the same error.
    JobPanicked {
        /// Stable id of the (lowest) panicking job.
        job_id: u64,
        /// The panic payload, when it was a string (the common case).
        message: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::JobPanicked { job_id, message } => {
                write!(f, "job {job_id} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// One worker's deque of pre-dealt job ids.
///
/// The owner claims from the front (`head`), thieves from the back
/// (`tail`); each end moves only towards the other and only after
/// observing room, so claims can duplicate on the final item but never
/// skip one. Duplicates are resolved by the job slots (see the module
/// docs) — the deque itself never hands out storage, only ids.
struct StealDeque {
    /// Job ids in deal order; immutable once built.
    items: Vec<usize>,
    /// Owner end: index of the next front item.
    head: AtomicUsize,
    /// Thief end: one past the last back item.
    tail: AtomicUsize,
}

impl StealDeque {
    fn new(items: Vec<usize>) -> Self {
        let tail = items.len();
        Self {
            items,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(tail),
        }
    }

    /// Owner claim: the front item, oldest first.
    fn pop_front(&self) -> Option<usize> {
        let mut h = self.head.load(Ordering::Acquire);
        loop {
            if h >= self.tail.load(Ordering::Acquire) {
                return None;
            }
            match self
                .head
                .compare_exchange_weak(h, h + 1, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return Some(self.items[h]),
                Err(cur) => h = cur,
            }
        }
    }

    /// Thief claim: the back item, newest first (classic steal end).
    fn steal_back(&self) -> Option<usize> {
        let mut t = self.tail.load(Ordering::Acquire);
        loop {
            if self.head.load(Ordering::Acquire) >= t {
                return None;
            }
            match self
                .tail
                .compare_exchange_weak(t, t - 1, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return Some(self.items[t - 1]),
                Err(cur) => t = cur,
            }
        }
    }
}

/// Deals job ids `0..n` onto `workers` deques.
///
/// Without fuzz the deal is contiguous blocks in id order (worker 0 gets
/// the first chunk, and so on), which keeps the common "jobs were
/// submitted cheap-to-expensive-ish" layouts well balanced before any
/// steal happens. With fuzz the ids are shuffled by a seeded
/// Fisher-Yates first, so every seed exercises a different ownership map
/// — the point being that ownership must not matter.
fn deal_jobs(n: usize, workers: usize, fuzz: Option<u64>) -> Vec<StealDeque> {
    let mut ids: Vec<usize> = (0..n).collect();
    if let Some(seed) = fuzz {
        let mut rng = SmallRng::seed_from_u64(derive_stream_seed(seed, 0));
        for i in (1..n).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            ids.swap(i, j);
        }
    }
    let base = n / workers;
    let rem = n % workers;
    let mut deques = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let len = base + usize::from(w < rem);
        deques.push(StealDeque::new(ids[start..start + len].to_vec()));
        start += len;
    }
    deques
}

/// Per-job storage shared between the submitting thread and the workers:
/// the job itself (taken exactly once) and its output slot (written
/// exactly once, read after the scope joins).
struct JobSlot<J: Job> {
    job: Mutex<Option<J>>,
    output: Mutex<Option<Result<J::Output, String>>>,
}

/// One worker's run-and-steal loop.
///
/// Drains the worker's own deque front-to-back, then steals from the
/// backs of victims until a full probe round finds every deque empty —
/// at that point every job id has been claimed by someone, so exiting is
/// safe. The fuzz stream (when present) rotates the victim probe order
/// and occasionally steals *before* draining local work, exercising
/// interleavings a round-robin prober would never hit.
fn steal_loop<J: Job>(w: usize, deques: &[StealDeque], slots: &[JobSlot<J>], cfg: &ExecConfig) {
    let mut fuzz = cfg
        .fuzz
        .map(|seed| SmallRng::seed_from_u64(derive_stream_seed(seed, 1 + w as u64)));
    let workers = deques.len();
    loop {
        // Claim the next job id: local front first (fuzz may preempt with
        // a steal), then one probe round over the victims' backs.
        let mut claimed = None;
        if let Some(rng) = fuzz.as_mut() {
            if workers > 1 && rng.next_u64() % 4 == 0 {
                let v = (rng.next_u64() % workers as u64) as usize;
                if v != w {
                    claimed = deques[v].steal_back();
                }
            }
        }
        if claimed.is_none() {
            claimed = deques[w].pop_front();
        }
        if claimed.is_none() {
            let rot = match fuzz.as_mut() {
                Some(rng) => (rng.next_u64() % workers.max(1) as u64) as usize,
                None => 1,
            };
            for i in 0..workers {
                let v = (w + rot + i) % workers;
                if v == w {
                    continue;
                }
                claimed = deques[v].steal_back();
                if claimed.is_some() {
                    break;
                }
            }
        }
        let Some(id) = claimed else {
            // Every deque is empty: all ids are claimed, nothing left to
            // run here. Claimed-but-running jobs belong to other workers.
            return;
        };
        // Arbitrate duplicate claims: take() has exactly one winner.
        let Some(job) = slots[id]
            .job
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .take()
        else {
            continue;
        };
        let ctx = JobCtx {
            job_id: id as u64,
            seed: derive_stream_seed(cfg.base_seed, id as u64),
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| job.run(&ctx))).map_err(panic_message);
        *slots[id]
            .output
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(outcome);
    }
}

/// Runs `jobs` across `cfg.workers` threads and returns their outputs
/// **in job-id order** (index `i` of the result corresponds to `jobs[i]`).
///
/// The output is a pure function of `(jobs, cfg.base_seed)`: worker
/// count, initial deal, steal interleaving, completion order, and OS
/// scheduling are all unobservable, so two invocations with different
/// `cfg.workers` (or different `cfg.fuzz` seeds) merge to identical
/// results — the property the golden-artifact gate depends on (see
/// `thermo-bench/tests/exec_determinism.rs`).
///
/// A panicking job does not abort the batch: every remaining job still
/// runs, then the batch fails with the lowest panicking job id.
pub fn run_jobs<J: Job>(jobs: Vec<J>, cfg: &ExecConfig) -> Result<Vec<J::Output>, ExecError> {
    let n = jobs.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let workers = cfg.workers.clamp(1, n);
    let slots: Vec<JobSlot<J>> = jobs
        .into_iter()
        .map(|j| JobSlot {
            job: Mutex::new(Some(j)),
            output: Mutex::new(None),
        })
        .collect();
    let deques = deal_jobs(n, workers, cfg.fuzz);

    if workers == 1 {
        // Serial fast path: same claim/arbitrate/run path, no threads.
        steal_loop(0, &deques, &slots, cfg);
    } else {
        thread::scope(|s| {
            for w in 0..workers {
                let deques = &deques;
                let slots = &slots;
                s.spawn(move || steal_loop(w, deques, slots, cfg));
            }
        });
    }

    // Merge strictly in job-id order: the single place scheduling
    // nondeterminism is erased.
    let mut out = Vec::with_capacity(n);
    let mut first_panic: Option<(u64, String)> = None;
    for (id, slot) in slots.into_iter().enumerate() {
        let outcome = slot
            .output
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .expect("every claimed job writes its output slot");
        match outcome {
            Ok(v) => out.push(v),
            Err(message) => {
                if first_panic.is_none() {
                    first_panic = Some((id as u64, message));
                }
            }
        }
    }
    match first_panic {
        Some((job_id, message)) => Err(ExecError::JobPanicked { job_id, message }),
        None => Ok(out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn outputs_merge_in_job_id_order_despite_scheduling() {
        // Earlier jobs sleep longer, so with 4 workers completion order
        // is roughly the reverse of submission order — the merge must
        // hide that entirely.
        let jobs: Vec<_> = (0..8u64)
            .map(|i| {
                move |ctx: &JobCtx| {
                    thread::sleep(Duration::from_millis(8 - i));
                    ctx.job_id
                }
            })
            .collect();
        let out = run_jobs(jobs, &ExecConfig::new(4, 1)).unwrap();
        assert_eq!(out, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn worker_count_is_unobservable() {
        let mk = |workers| {
            let jobs: Vec<_> = (0..16u64)
                .map(|i| move |ctx: &JobCtx| (i, ctx.seed))
                .collect();
            run_jobs(jobs, &ExecConfig::new(workers, 99)).unwrap()
        };
        let serial = mk(1);
        assert_eq!(serial, mk(3));
        assert_eq!(serial, mk(16));
        assert_eq!(serial, mk(64), "more workers than jobs is fine");
    }

    #[test]
    fn fuzz_seed_is_unobservable() {
        let mk = |fuzz| {
            let jobs: Vec<_> = (0..64u64)
                .map(|i| move |ctx: &JobCtx| (i, ctx.seed, ctx.job_id))
                .collect();
            run_jobs(jobs, &ExecConfig::new(4, 7).with_fuzz(fuzz)).unwrap()
        };
        let plain = mk(None);
        for seed in [0, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(
                plain,
                mk(Some(seed)),
                "fuzz seed {seed:#x} must be unobservable"
            );
        }
    }

    #[test]
    fn steals_balance_a_tail_heavy_batch() {
        // All the work sits in the last job of worker 0's block; thieves
        // must still drain everything and merge in order. (This is a
        // liveness/correctness test — timing is not asserted.)
        let jobs: Vec<_> = (0..32u64)
            .map(|i| {
                move |ctx: &JobCtx| {
                    if i < 8 {
                        thread::sleep(Duration::from_millis(3));
                    }
                    ctx.job_id * 2
                }
            })
            .collect();
        let out = run_jobs(jobs, &ExecConfig::new(8, 5)).unwrap();
        assert_eq!(out, (0..32).map(|i| i * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn per_job_seeds_are_derived_and_disjoint() {
        let base = 0xa5_2017;
        let jobs: Vec<_> = (0..32u64).map(|_| |ctx: &JobCtx| ctx.seed).collect();
        let seeds = run_jobs(jobs, &ExecConfig::new(4, base)).unwrap();
        for (i, &s) in seeds.iter().enumerate() {
            assert_eq!(
                s,
                derive_stream_seed(base, i as u64),
                "job {i} seed must derive from (base, job_id) only"
            );
        }
        let unique: std::collections::BTreeSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), seeds.len(), "per-job seeds must be distinct");
    }

    #[test]
    fn every_job_runs_exactly_once_under_fuzzed_stealing() {
        use std::sync::atomic::AtomicU64;
        for seed in 0..16u64 {
            let runs: Vec<AtomicU64> = (0..48).map(|_| AtomicU64::new(0)).collect();
            let jobs: Vec<_> = (0..48usize)
                .map(|i| {
                    let runs = &runs;
                    move |_: &JobCtx| runs[i].fetch_add(1, Ordering::Relaxed)
                })
                .collect();
            run_jobs(jobs, &ExecConfig::new(6, 3).with_fuzz(Some(seed))).unwrap();
            for (i, r) in runs.iter().enumerate() {
                assert_eq!(
                    r.load(Ordering::Relaxed),
                    1,
                    "job {i} must run exactly once (fuzz seed {seed})"
                );
            }
        }
    }

    #[test]
    fn panic_fails_batch_with_lowest_id_and_workers_drain() {
        let ran = Mutex::new(Vec::new());
        let jobs: Vec<_> = (0..8u64)
            .map(|i| {
                let ran = &ran;
                move |ctx: &JobCtx| {
                    if i == 5 || i == 3 {
                        panic!("boom {i}");
                    }
                    ran.lock().unwrap().push(ctx.job_id);
                    i
                }
            })
            .collect();
        let err = run_jobs(jobs, &ExecConfig::new(4, 0)).unwrap_err();
        assert_eq!(
            err,
            ExecError::JobPanicked {
                job_id: 3,
                message: "boom 3".into()
            },
            "batch reports the lowest panicking job id"
        );
        assert!(err.to_string().contains("job 3 panicked: boom 3"));
        // Workers drained every deque: every non-panicking job ran.
        let mut survivors = ran.lock().unwrap().clone();
        survivors.sort_unstable();
        assert_eq!(survivors, vec![0, 1, 2, 4, 6, 7]);
    }

    #[test]
    fn pool_is_reusable_after_a_panicking_batch() {
        let bad: Vec<fn(&JobCtx) -> u64> = vec![|_| panic!("first batch fails")];
        assert!(run_jobs(bad, &ExecConfig::new(2, 0)).is_err());
        let good: Vec<_> = (0..4u64).map(|i| move |_: &JobCtx| i * i).collect();
        assert_eq!(
            run_jobs(good, &ExecConfig::new(2, 0)).unwrap(),
            vec![0, 1, 4, 9]
        );
    }

    #[test]
    fn empty_batch_and_zero_workers_are_fine() {
        let none: Vec<fn(&JobCtx) -> u64> = Vec::new();
        assert_eq!(
            run_jobs(none, &ExecConfig::new(0, 0)).unwrap(),
            Vec::<u64>::new()
        );
        let one: Vec<_> = vec![|ctx: &JobCtx| ctx.job_id];
        assert_eq!(run_jobs(one, &ExecConfig::new(0, 0)).unwrap(), vec![0]);
    }

    #[test]
    fn jobs_may_borrow_the_submitting_scope() {
        // Scoped threads: jobs can capture references, not just 'static.
        let data = vec![10u64, 20, 30];
        let jobs: Vec<_> = (0..data.len())
            .map(|i| {
                let data = &data;
                move |_: &JobCtx| data[i] + 1
            })
            .collect();
        assert_eq!(
            run_jobs(jobs, &ExecConfig::new(2, 0)).unwrap(),
            vec![11, 21, 31]
        );
    }

    #[test]
    fn deal_covers_every_id_exactly_once() {
        for n in [1usize, 2, 7, 16, 33] {
            for workers in [1usize, 2, 3, 8] {
                for fuzz in [None, Some(9u64)] {
                    let deques = deal_jobs(n, workers.min(n), fuzz);
                    let mut ids: Vec<usize> = deques
                        .iter()
                        .flat_map(|d| d.items.iter().copied())
                        .collect();
                    ids.sort_unstable();
                    assert_eq!(ids, (0..n).collect::<Vec<_>>());
                }
            }
        }
    }

    #[test]
    fn deque_ends_never_skip_an_item() {
        // Owner and a thief race over one deque; together they must claim
        // every id at least once (duplicates allowed, losses not).
        for _ in 0..32 {
            let d = StealDeque::new((0..64).collect());
            let claimed = Mutex::new(Vec::new());
            thread::scope(|s| {
                s.spawn(|| {
                    while let Some(id) = d.pop_front() {
                        claimed.lock().unwrap().push(id);
                    }
                });
                s.spawn(|| {
                    while let Some(id) = d.steal_back() {
                        claimed.lock().unwrap().push(id);
                    }
                });
            });
            let mut got = claimed.into_inner().unwrap();
            got.sort_unstable();
            got.dedup();
            assert_eq!(got, (0..64).collect::<Vec<_>>());
        }
    }
}

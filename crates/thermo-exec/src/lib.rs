//! Deterministic parallel job execution for the Thermostat reproduction.
//!
//! The simulation stack is a pure function of its seed, and the golden
//! regression gate (`scripts/golden.sh`) depends on artifacts staying
//! byte-identical run over run. That rules out the usual "spray work onto
//! a thread pool and collect whatever finishes first" approach: scheduling
//! must never be observable in any output. This crate is the execution
//! substrate that makes parallelism safe under that constraint:
//!
//! * **Jobs are values.** A [`Job`] is consumed by [`Job::run`]; any
//!   `FnOnce(&JobCtx) -> T + Send` closure is a job via the blanket impl.
//! * **Stable job ids.** Jobs are numbered by their position in the batch
//!   (`0..n`); the id is the job's identity in errors and seeds.
//! * **Per-job seed derivation.** Each job receives
//!   `seed = derive_stream_seed(base_seed, job_id)`
//!   ([`thermo_util::rng::derive_stream_seed`], two splitmix64 rounds),
//!   giving every job a statistically disjoint random stream that depends
//!   only on `(base_seed, job_id)` — never on which worker ran it.
//! * **Merge strictly in job-id order.** [`run_jobs`] returns outputs
//!   ordered by job id regardless of completion order, worker count, or
//!   OS scheduling, so downstream artifacts are byte-identical for
//!   `workers = 1` and `workers = 64`.
//! * **Panic capture.** A panicking job never takes down a worker: the
//!   panic is caught, the remaining jobs still run (workers drain
//!   cleanly), and the batch fails with the lowest panicking job id and
//!   its message ([`ExecError::JobPanicked`]).
//!
//! Worker threads are plain `std::thread` + a mutex-guarded job queue —
//! no external dependencies, per the workspace's hermetic-build policy.
//! Wall-clock time is intentionally absent from every type here: timing
//! belongs to the caller's logs, never to merged results (DESIGN.md §9).
//!
//! # Example
//!
//! ```
//! use thermo_exec::{run_jobs, ExecConfig, JobCtx};
//!
//! let cfg = ExecConfig::new(4, 0xa5_2017);
//! let jobs: Vec<_> = (0..8u64)
//!     .map(|i| move |ctx: &JobCtx| (i, ctx.seed))
//!     .collect();
//! let out = run_jobs(jobs, &cfg).unwrap();
//! // Outputs are in job-id order no matter which worker ran what.
//! assert_eq!(out.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
//!            (0..8).collect::<Vec<_>>());
//! ```

#![warn(missing_docs)]

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::thread;

use thermo_util::rng::derive_stream_seed;

/// Per-job execution context handed to [`Job::run`].
///
/// Everything here is a pure function of the batch configuration and the
/// job's position — re-running the same batch reproduces the same
/// contexts, which is what keeps seeded jobs deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobCtx {
    /// This job's stable id: its index in the submitted batch.
    pub job_id: u64,
    /// This job's derived seed:
    /// `derive_stream_seed(base_seed, job_id)`. Jobs that need
    /// randomness must draw from a generator seeded with this value (or
    /// ignore it and carry their own fixed seed); they must never consult
    /// wall-clock time or thread identity.
    pub seed: u64,
}

/// A unit of work the pool can execute.
///
/// Implemented for any `FnOnce(&JobCtx) -> T + Send` closure, so most
/// call sites never name this trait. Implement it directly when a job
/// carries enough state that a named struct reads better.
pub trait Job: Send {
    /// The job's result type, sent back to the submitting thread.
    type Output: Send;

    /// Runs the job to completion, consuming it.
    fn run(self, ctx: &JobCtx) -> Self::Output;
}

impl<F, T> Job for F
where
    F: FnOnce(&JobCtx) -> T + Send,
    T: Send,
{
    type Output = T;

    fn run(self, ctx: &JobCtx) -> T {
        self(ctx)
    }
}

/// Batch execution configuration: worker count and the base seed every
/// per-job seed derives from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker threads (clamped to at least 1 and at most the job count).
    pub workers: usize,
    /// Base seed; job `i` runs with `derive_stream_seed(base_seed, i)`.
    pub base_seed: u64,
}

impl ExecConfig {
    /// Explicit worker count and base seed.
    pub fn new(workers: usize, base_seed: u64) -> Self {
        Self { workers, base_seed }
    }

    /// Single-worker configuration (serial execution, same semantics).
    pub fn serial(base_seed: u64) -> Self {
        Self::new(1, base_seed)
    }

    /// Worker count from the environment ([`jobs_from_env`]): `THERMO_JOBS`
    /// if set and positive, else the machine's available parallelism.
    pub fn from_env(base_seed: u64) -> Self {
        Self::new(jobs_from_env(), base_seed)
    }
}

/// Reads the worker count from `THERMO_JOBS` (any positive integer),
/// defaulting to [`std::thread::available_parallelism`] (1 if unknown).
pub fn jobs_from_env() -> usize {
    std::env::var("THERMO_JOBS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Reads the off-thread scan worker count from `THERMO_SCAN_JOBS`.
///
/// Unlike [`jobs_from_env`] (experiment-level fan-out), this knob gates the
/// *scan pipeline inside* a simulation: how many workers snapshot page-table
/// shards when a policy builds a `thermo_sim::MemoryView`. Unset, `0`, or
/// `1` all mean "inline on the app thread" — the conservative default,
/// since shard-parallel snapshots only pay off when spare cores exist.
/// Artifacts are byte-identical for every value (shard boundaries and merge
/// order are fixed, never worker-derived); see
/// `tests/scan_parallel_determinism.rs`.
pub fn scan_jobs_from_env() -> usize {
    std::env::var("THERMO_SCAN_JOBS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Why a batch failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A job panicked. All other jobs still ran to completion (workers
    /// drain the queue regardless); the batch reports the lowest
    /// panicking job id so reruns reproduce the same error.
    JobPanicked {
        /// Stable id of the (lowest) panicking job.
        job_id: u64,
        /// The panic payload, when it was a string (the common case).
        message: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::JobPanicked { job_id, message } => {
                write!(f, "job {job_id} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs `jobs` across `cfg.workers` threads and returns their outputs
/// **in job-id order** (index `i` of the result corresponds to `jobs[i]`).
///
/// The output is a pure function of `(jobs, cfg.base_seed)`: worker
/// count, completion order, and OS scheduling are unobservable, so two
/// invocations with different `cfg.workers` merge to identical results —
/// the property the golden-artifact gate depends on (see
/// `thermo-bench/tests/exec_determinism.rs`).
///
/// A panicking job does not abort the batch: every remaining job still
/// runs, then the batch fails with the lowest panicking job id.
pub fn run_jobs<J: Job>(jobs: Vec<J>, cfg: &ExecConfig) -> Result<Vec<J::Output>, ExecError> {
    let n = jobs.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let workers = cfg.workers.clamp(1, n);
    // The queue hands out (job_id, job) pairs in submission order; each
    // worker takes the next pending job, so ids also encode intended
    // ordering. Results accumulate unordered and are sorted at the end —
    // the single point where scheduling nondeterminism is erased.
    let queue = Mutex::new(jobs.into_iter().enumerate());
    let results: Mutex<Vec<(usize, Result<J::Output, String>)>> = Mutex::new(Vec::with_capacity(n));

    let work = || loop {
        // Never hold the queue lock while running a job.
        let next = queue.lock().expect("job queue lock").next();
        let Some((id, job)) = next else {
            return;
        };
        let ctx = JobCtx {
            job_id: id as u64,
            seed: derive_stream_seed(cfg.base_seed, id as u64),
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| job.run(&ctx))).map_err(panic_message);
        results.lock().expect("results lock").push((id, outcome));
    };

    if workers == 1 {
        // Serial fast path: same code path as a worker, no threads.
        work();
    } else {
        thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(work);
            }
        });
    }

    let mut collected = results.into_inner().expect("results lock");
    collected.sort_by_key(|(id, _)| *id);
    debug_assert_eq!(collected.len(), n, "every job reports exactly once");
    let mut out = Vec::with_capacity(n);
    let mut first_panic: Option<(u64, String)> = None;
    for (id, r) in collected {
        match r {
            Ok(v) => out.push(v),
            Err(message) => {
                if first_panic.is_none() {
                    first_panic = Some((id as u64, message));
                }
            }
        }
    }
    match first_panic {
        Some((job_id, message)) => Err(ExecError::JobPanicked { job_id, message }),
        None => Ok(out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn outputs_merge_in_job_id_order_despite_scheduling() {
        // Earlier jobs sleep longer, so with 4 workers completion order
        // is roughly the reverse of submission order — the merge must
        // hide that entirely.
        let jobs: Vec<_> = (0..8u64)
            .map(|i| {
                move |ctx: &JobCtx| {
                    thread::sleep(Duration::from_millis(8 - i));
                    ctx.job_id
                }
            })
            .collect();
        let out = run_jobs(jobs, &ExecConfig::new(4, 1)).unwrap();
        assert_eq!(out, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn worker_count_is_unobservable() {
        let mk = |workers| {
            let jobs: Vec<_> = (0..16u64)
                .map(|i| move |ctx: &JobCtx| (i, ctx.seed))
                .collect();
            run_jobs(jobs, &ExecConfig::new(workers, 99)).unwrap()
        };
        let serial = mk(1);
        assert_eq!(serial, mk(3));
        assert_eq!(serial, mk(16));
        assert_eq!(serial, mk(64), "more workers than jobs is fine");
    }

    #[test]
    fn per_job_seeds_are_derived_and_disjoint() {
        let base = 0xa5_2017;
        let jobs: Vec<_> = (0..32u64).map(|_| |ctx: &JobCtx| ctx.seed).collect();
        let seeds = run_jobs(jobs, &ExecConfig::new(4, base)).unwrap();
        for (i, &s) in seeds.iter().enumerate() {
            assert_eq!(
                s,
                derive_stream_seed(base, i as u64),
                "job {i} seed must derive from (base, job_id) only"
            );
        }
        let unique: std::collections::BTreeSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), seeds.len(), "per-job seeds must be distinct");
    }

    #[test]
    fn panic_fails_batch_with_lowest_id_and_workers_drain() {
        let ran = Mutex::new(Vec::new());
        let jobs: Vec<_> = (0..8u64)
            .map(|i| {
                let ran = &ran;
                move |ctx: &JobCtx| {
                    if i == 5 || i == 3 {
                        panic!("boom {i}");
                    }
                    ran.lock().unwrap().push(ctx.job_id);
                    i
                }
            })
            .collect();
        let err = run_jobs(jobs, &ExecConfig::new(4, 0)).unwrap_err();
        assert_eq!(
            err,
            ExecError::JobPanicked {
                job_id: 3,
                message: "boom 3".into()
            },
            "batch reports the lowest panicking job id"
        );
        assert!(err.to_string().contains("job 3 panicked: boom 3"));
        // Workers drained the whole queue: every non-panicking job ran.
        let mut survivors = ran.lock().unwrap().clone();
        survivors.sort_unstable();
        assert_eq!(survivors, vec![0, 1, 2, 4, 6, 7]);
    }

    #[test]
    fn pool_is_reusable_after_a_panicking_batch() {
        let bad: Vec<fn(&JobCtx) -> u64> = vec![|_| panic!("first batch fails")];
        assert!(run_jobs(bad, &ExecConfig::new(2, 0)).is_err());
        let good: Vec<_> = (0..4u64).map(|i| move |_: &JobCtx| i * i).collect();
        assert_eq!(
            run_jobs(good, &ExecConfig::new(2, 0)).unwrap(),
            vec![0, 1, 4, 9]
        );
    }

    #[test]
    fn empty_batch_and_zero_workers_are_fine() {
        let none: Vec<fn(&JobCtx) -> u64> = Vec::new();
        assert_eq!(
            run_jobs(none, &ExecConfig::new(0, 0)).unwrap(),
            Vec::<u64>::new()
        );
        let one: Vec<_> = vec![|ctx: &JobCtx| ctx.job_id];
        assert_eq!(run_jobs(one, &ExecConfig::new(0, 0)).unwrap(), vec![0]);
    }

    #[test]
    fn jobs_may_borrow_the_submitting_scope() {
        // Scoped threads: jobs can capture references, not just 'static.
        let data = vec![10u64, 20, 30];
        let jobs: Vec<_> = (0..data.len())
            .map(|i| {
                let data = &data;
                move |_: &JobCtx| data[i] + 1
            })
            .collect();
        assert_eq!(
            run_jobs(jobs, &ExecConfig::new(2, 0)).unwrap(),
            vec![11, 21, 31]
        );
    }
}

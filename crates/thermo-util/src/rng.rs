//! Deterministic pseudo-random numbers with a `rand`-compatible surface.
//!
//! [`SmallRng`] is a xoshiro256** generator seeded through splitmix64,
//! exactly reproducible across platforms and Rust versions (no
//! floating-point in the core state transition). The [`Rng`],
//! [`SeedableRng`] and [`SliceRandom`] traits mirror the subset of the
//! `rand` 0.8 API the workspace uses, so call sites read identically:
//!
//! ```
//! use thermo_util::rng::{Rng, SeedableRng, SmallRng};
//! let mut rng = SmallRng::seed_from_u64(42);
//! let u: f64 = rng.gen();
//! let k = rng.gen_range(0..10u64);
//! assert!(u < 1.0 && k < 10);
//! ```

use std::ops::Range;

/// Splitmix64 step: the standard seeding finalizer (also a high-quality
/// 64-bit mixing function in its own right).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the seed of an independent random stream from a base seed and
/// a stream index (job id, shard id, tenant id, ...).
///
/// Two splitmix64 finalizer steps over `(base, stream)` give every stream
/// a seed that is statistically unrelated to both the base seed and every
/// sibling stream, so parallel jobs seeded as
/// `derive_stream_seed(base, job_id)` draw from disjoint sequences: the
/// property the deterministic execution subsystem (`thermo-exec`) and the
/// tenant shard runner rely on. Pure function of `(base, stream)` —
/// independent of call order, thread, or platform.
pub fn derive_stream_seed(base: u64, stream: u64) -> u64 {
    // Offset the stream index by a golden-ratio multiple before mixing so
    // `(base, 0)` and `(base+1, 0)` never collapse onto the same state,
    // then run two finalizer rounds for full avalanche.
    let mut state = base ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let _ = splitmix64(&mut state);
    splitmix64(&mut state)
}

/// A small, fast, deterministic PRNG (xoshiro256**).
///
/// Drop-in for the subset of `rand::rngs::SmallRng` the workspace relies
/// on. Not cryptographically secure; statistically solid for simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

/// Construction from a 64-bit seed (the only seeding mode the repo uses —
/// every run must be reproducible from a printable seed).
pub trait SeedableRng: Sized {
    /// Builds a generator whose whole state derives from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state is the one degenerate case; splitmix64 of any seed
        // cannot produce it for all four words, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        Self { s }
    }
}

impl SmallRng {
    /// Advances the generator one step (xoshiro256**).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types [`Rng::gen`] can produce (the `rand` `Standard` distribution).
pub trait FromRng {
    /// Draws one value from the generator's full/unit range.
    fn from_rng(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            #[inline]
            fn from_rng(rng: &mut SmallRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for bool {
    #[inline]
    fn from_rng(rng: &mut SmallRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    /// Uniform in `[0, 1)` with full 53-bit mantissa resolution.
    #[inline]
    fn from_rng(rng: &mut SmallRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    /// Uniform in `[0, 1)` with 24-bit resolution.
    #[inline]
    fn from_rng(rng: &mut SmallRng) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types [`Rng::gen_range`] can sample over a half-open range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range(rng: &mut SmallRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range(rng: &mut SmallRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                // Lemire-style scaling: multiply-shift maps a 64-bit draw
                // onto [0, span) with negligible bias for simulation use.
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + v as $t
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range(rng: &mut SmallRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((lo as i64).wrapping_add(v as i64)) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range(rng: &mut SmallRng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let u = f64::from_rng(rng);
        lo + u * (hi - lo)
    }
}

/// The `rand::Rng` subset used across the workspace, as an extension
/// trait over [`SmallRng`].
pub trait Rng {
    /// Raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// One value of `T` (`rand`'s `Standard` distribution: full range for
    /// integers, `[0, 1)` for floats).
    fn gen<T: FromRng>(&mut self) -> T
    where
        Self: AsSmallRng,
    {
        T::from_rng(self.as_small_rng())
    }

    /// Uniform draw from the half-open range `r`.
    fn gen_range<T: SampleUniform>(&mut self, r: Range<T>) -> T
    where
        Self: AsSmallRng,
    {
        T::sample_range(self.as_small_rng(), r.start, r.end)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: AsSmallRng,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::from_rng(self.as_small_rng()) < p
    }

    /// A standard-normal deviate scaled to `mean`/`std_dev` (Box–Muller;
    /// uses two draws per call, no cached spare, so the consumed stream
    /// length is input-independent).
    fn gen_gaussian(&mut self, mean: f64, std_dev: f64) -> f64
    where
        Self: AsSmallRng,
    {
        let rng = self.as_small_rng();
        // Avoid ln(0): the 53-bit uniform can produce exactly 0.
        let u1: f64 = (f64::from_rng(rng)).max(f64::MIN_POSITIVE);
        let u2: f64 = f64::from_rng(rng);
        let r = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * r * (std::f64::consts::TAU * u2).cos()
    }
}

/// Glue so [`Rng`]'s provided methods can reach the concrete generator.
pub trait AsSmallRng {
    /// The underlying concrete generator.
    fn as_small_rng(&mut self) -> &mut SmallRng;
}

impl AsSmallRng for SmallRng {
    #[inline]
    fn as_small_rng(&mut self) -> &mut SmallRng {
        self
    }
}

impl Rng for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        SmallRng::next_u64(self)
    }
}

/// In-place random reordering and selection on slices (the
/// `rand::seq::SliceRandom` subset the workspace uses).
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle, deterministic for a given generator state.
    fn shuffle(&mut self, rng: &mut SmallRng);

    /// Uniformly random element, `None` when empty.
    fn choose<'a>(&'a self, rng: &mut SmallRng) -> Option<&'a Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle(&mut self, rng: &mut SmallRng) {
        for i in (1..self.len()).rev() {
            let j = usize::sample_range(rng, 0, i + 1);
            self.swap(i, j);
        }
    }

    fn choose<'a>(&'a self, rng: &mut SmallRng) -> Option<&'a T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[usize::sample_range(rng, 0, self.len())])
        }
    }
}

/// Samples a Zipf-distributed rank in `0..n` with exponent `theta` by
/// inversion over the harmonic CDF approximation (YCSB's generator lives
/// in `thermo-workloads::dist`; this helper is for quick harness use).
pub fn zipf_rank(rng: &mut SmallRng, n: u64, theta: f64) -> u64 {
    assert!(
        n > 0 && theta > 0.0 && theta < 1.0,
        "zipf_rank: bad parameters"
    );
    let u = f64::from_rng(rng);
    // Inverse of the continuous approximation of the zipf CDF.
    let rank = ((n as f64).powf(1.0 - theta) * u).powf(1.0 / (1.0 - theta)) as u64;
    rank.min(n - 1)
}

/// `rand::rngs` compatibility: `rngs::SmallRng` resolves here.
pub mod rngs {
    pub use super::SmallRng;
}

/// `rand::seq` compatibility: `seq::SliceRandom` resolves here.
pub mod seq {
    pub use super::SliceRandom;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_seeds_are_pure_and_pairwise_distinct() {
        // Pure function of (base, stream)...
        assert_eq!(derive_stream_seed(7, 3), derive_stream_seed(7, 3));
        // ...and no collisions across a realistic fleet of streams or
        // between adjacent bases (the (base, 0) vs (base+1, 0) trap).
        let mut seen = std::collections::BTreeSet::new();
        for base in 0..8u64 {
            for stream in 0..256u64 {
                assert!(
                    seen.insert(derive_stream_seed(base, stream)),
                    "seed collision at base {base} stream {stream}"
                );
            }
        }
    }

    #[test]
    fn stream_seeds_yield_uncorrelated_generators() {
        // Generators seeded from adjacent stream ids must not produce
        // overlapping prefixes (disjoint per-job streams).
        let mut a = SmallRng::seed_from_u64(derive_stream_seed(42, 0));
        let mut b = SmallRng::seed_from_u64(derive_stream_seed(42, 1));
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert!(xs.iter().all(|x| !ys.contains(x)), "streams overlap");
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be unrelated, {same} collisions");
    }

    #[test]
    fn unit_floats_in_range_and_spread() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_bounds_and_uniformity() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut hist = [0u32; 10];
        for _ in 0..100_000 {
            let k = rng.gen_range(0..10u64);
            hist[k as usize] += 1;
        }
        for &h in &hist {
            assert!((8_000..12_000).contains(&h), "bucket count {h} too skewed");
        }
        // u8 and f64 ranges work too.
        for _ in 0..1000 {
            assert!(rng.gen_range(0..100u8) < 100);
            let x = rng.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_negative_ints() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(6);
        rng.gen_range(5..5u32);
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut w = v.clone();
        v.shuffle(&mut SmallRng::seed_from_u64(9));
        w.shuffle(&mut SmallRng::seed_from_u64(9));
        assert_eq!(v, w, "same seed must shuffle identically");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle virtually never is identity"
        );
    }

    #[test]
    fn choose_covers_all_elements() {
        let v = [1u8, 2, 3];
        let mut rng = SmallRng::seed_from_u64(10);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(*v.choose(&mut rng).unwrap() - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gen_gaussian(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "gaussian mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "gaussian variance {var}");
    }

    #[test]
    fn zipf_rank_head_heavy() {
        let mut rng = SmallRng::seed_from_u64(12);
        let mut head = 0;
        let n = 20_000;
        for _ in 0..n {
            let r = zipf_rank(&mut rng, 1000, 0.99);
            assert!(r < 1000);
            if r < 100 {
                head += 1;
            }
        }
        assert!(head as f64 / n as f64 > 0.5, "zipf head fraction too small");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = SmallRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!(
            (2_200..2_800).contains(&hits),
            "gen_bool(0.25) hit {hits}/10000"
        );
    }
}

//! Strength-reduced division by a runtime-fixed divisor.
//!
//! Hot workload paths reduce hashes into fixed-size regions and key spaces
//! (`hash % bytes`, `hash % n_keys`) millions of times per run; a hardware
//! 64-bit divide costs 20-40 cycles while the divisor never changes after
//! construction. [`FastMod`] precomputes the Granlund–Montgomery round-up
//! magic (the libdivide scheme) once, turning every subsequent `/` and `%`
//! into a widening multiply, a shift, and (for `%`) one more multiply —
//! **exactly** equal to the hardware result for every `u64` operand, which
//! the golden-artifact gate depends on.

/// Exact `u64` division/remainder by a fixed divisor via a precomputed
/// multiply-shift magic. Construction costs one 128-bit division; each use
/// is a few multiplies. `div`/`rem` agree with `/`/`%` for **all** inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastMod {
    d: u64,
    /// 0 marks the power-of-two fast path (plain shift/mask).
    magic: u64,
    shift: u32,
    /// Round-up overflowed 64 bits: apply the add-correction step.
    add: bool,
}

impl FastMod {
    /// Precomputes the magic for divisor `d`.
    ///
    /// # Panics
    ///
    /// Panics when `d == 0`.
    pub fn new(d: u64) -> Self {
        assert!(d > 0, "division by zero");
        if d.is_power_of_two() {
            return Self {
                d,
                magic: 0,
                shift: d.trailing_zeros(),
                add: false,
            };
        }
        let floor_log2 = 63 - d.leading_zeros();
        // proposed = floor(2^(64 + floor_log2) / d), rem its remainder.
        let num = 1u128 << (64 + floor_log2);
        let proposed = (num / d as u128) as u64;
        let rem = (num % d as u128) as u64;
        let e = d - rem;
        if e < (1u64 << floor_log2) {
            // The rounded-up magic fits in 64 bits.
            Self {
                d,
                magic: proposed + 1,
                shift: floor_log2,
                add: false,
            }
        } else {
            // Needs the 65-bit magic: double (tracking the remainder carry)
            // and fall back to the add-correction evaluation.
            let mut magic = proposed.wrapping_add(proposed);
            let twice_rem = rem.wrapping_add(rem);
            if twice_rem >= d || twice_rem < rem {
                magic = magic.wrapping_add(1);
            }
            Self {
                d,
                magic: magic.wrapping_add(1),
                shift: floor_log2,
                add: true,
            }
        }
    }

    /// The divisor this magic was built for.
    #[inline]
    pub fn divisor(&self) -> u64 {
        self.d
    }

    /// `x / d`, exactly.
    #[inline]
    pub fn div(&self, x: u64) -> u64 {
        if self.magic == 0 {
            return x >> self.shift;
        }
        let q = ((self.magic as u128 * x as u128) >> 64) as u64;
        if self.add {
            (((x - q) >> 1).wrapping_add(q)) >> self.shift
        } else {
            q >> self.shift
        }
    }

    /// `x % d`, exactly.
    #[inline]
    pub fn rem(&self, x: u64) -> u64 {
        if self.magic == 0 {
            return x & (self.d - 1);
        }
        x - self.div(x) * self.d
    }
}

/// `cur + step`, wrapped into `[0, len)` by a single compare-subtract —
/// exactly `(cur + step) % len` under the stated preconditions, without the
/// hardware divide.
///
/// # Panics
///
/// Debug-asserts `cur < len` and `step <= len` (the conditions under which
/// one subtraction equals the modulo).
#[inline]
pub fn wrap_add(cur: u64, step: u64, len: u64) -> u64 {
    debug_assert!(cur < len && step <= len);
    let c = cur + step;
    if c >= len {
        c - len
    } else {
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, SeedableRng, SmallRng};

    /// Divisors chosen to hit every code path: powers of two, odd/even
    /// composites, primes, values straddling the 65-bit-magic boundary,
    /// and extremes.
    fn adversarial_divisors() -> Vec<u64> {
        let mut ds = vec![
            1,
            2,
            3,
            5,
            7,
            10,
            63,
            64,
            65,
            100,
            641,
            4096,
            10_007,
            1 << 20,
            (1 << 20) + 1,
            (1 << 31) - 1,
            1 << 31,
            (1u64 << 32) - 1,
            1u64 << 32,
            (1u64 << 32) + 1,
            0x5DEECE66D,
            (1u64 << 53) - 111,
            (1u64 << 62) + 3,
            (1u64 << 63) - 1,
            1u64 << 63,
            (1u64 << 63) + 1,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..200 {
            ds.push(rng.gen::<u64>().max(1));
        }
        ds
    }

    #[test]
    fn matches_hardware_div_and_rem() {
        let mut rng = SmallRng::seed_from_u64(13);
        for d in adversarial_divisors() {
            let f = FastMod::new(d);
            let check = |x: u64| {
                assert_eq!(f.div(x), x / d, "div x={x} d={d}");
                assert_eq!(f.rem(x), x % d, "rem x={x} d={d}");
            };
            for edge in [
                0,
                1,
                d - 1,
                d,
                d.saturating_add(1),
                d.saturating_mul(2),
                d.saturating_mul(3).wrapping_sub(1),
                u64::MAX - 1,
                u64::MAX,
            ] {
                check(edge);
            }
            for _ in 0..2_000 {
                check(rng.gen::<u64>());
            }
        }
    }

    #[test]
    fn exhaustive_small_operands() {
        for d in 1..=128u64 {
            let f = FastMod::new(d);
            for x in 0..=4096u64 {
                assert_eq!(f.div(x), x / d, "x={x} d={d}");
                assert_eq!(f.rem(x), x % d, "x={x} d={d}");
            }
        }
    }

    #[test]
    fn wrap_add_equals_modulo() {
        for len in [1u64, 2, 64, 100, 4096, 1 << 33] {
            for cur in [0, 1, len / 2, len - 1] {
                for step in [0, 1, 64, len / 3, len] {
                    if cur < len && step <= len {
                        assert_eq!(wrap_add(cur, step, len), (cur + step) % len);
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn zero_divisor_panics() {
        FastMod::new(0);
    }
}

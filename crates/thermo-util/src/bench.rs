//! A tiny Criterion-shaped bench harness for `harness = false` bench
//! targets.
//!
//! Mirrors the subset of the `criterion` API the workspace's benches use
//! ([`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], [`black_box`], and the
//! [`criterion_group!`](crate::criterion_group!)/
//! [`criterion_main!`](crate::criterion_main!) macros) so the bench
//! sources migrate with an import swap.
//!
//! Measurement: a short warmup, then `sample_size` timed iterations with
//! per-iteration samples, reported as one parseable line per bench —
//! `bench <name> median <m> µs (mean <x> σ <s> min <a> max <b>, <n>
//! iters)` — in every mode, including the `THERMO_BENCH_FAST=1` smoke
//! mode CI uses (single-shot there, so σ = 0).
//!
//! Perf PRs are self-verifying through two environment knobs handled by
//! the [`criterion_main!`](crate::criterion_main!) epilogue:
//!
//! * `THERMO_BENCH_JSON=path` — write every bench's [`BenchStats`] to
//!   `path` as a machine-readable baseline;
//! * `THERMO_BENCH_BASELINE=path` — compare against a saved baseline and
//!   **exit non-zero** if any bench's median regressed more than
//!   `THERMO_BENCH_MAX_REGRESSION_PCT` percent (default 50).

use std::sync::Mutex;
// thermo-lint: allow(ambient_nondeterminism, reason = "the bench harness exists to measure wall-clock; timings never enter golden artifacts")
use std::time::{Duration, Instant};

use crate::json_struct;

pub use std::hint::black_box;

fn fast_mode() -> bool {
    std::env::var_os("THERMO_BENCH_FAST").is_some_and(|v| v != "0")
}

/// Results of every bench run so far in this process, drained by
/// [`finalize`] from the `criterion_main!` epilogue.
static RESULTS: Mutex<Vec<BenchStats>> = Mutex::new(Vec::new());

/// Summary statistics for one bench's timed iterations, in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchStats {
    /// Bench name (`group/name` inside groups).
    pub name: String,
    /// Timed iterations (excludes the warmup).
    pub iters: u64,
    /// Median iteration time, ns.
    pub median_ns: f64,
    /// Mean iteration time, ns.
    pub mean_ns: f64,
    /// Population standard deviation, ns (0 for a single sample).
    pub stddev_ns: f64,
    /// Fastest iteration, ns.
    pub min_ns: f64,
    /// Slowest iteration, ns.
    pub max_ns: f64,
    /// The full per-rep sample distribution, sorted ascending, ns.
    /// Everything the summary fields are computed from, so baseline
    /// consumers can run their own significance tests instead of
    /// trusting median/σ alone.
    pub samples_ns: Vec<f64>,
}

// Hand-written instead of `json_struct!` so `samples_ns` is optional on
// decode: baselines written before the field existed (and the smoke
// baselines CI has checked in) must keep loading, defaulting to an
// empty distribution.
impl crate::json::ToJson for BenchStats {
    fn to_json(&self) -> crate::json::Value {
        crate::json::Value::Obj(vec![
            ("name".to_string(), self.name.to_json()),
            ("iters".to_string(), self.iters.to_json()),
            ("median_ns".to_string(), self.median_ns.to_json()),
            ("mean_ns".to_string(), self.mean_ns.to_json()),
            ("stddev_ns".to_string(), self.stddev_ns.to_json()),
            ("min_ns".to_string(), self.min_ns.to_json()),
            ("max_ns".to_string(), self.max_ns.to_json()),
            ("samples_ns".to_string(), self.samples_ns.to_json()),
        ])
    }
}

impl crate::json::FromJson for BenchStats {
    fn from_json(v: &crate::json::Value) -> Result<Self, crate::json::JsonError> {
        use crate::json::FromJson;
        let field = |name: &str| {
            v.get(name).ok_or_else(|| {
                crate::json::JsonError::new(format!("BenchStats: missing field `{name}`"))
            })
        };
        Ok(BenchStats {
            name: FromJson::from_json(field("name")?)?,
            iters: FromJson::from_json(field("iters")?)?,
            median_ns: FromJson::from_json(field("median_ns")?)?,
            mean_ns: FromJson::from_json(field("mean_ns")?)?,
            stddev_ns: FromJson::from_json(field("stddev_ns")?)?,
            min_ns: FromJson::from_json(field("min_ns")?)?,
            max_ns: FromJson::from_json(field("max_ns")?)?,
            samples_ns: match v.get("samples_ns") {
                Some(s) => FromJson::from_json(s)?,
                None => Vec::new(),
            },
        })
    }
}

impl BenchStats {
    /// Computes the summary from raw per-iteration samples.
    ///
    /// # Panics
    ///
    /// Panics when `samples` is empty.
    pub fn from_samples(name: &str, samples: &[Duration]) -> Self {
        assert!(!samples.is_empty(), "bench produced no samples");
        let mut ns: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e9).collect();
        ns.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let n = ns.len();
        let median = if n % 2 == 1 {
            ns[n / 2]
        } else {
            (ns[n / 2 - 1] + ns[n / 2]) / 2.0
        };
        let mean = ns.iter().sum::<f64>() / n as f64;
        let var = ns.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        Self {
            name: name.to_string(),
            iters: n as u64,
            median_ns: median,
            mean_ns: mean,
            stddev_ns: var.sqrt(),
            min_ns: ns[0],
            max_ns: ns[n - 1],
            samples_ns: ns,
        }
    }

    /// The uniform one-line report, identical in shape across normal and
    /// smoke mode so CI output is always machine-parseable.
    pub fn report_line(&self) -> String {
        format!(
            "bench {:<40} median {:>12.3} µs (mean {:.3} σ {:.3} min {:.3} max {:.3}, {} iters)",
            self.name,
            self.median_ns / 1e3,
            self.mean_ns / 1e3,
            self.stddev_ns / 1e3,
            self.min_ns / 1e3,
            self.max_ns / 1e3,
            self.iters
        )
    }
}

/// The baseline file format written via `THERMO_BENCH_JSON` and read via
/// `THERMO_BENCH_BASELINE`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchBaseline {
    /// Every bench's statistics, in execution order.
    pub benches: Vec<BenchStats>,
}

json_struct!(BenchBaseline { benches });

/// Compares `current` against `baseline`: one report string per bench
/// whose median regressed more than `max_regression_pct` percent.
/// Benches missing from the baseline are skipped (new benches must not
/// fail the gate).
pub fn regressions(
    current: &[BenchStats],
    baseline: &[BenchStats],
    max_regression_pct: f64,
) -> Vec<String> {
    let mut out = Vec::new();
    for cur in current {
        let Some(base) = baseline.iter().find(|b| b.name == cur.name) else {
            continue;
        };
        if base.median_ns <= 0.0 {
            continue;
        }
        let pct = (cur.median_ns / base.median_ns - 1.0) * 100.0;
        if pct > max_regression_pct {
            out.push(format!(
                "bench regression: {} median {:.3} µs vs baseline {:.3} µs (+{:.1}%, threshold {:.0}%)",
                cur.name,
                cur.median_ns / 1e3,
                base.median_ns / 1e3,
                pct,
                max_regression_pct
            ));
        }
    }
    out
}

/// Epilogue run by [`criterion_main!`](crate::criterion_main!): writes
/// the optional baseline JSON, checks the optional saved baseline, and
/// returns the process exit code (0 = ok, 1 = regression detected).
pub fn finalize() -> i32 {
    let results = std::mem::take(&mut *RESULTS.lock().expect("bench results lock"));
    if let Some(path) = std::env::var_os("THERMO_BENCH_JSON") {
        let file = BenchBaseline {
            benches: results.clone(),
        };
        let mut text = crate::json::encode_pretty(&file);
        text.push('\n');
        match std::fs::write(&path, text) {
            Ok(()) => eprintln!("[bench baseline written to {}]", path.to_string_lossy()),
            Err(e) => {
                eprintln!("error: cannot write {}: {e}", path.to_string_lossy());
                return 1;
            }
        }
    }
    let Some(path) = std::env::var_os("THERMO_BENCH_BASELINE") else {
        return 0;
    };
    let threshold = std::env::var("THERMO_BENCH_MAX_REGRESSION_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50.0);
    let baseline: BenchBaseline = match std::fs::read_to_string(&path)
        .map_err(|e| e.to_string())
        .and_then(|text| crate::json::decode(&text).map_err(|e| e.to_string()))
    {
        Ok(b) => b,
        Err(e) => {
            eprintln!(
                "error: cannot load bench baseline {}: {e}",
                path.to_string_lossy()
            );
            return 1;
        }
    };
    let failures = regressions(&results, &baseline.benches, threshold);
    for f in &failures {
        eprintln!("{f}");
    }
    if failures.is_empty() {
        eprintln!(
            "[bench baseline check ok: {} bench(es) within {threshold}%]",
            results.len()
        );
        0
    } else {
        1
    }
}

/// Top-level bench context handed to every registered bench function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(name, self.sample_size, f);
        self
    }

    /// Opens a named group; benches inside share the group's settings.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// A named collection of benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per bench in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark within the group (reported as `group/name`).
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Ends the group (accepted for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Controls how `iter_batched` amortizes setup; only the per-iteration
/// flavour is used in this workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Run setup before every routine invocation.
    PerIteration,
    /// Accepted for compatibility; treated like `PerIteration`.
    SmallInput,
}

/// Timer handle passed to the bench closure.
pub struct Bencher {
    iters: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warmup (untimed).
        black_box(routine());
        for _ in 0..self.iters {
            // thermo-lint: allow(ambient_nondeterminism, reason = "timed bench iteration: wall-clock is the measurement")
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` with a fresh `setup()` input each iteration;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.iters {
            let input = setup();
            // thermo-lint: allow(ambient_nondeterminism, reason = "timed bench iteration: wall-clock is the measurement")
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F>(name: &str, sample_size: usize, f: F)
where
    F: FnOnce(&mut Bencher),
{
    let iters = if fast_mode() { 1 } else { sample_size.max(1) };
    let mut b = Bencher {
        iters,
        samples: Vec::with_capacity(iters),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("bench {name:<40} (no measurement)");
        return;
    }
    let stats = BenchStats::from_samples(name, &b.samples);
    println!("{}", stats.report_line());
    RESULTS.lock().expect("bench results lock").push(stats);
}

/// Declares a bench group function, Criterion-style:
/// `criterion_group!(benches, bench_a, bench_b);`
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::bench::Criterion::default();
            $($f(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, Criterion-style:
/// `criterion_main!(benches);`
///
/// After all groups run, the epilogue writes/checks baselines per the
/// `THERMO_BENCH_JSON` / `THERMO_BENCH_BASELINE` environment knobs and
/// exits non-zero on a detected regression.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            std::process::exit($crate::bench::finalize());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let count = std::cell::Cell::new(0u32);
        let mut c = Criterion::default();
        c.bench_function("counting", |b| b.iter(|| count.set(count.get() + 1)));
        // Warmup + timed iterations (exact count depends on fast mode).
        let expected = if fast_mode() { 2 } else { 11 };
        assert_eq!(count.get(), expected);
    }

    #[test]
    fn group_sample_size_applies() {
        let count = std::cell::Cell::new(0u32);
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function(format!("case-{}", 1), |b| {
            b.iter_batched(
                || 5u32,
                |x| count.set(count.get() + x),
                BatchSize::PerIteration,
            )
        });
        g.finish();
        let expected = if fast_mode() { 2 * 5 } else { 4 * 5 };
        assert_eq!(count.get(), expected);
    }

    fn stats(name: &str, median_us: f64) -> BenchStats {
        BenchStats {
            name: name.to_string(),
            iters: 5,
            median_ns: median_us * 1e3,
            mean_ns: median_us * 1e3,
            stddev_ns: 0.0,
            min_ns: median_us * 1e3,
            max_ns: median_us * 1e3,
            samples_ns: vec![median_us * 1e3],
        }
    }

    #[test]
    fn stats_from_samples() {
        let us = Duration::from_micros;
        let s = BenchStats::from_samples("s", &[us(3), us(1), us(2), us(10)]);
        assert_eq!(s.iters, 4);
        assert!((s.median_ns - 2_500.0).abs() < 1e-6, "{}", s.median_ns);
        assert!((s.mean_ns - 4_000.0).abs() < 1e-6);
        assert!((s.min_ns - 1_000.0).abs() < 1e-6);
        assert!((s.max_ns - 10_000.0).abs() < 1e-6);
        // Population σ of [1,2,3,10]ms: mean 4, var (9+4+1+36)/4 = 12.5.
        assert!((s.stddev_ns - 1e3 * 12.5f64.sqrt()).abs() < 1e-6);
        // The full distribution rides along, sorted ascending.
        assert_eq!(s.samples_ns, vec![1_000.0, 2_000.0, 3_000.0, 10_000.0]);
    }

    #[test]
    fn baseline_without_samples_field_still_decodes() {
        // Baselines written before per-rep distributions existed have no
        // `samples_ns` key; they must load with an empty distribution
        // rather than error, so checked-in baselines survive the format
        // extension.
        let legacy = r#"{"benches":[{"name":"a","iters":1,"median_ns":5.0,
            "mean_ns":5.0,"stddev_ns":0.0,"min_ns":5.0,"max_ns":5.0}]}"#;
        let file: BenchBaseline = crate::json::decode(legacy).expect("legacy decodes");
        assert_eq!(file.benches.len(), 1);
        assert!(file.benches[0].samples_ns.is_empty());
    }

    #[test]
    fn single_sample_has_zero_sigma_and_parseable_line() {
        // Smoke mode produces single-sample sets; the report line must
        // keep the full statistics shape (σ = 0), not skip them.
        let s = BenchStats::from_samples("solo", &[Duration::from_micros(7)]);
        assert_eq!(s.iters, 1);
        assert_eq!(s.stddev_ns, 0.0);
        assert_eq!(s.median_ns, s.mean_ns);
        let line = s.report_line();
        assert!(line.contains("median"), "{line}");
        assert!(line.contains("σ 0.000"), "{line}");
        assert!(line.contains("1 iters"), "{line}");
    }

    #[test]
    fn regression_detection_thresholds() {
        let base = vec![stats("a", 100.0), stats("b", 100.0)];
        let current = vec![
            stats("a", 120.0), // +20%: under a 50% threshold
            stats("b", 200.0), // +100%: over it
            stats("new", 5.0), // not in baseline: skipped
        ];
        let fails = regressions(&current, &base, 50.0);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("b"), "{fails:?}");
        assert!(fails[0].contains("+100.0%"), "{fails:?}");
        // Tighter threshold catches both.
        assert_eq!(regressions(&current, &base, 10.0).len(), 2);
        // Improvements never fail.
        assert!(regressions(&base, &current, 10.0).is_empty());
    }

    #[test]
    fn baseline_json_roundtrip() {
        let file = BenchBaseline {
            benches: vec![stats("a", 1.5)],
        };
        let text = crate::json::encode_pretty(&file);
        let back: BenchBaseline = crate::json::decode(&text).expect("decodes");
        assert_eq!(back, file);
    }
}

//! A tiny Criterion-shaped bench harness for `harness = false` bench
//! targets.
//!
//! Mirrors the subset of the `criterion` API the workspace's benches use
//! ([`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], [`black_box`], and the
//! [`criterion_group!`](crate::criterion_group!)/
//! [`criterion_main!`](crate::criterion_main!) macros) so the bench
//! sources migrate with an import swap. Measurement is intentionally
//! simple: a short warmup, then `sample_size` timed iterations, mean
//! reported on stdout. Set `THERMO_BENCH_FAST=1` to run each routine
//! once (smoke mode for CI).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn fast_mode() -> bool {
    std::env::var_os("THERMO_BENCH_FAST").is_some_and(|v| v != "0")
}

/// Top-level bench context handed to every registered bench function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(name, self.sample_size, f);
        self
    }

    /// Opens a named group; benches inside share the group's settings.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// A named collection of benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per bench in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark within the group (reported as `group/name`).
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Ends the group (accepted for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Controls how `iter_batched` amortizes setup; only the per-iteration
/// flavour is used in this workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Run setup before every routine invocation.
    PerIteration,
    /// Accepted for compatibility; treated like `PerIteration`.
    SmallInput,
}

/// Timer handle passed to the bench closure.
pub struct Bencher {
    iters: usize,
    total: Duration,
    timed_iters: u64,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warmup (untimed).
        black_box(routine());
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.timed_iters += 1;
        }
    }

    /// Times `routine` with a fresh `setup()` input each iteration;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.timed_iters += 1;
        }
    }
}

fn run_one<F>(name: &str, sample_size: usize, f: F)
where
    F: FnOnce(&mut Bencher),
{
    let iters = if fast_mode() { 1 } else { sample_size.max(1) };
    let mut b = Bencher {
        iters,
        total: Duration::ZERO,
        timed_iters: 0,
    };
    f(&mut b);
    if b.timed_iters == 0 {
        println!("bench {name:<40} (no measurement)");
        return;
    }
    let mean = b.total / b.timed_iters as u32;
    println!(
        "bench {name:<40} {:>12.3} µs/iter ({} iters)",
        mean.as_secs_f64() * 1e6,
        b.timed_iters
    );
}

/// Declares a bench group function, Criterion-style:
/// `criterion_group!(benches, bench_a, bench_b);`
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::bench::Criterion::default();
            $($f(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, Criterion-style:
/// `criterion_main!(benches);`
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let count = std::cell::Cell::new(0u32);
        let mut c = Criterion::default();
        c.bench_function("counting", |b| b.iter(|| count.set(count.get() + 1)));
        // Warmup + timed iterations (exact count depends on fast mode).
        let expected = if fast_mode() { 2 } else { 11 };
        assert_eq!(count.get(), expected);
    }

    #[test]
    fn group_sample_size_applies() {
        let count = std::cell::Cell::new(0u32);
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function(format!("case-{}", 1), |b| {
            b.iter_batched(
                || 5u32,
                |x| count.set(count.get() + x),
                BatchSize::PerIteration,
            )
        });
        g.finish();
        let expected = if fast_mode() { 2 * 5 } else { 4 * 5 };
        assert_eq!(count.get(), expected);
    }
}

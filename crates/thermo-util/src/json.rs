//! Minimal JSON: a value model, writer, parser, and [`ToJson`]/[`FromJson`]
//! conversion traits with `impl` macros — the serde/serde_json replacement
//! for configs, traces and experiment reports.
//!
//! Design constraints, in order: deterministic output (object keys keep
//! declaration order, so equal data ⇒ byte-identical text), lossless
//! round-trips for the workspace's types (`u64`/`i64` carried exactly,
//! `f64` via Rust's shortest-round-trip formatting), and zero
//! dependencies. Struct/enum support is explicit rather than derived:
//!
//! ```
//! use thermo_util::json::{FromJson, ToJson};
//!
//! #[derive(Debug, PartialEq)]
//! struct Knobs { period_ns: u64, fraction: f64 }
//! thermo_util::json_struct!(Knobs { period_ns, fraction });
//!
//! let k = Knobs { period_ns: 30_000, fraction: 0.05 };
//! let text = thermo_util::json::to_string(&k.to_json());
//! let back = Knobs::from_json(&thermo_util::json::parse(&text).unwrap()).unwrap();
//! assert_eq!(k, back);
//! ```

use std::fmt;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer that fits in `i64` (negative literals parse here).
    I64(i64),
    /// A non-negative integer (the common case for the repo's counters).
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved (deterministic output).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` on other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value as `u64` when losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(u) => Some(u),
            Value::I64(i) if i >= 0 => Some(i as u64),
            Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// Numeric value as `i64` when losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(i) => Some(i),
            Value::U64(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::F64(f)
                if f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&f) =>
            {
                Some(f as i64)
            }
            _ => None,
        }
    }

    /// Numeric value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(f) => Some(f),
            Value::U64(u) => Some(u as f64),
            Value::I64(i) => Some(i as f64),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Builds an object from the entries of an *ordered* map iteration
    /// (`BTreeMap::iter`, pre-sorted pairs).
    ///
    /// Output order is insertion order, so a map-derived object is
    /// deterministic exactly when its entries arrive sorted. This
    /// constructor debug-asserts strictly ascending keys, so an accidental
    /// `HashMap` (random per-process iteration order) fails loudly at the
    /// construction site in every debug/test build instead of flaking a
    /// golden check later.
    pub fn from_map_entries<K, I>(entries: I) -> Value
    where
        K: Into<String>,
        I: IntoIterator<Item = (K, Value)>,
    {
        let fields: Vec<(String, Value)> =
            entries.into_iter().map(|(k, v)| (k.into(), v)).collect();
        debug_assert!(
            fields.windows(2).all(|w| w[0].0 < w[1].0),
            "Value::from_map_entries: keys must be strictly ascending — \
             iterate a BTreeMap (or sort first), not a HashMap"
        );
        Value::Obj(fields)
    }
}

/// Error produced by parsing or by [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Conversion into a [`Value`] (the serialization half).
pub trait ToJson {
    /// Builds the JSON value for `self`.
    fn to_json(&self) -> Value;
}

/// Conversion from a [`Value`] (the deserialization half).
pub trait FromJson: Sized {
    /// Reconstructs `Self`, failing on shape or range mismatches.
    fn from_json(v: &Value) -> Result<Self, JsonError>;
}

macro_rules! impl_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Result<Self, JsonError> {
                let u = v.as_u64().ok_or_else(|| JsonError::new(format!(
                    "expected unsigned integer, got {v:?}"
                )))?;
                <$t>::try_from(u).map_err(|_| JsonError::new(format!(
                    "{u} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Result<Self, JsonError> {
                let i = v.as_i64().ok_or_else(|| JsonError::new(format!(
                    "expected integer, got {v:?}"
                )))?;
                <$t>::try_from(i).map_err(|_| JsonError::new(format!(
                    "{i} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_json_int!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::F64(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_f64()
            .ok_or_else(|| JsonError::new(format!("expected number, got {v:?}")))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_bool()
            .ok_or_else(|| JsonError::new(format!("expected bool, got {v:?}")))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::new(format!("expected string, got {v:?}")))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_json(),
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_arr()
            .ok_or_else(|| JsonError::new(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Value {
        Value::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v.as_arr() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => Err(JsonError::new(format!(
                "expected 2-element array, got {v:?}"
            ))),
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

/// Implements [`ToJson`]/[`FromJson`] for a struct with named fields.
///
/// Field types are inferred, so the macro only needs the names:
/// `json_struct!(TlbGeometry { entries, ways });`
#[macro_export]
macro_rules! json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Value {
                $crate::json::Value::Obj(vec![
                    $((stringify!($field).to_string(), $crate::json::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::Value) -> Result<Self, $crate::json::JsonError> {
                Ok($ty {
                    $($field: $crate::json::FromJson::from_json(v.get(stringify!($field)).ok_or_else(
                        || $crate::json::JsonError::new(format!(
                            "{}: missing field `{}`", stringify!($ty), stringify!($field)
                        ))
                    )?)?,)+
                })
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for a single-field tuple struct,
/// serialized transparently as the inner value:
/// `json_newtype!(Vpn);`
#[macro_export]
macro_rules! json_newtype {
    ($ty:ident) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Value {
                $crate::json::ToJson::to_json(&self.0)
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::Value) -> Result<Self, $crate::json::JsonError> {
                Ok($ty($crate::json::FromJson::from_json(v)?))
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for an enum of unit variants,
/// serialized as the variant name string:
/// `json_enum!(PagingMode { Native, Nested });`
#[macro_export]
macro_rules! json_enum {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Value {
                match self {
                    $($ty::$variant => $crate::json::Value::Str(stringify!($variant).to_string()),)+
                }
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::Value) -> Result<Self, $crate::json::JsonError> {
                match v.as_str() {
                    $(Some(stringify!($variant)) => Ok($ty::$variant),)+
                    _ => Err($crate::json::JsonError::new(format!(
                        "{}: unknown variant {v:?}", stringify!($ty)
                    ))),
                }
            }
        }
    };
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // Rust's shortest round-trip formatting; integral floats keep a
        // trailing ".0" so they re-parse as F64 and compare equal.
        let s = format!("{f}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/inf; mirror serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Obj(fields) => {
            // Duplicate keys serialize to legal-looking JSON that parsers
            // disagree on (first wins vs last wins) — always a construction
            // bug here, so catch it at the emit site in debug/test builds.
            debug_assert!(
                fields
                    .iter()
                    .enumerate()
                    .all(|(i, (k, _))| !fields[..i].iter().any(|(p, _)| p == k)),
                "emitting JSON object with duplicate keys"
            );
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * level));
    }
}

/// Compact serialization.
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

/// Human-readable serialization (2-space indent, serde_json-style).
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    out
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self, depth: u32) -> Result<Value, JsonError> {
        if depth > 128 {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value(depth + 1)?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // reject rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("unsupported \\u escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Parses one JSON document (trailing whitespace allowed, trailing garbage
/// rejected).
pub fn parse(s: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Serializes any [`ToJson`] type compactly.
pub fn encode<T: ToJson + ?Sized>(value: &T) -> String {
    to_string(&value.to_json())
}

/// Serializes any [`ToJson`] type with indentation.
pub fn encode_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    to_string_pretty(&value.to_json())
}

/// Parses text and converts it into `T`.
pub fn decode<T: FromJson>(s: &str) -> Result<T, JsonError> {
    T::from_json(&parse(s)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for text in [
            "null", "true", "false", "0", "42", "-7", "3.25", "1e3", "\"hi\"",
        ] {
            let v = parse(text).unwrap();
            let back = parse(&to_string(&v)).unwrap();
            assert_eq!(v, back, "roundtrip of {text}");
        }
    }

    #[test]
    fn number_variants() {
        assert_eq!(parse("42").unwrap(), Value::U64(42));
        assert_eq!(parse("-42").unwrap(), Value::I64(-42));
        assert_eq!(parse("42.5").unwrap(), Value::F64(42.5));
        assert_eq!(parse("18446744073709551615").unwrap(), Value::U64(u64::MAX));
        assert_eq!(parse("1e3").unwrap(), Value::F64(1000.0));
    }

    #[test]
    fn u64_precision_is_exact() {
        let v = Value::U64(u64::MAX);
        assert_eq!(parse(&to_string(&v)).unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn float_shortest_roundtrip() {
        for f in [0.1, 1.0 / 3.0, 123456.789, f64::MIN_POSITIVE, 1e300, -0.0] {
            let text = to_string(&Value::F64(f));
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "float {f} via {text}");
        }
    }

    #[test]
    fn integral_floats_stay_floats() {
        let text = to_string(&Value::F64(3.0));
        assert_eq!(text, "3.0");
        assert_eq!(parse(&text).unwrap(), Value::F64(3.0));
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(to_string(&Value::F64(f64::NAN)), "null");
        assert_eq!(to_string(&Value::F64(f64::INFINITY)), "null");
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\te\u{8}\u{c}\r\u{1}é☃";
        let text = to_string(&Value::Str(s.to_string()));
        assert_eq!(parse(&text).unwrap().as_str(), Some(s));
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Value::Obj(vec![
            ("zebra".into(), Value::U64(1)),
            ("apple".into(), Value::U64(2)),
        ]);
        assert_eq!(to_string(&v), r#"{"zebra":1,"apple":2}"#);
        assert_eq!(parse(&to_string(&v)).unwrap(), v);
    }

    #[test]
    fn pretty_output_shape() {
        let v = Value::Obj(vec![(
            "a".into(),
            Value::Arr(vec![Value::U64(1), Value::U64(2)]),
        )]);
        let pretty = to_string_pretty(&v);
        assert_eq!(pretty, "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn from_map_entries_accepts_ordered_iteration() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("zebra".to_string(), Value::U64(1));
        m.insert("apple".to_string(), Value::U64(2));
        let v = Value::from_map_entries(m);
        assert_eq!(to_string(&v), r#"{"apple":2,"zebra":1}"#);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    #[cfg_attr(not(debug_assertions), ignore = "debug_assert only")]
    fn from_map_entries_rejects_unsorted_keys() {
        let _ = Value::from_map_entries([("b", Value::Null), ("a", Value::Null)]);
    }

    #[test]
    #[should_panic(expected = "duplicate keys")]
    #[cfg_attr(not(debug_assertions), ignore = "debug_assert only")]
    fn emitting_duplicate_keys_panics() {
        let v = Value::Obj(vec![
            ("a".into(), Value::U64(1)),
            ("a".into(), Value::U64(2)),
        ]);
        let _ = to_string(&v);
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"abc",
            "{\"a\" 1}",
            "1 2",
            "{'a':1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn option_vec_tuple_impls() {
        let x: Option<u64> = None;
        assert_eq!(x.to_json(), Value::Null);
        let y: Option<u64> = Some(5);
        assert_eq!(Option::<u64>::from_json(&y.to_json()).unwrap(), Some(5));
        let v = vec![(String::from("a"), vec![1.5f64, 2.5])];
        let enc = encode(&v);
        let back: Vec<(String, Vec<f64>)> = decode(&enc).unwrap();
        assert_eq!(v, back);
    }

    #[derive(Debug, Clone, PartialEq)]
    struct Inner(u16);
    json_newtype!(Inner);

    #[derive(Debug, Clone, PartialEq)]
    enum Mode {
        Fast,
        Slow,
    }
    json_enum!(Mode { Fast, Slow });

    #[derive(Debug, Clone, PartialEq)]
    struct Outer {
        id: Inner,
        mode: Mode,
        name: String,
        weights: Vec<f64>,
        limit: Option<u64>,
    }
    json_struct!(Outer {
        id,
        mode,
        name,
        weights,
        limit
    });

    #[test]
    fn macro_struct_roundtrip() {
        let o = Outer {
            id: Inner(7),
            mode: Mode::Slow,
            name: "x\"y".to_string(),
            weights: vec![0.5, 2.0],
            limit: None,
        };
        let text = encode_pretty(&o);
        assert_eq!(decode::<Outer>(&text).unwrap(), o);
        // Missing field errors mention the field.
        let err = decode::<Outer>(r#"{"id":7}"#).unwrap_err();
        assert!(err.to_string().contains("mode"), "{err}");
        // Unknown enum variant errors.
        assert!(decode::<Mode>("\"Warp\"").is_err());
    }

    #[test]
    fn deterministic_encoding() {
        let o = Outer {
            id: Inner(1),
            mode: Mode::Fast,
            name: "n".into(),
            weights: vec![1.0],
            limit: Some(3),
        };
        assert_eq!(encode(&o), encode(&o.clone()));
    }
}

//! A small, seeded property-test runner — the in-tree `proptest`
//! replacement.
//!
//! A property is a closure over values drawn from [`Strategy`] instances;
//! the [`forall!`](crate::forall!) macro wires N generated cases through
//! it and, on failure, greedily shrinks the counterexample (integers
//! toward the range start, vectors by dropping and shrinking elements)
//! before reporting it:
//!
//! ```
//! use thermo_util::forall;
//! use thermo_util::proptest_lite::{range, vec_of};
//!
//! forall!(cases = 64, (xs in vec_of(range(0u32..100), 0..20)) => {
//!     let mut sorted = xs.clone();
//!     sorted.sort();
//!     assert_eq!(sorted.len(), xs.len());
//! });
//! ```
//!
//! Everything is deterministic: case `i` of a run is generated from
//! `splitmix64(config seed, i)`, and the default seed is derived from the
//! call site (`file!()`/`line!()`), so a failing case reproduces exactly
//! on rerun.

use std::fmt::Debug;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::{splitmix64, SeedableRng, SmallRng};

/// Runner configuration: number of cases and the base seed.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of generated cases to run.
    pub cases: u32,
    /// Base seed; case `i` uses a value derived from `seed` and `i`.
    pub seed: u64,
}

/// A source of generated values with optional shrinking.
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Proposes strictly "smaller" candidates for a failing value.
    /// Strategies without a useful notion of smaller return nothing.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f` (no shrinking through the map).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        T: Clone + Debug,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy for heterogeneous collections
    /// (e.g. [`weighted`] branch lists).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Clone + Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        (**self).generate(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        (**self).shrink(value)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Integer types usable with [`range`] and [`any`].
pub trait ArbitraryInt: Copy + Clone + Debug + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample(rng: &mut SmallRng, lo: Self, hi: Self) -> Self;
    /// Uniform draw over the whole domain.
    fn sample_any(rng: &mut SmallRng) -> Self;
    /// Shrink candidates between `origin` and `value` (toward `origin`).
    fn shrink_toward(origin: Self, value: Self) -> Vec<Self>;
    /// The natural shrink origin for `any` (zero).
    fn zero() -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryInt for $t {
            fn sample(rng: &mut SmallRng, lo: Self, hi: Self) -> Self {
                use crate::rng::Rng;
                rng.gen_range(lo..hi)
            }
            fn sample_any(rng: &mut SmallRng) -> Self {
                rng.next_u64() as $t
            }
            fn shrink_toward(origin: Self, value: Self) -> Vec<Self> {
                if value == origin {
                    return Vec::new();
                }
                // i128 covers every integer type here, so the distance
                // arithmetic cannot overflow and every candidate lies
                // between origin and value (safe to cast back).
                let o = origin as i128;
                let v = value as i128;
                let d = v - o;
                let sign = if d > 0 { 1 } else { -1 };
                // Bisection ladder: origin, then approach `value` from the
                // origin side by halving the remaining distance, ending
                // with the single step `value - sign`. Greedy descent takes
                // the first (largest) jump that still fails.
                let mut out: Vec<Self> = vec![origin];
                for k in 1..=4 {
                    let cand = v - d / (1i128 << k);
                    let cand = cand as Self;
                    if cand != origin && cand != value && !out.contains(&cand) {
                        out.push(cand);
                    }
                }
                let step = (v - sign) as Self;
                if step != origin && !out.contains(&step) {
                    out.push(step);
                }
                out
            }
            fn zero() -> Self {
                0
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integers in `[lo, hi)`, shrinking toward `lo`.
#[derive(Debug, Clone)]
pub struct IntRange<T> {
    lo: T,
    hi: T,
}

/// Uniform integer strategy over `lo..hi` (half-open, like proptest ranges).
pub fn range<T: ArbitraryInt>(r: Range<T>) -> IntRange<T> {
    assert!(r.start < r.end, "range: empty range");
    IntRange {
        lo: r.start,
        hi: r.end,
    }
}

impl<T: ArbitraryInt> Strategy for IntRange<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        T::sample(rng, self.lo, self.hi)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        T::shrink_toward(self.lo, *value)
    }
}

/// Uniform `f64` in `[lo, hi)`, shrinking toward `lo`.
#[derive(Debug, Clone)]
pub struct F64Range {
    lo: f64,
    hi: f64,
}

/// Uniform `f64` strategy over `lo..hi`.
pub fn frange(r: Range<f64>) -> F64Range {
    assert!(r.start < r.end, "frange: empty range");
    F64Range {
        lo: r.start,
        hi: r.end,
    }
}

impl Strategy for F64Range {
    type Value = f64;

    fn generate(&self, rng: &mut SmallRng) -> f64 {
        use crate::rng::Rng;
        self.lo + rng.gen::<f64>() * (self.hi - self.lo)
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        if *value == self.lo {
            return Vec::new();
        }
        let mid = self.lo + (value - self.lo) / 2.0;
        if mid != *value {
            vec![self.lo, mid]
        } else {
            vec![self.lo]
        }
    }
}

/// Values drawn uniformly from a type's whole domain (`any::<u64>()`,
/// `any::<bool>()`), shrinking toward zero/`false`.
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Strategy over the full domain of `T`.
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: ArbitraryInt> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        T::sample_any(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        T::shrink_toward(T::zero(), *value)
    }
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut SmallRng) -> bool {
        use crate::rng::Rng;
        rng.gen()
    }

    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

// ---------------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------------

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    T: Clone + Debug,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice among boxed branches of the same value type; the
/// `prop_oneof!`-with-weights replacement. Shrink candidates come from
/// every branch that could plausibly have produced the value.
pub struct Weighted<T> {
    branches: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

/// Builds a weighted-union strategy. Panics if empty or all-zero weight.
pub fn weighted<T: Clone + Debug>(branches: Vec<(u32, BoxedStrategy<T>)>) -> Weighted<T> {
    let total: u64 = branches.iter().map(|(w, _)| *w as u64).sum();
    assert!(
        total > 0,
        "weighted: need at least one branch with weight > 0"
    );
    Weighted { branches, total }
}

impl<T: Clone + Debug> Strategy for Weighted<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        use crate::rng::Rng;
        let mut pick = rng.gen_range(0..self.total);
        for (w, strat) in &self.branches {
            let w = *w as u64;
            if pick < w {
                return strat.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weighted: pick exceeded total weight");
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        let mut out = Vec::new();
        for (_, strat) in &self.branches {
            out.extend(strat.shrink(value));
        }
        out.truncate(16);
        out
    }
}

/// Vectors of `elem` with a length drawn from `len`; shrinks by dropping
/// chunks/elements and by shrinking individual elements.
#[derive(Debug, Clone)]
pub struct VecOf<S> {
    elem: S,
    min_len: usize,
    max_len: usize,
}

/// `vec_of(strategy, 1..300)` — vector strategy with length in the
/// half-open range.
pub fn vec_of<S: Strategy>(elem: S, len: Range<usize>) -> VecOf<S> {
    assert!(len.start < len.end, "vec_of: empty length range");
    VecOf {
        elem,
        min_len: len.start,
        max_len: len.end,
    }
}

impl<S: Strategy> Strategy for VecOf<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        use crate::rng::Rng;
        let len = rng.gen_range(self.min_len..self.max_len);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        let len = value.len();
        // Drop the front half / back half.
        if len / 2 >= self.min_len && len > 1 {
            out.push(value[..len / 2].to_vec());
            out.push(value[len - len / 2..].to_vec());
        }
        // Drop single elements (bounded).
        if len > self.min_len {
            for i in 0..len.min(8) {
                let mut v = value.clone();
                v.remove(i);
                out.push(v);
            }
        }
        // Shrink individual elements (bounded element count; the per-
        // element candidate ladder is already small).
        for i in 0..len.min(8) {
            for cand in self.elem.shrink(&value[i]) {
                let mut v = value.clone();
                v[i] = cand;
                out.push(v);
            }
        }
        out
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = cand;
                        out.push(v);
                    }
                )+
                out
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Deterministic per-call-site default seed (mixes `file!()` and `line!()`).
pub fn default_seed(file: &str, line: u32) -> u64 {
    let mut h: u64 = 0x51ab_2e01_77f3_9d41;
    for b in file.bytes() {
        h = splitmix64(&mut { h ^ b as u64 });
    }
    h ^= line as u64;
    splitmix64(&mut h)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs `test` over `cfg.cases` generated values, shrinking the first
/// failure and panicking with the minimal counterexample.
pub fn run<S: Strategy>(cfg: &Config, strat: &S, test: impl Fn(S::Value)) {
    let fails = |v: &S::Value| -> Option<String> {
        let v = v.clone();
        match catch_unwind(AssertUnwindSafe(|| test(v))) {
            Ok(()) => None,
            Err(payload) => Some(panic_message(&*payload)),
        }
    };

    for case in 0..cfg.cases {
        let mut state = cfg.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(case as u64 + 1));
        let case_seed = splitmix64(&mut state);
        let mut rng = SmallRng::seed_from_u64(case_seed);
        let value = strat.generate(&mut rng);
        if let Some(first_msg) = fails(&value) {
            // Greedy shrink: take the first failing candidate, repeat.
            let mut minimal = value;
            let mut msg = first_msg;
            let mut budget = 2000u32;
            'outer: while budget > 0 {
                for cand in strat.shrink(&minimal) {
                    budget = budget.saturating_sub(1);
                    if let Some(m) = fails(&cand) {
                        minimal = cand;
                        msg = m;
                        continue 'outer;
                    }
                    if budget == 0 {
                        break;
                    }
                }
                break;
            }
            panic!(
                "property failed (case {case}/{cases}, seed {seed:#018x})\n\
                 minimal input: {minimal:?}\n\
                 failure: {msg}",
                cases = cfg.cases,
                seed = cfg.seed,
            );
        }
    }
}

/// Runs a property over generated inputs with shrink-on-failure.
///
/// ```
/// use thermo_util::forall;
/// use thermo_util::proptest_lite::{any, range};
///
/// forall!(cases = 32, (x in range(0u64..1000)), (flag in any::<bool>()) => {
///     let doubled = x * 2;
///     assert!(doubled >= x || flag == flag);
/// });
/// ```
///
/// An optional `seed = <expr>` before the bindings overrides the
/// call-site-derived default seed.
#[macro_export]
macro_rules! forall {
    (cases = $n:expr, seed = $seed:expr, $(($name:ident in $strat:expr)),+ $(,)? => $body:block) => {{
        let strat = ($($strat,)+);
        let cfg = $crate::proptest_lite::Config { cases: $n, seed: $seed };
        $crate::proptest_lite::run(&cfg, &strat, |($($name,)+)| $body);
    }};
    (cases = $n:expr, $(($name:ident in $strat:expr)),+ $(,)? => $body:block) => {{
        let strat = ($($strat,)+);
        let cfg = $crate::proptest_lite::Config {
            cases: $n,
            seed: $crate::proptest_lite::default_seed(file!(), line!()),
        };
        $crate::proptest_lite::run(&cfg, &strat, |($($name,)+)| $body);
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        let counter = std::cell::Cell::new(0u32);
        forall!(cases = 50, (x in range(0u32..100)) => {
            assert!(x < 100);
            counter.set(counter.get() + 1);
        });
        count += counter.get();
        assert_eq!(count, 50);
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = vec_of(range(0u64..1_000_000), 1..50);
        let cfg = Config { cases: 5, seed: 42 };
        let collect = |cfg: &Config| {
            let mut out = Vec::new();
            for case in 0..cfg.cases {
                let mut state = cfg.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(case as u64 + 1));
                let mut rng = SmallRng::seed_from_u64(splitmix64(&mut state));
                out.push(strat.generate(&mut rng));
            }
            out
        };
        assert_eq!(collect(&cfg), collect(&cfg));
        assert_ne!(collect(&cfg), collect(&Config { cases: 5, seed: 43 }));
    }

    #[test]
    fn failing_property_shrinks_to_minimal_int() {
        // Property "x < 500" fails for x in [500, 1000); minimal is 500.
        let result = catch_unwind(AssertUnwindSafe(|| {
            forall!(cases = 200, seed = 7, (x in range(0u64..1000)) => {
                assert!(x < 500, "too big: {x}");
            });
        }));
        let msg = panic_message(&*result.unwrap_err());
        assert!(
            msg.contains("minimal input: (500,)"),
            "unexpected report:\n{msg}"
        );
    }

    #[test]
    fn failing_property_shrinks_vectors() {
        // Fails when the vec contains any element >= 50; minimal
        // counterexample is a single-element vec [50].
        let result = catch_unwind(AssertUnwindSafe(|| {
            forall!(cases = 200, seed = 11, (xs in vec_of(range(0u32..100), 0..20)) => {
                assert!(xs.iter().all(|&x| x < 50));
            });
        }));
        let msg = panic_message(&*result.unwrap_err());
        assert!(
            msg.contains("minimal input: ([50],)"),
            "unexpected report:\n{msg}"
        );
    }

    #[test]
    fn weighted_union_hits_every_branch() {
        let strat = weighted(vec![
            (8, Just(0u8).boxed()),
            (1, Just(1u8).boxed()),
            (1, range(2u8..10).boxed()),
        ]);
        let mut seen = [false; 3];
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                0 => seen[0] = true,
                1 => seen[1] = true,
                _ => seen[2] = true,
            }
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn prop_map_transforms() {
        let strat = range(0u32..10).prop_map(|x| x * 2);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn frange_stays_in_bounds_and_shrinks() {
        let strat = frange(1.0..2.0);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            let x = strat.generate(&mut rng);
            assert!((1.0..2.0).contains(&x));
        }
        assert!(strat.shrink(&1.5).contains(&1.0));
        assert!(strat.shrink(&1.0).is_empty());
    }

    #[test]
    fn any_bool_and_ints() {
        let mut rng = SmallRng::seed_from_u64(5);
        let b = any::<bool>();
        let mut seen = [false; 2];
        for _ in 0..50 {
            seen[b.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true, true]);
        assert_eq!(any::<u64>().shrink(&0), Vec::<u64>::new());
        assert!(any::<i64>().shrink(&-10).contains(&0));
    }
}

//! Hermetic utility layer for the Thermostat reproduction.
//!
//! The workspace must build and test **offline** (no registry access, no
//! vendored third-party sources), so the handful of external crates the
//! seed depended on are replaced by small in-tree equivalents:
//!
//! * [`rng`] — a deterministic xoshiro256**-based PRNG with a
//!   `rand::rngs::SmallRng`-compatible surface (`seed_from_u64`,
//!   `gen`, `gen_range`, shuffling, gaussian/zipf helpers).
//! * [`json`] — a minimal JSON value model, parser and writer plus
//!   [`json::ToJson`]/[`json::FromJson`] traits and `impl` macros,
//!   replacing `serde`/`serde_json` for configs, traces and reports.
//! * [`proptest_lite`] — a seeded property-test runner ([`forall!`]) with
//!   shrink-on-failure for integer, tuple and vector inputs, replacing
//!   `proptest`.
//! * [`bench`] — a tiny Criterion-shaped bench harness
//!   ([`criterion_group!`]/[`criterion_main!`]) for `harness = false`
//!   bench targets.
//!
//! Every generator here is fully deterministic: the same seed produces the
//! same stream on every platform, which is what makes the repo's
//! determinism tests (same seed ⇒ byte-identical run artifacts) possible.

#![warn(missing_docs)]

pub mod bench;
pub mod fastdiv;
pub mod json;
pub mod proptest_lite;
pub mod rng;

//! Edge-case coverage for `thermo_util::json` — the codec every golden
//! artifact and baseline file goes through. Byte-stable output is a
//! correctness property here (golden diffs and the determinism suite
//! depend on it), so these tests pin the exact bytes for the awkward
//! corners: signed float zero, extreme magnitudes, escaped strings,
//! empty collections, and the failing-decode error paths.

use thermo_util::json::{decode, encode, encode_pretty, parse, to_string, Value};

/// Round-trips a float through encode/parse and compares *bit patterns*,
/// not `==`, so `-0.0` cannot silently degrade to `+0.0`.
fn roundtrip_bits(f: f64) {
    let text = encode(&f);
    let back: f64 = decode(&text).expect("float text must re-parse");
    assert_eq!(
        back.to_bits(),
        f.to_bits(),
        "{f:?} -> {text:?} -> {back:?} changed bit pattern"
    );
}

#[test]
fn negative_zero_keeps_its_sign() {
    assert_eq!(encode(&-0.0f64), "-0.0");
    roundtrip_bits(-0.0);
    roundtrip_bits(0.0);
    // And the two zeros stay distinguishable in the serialized form, so
    // a golden diff of the bytes never confuses them.
    assert_ne!(encode(&-0.0f64), encode(&0.0f64));
}

#[test]
fn extreme_magnitudes_roundtrip_exactly() {
    for f in [
        f64::MAX,
        f64::MIN,
        f64::MIN_POSITIVE, // smallest normal
        f64::from_bits(1), // smallest subnormal, 5e-324
        1e300,
        -1e300,
        1e-300,
        4503599627370497.0, // 2^52 + 1: last integer-dense float
        f64::EPSILON,
    ] {
        roundtrip_bits(f);
    }
}

#[test]
fn integral_floats_stay_floats() {
    // Trailing ".0" is what keeps an integral F64 re-parsing as F64
    // instead of U64 — losing it would flip value kinds between a bless
    // and a check of the same artifact.
    assert_eq!(encode(&1.0f64), "1.0");
    assert_eq!(encode(&-3.0f64), "-3.0");
    assert!(matches!(parse("1.0").unwrap(), Value::F64(_)));
    assert!(matches!(parse("1").unwrap(), Value::U64(1)));
}

#[test]
fn non_finite_floats_serialize_as_null_and_fail_decode() {
    assert_eq!(encode(&f64::NAN), "null");
    assert_eq!(encode(&f64::INFINITY), "null");
    assert_eq!(encode(&f64::NEG_INFINITY), "null");
    // The lossy `null` does not decode back into a number.
    let err = decode::<f64>("null").unwrap_err();
    assert!(err.to_string().contains("expected number"), "{err}");
}

#[test]
fn string_escaping_covers_controls_and_multibyte() {
    let nasty = "quote\" back\\slash \n\r\t \u{8}\u{c} bell\u{7} nul\u{0} déjà 🧊";
    let enc = encode(nasty);
    assert_eq!(
        enc,
        "\"quote\\\" back\\\\slash \\n\\r\\t \\b\\f bell\\u0007 nul\\u0000 déjà 🧊\""
    );
    let back: String = decode(&enc).expect("escaped string must re-parse");
    assert_eq!(back, nasty);
}

#[test]
fn empty_collections_have_fixed_compact_forms() {
    let empty_vec: Vec<u64> = Vec::new();
    assert_eq!(encode(&empty_vec), "[]");
    assert_eq!(to_string(&Value::Obj(Vec::new())), "{}");
    assert_eq!(to_string(&Value::Arr(Vec::new())), "[]");
    // Pretty-printing must not explode empties across lines either —
    // goldens embed them ("history": [] for baseline runs).
    assert_eq!(encode_pretty(&empty_vec), "[]");
    let back: Vec<u64> = decode("[]").unwrap();
    assert!(back.is_empty());
}

#[derive(Debug)]
struct Knobs {
    period_ns: u64,
    fraction: f64,
}
thermo_util::json_struct!(Knobs {
    period_ns,
    fraction
});

#[test]
fn struct_decode_reports_missing_and_mistyped_fields() {
    let knobs = Knobs {
        period_ns: 10u64,
        fraction: 0.5f64,
    };
    let enc = encode(&knobs);
    let back: Knobs = decode(&enc).unwrap();
    assert_eq!(back.period_ns, 10);

    let missing = decode::<Knobs>("{\"period_ns\": 10}").unwrap_err();
    assert!(missing.to_string().contains("fraction"), "{missing}");

    let mistyped = decode::<Knobs>("{\"period_ns\": \"ten\", \"fraction\": 0.5}").unwrap_err();
    assert!(mistyped.to_string().contains("expected"), "{mistyped}");
}

#[test]
fn scalar_decode_failures_name_the_expected_shape() {
    let out_of_range = decode::<u8>("300").unwrap_err();
    assert!(
        out_of_range.to_string().contains("out of range"),
        "{out_of_range}"
    );

    let negative_into_unsigned = decode::<u64>("-1").unwrap_err();
    assert!(
        negative_into_unsigned.to_string().contains("unsigned"),
        "{negative_into_unsigned}"
    );

    let not_an_array = decode::<Vec<u64>>("{}").unwrap_err();
    assert!(
        not_an_array.to_string().contains("expected array"),
        "{not_an_array}"
    );

    let not_a_bool = decode::<bool>("1").unwrap_err();
    assert!(
        not_a_bool.to_string().contains("expected bool"),
        "{not_a_bool}"
    );
}

#[test]
fn malformed_documents_fail_to_parse() {
    for bad in ["{", "[1,", "\"open", "{\"a\" 1}", "tru", "1..2", ""] {
        assert!(parse(bad).is_err(), "{bad:?} should not parse");
    }
}

#[test]
fn roundtrip_stability_encode_is_idempotent() {
    // encode(parse(encode(x))) == encode(x): the property golden blessing
    // relies on when it rewrites a parsed artifact.
    let knobs = Knobs {
        period_ns: u64::MAX,
        fraction: 1.0 / 3.0,
    };
    let once = encode(&knobs);
    let twice = to_string(&parse(&once).unwrap());
    assert_eq!(once, twice);
}

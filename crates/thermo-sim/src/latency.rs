//! Per-operation latency histogram.
//!
//! The paper reports tail latency alongside throughput (§5: "≈1% higher
//! average, 95th, and 99th percentile read/write latency for Cassandra",
//! "no observable degradation in 99th percentile latency" for web search).
//! This histogram uses logarithmic buckets (2% resolution) so recording is
//! allocation-free and O(1) per operation.

/// Log-bucketed latency histogram (nanosecond domain).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    /// Bucket counts; bucket i covers `[GROWTH^i, GROWTH^(i+1))` ns.
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

const GROWTH: f64 = 1.02;
const N_BUCKETS: usize = 1600; // 1.02^1600 ~ 5.8e13 ns — far beyond any op

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; N_BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    /// The defining bucket map: two `ln` calls per evaluation. Kept as the
    /// oracle the precomputed threshold table is built from (and tested
    /// against) — `index` must agree with it bit-for-bit.
    fn formula_index(ns: u64) -> usize {
        if ns <= 1 {
            return 0;
        }
        let idx = (ns as f64).ln() / GROWTH.ln();
        (idx as usize).min(N_BUCKETS - 1)
    }

    /// Upper bound (inclusive) of each bucket, derived once from
    /// [`formula_index`](Self::formula_index) by bisection. Buckets the
    /// formula skips (small ns, where consecutive integers jump many
    /// indices) repeat the previous threshold, which `partition_point`
    /// naturally steps over.
    fn thresholds() -> &'static [u64] {
        static THRESHOLDS: std::sync::OnceLock<Vec<u64>> = std::sync::OnceLock::new();
        THRESHOLDS.get_or_init(|| {
            let mut t = vec![0u64; N_BUCKETS];
            let mut lo = 1u64; // any ns below `lo` is in an earlier bucket
            for (i, slot) in t.iter_mut().enumerate() {
                if i == N_BUCKETS - 1 {
                    *slot = u64::MAX;
                    break;
                }
                if Self::formula_index(lo) > i {
                    // Empty bucket: keep the previous threshold.
                    *slot = lo - 1;
                    continue;
                }
                let mut hi = lo.max(2);
                while Self::formula_index(hi) <= i {
                    hi = hi.saturating_mul(2);
                }
                let (mut a, mut b) = (lo, hi);
                while b - a > 1 {
                    let m = a + (b - a) / 2;
                    if Self::formula_index(m) <= i {
                        a = m;
                    } else {
                        b = m;
                    }
                }
                *slot = a;
                lo = b;
            }
            t
        })
    }

    /// Direct `ns -> bucket` map for the small-ns range where nearly every
    /// recorded op latency lands, built from [`index_search`] once so the
    /// two maps agree bucket-for-bucket. Turns the per-op binary search
    /// into one load.
    fn small_table() -> &'static [u16] {
        const SMALL_MAX: usize = 1 << 16;
        static SMALL: std::sync::OnceLock<Vec<u16>> = std::sync::OnceLock::new();
        SMALL.get_or_init(|| {
            (0..SMALL_MAX as u64)
                .map(|ns| Self::index_search(ns) as u16)
                .collect()
        })
    }

    fn index_search(ns: u64) -> usize {
        // First bucket whose inclusive upper bound reaches `ns`; the last
        // threshold is u64::MAX so the result is always in range.
        Self::thresholds().partition_point(|&hi| hi < ns)
    }

    fn index(ns: u64) -> usize {
        match Self::small_table().get(ns as usize) {
            Some(&i) => i as usize,
            None => Self::index_search(ns),
        }
    }

    /// Records one operation latency.
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::index(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded operations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency, ns (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Maximum recorded latency, ns.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Approximate latency at percentile `p` (0 < p <= 100), ns.
    ///
    /// Resolution is the bucket width (~2%). Returns 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `(0, 100]`.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        assert!(
            p > 0.0 && p <= 100.0,
            "percentile must be in (0, 100], got {p}"
        );
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * p / 100.0).ceil() as u64;
        let mut seen = 0;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return GROWTH.powi(i as i32 + 1) as u64;
            }
        }
        self.max_ns
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.percentile_ns(99.0), 0);
    }

    #[test]
    fn mean_and_max() {
        let mut h = LatencyHistogram::new();
        h.record(100);
        h.record(300);
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean_ns(), 200.0);
        assert_eq!(h.max_ns(), 300);
    }

    #[test]
    fn percentiles_within_bucket_resolution() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(1_000);
        }
        h.record(1_000_000);
        let p50 = h.percentile_ns(50.0);
        assert!((900..1200).contains(&p50), "p50 {p50}");
        let p999 = h.percentile_ns(99.95);
        assert!(p999 > 900_000, "p99.95 {p999} should hit the outlier");
    }

    #[test]
    fn percentile_monotone() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(i * 100);
        }
        let mut last = 0;
        for p in [10.0, 50.0, 90.0, 99.0, 100.0] {
            let v = h.percentile_ns(p);
            assert!(v >= last, "percentiles must be monotone");
            last = v;
        }
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(100);
        b.record(10_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_ns(), 10_000);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn bad_percentile_panics() {
        LatencyHistogram::new().percentile_ns(0.0);
    }

    #[test]
    fn tiny_latencies_hit_bucket_zero() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(1);
        assert_eq!(h.count(), 2);
        assert!(h.percentile_ns(100.0) <= 2);
    }

    #[test]
    fn threshold_table_matches_ln_formula_exactly() {
        // Dense low range, where buckets are narrowest and skipped.
        for ns in 0..200_000u64 {
            assert_eq!(
                LatencyHistogram::index(ns),
                LatencyHistogram::formula_index(ns),
                "ns={ns}"
            );
        }
        // Every bucket boundary and its neighbours, across the whole range.
        for &hi in LatencyHistogram::thresholds() {
            for ns in [hi.saturating_sub(1), hi, hi.saturating_add(1)] {
                assert_eq!(
                    LatencyHistogram::index(ns),
                    LatencyHistogram::formula_index(ns),
                    "ns={ns}"
                );
            }
        }
        // A geometric sweep up to u64::MAX.
        let mut ns = 1u64;
        while ns < u64::MAX / 3 {
            ns = ns.saturating_mul(3) / 2 + 1;
            assert_eq!(
                LatencyHistogram::index(ns),
                LatencyHistogram::formula_index(ns),
                "ns={ns}"
            );
        }
        assert_eq!(
            LatencyHistogram::index(u64::MAX),
            LatencyHistogram::formula_index(u64::MAX)
        );
    }
}

//! Virtual-time execution engine for the Thermostat (ASPLOS'17)
//! reproduction.
//!
//! This crate glues the substrates together into a runnable machine:
//!
//! * [`engine`] — the access pipeline (TLB → page walk → BadgerTrap fault →
//!   LLC → memory tier) and the kernel-side operations policies perform;
//! * [`cache`] — the last-level cache model;
//! * [`process`] — VMAs and demand paging with THP;
//! * [`workload`] / [`runner`] — the application abstraction and the loop
//!   that interleaves it with policy daemons on the virtual timeline;
//! * [`sched`] / [`arbiter`] — the discrete-event co-scheduled engine and
//!   the shared-fast-tier capacity arbiter (DESIGN.md §13);
//! * [`config`], [`stats`], [`series`], [`clock`] — configuration and
//!   observability.
//!
//! # Example
//!
//! ```
//! use thermo_sim::{Engine, SimConfig};
//!
//! let mut engine = Engine::new(SimConfig::paper_defaults(64 << 20, 64 << 20));
//! let heap = engine.mmap(4 << 20, true, true, false, "heap");
//! engine.access(heap, false); // demand-pages a 2MB THP
//! assert_eq!(engine.rss_bytes(), 2 << 20);
//! ```

#![warn(missing_docs)]
pub mod arbiter;
pub mod cache;
pub mod clock;
pub mod config;
pub mod engine;
pub mod fabric;
pub mod latency;
pub mod process;
pub mod runner;
pub mod sched;
pub mod series;
pub mod stats;
pub mod trace;
pub mod workload;

pub use arbiter::{Arbiter, ArbiterConfig, ArbiterEvent, Decision, DecisionKind, TenantReport};
pub use cache::{Llc, LlcConfig, LlcStats};
pub use clock::VirtualClock;
pub use config::{ColdAccessModel, SimConfig};
pub use engine::{
    Engine, FootprintBreakdown, MemoryView, OpOutcome, PageInfo, PlanOp, PlanReceipt, PolicyPlan,
    PressureStats,
};
pub use fabric::{CommitStatus, Fabric, FabricConfig, FabricStats, MigrateTxn, TxnState};
pub use latency::LatencyHistogram;
pub use process::{Process, Vma};
pub use runner::{
    run_for, run_for_instrumented, run_ops, run_tenants_sharded, NoPolicy, PolicyHook, RunOutcome,
    ShardOutcome,
};
pub use sched::{
    run_tenants_coscheduled, CoSchedOutcome, Component, Control, SchedConfig, SchedError, Scheduler,
};
pub use series::{RateSeries, SampledSeries};
pub use stats::EngineStats;
pub use trace::{Trace, TraceOp, TraceWorkload};
pub use workload::{Access, FootprintInfo, Workload};

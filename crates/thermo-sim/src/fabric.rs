//! Finite-bandwidth migration fabric with transactional, non-exclusive
//! page moves.
//!
//! The paper treats migration as instantaneous and exclusive: `migrate_page`
//! copies a page in one kernel-time charge while the application is (by
//! construction) not touching it. That hides the regime where migration
//! traffic itself is the bottleneck. This module models the DRAM↔slow-tier
//! channel as two finite-bandwidth links (one per *destination* tier) and
//! makes migration a transaction in the style of Nomad:
//!
//! * [`Fabric::begin`] opens a transaction; the copy then proceeds
//!   asynchronously as virtual time advances ([`Fabric::tick`]) while the
//!   application keeps accessing the page;
//! * a write to a page mid-copy makes the copied bytes stale — the
//!   transaction aborts its copy and retries after a bounded exponential
//!   backoff ([`Fabric::note_write`]), failing permanently after
//!   `max_retries`;
//! * committing ([`Fabric::commit_status`] + [`Fabric::finish_commit`])
//!   only succeeds once the copy is complete; the page remains resident in
//!   its source tier until the engine remaps it at commit;
//! * a demoted page leaves a *shadow* entry behind
//!   ([`Fabric::record_shadow`]): until the first write invalidates it, a
//!   re-promotion can reuse the stale fast-tier copy and skip the bulk
//!   transfer entirely ([`Fabric::take_shadow`]).
//!
//! The fabric holds *metadata only*: no frames are reserved while a copy is
//! in flight, so the engine's residency invariant (each mapped page backed
//! by exactly one frame in exactly one tier) holds at every instant — the
//! property tests in `tests/prop_fabric.rs` pin this.
//!
//! Determinism: the fabric has no RNG and no ambient clock; all state lives
//! in `BTreeMap`s and is a pure function of the call sequence.

use std::collections::{BTreeMap, VecDeque};
use thermo_mem::{PageSize, Tier, Vpn};

/// Fabric configuration knobs.
///
/// `enabled` is the *policy-mode* switch: the daemons consult it to decide
/// whether to demote through transactions. The mechanism itself is always
/// available; with `enabled = false` (the default) no transactions are ever
/// opened and the engine behaves exactly as before — all pre-fabric goldens
/// are unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricConfig {
    /// Policy-mode switch: daemons demote via Begin/Commit transactions.
    pub enabled: bool,
    /// Per-link copy bandwidth, bytes per second of virtual time.
    pub link_bandwidth_bytes_per_sec: u64,
    /// Fixed per-page kernel overhead charged at commit (remap, shootdown).
    pub per_page_overhead_ns: u64,
    /// Write-aborts tolerated before a transaction fails permanently.
    pub max_retries: u32,
    /// Base of the exponential retry backoff, ns.
    pub backoff_base_ns: u64,
    /// Shadow directory capacity (pages); oldest entries are evicted FIFO.
    pub shadow_capacity: u64,
    /// Extra latency an LLC miss pays while any link is actively copying —
    /// the app-visible contention cost of migration traffic.
    pub contention_penalty_ns: u64,
}

impl Default for FabricConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            link_bandwidth_bytes_per_sec: 2_000_000_000,
            per_page_overhead_ns: 5_000,
            max_retries: 3,
            backoff_base_ns: 200_000,
            shadow_capacity: 64,
            contention_penalty_ns: 60,
        }
    }
}

thermo_util::json_struct!(FabricConfig {
    enabled,
    link_bandwidth_bytes_per_sec,
    per_page_overhead_ns,
    max_retries,
    backoff_base_ns,
    shadow_capacity,
    contention_penalty_ns,
});

/// Where a transaction is in its life cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// Bytes still moving (or waiting out a retry backoff).
    Copying,
    /// Copy complete; ready to commit.
    Copied,
    /// Retries exhausted or page invalidated; only abort can resolve it.
    Failed,
}

/// One in-flight migration transaction.
#[derive(Debug, Clone, Copy)]
pub struct MigrateTxn {
    /// Transaction id (monotonic, unique per fabric).
    pub id: u64,
    /// Leaf page being moved (base VPN of its mapping).
    pub base_vpn: Vpn,
    /// Leaf size.
    pub size: PageSize,
    /// Destination tier.
    pub target: Tier,
    /// Current state.
    pub state: TxnState,
    /// Bytes copied so far in the current attempt.
    pub copied_bytes: u64,
    /// Write-aborts suffered so far.
    pub retries: u32,
    /// Virtual time before which the copy may not resume (retry backoff).
    pub resume_at_ns: u64,
}

/// What [`Fabric::commit_status`] reports for a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitStatus {
    /// Copy still in flight — ask again later.
    Pending,
    /// Transaction failed (retries exhausted or invalidated); abort it.
    Failed,
    /// Copy complete: the engine may remap and then finish the commit.
    Ready {
        /// Page to remap.
        vpn: Vpn,
        /// Leaf size.
        size: PageSize,
        /// Destination tier.
        target: Tier,
    },
}

/// Counters for the fabric's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Transactions opened.
    pub begun: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted (explicitly or after failure).
    pub aborted: u64,
    /// Copy restarts caused by writes to in-flight pages.
    pub write_aborts: u64,
    /// Transactions killed by a structural page operation (split, poison…).
    pub invalidated: u64,
    /// Promotions served instantly from a shadow copy.
    pub shadow_hits: u64,
    /// Ticks where a link's budget ran out with eligible copies waiting.
    pub congestion_events: u64,
    /// LLC misses that paid the contention penalty.
    pub contended_misses: u64,
    /// Total bytes moved over the links.
    pub bytes_copied: u64,
    /// Highest observed per-tick link throughput, bytes/sec.
    pub peak_bytes_per_sec: u64,
}

#[derive(Debug, Default)]
struct Link {
    queue: VecDeque<u64>,
}

/// The migration fabric: two finite-bandwidth links plus transaction and
/// shadow directories. Owned by the engine but fully public so benches and
/// property tests can drive it directly.
#[derive(Debug)]
pub struct Fabric {
    cfg: FabricConfig,
    txns: BTreeMap<u64, MigrateTxn>,
    /// Live (unresolved, non-failed) transaction per page.
    by_page: BTreeMap<Vpn, u64>,
    /// Per-destination-tier links: `links[0]` → Fast, `links[1]` → Slow.
    links: [Link; 2],
    shadows: BTreeMap<Vpn, PageSize>,
    shadow_fifo: VecDeque<Vpn>,
    last_tick_ns: u64,
    next_id: u64,
    stats: FabricStats,
}

fn link_index(target: Tier) -> usize {
    match target {
        Tier::Fast => 0,
        Tier::Slow => 1,
    }
}

impl Fabric {
    /// A fabric with the given knobs and no in-flight state.
    pub fn new(cfg: FabricConfig) -> Self {
        Self {
            cfg,
            txns: BTreeMap::new(),
            by_page: BTreeMap::new(),
            links: [Link::default(), Link::default()],
            shadows: BTreeMap::new(),
            shadow_fifo: VecDeque::new(),
            last_tick_ns: 0,
            next_id: 1,
            stats: FabricStats::default(),
        }
    }

    /// The configuration this fabric was built with.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Lifetime counters.
    pub fn stats(&self) -> FabricStats {
        self.stats
    }

    /// True while any link has queued copies.
    pub fn busy(&self) -> bool {
        self.links.iter().any(|l| !l.queue.is_empty())
    }

    /// True if the fabric holds any state the engine must consult on the
    /// hot path (live transactions or shadows).
    pub fn has_state(&self) -> bool {
        !self.by_page.is_empty() || !self.shadows.is_empty()
    }

    /// Number of unresolved transactions (any state).
    pub fn in_flight(&self) -> usize {
        self.txns.len()
    }

    /// Bytes covered by unresolved transactions — capacity a reclaim
    /// must treat as pinned (the arbiter's `reserved_bytes` input).
    pub fn in_flight_bytes(&self) -> u64 {
        self.txns.values().map(|t| t.size.bytes() as u64).sum()
    }

    /// The live transaction covering `vpn`, if any.
    pub fn txn_for_page(&self, vpn: Vpn) -> Option<&MigrateTxn> {
        let (&base, &id) = self.by_page.range(..=vpn).next_back()?;
        let txn = &self.txns[&id];
        let n = txn.size.small_pages() as u64;
        (base.0 + n > vpn.0).then_some(txn)
    }

    /// Open a migration transaction for the leaf page at `base_vpn`.
    ///
    /// Panics if a live transaction already overlaps the page — callers
    /// (the plan layer) must not double-inject; the property tests and
    /// daemons both track pending pages.
    ///
    /// A promotion (`target == Fast`) that finds a valid shadow completes
    /// instantly: the stale fast-tier copy is still good, so the
    /// transaction is born `Copied` without touching a link.
    pub fn begin(&mut self, base_vpn: Vpn, size: PageSize, target: Tier, now: u64) -> u64 {
        let n = size.small_pages() as u64;
        if let Some((&b, &id)) = self.by_page.range(..=base_vpn).next_back() {
            let bn = self.txns[&id].size.small_pages() as u64;
            assert!(
                b.0 + bn <= base_vpn.0,
                "fabric: begin overlaps live txn {id} at vpn {}",
                b.0
            );
        }
        if let Some((&b, &id)) = self.by_page.range(Vpn(base_vpn.0 + 1)..).next() {
            assert!(
                base_vpn.0 + n <= b.0,
                "fabric: begin overlaps live txn {id} at vpn {}",
                b.0
            );
        }
        // An idle fabric must not bank the elapsed idle time as copy budget.
        if !self.busy() {
            self.last_tick_ns = now;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.stats.begun += 1;
        let shadowed = target == Tier::Fast && self.take_shadow(base_vpn, size);
        let bytes = size.bytes() as u64;
        let txn = MigrateTxn {
            id,
            base_vpn,
            size,
            target,
            state: if shadowed {
                TxnState::Copied
            } else {
                TxnState::Copying
            },
            copied_bytes: if shadowed { bytes } else { 0 },
            retries: 0,
            resume_at_ns: 0,
        };
        if !shadowed {
            self.links[link_index(target)].queue.push_back(id);
        }
        self.txns.insert(id, txn);
        self.by_page.insert(base_vpn, id);
        id
    }

    /// Advance the links to virtual time `now`, moving up to
    /// `bandwidth × Δt` bytes per link. The budget is a per-tick floor with
    /// no carry, so charged bandwidth provably never exceeds link capacity
    /// over any interval.
    pub fn tick(&mut self, now: u64) {
        let dt = now.saturating_sub(self.last_tick_ns);
        if dt == 0 {
            return;
        }
        self.last_tick_ns = now;
        for link in &mut self.links {
            if link.queue.is_empty() {
                continue;
            }
            let mut budget =
                (self.cfg.link_bandwidth_bytes_per_sec as u128 * dt as u128 / 1_000_000_000) as u64;
            let mut moved = 0u64;
            let mut keep: VecDeque<u64> = VecDeque::new();
            let mut starved = false;
            while let Some(id) = link.queue.pop_front() {
                let Some(txn) = self.txns.get_mut(&id) else {
                    continue; // resolved; stale queue entry
                };
                if txn.state != TxnState::Copying {
                    continue; // failed or already copied; drop lazily
                }
                if txn.resume_at_ns > now {
                    keep.push_back(id); // still backing off
                    continue;
                }
                if budget == 0 {
                    starved = true;
                    keep.push_back(id);
                    continue;
                }
                let remaining = txn.size.bytes() as u64 - txn.copied_bytes;
                let chunk = remaining.min(budget);
                txn.copied_bytes += chunk;
                budget -= chunk;
                moved += chunk;
                if txn.copied_bytes == txn.size.bytes() as u64 {
                    txn.state = TxnState::Copied;
                } else {
                    starved = true; // budget exhausted mid-page
                    keep.push_back(id);
                }
            }
            link.queue = keep;
            if starved {
                self.stats.congestion_events += 1;
            }
            if moved > 0 {
                self.stats.bytes_copied += moved;
                let rate = (moved as u128 * 1_000_000_000 / dt as u128) as u64;
                self.stats.peak_bytes_per_sec = self.stats.peak_bytes_per_sec.max(rate);
            }
        }
    }

    /// The engine observed a write to `vpn`. Invalidate any shadow and
    /// write-abort any in-flight copy covering the page.
    pub fn note_write(&mut self, vpn: Vpn, now: u64) {
        // Shadows: a write makes the stale fast-tier copy unusable.
        if let Some((&base, &size)) = self.shadows.range(..=vpn).next_back() {
            if base.0 + size.small_pages() as u64 > vpn.0 {
                self.shadows.remove(&base);
            }
        }
        let Some((&base, &id)) = self.by_page.range(..=vpn).next_back() else {
            return;
        };
        let Some(txn) = self.txns.get_mut(&id) else {
            return;
        };
        if base.0 + txn.size.small_pages() as u64 <= vpn.0 {
            return;
        }
        if txn.state == TxnState::Failed {
            return;
        }
        if txn.state == TxnState::Copying && txn.copied_bytes == 0 {
            return; // nothing copied yet, nothing to go stale
        }
        self.stats.write_aborts += 1;
        txn.retries += 1;
        txn.copied_bytes = 0;
        if txn.retries > self.cfg.max_retries {
            txn.state = TxnState::Failed;
            self.by_page.remove(&base);
            return;
        }
        let was_copied = txn.state == TxnState::Copied;
        txn.state = TxnState::Copying;
        let shift = (txn.retries - 1).min(20);
        txn.resume_at_ns = now + (self.cfg.backoff_base_ns << shift);
        if was_copied {
            // It had left the queue on completion; re-enqueue the retry.
            let target = txn.target;
            if !self.busy() {
                self.last_tick_ns = now;
            }
            self.links[link_index(target)].queue.push_back(id);
        }
    }

    /// Where transaction `id` stands for commit purposes.
    ///
    /// Panics on an unknown id: commit/abort of a transaction that was never
    /// begun (or was already resolved) is a plan-layer bug.
    pub fn commit_status(&self, id: u64) -> CommitStatus {
        let txn = self
            .txns
            .get(&id)
            .unwrap_or_else(|| panic!("fabric: unknown txn {id}"));
        match txn.state {
            TxnState::Copying => CommitStatus::Pending,
            TxnState::Failed => CommitStatus::Failed,
            TxnState::Copied => CommitStatus::Ready {
                vpn: txn.base_vpn,
                size: txn.size,
                target: txn.target,
            },
        }
    }

    /// Resolve a `Ready` transaction after the engine has remapped the
    /// page. A demotion leaves a shadow behind for instant re-promotion.
    pub fn finish_commit(&mut self, id: u64) {
        let txn = self
            .txns
            .remove(&id)
            .unwrap_or_else(|| panic!("fabric: unknown txn {id}"));
        if self.by_page.get(&txn.base_vpn) == Some(&id) {
            self.by_page.remove(&txn.base_vpn);
        }
        self.stats.committed += 1;
        if txn.target == Tier::Slow {
            self.record_shadow(txn.base_vpn, txn.size);
        }
    }

    /// Abort and discard transaction `id` (any state). Panics on unknown id.
    pub fn abort(&mut self, id: u64) {
        let txn = self
            .txns
            .remove(&id)
            .unwrap_or_else(|| panic!("fabric: unknown txn {id}"));
        if self.by_page.get(&txn.base_vpn) == Some(&id) {
            self.by_page.remove(&txn.base_vpn);
        }
        self.stats.aborted += 1;
    }

    /// A structural page operation (split, collapse, poison, migrate…)
    /// touched `[base, base + n_pages)`: any overlapping live transaction
    /// is now meaningless. Mark it failed so its eventual commit resolves
    /// as a clean abort instead of remapping a page that changed shape.
    pub fn invalidate_overlapping(&mut self, base: Vpn, n_pages: u64) {
        if self.by_page.is_empty() {
            return;
        }
        let mut hit: Vec<(Vpn, u64)> = Vec::new();
        if let Some((&b, &id)) = self.by_page.range(..=base).next_back() {
            let bn = self.txns[&id].size.small_pages() as u64;
            if b.0 + bn > base.0 {
                hit.push((b, id));
            }
        }
        for (&b, &id) in self.by_page.range(Vpn(base.0 + 1)..) {
            if b.0 >= base.0 + n_pages {
                break;
            }
            hit.push((b, id));
        }
        for (b, id) in hit {
            let txn = self.txns.get_mut(&id).expect("by_page points at live txn");
            txn.state = TxnState::Failed;
            self.by_page.remove(&b);
            self.stats.invalidated += 1;
        }
    }

    /// Remember that the fast-tier copy of a just-demoted page is still
    /// intact (stale only after the next write).
    pub fn record_shadow(&mut self, vpn: Vpn, size: PageSize) {
        if self.cfg.shadow_capacity == 0 {
            return;
        }
        if self.shadows.insert(vpn, size).is_none() {
            self.shadow_fifo.push_back(vpn);
        }
        while self.shadows.len() as u64 > self.cfg.shadow_capacity {
            match self.shadow_fifo.pop_front() {
                Some(old) => {
                    self.shadows.remove(&old);
                }
                None => break,
            }
        }
    }

    /// Consume the shadow for `(vpn, size)` if present and exactly matching.
    pub fn take_shadow(&mut self, vpn: Vpn, size: PageSize) -> bool {
        if self.shadows.get(&vpn) == Some(&size) {
            self.shadows.remove(&vpn);
            self.stats.shadow_hits += 1;
            true
        } else {
            false
        }
    }

    /// Record an LLC miss that paid the contention penalty.
    pub fn note_contended_miss(&mut self) {
        self.stats.contended_misses += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HUGE: u64 = 2 << 20;

    fn fab(bw: u64) -> Fabric {
        Fabric::new(FabricConfig {
            enabled: true,
            link_bandwidth_bytes_per_sec: bw,
            ..FabricConfig::default()
        })
    }

    #[test]
    fn copy_is_paced_by_bandwidth() {
        // 2MB page over a 1GB/s link needs ~2ms of virtual time.
        let mut f = fab(1_000_000_000);
        let id = f.begin(Vpn(0), PageSize::Huge2M, Tier::Slow, 0);
        f.tick(1_000_000); // 1ms → 1MB copied
        assert_eq!(f.commit_status(id), CommitStatus::Pending);
        f.tick(2_200_000);
        assert!(matches!(f.commit_status(id), CommitStatus::Ready { .. }));
        assert_eq!(f.stats().bytes_copied, HUGE);
        assert!(f.stats().peak_bytes_per_sec <= 1_000_000_000);
        f.finish_commit(id);
        assert_eq!(f.in_flight(), 0);
        assert_eq!(f.stats().committed, 1);
    }

    #[test]
    fn idle_time_is_not_banked_as_budget() {
        let mut f = fab(1_000_000_000);
        // Fabric idles for a long time; a fresh txn must still take ~2ms.
        let id = f.begin(Vpn(0), PageSize::Huge2M, Tier::Slow, 10_000_000_000);
        f.tick(10_000_000_001); // 1ns later: at most ~1 byte moved
        assert_eq!(f.commit_status(id), CommitStatus::Pending);
        assert!(f.stats().bytes_copied <= 2);
        f.abort(id);
    }

    #[test]
    fn write_aborts_retry_then_fail() {
        let mut f = fab(1_000_000_000);
        let id = f.begin(Vpn(0), PageSize::Huge2M, Tier::Slow, 0);
        let mut now = 0;
        for attempt in 0..4u32 {
            // Let some bytes move, then dirty the page.
            now += 1_000_000;
            f.tick(now);
            f.note_write(Vpn(3), now);
            assert_eq!(f.stats().write_aborts, attempt as u64 + 1);
        }
        // max_retries = 3, fourth write-abort fails the transaction.
        assert_eq!(f.commit_status(id), CommitStatus::Failed);
        // A failed txn no longer blocks the page: a new begin succeeds
        // after the failed one is aborted.
        f.abort(id);
        assert_eq!(f.stats().aborted, 1);
        let id2 = f.begin(Vpn(0), PageSize::Huge2M, Tier::Slow, now);
        assert_ne!(id, id2);
    }

    #[test]
    fn write_before_any_copy_is_free() {
        let mut f = fab(1_000_000_000);
        let id = f.begin(Vpn(0), PageSize::Huge2M, Tier::Slow, 0);
        f.note_write(Vpn(0), 0); // nothing copied yet → no abort
        assert_eq!(f.stats().write_aborts, 0);
        f.abort(id);
    }

    #[test]
    fn shadow_promotion_is_instant() {
        let mut f = fab(1_000_000_000);
        let id = f.begin(Vpn(512), PageSize::Huge2M, Tier::Slow, 0);
        f.tick(3_000_000);
        f.finish_commit(id); // demotion records a shadow
        let id2 = f.begin(Vpn(512), PageSize::Huge2M, Tier::Fast, 3_000_000);
        assert!(matches!(f.commit_status(id2), CommitStatus::Ready { .. }));
        assert_eq!(f.stats().shadow_hits, 1);
        f.finish_commit(id2);
        // Shadow is consumed: the next promotion has to copy.
        let id3 = f.begin(Vpn(512), PageSize::Huge2M, Tier::Fast, 3_000_000);
        assert_eq!(f.commit_status(id3), CommitStatus::Pending);
        f.abort(id3);
    }

    #[test]
    fn writes_invalidate_shadows() {
        let mut f = fab(1_000_000_000);
        let id = f.begin(Vpn(0), PageSize::Huge2M, Tier::Slow, 0);
        f.tick(3_000_000);
        f.finish_commit(id);
        f.note_write(Vpn(17), 3_000_000); // inside the shadowed huge page
        let id2 = f.begin(Vpn(0), PageSize::Huge2M, Tier::Fast, 3_000_000);
        assert_eq!(f.commit_status(id2), CommitStatus::Pending);
        assert_eq!(f.stats().shadow_hits, 0);
        f.abort(id2);
    }

    #[test]
    #[should_panic(expected = "overlaps live txn")]
    fn overlapping_begin_panics() {
        let mut f = fab(1_000_000_000);
        f.begin(Vpn(0), PageSize::Huge2M, Tier::Slow, 0);
        f.begin(Vpn(100), PageSize::Small4K, Tier::Slow, 0);
    }

    #[test]
    fn invalidation_fails_txn_but_keeps_it_resolvable() {
        let mut f = fab(1_000_000_000);
        let id = f.begin(Vpn(0), PageSize::Huge2M, Tier::Slow, 0);
        f.tick(500_000);
        f.invalidate_overlapping(Vpn(0), 512);
        assert_eq!(f.stats().invalidated, 1);
        assert_eq!(f.commit_status(id), CommitStatus::Failed);
        f.abort(id);
        assert_eq!(f.in_flight(), 0);
    }

    #[test]
    fn congestion_is_counted_when_budget_starves() {
        let mut f = fab(1_000_000_000);
        for i in 0..4 {
            f.begin(Vpn(i * 512), PageSize::Huge2M, Tier::Slow, 0);
        }
        f.tick(1_000_000); // 1MB budget for 8MB of queued copies
        assert!(f.stats().congestion_events >= 1);
        assert_eq!(f.stats().bytes_copied, 1_000_000);
    }

    #[test]
    fn shadow_capacity_is_fifo_bounded() {
        let mut f = Fabric::new(FabricConfig {
            shadow_capacity: 2,
            ..FabricConfig::default()
        });
        f.record_shadow(Vpn(0), PageSize::Huge2M);
        f.record_shadow(Vpn(512), PageSize::Huge2M);
        f.record_shadow(Vpn(1024), PageSize::Huge2M);
        assert!(!f.take_shadow(Vpn(0), PageSize::Huge2M), "oldest evicted");
        assert!(f.take_shadow(Vpn(512), PageSize::Huge2M));
        assert!(f.take_shadow(Vpn(1024), PageSize::Huge2M));
    }

    #[test]
    fn config_roundtrips() {
        let c = FabricConfig {
            enabled: true,
            link_bandwidth_bytes_per_sec: 123,
            ..FabricConfig::default()
        };
        let j = thermo_util::json::encode(&c);
        let back: FabricConfig = thermo_util::json::decode(&j).expect("decode");
        assert_eq!(c, back);
    }
}

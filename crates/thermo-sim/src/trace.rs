//! Operation-trace recording and replay.
//!
//! A [`Trace`] captures the operation stream a workload generator emits
//! (addresses, read/write flags, compute costs) so it can be replayed
//! bit-identically — against different machine configurations, different
//! policies, or in regression tests. This mirrors how the paper's authors
//! could replay identical YCSB request streams across configurations.

use crate::workload::{Access, FootprintInfo, Workload};

/// One recorded operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceOp {
    /// Memory accesses issued by the op.
    pub accesses: Vec<Access>,
    /// Compute time, ns.
    pub compute_ns: u64,
}

/// A recorded operation stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    ops: Vec<TraceOp>,
}

impl Trace {
    /// Records up to `n_ops` operations from `workload`.
    ///
    /// The workload must already be initialized (its `init` run against an
    /// engine) so its regions exist; recording itself needs no engine.
    /// Virtual time presented to the workload advances by each op's compute
    /// cost (access latencies are configuration-dependent and unknown at
    /// record time).
    pub fn record(workload: &mut dyn Workload, n_ops: usize) -> Self {
        let mut ops = Vec::with_capacity(n_ops);
        let mut now = 0u64;
        let mut accesses = Vec::new();
        for _ in 0..n_ops {
            accesses.clear();
            let Some(compute_ns) = workload.next_op(now, &mut accesses) else {
                break;
            };
            now += compute_ns;
            ops.push(TraceOp {
                accesses: accesses.clone(),
                compute_ns,
            });
        }
        Self { ops }
    }

    /// Number of recorded ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The recorded operations.
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }

    /// Total accesses across all ops.
    pub fn total_accesses(&self) -> u64 {
        self.ops.iter().map(|o| o.accesses.len() as u64).sum()
    }

    /// Serializes to JSON (infallible for this type; the `Result` is kept
    /// for call-site compatibility).
    ///
    /// # Errors
    ///
    /// Never fails.
    pub fn to_json(&self) -> Result<String, thermo_util::json::JsonError> {
        Ok(thermo_util::json::encode(self))
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error for malformed input.
    pub fn from_json(s: &str) -> Result<Self, thermo_util::json::JsonError> {
        thermo_util::json::decode(s)
    }

    /// Wraps the trace in a replaying [`Workload`]. `looped` restarts the
    /// trace at the end (for open-ended runs); otherwise replay finishes
    /// after one pass.
    pub fn into_workload(self, looped: bool) -> TraceWorkload {
        TraceWorkload {
            trace: self,
            pos: 0,
            looped,
        }
    }
}

/// Replays a [`Trace`] as a workload.
///
/// The address space the trace refers to must be mapped before replay by
/// running the original generator's `init` against the engine (replay
/// addresses are absolute).
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    trace: Trace,
    pos: usize,
    looped: bool,
}

impl Workload for TraceWorkload {
    fn name(&self) -> &str {
        "trace-replay"
    }

    fn init(&mut self, _engine: &mut crate::Engine) {}

    fn next_op(&mut self, _now_ns: u64, accesses: &mut Vec<Access>) -> Option<u64> {
        if self.trace.ops.is_empty() {
            return None;
        }
        if self.pos >= self.trace.ops.len() {
            if !self.looped {
                return None;
            }
            self.pos = 0;
        }
        let op = &self.trace.ops[self.pos];
        self.pos += 1;
        accesses.extend_from_slice(&op.accesses);
        Some(op.compute_ns)
    }

    fn footprint(&self) -> FootprintInfo {
        FootprintInfo::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_for, run_ops, Engine, NoPolicy, SimConfig};
    use thermo_mem::VirtAddr;

    struct Counter {
        base: VirtAddr,
        i: u64,
    }

    impl Workload for Counter {
        fn name(&self) -> &str {
            "counter"
        }
        fn init(&mut self, e: &mut Engine) {
            self.base = e.mmap(1 << 20, true, true, false, "buf");
        }
        fn next_op(&mut self, _n: u64, acc: &mut Vec<Access>) -> Option<u64> {
            if self.i >= 100 {
                return None;
            }
            acc.push(Access::read(self.base + (self.i * 64) % (1 << 20)));
            if self.i.is_multiple_of(3) {
                acc.push(Access::write(self.base + 4096 + (self.i * 128) % 8192));
            }
            self.i += 1;
            Some(100 + self.i)
        }
    }

    fn recorded() -> (Engine, Trace) {
        let mut e = Engine::new(SimConfig::paper_defaults(16 << 20, 16 << 20));
        let mut w = Counter {
            base: VirtAddr(0),
            i: 0,
        };
        w.init(&mut e);
        let t = Trace::record(&mut w, 1000);
        (e, t)
    }

    #[test]
    fn record_stops_at_workload_end() {
        let (_, t) = recorded();
        assert_eq!(t.len(), 100);
        assert!(t.total_accesses() > 100);
    }

    #[test]
    fn replay_reproduces_engine_behaviour() {
        let (mut e, t) = recorded();
        let mut replay = t.clone().into_workload(false);
        let out = run_for(&mut e, &mut replay, &mut NoPolicy, u64::MAX / 2);
        assert_eq!(out.ops, 100);

        // Re-replaying on a fresh identical engine gives identical stats.
        let run = |trace: Trace| {
            let mut e = Engine::new(SimConfig::paper_defaults(16 << 20, 16 << 20));
            let mut w = Counter {
                base: VirtAddr(0),
                i: 0,
            };
            w.init(&mut e); // maps the same region at the same address
            let mut r = trace.into_workload(false);
            run_ops(&mut e, &mut r, &mut NoPolicy, 100);
            (e.now_ns(), e.stats().llc_misses, e.tlb_stats().misses)
        };
        assert_eq!(run(t.clone()), run(t));
    }

    #[test]
    fn looped_replay_never_ends() {
        let (mut e, t) = recorded();
        let mut replay = t.into_workload(true);
        let out = run_ops(&mut e, &mut replay, &mut NoPolicy, 450);
        assert_eq!(out.ops, 450, "looped trace must wrap");
    }

    #[test]
    fn json_roundtrip() {
        let (_, t) = recorded();
        let j = t.to_json().unwrap();
        let back = Trace::from_json(&j).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn empty_trace_replay_is_empty() {
        let t = Trace::default();
        assert!(t.is_empty());
        let mut w = t.into_workload(true);
        let mut acc = Vec::new();
        assert!(w.next_op(0, &mut acc).is_none());
    }
}

thermo_util::json_struct!(TraceOp {
    accesses,
    compute_ns
});
thermo_util::json_struct!(Trace { ops });

//! Time-series rate recording.
//!
//! Figure 3 of the paper plots the slow-memory access rate averaged over
//! 30-second windows; Figures 5–10 plot footprint breakdowns over time.
//! [`RateSeries`] buckets event counts by virtual time, and
//! [`SampledSeries`] records point-in-time samples (e.g. bytes of cold
//! data).

/// Counts events into fixed-width virtual-time buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RateSeries {
    bucket_ns: u64,
    buckets: Vec<u64>,
}

impl RateSeries {
    /// Creates a series with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_ns` is zero.
    pub fn new(bucket_ns: u64) -> Self {
        assert!(bucket_ns > 0, "bucket width must be positive");
        Self {
            bucket_ns,
            buckets: Vec::new(),
        }
    }

    /// Bucket width, ns.
    pub fn bucket_ns(&self) -> u64 {
        self.bucket_ns
    }

    /// Records `n` events at virtual time `now_ns`.
    pub fn record(&mut self, now_ns: u64, n: u64) {
        let idx = (now_ns / self.bucket_ns) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += n;
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Per-bucket rates in events/second.
    pub fn rates_per_sec(&self) -> Vec<f64> {
        let scale = 1e9 / self.bucket_ns as f64;
        self.buckets.iter().map(|b| *b as f64 * scale).collect()
    }

    /// Moving average of the per-second rates over `window` buckets
    /// (Figure 3 averages over 30 seconds).
    pub fn smoothed_rates(&self, window: usize) -> Vec<f64> {
        let rates = self.rates_per_sec();
        if window <= 1 || rates.is_empty() {
            return rates;
        }
        let mut out = Vec::with_capacity(rates.len());
        let mut sum = 0.0;
        for i in 0..rates.len() {
            sum += rates[i];
            if i >= window {
                sum -= rates[i - window];
            }
            let n = (i + 1).min(window);
            out.push(sum / n as f64);
        }
        out
    }
}

/// Point-in-time samples of a value (e.g. cold bytes at each scan).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SampledSeries {
    points: Vec<(u64, f64)>,
}

impl SampledSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `value` at time `now_ns`.
    pub fn record(&mut self, now_ns: u64, value: f64) {
        self.points.push((now_ns, value));
    }

    /// All `(time_ns, value)` points in recording order.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Last recorded value, if any.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|(_, v)| *v)
    }

    /// Time-unweighted mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|(_, v)| v).sum::<f64>() / self.points.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_buckets() {
        let mut s = RateSeries::new(1_000_000_000);
        s.record(0, 5);
        s.record(500_000_000, 5);
        s.record(1_500_000_000, 7);
        assert_eq!(s.buckets(), &[10, 7]);
        assert_eq!(s.total(), 17);
    }

    #[test]
    fn rates_scale_with_bucket_width() {
        let mut s = RateSeries::new(500_000_000); // 0.5s buckets
        s.record(0, 10);
        assert_eq!(s.rates_per_sec()[0], 20.0);
    }

    #[test]
    fn smoothing_averages() {
        let mut s = RateSeries::new(1_000_000_000);
        for (t, n) in [(0u64, 10u64), (1, 20), (2, 30), (3, 40)] {
            s.record(t * 1_000_000_000, n);
        }
        let sm = s.smoothed_rates(2);
        assert_eq!(sm, vec![10.0, 15.0, 25.0, 35.0]);
        // window 1 = raw
        assert_eq!(s.smoothed_rates(1), s.rates_per_sec());
    }

    #[test]
    fn gaps_are_zero_buckets() {
        let mut s = RateSeries::new(1_000_000_000);
        s.record(3_200_000_000, 1);
        assert_eq!(s.buckets(), &[0, 0, 0, 1]);
    }

    #[test]
    fn sampled_series_basics() {
        let mut s = SampledSeries::new();
        assert_eq!(s.last(), None);
        assert_eq!(s.mean(), 0.0);
        s.record(1, 2.0);
        s.record(2, 4.0);
        assert_eq!(s.last(), Some(4.0));
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.points().len(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bucket_panics() {
        RateSeries::new(0);
    }
}

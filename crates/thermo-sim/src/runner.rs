//! The run loop: interleaves application operations with kernel policy
//! ticks on the virtual timeline.
//!
//! The paper's setup runs the application continuously while Thermostat's
//! daemon wakes up every scan interval; here the same interleaving happens
//! deterministically: before each operation the runner fires any policy
//! whose next deadline has passed.

use crate::engine::Engine;
use crate::workload::{Access, Workload};

/// A kernel-side policy that wants periodic control of the machine
/// (Thermostat's daemon, kstaled, or nothing).
pub trait PolicyHook {
    /// Next virtual time at which [`tick`](Self::tick) should run
    /// (`u64::MAX` = never).
    fn next_due_ns(&self) -> u64;

    /// Runs one policy step at the current virtual time.
    fn tick(&mut self, engine: &mut Engine);

    /// Human-readable policy name, used in scheduler component labels
    /// and error messages.
    fn policy_name(&self) -> &str {
        "policy"
    }
}

/// The no-op policy (baseline runs).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPolicy;

impl PolicyHook for NoPolicy {
    fn next_due_ns(&self) -> u64 {
        u64::MAX
    }

    fn tick(&mut self, _engine: &mut Engine) {}

    fn policy_name(&self) -> &str {
        "none"
    }
}

/// Result of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOutcome {
    /// Operations completed.
    pub ops: u64,
    /// Virtual time at start, ns.
    pub start_ns: u64,
    /// Virtual time at end, ns.
    pub end_ns: u64,
}

impl RunOutcome {
    /// Elapsed virtual time, ns.
    pub fn elapsed_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }

    /// Throughput in operations per virtual second.
    pub fn ops_per_sec(&self) -> f64 {
        let e = self.elapsed_ns();
        if e == 0 {
            0.0
        } else {
            self.ops as f64 * 1e9 / e as f64
        }
    }

    /// Slowdown of this run relative to `baseline` (same op count):
    /// `elapsed / baseline.elapsed - 1`, e.g. `0.03` = 3% slower.
    ///
    /// A zero-length baseline carries no timing information, so the
    /// comparison is defined as 0 rather than the NaN/inf the naive
    /// division would produce (which would poison every downstream
    /// aggregate it flows into).
    pub fn slowdown_vs(&self, baseline: &RunOutcome) -> f64 {
        let base = baseline.elapsed_ns();
        if base == 0 {
            return 0.0;
        }
        self.elapsed_ns() as f64 / base as f64 - 1.0
    }
}

// Serialized into the per-experiment artifacts (thermo-bench) so golden
// diffs can compare completed-op counts and virtual end times directly.
thermo_util::json_struct!(RunOutcome {
    ops,
    start_ns,
    end_ns
});

/// Runs `workload` until virtual `duration_ns` elapses (measured from the
/// engine's current time) or the workload finishes.
pub fn run_for(
    engine: &mut Engine,
    workload: &mut dyn Workload,
    policy: &mut dyn PolicyHook,
    duration_ns: u64,
) -> RunOutcome {
    let start = engine.now_ns();
    // Saturate: `duration_ns = u64::MAX` means "until the workload
    // finishes", and an engine already deep into virtual time must not
    // wrap the deadline back before `start`.
    let deadline = start.saturating_add(duration_ns);
    let mut ops = 0u64;
    let mut accesses: Vec<Access> = Vec::with_capacity(16);
    // `next_due_ns(&self)` is pure and only moves in `tick(&mut self)`,
    // so caching it turns a per-op virtual call into a compare.
    let mut due = policy.next_due_ns();
    while engine.now_ns() < deadline {
        while due <= engine.now_ns() {
            policy.tick(engine);
            due = policy.next_due_ns();
        }
        accesses.clear();
        let Some(compute_ns) = workload.next_op(engine.now_ns(), &mut accesses) else {
            break;
        };
        for a in &accesses {
            engine.access(a.va, a.write);
        }
        engine.advance_compute(compute_ns);
        ops += 1;
    }
    RunOutcome {
        ops,
        start_ns: start,
        end_ns: engine.now_ns(),
    }
}

/// Runs `workload` for `duration_ns`, recording each operation's total
/// latency (accesses + compute) into `hist` — the paper's tail-latency
/// reporting (§5).
pub fn run_for_instrumented(
    engine: &mut Engine,
    workload: &mut dyn Workload,
    policy: &mut dyn PolicyHook,
    duration_ns: u64,
    hist: &mut crate::latency::LatencyHistogram,
) -> RunOutcome {
    let start = engine.now_ns();
    // Saturating for the same reason as `run_for`.
    let deadline = start.saturating_add(duration_ns);
    let mut ops = 0u64;
    let mut accesses: Vec<Access> = Vec::with_capacity(16);
    // Same cached-deadline trick as `run_for`.
    let mut due = policy.next_due_ns();
    while engine.now_ns() < deadline {
        while due <= engine.now_ns() {
            policy.tick(engine);
            due = policy.next_due_ns();
        }
        accesses.clear();
        let Some(compute_ns) = workload.next_op(engine.now_ns(), &mut accesses) else {
            break;
        };
        let t0 = engine.now_ns();
        for a in &accesses {
            engine.access(a.va, a.write);
        }
        engine.advance_compute(compute_ns);
        hist.record(engine.now_ns() - t0);
        ops += 1;
    }
    RunOutcome {
        ops,
        start_ns: start,
        end_ns: engine.now_ns(),
    }
}

/// Runs exactly `n_ops` operations (or fewer if the workload finishes).
pub fn run_ops(
    engine: &mut Engine,
    workload: &mut dyn Workload,
    policy: &mut dyn PolicyHook,
    n_ops: u64,
) -> RunOutcome {
    let start = engine.now_ns();
    let mut ops = 0u64;
    let mut accesses: Vec<Access> = Vec::with_capacity(16);
    // Same cached-deadline trick as `run_for`.
    let mut due = policy.next_due_ns();
    while ops < n_ops {
        while due <= engine.now_ns() {
            policy.tick(engine);
            due = policy.next_due_ns();
        }
        accesses.clear();
        let Some(compute_ns) = workload.next_op(engine.now_ns(), &mut accesses) else {
            break;
        };
        for a in &accesses {
            engine.access(a.va, a.write);
        }
        engine.advance_compute(compute_ns);
        ops += 1;
    }
    RunOutcome {
        ops,
        start_ns: start,
        end_ns: engine.now_ns(),
    }
}

/// Everything a tenant shard produced, merged back in shard-id order by
/// [`run_tenants_sharded`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardOutcome {
    /// Stable shard id (`0..n_tenants`), also this tenant's job id in the
    /// execution pool.
    pub shard_id: u64,
    /// The seed this shard's engine/workload were built from
    /// (`derive_stream_seed(base_seed, shard_id)`).
    pub seed: u64,
    /// The tenant's run outcome (ops completed, virtual start/end times).
    pub outcome: RunOutcome,
    /// Final engine counters for this tenant.
    pub stats: crate::stats::EngineStats,
    /// Final footprint breakdown (per-tier, per-page-size bytes).
    pub breakdown: crate::engine::FootprintBreakdown,
}

// Serialized by multi-tenant harnesses so sharded sweeps can be golden-
// checked like single-tenant experiments.
thermo_util::json_struct!(ShardOutcome {
    shard_id,
    seed,
    outcome,
    stats,
    breakdown,
});

/// Runs `n_tenants` fully independent tenants — each its own engine,
/// workload, and policy — across the [`thermo_exec`] worker pool and
/// returns their outcomes **in shard-id order**.
///
/// `build` is called once per shard, *on the worker thread that runs the
/// shard*, with `(shard_id, seed)` where
/// `seed = derive_stream_seed(cfg.base_seed, shard_id)`; it must
/// construct the tenant purely from those two values (plus captured
/// configuration) so the shard is a pure function of its id. Each tenant
/// then runs for `duration_ns` of its own virtual time. Because tenants
/// share no state and results merge by shard id, the output is
/// byte-identical for any worker count — the scale-out path promised in
/// the ROADMAP without giving up artifact determinism.
///
/// # Errors
///
/// Returns [`thermo_exec::ExecError`] when any shard panics (the batch
/// still drains; the lowest panicking shard id is reported).
pub fn run_tenants_sharded<F>(
    n_tenants: usize,
    duration_ns: u64,
    cfg: &thermo_exec::ExecConfig,
    build: F,
) -> Result<Vec<ShardOutcome>, thermo_exec::ExecError>
where
    F: Fn(u64, u64) -> (Engine, Box<dyn Workload>, Box<dyn PolicyHook>) + Sync,
{
    // Probe tenant 0's config for the co-scheduled switch: `build` is a
    // pure function of `(shard_id, seed)`, so the extra call is free of
    // side effects, and the dispatch itself stays deterministic.
    if n_tenants > 0 {
        // thermo-lint: allow(rng_containment, reason = "the probe must see the exact seed the thermo-exec pool would hand shard 0")
        let probe_seed = thermo_util::rng::derive_stream_seed(cfg.base_seed, 0);
        let (probe, _, _) = build(0, probe_seed);
        if probe.config().sched.coscheduled {
            drop(probe);
            return crate::sched::run_tenants_coscheduled(
                n_tenants,
                duration_ns,
                cfg.base_seed,
                crate::sched::fuzz_seed_from_env(),
                build,
            )
            .map(|out| out.shards)
            .map_err(|e| {
                let crate::sched::SchedError::ComponentPanicked { group, message, .. } = e;
                thermo_exec::ExecError::JobPanicked {
                    job_id: u64::from(group),
                    message,
                }
            });
        }
    }
    let build = &build;
    let jobs: Vec<_> = (0..n_tenants)
        .map(|_| {
            move |ctx: &thermo_exec::JobCtx| {
                let (mut engine, mut workload, mut policy) = build(ctx.job_id, ctx.seed);
                workload.init(&mut engine);
                let outcome = run_for(&mut engine, workload.as_mut(), policy.as_mut(), duration_ns);
                ShardOutcome {
                    shard_id: ctx.job_id,
                    seed: ctx.seed,
                    outcome,
                    stats: engine.stats(),
                    breakdown: engine.footprint_breakdown(),
                }
            }
        })
        .collect();
    thermo_exec::run_jobs(jobs, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use thermo_mem::VirtAddr;

    /// Touches one line per op, round-robin over a small buffer.
    struct Toucher {
        base: VirtAddr,
        n: u64,
        i: u64,
        limit: Option<u64>,
    }

    impl Workload for Toucher {
        fn name(&self) -> &str {
            "toucher"
        }

        fn init(&mut self, engine: &mut Engine) {
            self.base = engine.mmap(self.n * 64, true, true, false, "buf");
        }

        fn next_op(&mut self, _now: u64, accesses: &mut Vec<Access>) -> Option<u64> {
            if let Some(l) = self.limit {
                if self.i >= l {
                    return None;
                }
            }
            accesses.push(Access::read(self.base + (self.i % self.n) * 64));
            self.i += 1;
            Some(100)
        }
    }

    /// Counts its own ticks, due every 1ms.
    struct TickCounter {
        period: u64,
        next: u64,
        ticks: u64,
    }

    impl PolicyHook for TickCounter {
        fn next_due_ns(&self) -> u64 {
            self.next
        }

        fn tick(&mut self, _e: &mut Engine) {
            self.ticks += 1;
            self.next += self.period;
        }
    }

    fn engine() -> Engine {
        Engine::new(SimConfig::paper_defaults(16 << 20, 16 << 20))
    }

    #[test]
    fn run_for_respects_deadline() {
        let mut e = engine();
        let mut w = Toucher {
            base: VirtAddr(0),
            n: 64,
            i: 0,
            limit: None,
        };
        w.init(&mut e);
        let out = run_for(&mut e, &mut w, &mut NoPolicy, 1_000_000);
        assert!(out.ops > 0);
        assert!(out.end_ns >= 1_000_000);
        assert!(out.ops_per_sec() > 0.0);
    }

    #[test]
    fn run_ops_runs_exact_count() {
        let mut e = engine();
        let mut w = Toucher {
            base: VirtAddr(0),
            n: 64,
            i: 0,
            limit: None,
        };
        w.init(&mut e);
        let out = run_ops(&mut e, &mut w, &mut NoPolicy, 500);
        assert_eq!(out.ops, 500);
    }

    #[test]
    fn finite_workload_ends_early() {
        let mut e = engine();
        let mut w = Toucher {
            base: VirtAddr(0),
            n: 64,
            i: 0,
            limit: Some(10),
        };
        w.init(&mut e);
        let out = run_for(&mut e, &mut w, &mut NoPolicy, u64::MAX / 2);
        assert_eq!(out.ops, 10);
    }

    #[test]
    fn policy_ticks_at_period() {
        let mut e = engine();
        let mut w = Toucher {
            base: VirtAddr(0),
            n: 64,
            i: 0,
            limit: None,
        };
        w.init(&mut e);
        let mut p = TickCounter {
            period: 1_000_000,
            next: 1_000_000,
            ticks: 0,
        };
        run_for(&mut e, &mut w, &mut p, 10_000_000);
        assert!(
            (9..=11).contains(&p.ticks),
            "expected ~10 ticks over 10ms at 1ms period, got {}",
            p.ticks
        );
    }

    #[test]
    fn slowdown_math() {
        let base = RunOutcome {
            ops: 100,
            start_ns: 0,
            end_ns: 1_000,
        };
        let slower = RunOutcome {
            ops: 100,
            start_ns: 0,
            end_ns: 1_030,
        };
        assert!((slower.slowdown_vs(&base) - 0.03).abs() < 1e-12);
    }

    #[test]
    fn slowdown_vs_zero_length_baseline_is_finite() {
        let empty = RunOutcome {
            ops: 0,
            start_ns: 5,
            end_ns: 5,
        };
        let run = RunOutcome {
            ops: 100,
            start_ns: 0,
            end_ns: 1_000,
        };
        assert_eq!(run.slowdown_vs(&empty), 0.0, "no baseline info => 0");
        assert_eq!(empty.slowdown_vs(&empty), 0.0);
        assert!(run.slowdown_vs(&empty).is_finite());
    }

    #[test]
    fn run_for_deadline_saturates_instead_of_overflowing() {
        let mut e = engine();
        let mut w = Toucher {
            base: VirtAddr(0),
            n: 64,
            i: 0,
            limit: Some(10),
        };
        w.init(&mut e);
        // Advance the clock, then ask for u64::MAX more: start + duration
        // would wrap to a deadline in the past without the saturation.
        e.advance_compute(1_000_000);
        let out = run_for(&mut e, &mut w, &mut NoPolicy, u64::MAX);
        assert_eq!(out.ops, 10, "workload end, not a wrapped deadline");
        let mut w2 = Toucher {
            base: VirtAddr(0),
            n: 64,
            i: 0,
            limit: Some(10),
        };
        w2.init(&mut e);
        let mut hist = crate::latency::LatencyHistogram::new();
        let out = run_for_instrumented(&mut e, &mut w2, &mut NoPolicy, u64::MAX, &mut hist);
        assert_eq!(out.ops, 10);
    }

    /// Builds one shard tenant whose length depends on the shard seed, so
    /// shard outputs are distinguishable.
    fn shard_tenant(seed: u64) -> (Engine, Box<dyn Workload>, Box<dyn PolicyHook>) {
        let w = Toucher {
            base: VirtAddr(0),
            n: 64,
            i: 0,
            limit: Some(50 + seed % 64),
        };
        (engine(), Box::new(w), Box::new(NoPolicy))
    }

    #[test]
    fn sharded_tenants_merge_by_shard_id_for_any_worker_count() {
        let run = |workers| {
            run_tenants_sharded(
                6,
                u64::MAX / 2,
                &thermo_exec::ExecConfig::new(workers, 0xbeef),
                |_, seed| shard_tenant(seed),
            )
            .unwrap()
        };
        let serial = run(1);
        assert_eq!(serial, run(4), "worker count must be unobservable");
        for (i, s) in serial.iter().enumerate() {
            assert_eq!(s.shard_id, i as u64, "merge is in shard-id order");
            assert_eq!(
                s.seed,
                thermo_util::rng::derive_stream_seed(0xbeef, i as u64)
            );
            assert_eq!(s.outcome.ops, 50 + s.seed % 64, "seed drove the run");
            assert!(s.stats.accesses > 0);
        }
        // Per-shard seeds are disjoint streams: at least two tenants must
        // have diverged in length (64 residues over 6 draws).
        let lens: std::collections::BTreeSet<u64> = serial.iter().map(|s| s.outcome.ops).collect();
        assert!(lens.len() > 1, "shards all identical: seeds not applied");
    }

    #[test]
    fn sharded_tenant_panic_reports_shard_id() {
        let err = run_tenants_sharded(
            4,
            1_000_000,
            &thermo_exec::ExecConfig::new(2, 7),
            |shard, seed| {
                if shard == 2 {
                    panic!("tenant exploded");
                }
                shard_tenant(seed)
            },
        )
        .unwrap_err();
        let thermo_exec::ExecError::JobPanicked { job_id, message } = err;
        assert_eq!(job_id, 2);
        assert!(message.contains("tenant exploded"));
    }

    #[test]
    fn shard_outcome_roundtrips_through_json() {
        let outcomes = run_tenants_sharded(
            2,
            1_000_000,
            &thermo_exec::ExecConfig::serial(3),
            |_, seed| shard_tenant(seed),
        )
        .unwrap();
        let text = thermo_util::json::encode(&outcomes[0]);
        let back: ShardOutcome = thermo_util::json::decode(&text).expect("decodes");
        assert_eq!(back, outcomes[0]);
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let mk = || {
            let mut e = engine();
            let mut w = Toucher {
                base: VirtAddr(0),
                n: 1024,
                i: 0,
                limit: None,
            };
            w.init(&mut e);
            let out = run_ops(&mut e, &mut w, &mut NoPolicy, 2000);
            (out.end_ns, e.stats().llc_misses, e.tlb_stats().misses)
        };
        assert_eq!(mk(), mk());
    }
}

//! The run loop: interleaves application operations with kernel policy
//! ticks on the virtual timeline.
//!
//! The paper's setup runs the application continuously while Thermostat's
//! daemon wakes up every scan interval; here the same interleaving happens
//! deterministically: before each operation the runner fires any policy
//! whose next deadline has passed.

use crate::engine::Engine;
use crate::workload::{Access, Workload};

/// A kernel-side policy that wants periodic control of the machine
/// (Thermostat's daemon, kstaled, or nothing).
pub trait PolicyHook {
    /// Next virtual time at which [`tick`](Self::tick) should run
    /// (`u64::MAX` = never).
    fn next_due_ns(&self) -> u64;

    /// Runs one policy step at the current virtual time.
    fn tick(&mut self, engine: &mut Engine);
}

/// The no-op policy (baseline runs).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPolicy;

impl PolicyHook for NoPolicy {
    fn next_due_ns(&self) -> u64 {
        u64::MAX
    }

    fn tick(&mut self, _engine: &mut Engine) {}
}

/// Result of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOutcome {
    /// Operations completed.
    pub ops: u64,
    /// Virtual time at start, ns.
    pub start_ns: u64,
    /// Virtual time at end, ns.
    pub end_ns: u64,
}

impl RunOutcome {
    /// Elapsed virtual time, ns.
    pub fn elapsed_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }

    /// Throughput in operations per virtual second.
    pub fn ops_per_sec(&self) -> f64 {
        let e = self.elapsed_ns();
        if e == 0 {
            0.0
        } else {
            self.ops as f64 * 1e9 / e as f64
        }
    }

    /// Slowdown of this run relative to `baseline` (same op count):
    /// `elapsed / baseline.elapsed - 1`, e.g. `0.03` = 3% slower.
    pub fn slowdown_vs(&self, baseline: &RunOutcome) -> f64 {
        self.elapsed_ns() as f64 / baseline.elapsed_ns() as f64 - 1.0
    }
}

// Serialized into the per-experiment artifacts (thermo-bench) so golden
// diffs can compare completed-op counts and virtual end times directly.
thermo_util::json_struct!(RunOutcome {
    ops,
    start_ns,
    end_ns
});

/// Runs `workload` until virtual `duration_ns` elapses (measured from the
/// engine's current time) or the workload finishes.
pub fn run_for(
    engine: &mut Engine,
    workload: &mut dyn Workload,
    policy: &mut dyn PolicyHook,
    duration_ns: u64,
) -> RunOutcome {
    let start = engine.now_ns();
    let deadline = start + duration_ns;
    let mut ops = 0u64;
    let mut accesses: Vec<Access> = Vec::with_capacity(16);
    while engine.now_ns() < deadline {
        while policy.next_due_ns() <= engine.now_ns() {
            policy.tick(engine);
        }
        accesses.clear();
        let Some(compute_ns) = workload.next_op(engine.now_ns(), &mut accesses) else {
            break;
        };
        for a in &accesses {
            engine.access(a.va, a.write);
        }
        engine.advance_compute(compute_ns);
        ops += 1;
    }
    RunOutcome {
        ops,
        start_ns: start,
        end_ns: engine.now_ns(),
    }
}

/// Runs `workload` for `duration_ns`, recording each operation's total
/// latency (accesses + compute) into `hist` — the paper's tail-latency
/// reporting (§5).
pub fn run_for_instrumented(
    engine: &mut Engine,
    workload: &mut dyn Workload,
    policy: &mut dyn PolicyHook,
    duration_ns: u64,
    hist: &mut crate::latency::LatencyHistogram,
) -> RunOutcome {
    let start = engine.now_ns();
    let deadline = start + duration_ns;
    let mut ops = 0u64;
    let mut accesses: Vec<Access> = Vec::with_capacity(16);
    while engine.now_ns() < deadline {
        while policy.next_due_ns() <= engine.now_ns() {
            policy.tick(engine);
        }
        accesses.clear();
        let Some(compute_ns) = workload.next_op(engine.now_ns(), &mut accesses) else {
            break;
        };
        let t0 = engine.now_ns();
        for a in &accesses {
            engine.access(a.va, a.write);
        }
        engine.advance_compute(compute_ns);
        hist.record(engine.now_ns() - t0);
        ops += 1;
    }
    RunOutcome {
        ops,
        start_ns: start,
        end_ns: engine.now_ns(),
    }
}

/// Runs exactly `n_ops` operations (or fewer if the workload finishes).
pub fn run_ops(
    engine: &mut Engine,
    workload: &mut dyn Workload,
    policy: &mut dyn PolicyHook,
    n_ops: u64,
) -> RunOutcome {
    let start = engine.now_ns();
    let mut ops = 0u64;
    let mut accesses: Vec<Access> = Vec::with_capacity(16);
    while ops < n_ops {
        while policy.next_due_ns() <= engine.now_ns() {
            policy.tick(engine);
        }
        accesses.clear();
        let Some(compute_ns) = workload.next_op(engine.now_ns(), &mut accesses) else {
            break;
        };
        for a in &accesses {
            engine.access(a.va, a.write);
        }
        engine.advance_compute(compute_ns);
        ops += 1;
    }
    RunOutcome {
        ops,
        start_ns: start,
        end_ns: engine.now_ns(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use thermo_mem::VirtAddr;

    /// Touches one line per op, round-robin over a small buffer.
    struct Toucher {
        base: VirtAddr,
        n: u64,
        i: u64,
        limit: Option<u64>,
    }

    impl Workload for Toucher {
        fn name(&self) -> &str {
            "toucher"
        }

        fn init(&mut self, engine: &mut Engine) {
            self.base = engine.mmap(self.n * 64, true, true, false, "buf");
        }

        fn next_op(&mut self, _now: u64, accesses: &mut Vec<Access>) -> Option<u64> {
            if let Some(l) = self.limit {
                if self.i >= l {
                    return None;
                }
            }
            accesses.push(Access::read(self.base + (self.i % self.n) * 64));
            self.i += 1;
            Some(100)
        }
    }

    /// Counts its own ticks, due every 1ms.
    struct TickCounter {
        period: u64,
        next: u64,
        ticks: u64,
    }

    impl PolicyHook for TickCounter {
        fn next_due_ns(&self) -> u64 {
            self.next
        }

        fn tick(&mut self, _e: &mut Engine) {
            self.ticks += 1;
            self.next += self.period;
        }
    }

    fn engine() -> Engine {
        Engine::new(SimConfig::paper_defaults(16 << 20, 16 << 20))
    }

    #[test]
    fn run_for_respects_deadline() {
        let mut e = engine();
        let mut w = Toucher {
            base: VirtAddr(0),
            n: 64,
            i: 0,
            limit: None,
        };
        w.init(&mut e);
        let out = run_for(&mut e, &mut w, &mut NoPolicy, 1_000_000);
        assert!(out.ops > 0);
        assert!(out.end_ns >= 1_000_000);
        assert!(out.ops_per_sec() > 0.0);
    }

    #[test]
    fn run_ops_runs_exact_count() {
        let mut e = engine();
        let mut w = Toucher {
            base: VirtAddr(0),
            n: 64,
            i: 0,
            limit: None,
        };
        w.init(&mut e);
        let out = run_ops(&mut e, &mut w, &mut NoPolicy, 500);
        assert_eq!(out.ops, 500);
    }

    #[test]
    fn finite_workload_ends_early() {
        let mut e = engine();
        let mut w = Toucher {
            base: VirtAddr(0),
            n: 64,
            i: 0,
            limit: Some(10),
        };
        w.init(&mut e);
        let out = run_for(&mut e, &mut w, &mut NoPolicy, u64::MAX / 2);
        assert_eq!(out.ops, 10);
    }

    #[test]
    fn policy_ticks_at_period() {
        let mut e = engine();
        let mut w = Toucher {
            base: VirtAddr(0),
            n: 64,
            i: 0,
            limit: None,
        };
        w.init(&mut e);
        let mut p = TickCounter {
            period: 1_000_000,
            next: 1_000_000,
            ticks: 0,
        };
        run_for(&mut e, &mut w, &mut p, 10_000_000);
        assert!(
            (9..=11).contains(&p.ticks),
            "expected ~10 ticks over 10ms at 1ms period, got {}",
            p.ticks
        );
    }

    #[test]
    fn slowdown_math() {
        let base = RunOutcome {
            ops: 100,
            start_ns: 0,
            end_ns: 1_000,
        };
        let slower = RunOutcome {
            ops: 100,
            start_ns: 0,
            end_ns: 1_030,
        };
        assert!((slower.slowdown_vs(&base) - 0.03).abs() < 1e-12);
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let mk = || {
            let mut e = engine();
            let mut w = Toucher {
                base: VirtAddr(0),
                n: 1024,
                i: 0,
                limit: None,
            };
            w.init(&mut e);
            let out = run_ops(&mut e, &mut w, &mut NoPolicy, 2000);
            (out.end_ns, e.stats().llc_misses, e.tlb_stats().misses)
        };
        assert_eq!(mk(), mk());
    }
}

//! Simulation configuration.

use crate::cache::LlcConfig;
use crate::fabric::FabricConfig;
use crate::sched::SchedConfig;
use thermo_mem::TierParams;
use thermo_trap::TrapConfig;
use thermo_vm::{TlbConfig, Vpid, WalkConfig};

/// How accesses to slow-tier pages are charged.
///
/// The paper *emulates* slow memory with BadgerTrap faults (§4.2): data
/// physically stays in DRAM, slow-tier pages stay poisoned, and every TLB
/// miss to them costs the ~1us fault. [`ColdAccessModel::FaultEmulated`]
/// reproduces that methodology exactly and is the default. `Direct` instead
/// models a real slow device: every LLC miss to a slow-tier frame pays the
/// tier's latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColdAccessModel {
    /// The paper's software emulation: poisoned PTEs, fault = slow access.
    /// LLC misses are charged DRAM latency regardless of tier.
    FaultEmulated,
    /// A physical slow device: LLC misses to slow frames pay slow latency
    /// (monitoring faults, when the policy poisons pages, still pay the
    /// trap's fault latency on top — that is the monitoring overhead a real
    /// deployment would see).
    Direct,
}

/// Full configuration of one simulated machine + guest.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// TLB geometry (§4.1 hardware by default).
    pub tlb: TlbConfig,
    /// Page-walk cost model (nested paging by default — the paper's KVM
    /// environment).
    pub walk: WalkConfig,
    /// Last-level cache.
    pub llc: LlcConfig,
    /// Fast tier (DRAM) parameters.
    pub fast: TierParams,
    /// Slow tier parameters.
    pub slow: TierParams,
    /// BadgerTrap fault latency.
    pub trap: TrapConfig,
    /// Cold access charging model.
    pub cold_model: ColdAccessModel,
    /// VPID used for the single simulated guest.
    pub vpid: Vpid,
    /// Minor-fault (demand paging) cost for a 4KB page, ns.
    pub minor_fault_small_ns: u64,
    /// Minor-fault cost for a 2MB THP allocation (includes zeroing), ns.
    pub minor_fault_huge_ns: u64,
    /// Transparent huge pages: when false every demand-paging fault maps a
    /// 4KB page (the Table 1 "THP disabled on host and guest" baseline).
    pub thp_enabled: bool,
    /// Track exact per-4KB-page access counts (ground truth for Figure 2;
    /// costs simulation speed, off by default).
    pub track_true_access: bool,
    /// OS-noise TLB flush period: when set, the whole TLB is flushed every
    /// such period of virtual time, modelling timer interrupts, context
    /// switches and vmexits that bound TLB-entry lifetime on a real host.
    /// `None` (default) relies on capacity eviction alone.
    pub tlb_flush_period_ns: Option<u64>,
    /// Bucket width for time-series rates, ns (1s by default).
    pub series_bucket_ns: u64,
    /// Migration-fabric knobs (transactional migration is off by default;
    /// `migrate_page` stays synchronous and all pre-fabric goldens hold).
    pub fabric: FabricConfig,
    /// Discrete-event co-scheduling + shared-fast-tier knobs (default
    /// off: the sharded runner and fixed per-tenant budgets, all
    /// pre-existing goldens byte-identical).
    pub sched: SchedConfig,
}

impl SimConfig {
    /// The paper's evaluation platform: nested paging, 1us trap faults,
    /// fault-emulated slow memory, with footprint-scaled cache (the paper's
    /// 45MB LLC and 512GB DRAM scale down with our scaled footprints).
    pub fn paper_defaults(fast_bytes: u64, slow_bytes: u64) -> Self {
        Self {
            tlb: TlbConfig::paper_scaled(),
            walk: WalkConfig::nested(),
            llc: LlcConfig::default(),
            fast: TierParams::dram(fast_bytes),
            slow: TierParams::slow_1us(slow_bytes),
            trap: TrapConfig::default(),
            cold_model: ColdAccessModel::FaultEmulated,
            vpid: Vpid(1),
            minor_fault_small_ns: 2_000,
            minor_fault_huge_ns: 40_000,
            thp_enabled: true,
            track_true_access: false,
            tlb_flush_period_ns: None,
            series_bucket_ns: 1_000_000_000,
            fabric: FabricConfig::default(),
            sched: SchedConfig::default(),
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper_defaults(512 << 20, 1 << 30)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermo_vm::PagingMode;

    #[test]
    fn defaults_match_paper_setup() {
        let c = SimConfig::default();
        assert_eq!(c.walk.mode, PagingMode::Nested);
        assert_eq!(c.trap.fault_latency_ns, 1_000);
        assert_eq!(c.cold_model, ColdAccessModel::FaultEmulated);
        // Footprint-scaled TLB (see TlbConfig::paper_scaled).
        assert_eq!(c.tlb.l2.entries, 128);
    }

    #[test]
    fn custom_capacity() {
        let c = SimConfig::paper_defaults(1 << 20, 2 << 20);
        assert_eq!(c.fast.capacity_bytes, 1 << 20);
        assert_eq!(c.slow.capacity_bytes, 2 << 20);
    }
}

thermo_util::json_enum!(ColdAccessModel {
    FaultEmulated,
    Direct
});
thermo_util::json_struct!(SimConfig {
    tlb,
    walk,
    llc,
    fast,
    slow,
    trap,
    cold_model,
    vpid,
    minor_fault_small_ns,
    minor_fault_huge_ns,
    thp_enabled,
    track_true_access,
    tlb_flush_period_ns,
    series_bucket_ns,
    fabric,
    sched,
});

//! Engine-level statistics.

/// Counters accumulated by the access pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Total memory accesses issued by the application.
    pub accesses: u64,
    /// Of which writes.
    pub writes: u64,
    /// Page walks performed (TLB misses).
    pub walks: u64,
    /// Total walk latency charged, ns.
    pub walk_time_ns: u64,
    /// Demand-paging minor faults that allocated a 4KB page.
    pub minor_faults_small: u64,
    /// Demand-paging minor faults that allocated a 2MB THP.
    pub minor_faults_huge: u64,
    /// LLC hits.
    pub llc_hits: u64,
    /// LLC misses.
    pub llc_misses: u64,
    /// LLC misses served by the fast tier.
    pub fast_tier_accesses: u64,
    /// LLC misses served by (or, under fault emulation, attributed to) the
    /// slow tier.
    pub slow_tier_accesses: u64,
    /// BadgerTrap faults taken on slow-tier pages (the Figure 3 numerator).
    pub slow_trap_faults: u64,
    /// BadgerTrap faults taken on fast-tier pages (sampling overhead).
    pub fast_trap_faults: u64,
    /// Application time: total ns charged to the app thread.
    pub app_time_ns: u64,
    /// Kernel time: scans, migrations and other policy work, ns. Charged to
    /// background CPUs, not the app (the paper pins clients and the VM to
    /// separate sockets), but tracked for the <1% overhead claims.
    pub kernel_time_ns: u64,
}

impl EngineStats {
    /// Fraction of app time spent in trap faults to slow pages, given the
    /// fault cost — the quantity Thermostat bounds to the target slowdown.
    pub fn slow_fault_time_fraction(&self, fault_ns: u64) -> f64 {
        if self.app_time_ns == 0 {
            return 0.0;
        }
        (self.slow_trap_faults * fault_ns) as f64 / self.app_time_ns as f64
    }

    /// Estimated slowdown over the interval since `prev`, percent — the
    /// paper's §4.3 online estimate: trap-fault time on slow pages as a
    /// share of app time, both as deltas between two snapshots of the
    /// same engine's counters.
    pub fn estimated_slowdown_pct(&self, prev: &EngineStats, fault_ns: u64) -> f64 {
        let d_app = self.app_time_ns.saturating_sub(prev.app_time_ns);
        if d_app == 0 {
            return 0.0;
        }
        let d_faults = self.slow_trap_faults.saturating_sub(prev.slow_trap_faults);
        (d_faults * fault_ns) as f64 / d_app as f64 * 100.0
    }

    /// LLC miss ratio.
    pub fn llc_miss_ratio(&self) -> f64 {
        let n = self.llc_hits + self.llc_misses;
        if n == 0 {
            0.0
        } else {
            self.llc_misses as f64 / n as f64
        }
    }
}

// Serialized inside `ShardOutcome` (multi-tenant shard runs) so sharded
// sweeps can be golden-checked like single-tenant experiments.
thermo_util::json_struct!(EngineStats {
    accesses,
    writes,
    walks,
    walk_time_ns,
    minor_faults_small,
    minor_faults_huge,
    llc_hits,
    llc_misses,
    fast_tier_accesses,
    slow_tier_accesses,
    slow_trap_faults,
    fast_trap_faults,
    app_time_ns,
    kernel_time_ns,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_handle_zero() {
        let s = EngineStats::default();
        assert_eq!(s.slow_fault_time_fraction(1000), 0.0);
        assert_eq!(s.llc_miss_ratio(), 0.0);
    }

    #[test]
    fn slow_fault_fraction() {
        let s = EngineStats {
            slow_trap_faults: 30,
            app_time_ns: 1_000_000,
            ..Default::default()
        };
        assert!((s.slow_fault_time_fraction(1_000) - 0.03).abs() < 1e-12);
    }
}

//! The virtual-time execution engine.
//!
//! [`Engine`] owns the whole simulated machine — page table, TLBs, LLC,
//! two-tier physical memory, the BadgerTrap unit and the migration engine —
//! and exposes two faces:
//!
//! * the **application face**: [`Engine::access`] runs one memory access
//!   through the pipeline (TLB → page walk → poison fault → LLC → memory
//!   tier) and charges its latency to virtual time;
//! * the **kernel face**: the operations Thermostat and kstaled perform —
//!   A-bit scans, huge-page split/collapse, PTE poisoning, and page
//!   migration between NUMA zones/tiers.
//!
//! Everything is deterministic: no host randomness, no threads.

use crate::cache::Llc;
use crate::clock::VirtualClock;
use crate::config::{ColdAccessModel, SimConfig};
use crate::process::{Process, Vma};
use crate::series::RateSeries;
use crate::stats::EngineStats;
use std::collections::HashMap;
use thermo_mem::{
    translate, MemError, MigrationEngine, MigrationStats, PageSize, Pfn, PhysicalMemory, Tier,
    VirtAddr, Vpn, PAGES_PER_HUGE,
};
use thermo_trap::{TrapStats, TrapUnit};
use thermo_vm::{
    scan_and_clear, MapError, Mapping, PageTable, ScanCost, ScanHit, Tlb, TlbOutcome, TlbStats,
    Vpid,
};

/// Kernel-time cost of one huge-page split or collapse (page-table surgery
/// plus shootdown), ns.
const THP_SURGERY_NS: u64 = 5_000;
/// Kernel-time cost per PTE visited during an A-bit scan, ns.
const SCAN_VISIT_NS: u64 = 50;
/// Kernel-time cost per TLB shootdown during an A-bit scan, ns.
const SCAN_SHOOTDOWN_NS: u64 = 1_000;

/// Footprint breakdown by page size and tier — the series plotted in the
/// paper's Figures 5–10 ("2MB_hot_data", "4KB_cold_data", ...).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FootprintBreakdown {
    /// Bytes of 2MB pages in the fast tier.
    pub huge_fast: u64,
    /// Bytes of 2MB pages in the slow tier.
    pub huge_slow: u64,
    /// Bytes of 4KB pages in the fast tier.
    pub small_fast: u64,
    /// Bytes of 4KB pages in the slow tier.
    pub small_slow: u64,
}

impl FootprintBreakdown {
    /// Total resident bytes.
    pub fn total(&self) -> u64 {
        self.huge_fast + self.huge_slow + self.small_fast + self.small_slow
    }

    /// Bytes in the slow tier (the "cold data" curves).
    pub fn cold(&self) -> u64 {
        self.huge_slow + self.small_slow
    }

    /// Fraction of the footprint in the slow tier (0 when empty).
    pub fn cold_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.cold() as f64 / t as f64
        }
    }
}

/// The simulated machine.
pub struct Engine {
    config: SimConfig,
    clock: VirtualClock,
    tlb: Tlb,
    pt: PageTable,
    mem: PhysicalMemory,
    llc: Llc,
    trap: TrapUnit,
    mig: MigrationEngine,
    process: Process,
    stats: EngineStats,
    /// Slow-tier access events per time bucket (Figure 3).
    slow_series: RateSeries,
    /// Exact per-4KB-page access counts (Figure 2 ground truth), when
    /// enabled.
    true_access: HashMap<Vpn, u64>,
    vpid: Vpid,
    next_tlb_flush_ns: u64,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now_ns", &self.clock.now_ns())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Engine {
    /// Builds a machine from `config`.
    pub fn new(config: SimConfig) -> Self {
        let mem = PhysicalMemory::new(config.fast.clone(), config.slow.clone());
        Self {
            clock: VirtualClock::new(),
            tlb: Tlb::new(config.tlb),
            pt: PageTable::new(),
            llc: Llc::new(config.llc),
            trap: TrapUnit::new(config.trap),
            mig: MigrationEngine::with_defaults(),
            process: Process::new(),
            stats: EngineStats::default(),
            slow_series: RateSeries::new(config.series_bucket_ns),
            true_access: HashMap::new(),
            vpid: config.vpid,
            next_tlb_flush_ns: config.tlb_flush_period_ns.unwrap_or(u64::MAX),
            mem,
            config,
        }
    }

    // ------------------------------------------------------------------
    // Application face
    // ------------------------------------------------------------------

    /// Maps a new VMA; frames are allocated lazily on first touch.
    pub fn mmap(
        &mut self,
        len: u64,
        thp: bool,
        writable: bool,
        file_backed: bool,
        name: impl Into<String>,
    ) -> VirtAddr {
        self.process.mmap(len, thp, writable, file_backed, name)
    }

    /// Runs one memory access through the pipeline and returns the latency
    /// charged (also advances the virtual clock).
    ///
    /// # Panics
    ///
    /// Panics on an access outside every VMA (a simulated segfault — a bug
    /// in the workload generator).
    pub fn access(&mut self, va: VirtAddr, write: bool) -> u64 {
        let vpn = va.vpn();
        self.stats.accesses += 1;
        if write {
            self.stats.writes += 1;
        }
        if self.config.track_true_access {
            *self.true_access.entry(vpn).or_insert(0) += 1;
        }

        if self.clock.now_ns() >= self.next_tlb_flush_ns {
            // OS noise: timer tick / context switch flushes the TLB.
            self.tlb.flush_all();
            let period = self
                .config
                .tlb_flush_period_ns
                .expect("flush scheduled only when configured");
            self.next_tlb_flush_ns = self.clock.now_ns() + period;
        }

        let mut lat = 0u64;
        let (base_pfn, size) = match self.tlb.lookup(vpn, self.vpid) {
            TlbOutcome::HitL1 { pfn, size } => (pfn, size),
            TlbOutcome::HitL2 { pfn, size } => {
                lat += self.config.tlb.l2_hit_ns;
                (pfn, size)
            }
            TlbOutcome::Miss => self.walk(vpn, write, &mut lat),
        };
        let pfn4k = match size {
            PageSize::Small4K => base_pfn,
            PageSize::Huge2M => base_pfn.offset(vpn.index_in_huge() as u64),
        };
        let pa = translate(va, pfn4k, PageSize::Small4K);

        if self.llc.access(pa.cache_line()) {
            self.stats.llc_hits += 1;
            lat += self.llc.hit_ns();
        } else {
            self.stats.llc_misses += 1;
            let tier = self.mem.tier_of(pfn4k);
            let mem_ns = match (self.config.cold_model, tier) {
                // Under fault emulation the data physically lives in DRAM.
                (ColdAccessModel::FaultEmulated, _) => self.config.fast.latency_ns(write),
                (ColdAccessModel::Direct, Tier::Fast) => self.config.fast.latency_ns(write),
                (ColdAccessModel::Direct, Tier::Slow) => self.config.slow.latency_ns(write),
            };
            lat += mem_ns;
            match tier {
                Tier::Fast => self.stats.fast_tier_accesses += 1,
                Tier::Slow => {
                    self.stats.slow_tier_accesses += 1;
                    if self.config.cold_model == ColdAccessModel::Direct {
                        self.slow_series.record(self.clock.now_ns(), 1);
                    }
                }
            }
            if write {
                self.mem.record_write(pfn4k, 64);
            }
        }

        self.clock.advance(lat);
        self.stats.app_time_ns += lat;
        lat
    }

    /// Charges pure compute time to the application.
    pub fn advance_compute(&mut self, ns: u64) {
        self.clock.advance(ns);
        self.stats.app_time_ns += ns;
    }

    fn walk(&mut self, vpn: Vpn, write: bool, lat: &mut u64) -> (Pfn, PageSize) {
        let mapping = match self.pt.lookup(vpn) {
            Some(m) => m,
            None => self.minor_fault(vpn, lat),
        };
        self.stats.walks += 1;
        let wc = self.config.walk.walk_cost_ns(mapping.size);
        *lat += wc;
        self.stats.walk_time_ns += wc;
        self.pt.with_pte_mut(vpn, |pte| {
            pte.set_accessed();
            if write {
                pte.set_dirty();
            }
        });
        if mapping.pte.poisoned() {
            *lat += self.trap.on_fault(mapping.base_vpn);
            match self.mem.tier_of(mapping.pte.pfn()) {
                Tier::Slow => {
                    self.stats.slow_trap_faults += 1;
                    self.slow_series.record(self.clock.now_ns(), 1);
                }
                Tier::Fast => self.stats.fast_trap_faults += 1,
            }
        }
        // BadgerTrap installs a (temporary) translation even for poisoned
        // pages, so repeated accesses only fault again after a TLB eviction
        // or shootdown.
        self.tlb
            .insert(mapping.base_vpn, mapping.pte.pfn(), mapping.size, self.vpid);
        (mapping.pte.pfn(), mapping.size)
    }

    fn minor_fault(&mut self, vpn: Vpn, lat: &mut u64) -> Mapping {
        let va = vpn.addr();
        let vma = self
            .process
            .find(va)
            .unwrap_or_else(|| panic!("segfault: access to unmapped {va}"))
            .clone();
        let huge_base = va.align_down(PageSize::Huge2M);
        let huge_fits = self.config.thp_enabled
            && vma.thp
            && huge_base >= vma.start
            && huge_base.0 + PageSize::Huge2M.bytes() as u64 <= vma.end().0;
        if huge_fits {
            if let Ok(frame) = self.mem.alloc(Tier::Fast, PageSize::Huge2M) {
                self.pt
                    .map_huge(huge_base.vpn(), frame, vma.writable)
                    .expect("demand-paged huge window must be unmapped");
                *lat += self.config.minor_fault_huge_ns;
                self.stats.minor_faults_huge += 1;
                return self.pt.lookup(vpn).expect("just mapped");
            }
        }
        let frame = self
            .mem
            .alloc(Tier::Fast, PageSize::Small4K)
            .expect("fast tier out of memory during demand paging");
        self.pt
            .map_small(vpn, frame, vma.writable)
            .expect("demand-paged page must be unmapped");
        *lat += self.config.minor_fault_small_ns;
        self.stats.minor_faults_small += 1;
        self.pt.lookup(vpn).expect("just mapped")
    }

    // ------------------------------------------------------------------
    // Kernel face
    // ------------------------------------------------------------------

    /// Splits the huge page at `base_vpn` (Thermostat sampling step 1).
    ///
    /// # Errors
    ///
    /// Propagates [`MapError`] from the page table.
    pub fn split_huge(&mut self, base_vpn: Vpn) -> Result<(), MapError> {
        self.pt.split_huge(base_vpn)?;
        self.tlb.shootdown(base_vpn, PageSize::Huge2M, self.vpid);
        self.stats.kernel_time_ns += THP_SURGERY_NS;
        Ok(())
    }

    /// Collapses 512 4KB PTEs back into a huge page.
    ///
    /// # Errors
    ///
    /// Propagates [`MapError`] (e.g. frames not contiguous after per-4KB
    /// migration).
    pub fn collapse_huge(&mut self, base_vpn: Vpn) -> Result<(), MapError> {
        self.pt.collapse_huge(base_vpn)?;
        // Stale 4KB TLB entries still translate to the same frames, so only
        // kernel cost is charged; entries age out naturally.
        self.stats.kernel_time_ns += THP_SURGERY_NS;
        Ok(())
    }

    /// Poisons the leaf at `base_vpn` for access counting.
    pub fn poison_page(&mut self, base_vpn: Vpn, size: PageSize) {
        self.trap
            .poison(&mut self.pt, &mut self.tlb, self.vpid, base_vpn, size);
        self.stats.kernel_time_ns += SCAN_SHOOTDOWN_NS;
    }

    /// Unpoisons the leaf at `base_vpn`, returning its fault count.
    pub fn unpoison_page(&mut self, base_vpn: Vpn) -> u64 {
        self.stats.kernel_time_ns += SCAN_SHOOTDOWN_NS;
        self.trap
            .unpoison(&mut self.pt, &mut self.tlb, self.vpid, base_vpn)
    }

    /// Scans and clears Accessed bits over `[start, start + n_pages)`,
    /// appending the results to `out` and charging kernel time.
    pub fn scan_and_clear_accessed(
        &mut self,
        start: Vpn,
        n_pages: u64,
        out: &mut Vec<ScanHit>,
    ) -> ScanCost {
        let cost = scan_and_clear(&mut self.pt, &mut self.tlb, self.vpid, start, n_pages, out);
        self.stats.kernel_time_ns += cost.time_ns(SCAN_VISIT_NS, SCAN_SHOOTDOWN_NS);
        cost
    }

    /// Reads Accessed bits without clearing (no shootdowns).
    pub fn read_accessed(&mut self, start: Vpn, n_pages: u64, out: &mut Vec<ScanHit>) -> ScanCost {
        let cost = thermo_vm::read_accessed(&mut self.pt, start, n_pages, out);
        self.stats.kernel_time_ns += cost.ptes_visited * SCAN_VISIT_NS;
        cost
    }

    /// Migrates the leaf at `base_vpn` to `target`, preserving all PTE flags
    /// (including poison) and keeping the BadgerTrap counter intact.
    ///
    /// # Errors
    ///
    /// [`MemError::AlreadyInTier`] if the page is already there, or
    /// [`MemError::OutOfMemory`] if the target tier is full.
    ///
    /// # Panics
    ///
    /// Panics if `base_vpn` is not the base of a mapped leaf.
    pub fn migrate_page(&mut self, base_vpn: Vpn, target: Tier) -> Result<(), MemError> {
        let m = self.pt.lookup(base_vpn).expect("migrating unmapped page");
        assert_eq!(m.base_vpn, base_vpn, "migrate must target the leaf base");
        let old = m.pte.pfn();
        let cur = self.mem.tier_of(old);
        if cur == target {
            return Err(MemError::AlreadyInTier {
                pfn: old,
                tier: cur,
            });
        }
        let new = self.mem.alloc(target, m.size)?;
        for i in 0..m.size.small_pages() as u64 {
            self.llc.invalidate_frame(old.offset(i));
        }
        self.mem.free(cur, old, m.size);
        self.pt.with_pte_mut(base_vpn, |pte| pte.set_pfn(new));
        self.tlb.shootdown(base_vpn, m.size, self.vpid);
        let cost = self.mig.record(target, m.size, self.clock.now_ns());
        self.stats.kernel_time_ns += cost;
        Ok(())
    }

    /// Migrates a *split* huge page (512 4KB leaves starting at huge-aligned
    /// `base_vpn`) into one physically contiguous huge frame in `target`, so
    /// a later [`collapse_huge`](Self::collapse_huge) can restore the 2MB
    /// mapping. Counted as one 2MB migration.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfMemory`] when `target` lacks a huge frame;
    /// [`MemError::AlreadyInTier`] when the first child already lives there.
    ///
    /// # Panics
    ///
    /// Panics if any of the 512 children is missing or not a 4KB leaf.
    pub fn migrate_split_huge(&mut self, base_vpn: Vpn, target: Tier) -> Result<(), MemError> {
        assert!(
            base_vpn.is_huge_aligned(),
            "split-huge migration needs an aligned base"
        );
        let first = self
            .pt
            .lookup(base_vpn)
            .expect("migrating unmapped split page");
        assert_eq!(first.size, PageSize::Small4K, "page is not split");
        if self.mem.tier_of(first.pte.pfn()) == target {
            return Err(MemError::AlreadyInTier {
                pfn: first.pte.pfn(),
                tier: target,
            });
        }
        let new = self.mem.alloc(target, PageSize::Huge2M)?;
        for i in 0..PAGES_PER_HUGE as u64 {
            let vpn = base_vpn.offset(i);
            let m = self.pt.lookup(vpn).expect("split page child missing");
            assert_eq!(m.size, PageSize::Small4K, "child is not a 4KB leaf");
            let old = m.pte.pfn();
            self.llc.invalidate_frame(old);
            self.mem.free(self.mem.tier_of(old), old, PageSize::Small4K);
            self.pt.with_pte_mut(vpn, |pte| pte.set_pfn(new.offset(i)));
            self.tlb.shootdown(vpn, PageSize::Small4K, self.vpid);
        }
        let cost = self
            .mig
            .record(target, PageSize::Huge2M, self.clock.now_ns());
        self.stats.kernel_time_ns += cost;
        Ok(())
    }

    /// Tier currently backing the leaf that covers `vpn`, or `None` when
    /// unmapped.
    pub fn tier_of_vpn(&self, vpn: Vpn) -> Option<Tier> {
        self.pt.lookup(vpn).map(|m| self.mem.tier_of(m.pte.pfn()))
    }

    /// Computes the footprint breakdown by walking every VMA's leaves.
    pub fn footprint_breakdown(&mut self) -> FootprintBreakdown {
        let mut b = FootprintBreakdown::default();
        let vmas: Vec<(Vpn, u64)> = self
            .process
            .vmas()
            .iter()
            .map(|v| (v.start.vpn(), v.len / 4096))
            .collect();
        let mem = &self.mem;
        for (start, n) in vmas {
            self.pt.for_each_leaf_mut(start, n, |_, size, pte| {
                let tier = mem.tier_of(pte.pfn());
                match (size, tier) {
                    (PageSize::Huge2M, Tier::Fast) => b.huge_fast += size.bytes() as u64,
                    (PageSize::Huge2M, Tier::Slow) => b.huge_slow += size.bytes() as u64,
                    (PageSize::Small4K, Tier::Fast) => b.small_fast += size.bytes() as u64,
                    (PageSize::Small4K, Tier::Slow) => b.small_slow += size.bytes() as u64,
                }
            });
        }
        b
    }

    /// Computes the footprint breakdown of every VMA separately, keyed by
    /// the VMA name — which application structure went cold (e.g. the
    /// paper's observation that TPCC's LINEITEM table carries the cold
    /// mass).
    pub fn region_breakdown(&mut self) -> Vec<(String, FootprintBreakdown)> {
        let vmas: Vec<(String, Vpn, u64)> = self
            .process
            .vmas()
            .iter()
            .map(|v| (v.name.clone(), v.start.vpn(), v.len / 4096))
            .collect();
        let mem = &self.mem;
        let mut out = Vec::with_capacity(vmas.len());
        for (name, start, n) in vmas {
            let mut b = FootprintBreakdown::default();
            self.pt.for_each_leaf_mut(start, n, |_, size, pte| {
                let tier = mem.tier_of(pte.pfn());
                match (size, tier) {
                    (PageSize::Huge2M, Tier::Fast) => b.huge_fast += size.bytes() as u64,
                    (PageSize::Huge2M, Tier::Slow) => b.huge_slow += size.bytes() as u64,
                    (PageSize::Small4K, Tier::Fast) => b.small_fast += size.bytes() as u64,
                    (PageSize::Small4K, Tier::Slow) => b.small_slow += size.bytes() as u64,
                }
            });
            out.push((name, b));
        }
        out
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Current virtual time, ns.
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Engine statistics.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// TLB statistics.
    pub fn tlb_stats(&self) -> TlbStats {
        self.tlb.stats()
    }

    /// Trap statistics.
    pub fn trap_stats(&self) -> TrapStats {
        self.trap.stats()
    }

    /// Migration statistics.
    pub fn migration_stats(&self) -> MigrationStats {
        self.mig.stats()
    }

    /// LLC statistics.
    pub fn llc_stats(&self) -> crate::cache::LlcStats {
        self.llc.stats()
    }

    /// The slow-tier access-rate series (Figure 3).
    pub fn slow_series(&self) -> &RateSeries {
        &self.slow_series
    }

    /// Resident set size (bytes of mapped physical memory).
    pub fn rss_bytes(&self) -> u64 {
        self.pt.mapped_bytes()
    }

    /// The simulated process (VMA listing).
    pub fn process(&self) -> &Process {
        &self.process
    }

    /// All VMAs (convenience).
    pub fn vmas(&self) -> &[Vma] {
        self.process.vmas()
    }

    /// Configuration (read-only).
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The trap unit (for policy layers that read per-page counters).
    pub fn trap(&self) -> &TrapUnit {
        &self.trap
    }

    /// Mutable trap unit access (counter take/reset by the policy daemon).
    pub fn trap_mut(&mut self) -> &mut TrapUnit {
        &mut self.trap
    }

    /// Read-only page table access.
    pub fn page_table(&self) -> &PageTable {
        &self.pt
    }

    /// Exact per-4KB-page access counts (empty unless
    /// `config.track_true_access`).
    pub fn true_access_counts(&self) -> &HashMap<Vpn, u64> {
        &self.true_access
    }

    /// Clears the exact access counters.
    pub fn reset_true_access(&mut self) {
        self.true_access.clear();
    }

    /// Free bytes in `tier`.
    pub fn free_bytes(&self, tier: Tier) -> u64 {
        self.mem.free_bytes(tier)
    }

    /// Physical memory (wear statistics etc.).
    pub fn memory(&self) -> &PhysicalMemory {
        &self.mem
    }
}

thermo_util::json_struct!(FootprintBreakdown {
    huge_fast,
    huge_slow,
    small_fast,
    small_slow
});

#[cfg(test)]
mod tests {
    use super::*;

    fn small_engine() -> Engine {
        Engine::new(SimConfig::paper_defaults(64 << 20, 64 << 20))
    }

    #[test]
    fn first_touch_allocates_thp() {
        let mut e = small_engine();
        let base = e.mmap(4 << 20, true, true, false, "heap");
        e.access(base + 123, false);
        assert_eq!(e.stats().minor_faults_huge, 1);
        assert_eq!(e.rss_bytes(), 2 << 20);
        // Second access in same huge page: no new fault, TLB hit.
        e.access(base + 4096, false);
        assert_eq!(e.stats().minor_faults_huge, 1);
        assert_eq!(e.tlb_stats().l1_hits, 1);
    }

    #[test]
    fn non_thp_vma_uses_small_pages() {
        let mut e = small_engine();
        let base = e.mmap(4 << 20, false, true, false, "file");
        e.access(base, false);
        assert_eq!(e.stats().minor_faults_small, 1);
        assert_eq!(e.rss_bytes(), 4096);
    }

    #[test]
    #[should_panic(expected = "segfault")]
    fn out_of_vma_access_panics() {
        let mut e = small_engine();
        e.access(VirtAddr(0x100), false);
    }

    #[test]
    fn llc_hit_after_miss() {
        let mut e = small_engine();
        let base = e.mmap(2 << 20, true, true, false, "heap");
        e.access(base, false);
        assert_eq!(e.stats().llc_misses, 1);
        e.access(base + 8, false); // same line
        assert_eq!(e.stats().llc_hits, 1);
    }

    #[test]
    fn clock_advances_with_access_latency() {
        let mut e = small_engine();
        let base = e.mmap(2 << 20, true, true, false, "heap");
        let lat = e.access(base, false);
        assert!(lat > 0);
        assert_eq!(e.now_ns(), lat);
        e.advance_compute(500);
        assert_eq!(e.now_ns(), lat + 500);
    }

    #[test]
    fn poison_fault_counted_and_charged() {
        let mut e = small_engine();
        let base = e.mmap(2 << 20, true, true, false, "heap");
        e.access(base, false); // demand-page as THP
        let hvpn = base.vpn();
        e.poison_page(hvpn, PageSize::Huge2M);
        let lat = e.access(base + 64, false);
        assert!(lat >= 1_000, "fault latency must be charged, got {lat}");
        assert_eq!(e.trap().count(hvpn), Some(1));
        assert_eq!(e.stats().fast_trap_faults, 1);
        // TLB entry installed by the handler: next access doesn't fault.
        e.access(base + 128, false);
        assert_eq!(e.trap().count(hvpn), Some(1));
        assert_eq!(e.unpoison_page(hvpn), 1);
    }

    #[test]
    fn split_then_sample_then_collapse() {
        let mut e = small_engine();
        let base = e.mmap(2 << 20, true, true, false, "heap");
        e.access(base, false);
        let hvpn = base.vpn();
        e.split_huge(hvpn).unwrap();
        // Poison one 4KB child; access it.
        e.poison_page(hvpn.offset(3), PageSize::Small4K);
        e.access(base + 3 * 4096, true);
        assert_eq!(e.trap().count(hvpn.offset(3)), Some(1));
        assert_eq!(e.unpoison_page(hvpn.offset(3)), 1);
        e.collapse_huge(hvpn).unwrap();
        assert_eq!(e.page_table().mapped_huge_pages(), 1);
    }

    #[test]
    fn migrate_huge_to_slow_and_back() {
        let mut e = small_engine();
        let base = e.mmap(2 << 20, true, true, false, "heap");
        e.access(base, false);
        let hvpn = base.vpn();
        assert_eq!(e.tier_of_vpn(hvpn), Some(Tier::Fast));
        e.migrate_page(hvpn, Tier::Slow).unwrap();
        assert_eq!(e.tier_of_vpn(hvpn), Some(Tier::Slow));
        // Already there -> error.
        assert!(matches!(
            e.migrate_page(hvpn, Tier::Slow),
            Err(MemError::AlreadyInTier { .. })
        ));
        e.migrate_page(hvpn, Tier::Fast).unwrap();
        assert_eq!(e.tier_of_vpn(hvpn), Some(Tier::Fast));
        let ms = e.migration_stats();
        assert_eq!(ms.to_slow_pages, 1);
        assert_eq!(ms.back_to_fast_pages, 1);
    }

    #[test]
    fn slow_trap_fault_recorded_in_series() {
        let mut e = small_engine();
        let base = e.mmap(2 << 20, true, true, false, "heap");
        e.access(base, false);
        let hvpn = base.vpn();
        e.migrate_page(hvpn, Tier::Slow).unwrap();
        e.poison_page(hvpn, PageSize::Huge2M);
        e.access(base + 64, false);
        assert_eq!(e.stats().slow_trap_faults, 1);
        assert_eq!(e.slow_series().total(), 1);
    }

    #[test]
    fn migrate_split_huge_restores_contiguity() {
        let mut e = small_engine();
        let base = e.mmap(2 << 20, true, true, false, "heap");
        e.access(base, false);
        let hvpn = base.vpn();
        e.split_huge(hvpn).unwrap();
        e.migrate_split_huge(hvpn, Tier::Slow).unwrap();
        assert_eq!(e.tier_of_vpn(hvpn), Some(Tier::Slow));
        // Contiguous again: collapse must succeed.
        e.collapse_huge(hvpn).unwrap();
        assert_eq!(e.page_table().mapped_huge_pages(), 1);
        assert_eq!(e.migration_stats().to_slow_bytes, 2 << 20);
    }

    #[test]
    fn footprint_breakdown_tracks_tiers_and_sizes() {
        let mut e = small_engine();
        let a = e.mmap(2 << 20, true, true, false, "huge");
        let b = e.mmap(8192, false, true, false, "small");
        e.access(a, false);
        e.access(b, false);
        e.access(b + 4096, false);
        let fb = e.footprint_breakdown();
        assert_eq!(fb.huge_fast, 2 << 20);
        assert_eq!(fb.small_fast, 8192);
        assert_eq!(fb.cold(), 0);
        e.migrate_page(a.vpn(), Tier::Slow).unwrap();
        let fb = e.footprint_breakdown();
        assert_eq!(fb.huge_slow, 2 << 20);
        assert!((fb.cold_fraction() - (2 << 20) as f64 / fb.total() as f64).abs() < 1e-12);
    }

    #[test]
    fn region_breakdown_attributes_tiers_per_vma() {
        let mut e = small_engine();
        let a = e.mmap(2 << 20, true, true, false, "hot-region");
        let b = e.mmap(2 << 20, true, true, false, "cold-region");
        e.access(a, false);
        e.access(b, false);
        e.migrate_page(b.vpn(), Tier::Slow).unwrap();
        let rb = e.region_breakdown();
        let get = |name: &str| {
            rb.iter()
                .find(|(n, _)| n == name)
                .map(|(_, b)| *b)
                .expect("region present")
        };
        assert_eq!(get("hot-region").cold(), 0);
        assert_eq!(get("cold-region").cold(), 2 << 20);
        // Regions sum to the global breakdown.
        let total: u64 = rb.iter().map(|(_, b)| b.total()).sum();
        assert_eq!(total, e.footprint_breakdown().total());
    }

    #[test]
    fn scan_accessed_via_engine() {
        let mut e = small_engine();
        let base = e.mmap(2 << 20, true, true, false, "heap");
        e.access(base, false);
        let mut hits = Vec::new();
        e.scan_and_clear_accessed(base.vpn(), 512, &mut hits);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].accessed);
        // Re-scan without intervening access: idle.
        hits.clear();
        e.scan_and_clear_accessed(base.vpn(), 512, &mut hits);
        assert!(!hits[0].accessed);
        // Access again (TLB was shot down, so the walk re-sets A).
        e.access(base, false);
        hits.clear();
        e.scan_and_clear_accessed(base.vpn(), 512, &mut hits);
        assert!(hits[0].accessed);
    }

    #[test]
    fn true_access_tracking_when_enabled() {
        let mut cfg = SimConfig::paper_defaults(64 << 20, 64 << 20);
        cfg.track_true_access = true;
        let mut e = Engine::new(cfg);
        let base = e.mmap(2 << 20, true, true, false, "heap");
        e.access(base, false);
        e.access(base, true);
        e.access(base + 4096, false);
        assert_eq!(e.true_access_counts()[&base.vpn()], 2);
        assert_eq!(e.true_access_counts()[&(base + 4096).vpn()], 1);
        e.reset_true_access();
        assert!(e.true_access_counts().is_empty());
    }

    #[test]
    fn thp_fault_falls_back_to_small_pages_when_no_huge_frame_is_free() {
        // One 2MB block of fast memory; a 4KB allocation breaks it, so the
        // later THP-eligible touch cannot get a huge frame and must fall
        // back to a 4KB mapping (Linux THP does the same).
        let mut cfg = SimConfig::paper_defaults(2 << 20, 16 << 20);
        let mut e = Engine::new(cfg.clone());
        let small_vma = e.mmap(4096, false, true, false, "small");
        e.access(small_vma, true); // carves a 4KB frame out of the only block
        let thp_vma = e.mmap(2 << 20, true, true, false, "thp");
        e.access(thp_vma, true);
        assert_eq!(
            e.stats().minor_faults_huge,
            0,
            "no huge frame was available"
        );
        assert_eq!(e.stats().minor_faults_small, 2);
        assert_eq!(e.rss_bytes(), 2 * 4096);
        // And with THP disabled the same layout never even tries.
        cfg.thp_enabled = false;
        let mut e2 = Engine::new(cfg);
        let v = e2.mmap(2 << 20, true, true, false, "thp");
        e2.access(v, true);
        assert_eq!(e2.stats().minor_faults_huge, 0);
        assert_eq!(e2.stats().minor_faults_small, 1);
    }

    #[test]
    fn os_noise_flush_causes_rewalks() {
        let mut cfg = SimConfig::paper_defaults(64 << 20, 64 << 20);
        cfg.tlb_flush_period_ns = Some(10_000);
        let mut e = Engine::new(cfg);
        let base = e.mmap(2 << 20, true, true, false, "heap");
        e.access(base, true);
        let walks_before = e.stats().walks;
        // Two accesses separated by more than the flush period: the second
        // must re-walk even though the translation was cached.
        e.advance_compute(50_000);
        e.access(base + 64, false);
        assert!(e.stats().walks > walks_before, "flush must force a re-walk");
    }

    #[test]
    fn writes_set_dirty_bit_and_feed_wear_on_slow_tier() {
        let mut e = small_engine();
        let base = e.mmap(2 << 20, true, true, false, "heap");
        e.access(base, true);
        assert!(e.page_table().lookup(base.vpn()).unwrap().pte.dirty());
        e.migrate_page(base.vpn(), Tier::Slow).unwrap();
        // Writes to the slow tier are recorded as device wear.
        e.access(base + 4096, true);
        assert!(e.memory().wear().stats().total_bytes_written > 0);
    }

    #[test]
    fn direct_mode_charges_slow_latency_on_llc_miss() {
        let mut cfg = SimConfig::paper_defaults(64 << 20, 64 << 20);
        cfg.cold_model = ColdAccessModel::Direct;
        let mut e = Engine::new(cfg);
        let base = e.mmap(2 << 20, true, true, false, "heap");
        e.access(base, false);
        e.migrate_page(base.vpn(), Tier::Slow).unwrap();
        // Different line, LLC miss, slow tier, no poison.
        let lat = e.access(base + 4096, false);
        assert!(lat >= 1_000, "slow read must cost ~1us, got {lat}");
        assert_eq!(e.stats().slow_tier_accesses, 1);
        assert_eq!(e.slow_series().total(), 1);
    }
}

//! Virtual time.
//!
//! The entire simulation is single-threaded and deterministic; time is a
//! monotonically increasing nanosecond counter advanced by access latencies
//! and per-op compute costs. Slowdown (the quantity Thermostat bounds) is a
//! ratio of virtual times between runs.

/// Monotonic virtual clock, in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VirtualClock {
    now_ns: u64,
}

impl VirtualClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current time, ns.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Advances by `ns`.
    pub fn advance(&mut self, ns: u64) {
        self.now_ns += ns;
    }

    /// Advances to an absolute time (no-op if already past it).
    pub fn advance_to(&mut self, t_ns: u64) {
        if t_ns > self.now_ns {
            self.now_ns = t_ns;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(5);
        c.advance(10);
        assert_eq!(c.now_ns(), 15);
    }

    #[test]
    fn advance_to_never_goes_back() {
        let mut c = VirtualClock::new();
        c.advance(100);
        c.advance_to(50);
        assert_eq!(c.now_ns(), 100);
        c.advance_to(150);
        assert_eq!(c.now_ns(), 150);
    }
}

//! Last-level cache model.
//!
//! A physically-indexed, set-associative, true-LRU cache over 64-byte
//! lines. Thermostat cares about the LLC for one specific reason (§3.3):
//! the TLB-miss counts BadgerTrap gathers are a *proxy* for LLC misses, and
//! the proxy is accurate precisely for cold pages ("nearly all accesses
//! incur both TLB and cache misses as there is no temporal locality").
//! Modelling the LLC lets the harnesses verify that claim (and lets the
//! Figure 2 study measure true memory access rates).

use thermo_mem::{Pfn, CACHE_LINE_BYTES};

/// Geometry and latency of the LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcConfig {
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Hit latency, ns.
    pub hit_ns: u64,
}

impl LlcConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        let lines = self.size_bytes as usize / CACHE_LINE_BYTES;
        assert!(
            lines.is_multiple_of(self.ways) && lines > 0,
            "bad LLC geometry"
        );
        lines / self.ways
    }
}

impl Default for LlcConfig {
    /// 4 MiB, 16-way: the paper's 45MB LLC scaled down in proportion to the
    /// scaled application footprints (DESIGN.md §1).
    fn default() -> Self {
        Self {
            size_bytes: 4 << 20,
            ways: 16,
            hit_ns: 30,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    valid: bool,
    tag: u64,
    lru: u64,
}

const INVALID_LINE: Line = Line {
    valid: false,
    tag: 0,
    lru: 0,
};

/// Hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LlcStats {
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Lines invalidated by frame invalidations.
    pub invalidations: u64,
}

impl LlcStats {
    /// Miss ratio in `[0,1]`; 0 with no accesses.
    pub fn miss_ratio(&self) -> f64 {
        let n = self.hits + self.misses;
        if n == 0 {
            0.0
        } else {
            self.misses as f64 / n as f64
        }
    }
}

/// The last-level cache.
pub struct Llc {
    config: LlcConfig,
    sets: usize,
    lines: Vec<Line>,
    tick: u64,
    stats: LlcStats,
}

impl std::fmt::Debug for Llc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Llc")
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Llc {
    /// Creates an LLC with the given geometry.
    pub fn new(config: LlcConfig) -> Self {
        let sets = config.sets();
        Self {
            config,
            sets,
            lines: vec![INVALID_LINE; sets * config.ways],
            tick: 0,
            stats: LlcStats::default(),
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &LlcConfig {
        &self.config
    }

    /// Accesses the cache line containing physical line number `line`
    /// (a physical address divided by 64). Returns `true` on hit; on miss
    /// the line is filled, evicting the set's LRU victim.
    pub fn access(&mut self, line: u64) -> bool {
        self.tick += 1;
        let set = (line as usize) % self.sets;
        let ways = self.config.ways;
        let slots = &mut self.lines[set * ways..(set + 1) * ways];
        let mut victim = 0;
        let mut best = u64::MAX;
        for (i, l) in slots.iter_mut().enumerate() {
            if l.valid && l.tag == line {
                l.lru = self.tick;
                self.stats.hits += 1;
                return true;
            }
            if !l.valid {
                if best != 0 {
                    victim = i;
                    best = 0;
                }
            } else if best != 0 && l.lru < best {
                best = l.lru;
                victim = i;
            }
        }
        slots[victim] = Line {
            valid: true,
            tag: line,
            lru: self.tick,
        };
        self.stats.misses += 1;
        false
    }

    /// Invalidates every line belonging to the 4KB frame `pfn` (used when a
    /// frame is migrated or freed so a reused frame cannot produce phantom
    /// hits). Returns the number of lines dropped.
    pub fn invalidate_frame(&mut self, pfn: Pfn) -> u64 {
        let first_line = pfn.addr().0 / CACHE_LINE_BYTES as u64;
        let lines_per_page = 4096 / CACHE_LINE_BYTES as u64;
        let mut dropped = 0;
        for line in first_line..first_line + lines_per_page {
            let set = (line as usize) % self.sets;
            let ways = self.config.ways;
            for l in &mut self.lines[set * ways..(set + 1) * ways] {
                if l.valid && l.tag == line {
                    l.valid = false;
                    dropped += 1;
                }
            }
        }
        self.stats.invalidations += dropped;
        dropped
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> LlcStats {
        self.stats
    }

    /// Hit latency, ns.
    pub fn hit_ns(&self) -> u64 {
        self.config.hit_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Llc {
        // 2 sets x 2 ways x 64B = 256B cache.
        Llc::new(LlcConfig {
            size_bytes: 256,
            ways: 2,
            hit_ns: 10,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (2 sets).
        c.access(0);
        c.access(2);
        c.access(0); // touch 0; 2 is now LRU
        c.access(4); // evicts 2
        assert!(c.access(0), "0 must survive");
        assert!(!c.access(2), "2 must have been evicted");
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.access(0); // set 0
        c.access(1); // set 1
        c.access(2); // set 0
        c.access(3); // set 1
        assert!(c.access(0) && c.access(1) && c.access(2) && c.access(3));
    }

    #[test]
    fn invalidate_frame_drops_lines() {
        let mut c = Llc::new(LlcConfig {
            size_bytes: 1 << 20,
            ways: 16,
            hit_ns: 10,
        });
        // Touch all 64 lines of frame 5.
        let base = Pfn(5).addr().0 / 64;
        for l in base..base + 64 {
            c.access(l);
        }
        let dropped = c.invalidate_frame(Pfn(5));
        assert_eq!(dropped, 64);
        assert!(!c.access(base), "line must miss after invalidation");
    }

    #[test]
    fn miss_ratio_math() {
        let mut c = tiny();
        c.access(0);
        c.access(0);
        c.access(0);
        assert!((c.stats().miss_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bad LLC geometry")]
    fn bad_geometry_panics() {
        Llc::new(LlcConfig {
            size_bytes: 100,
            ways: 3,
            hit_ns: 1,
        });
    }

    #[test]
    fn default_geometry_valid() {
        let c = LlcConfig::default();
        assert!(c.sets() > 0);
    }
}

thermo_util::json_struct!(LlcConfig {
    size_bytes,
    ways,
    hit_ns
});

//! Last-level cache model.
//!
//! A physically-indexed, set-associative, true-LRU cache over 64-byte
//! lines. Thermostat cares about the LLC for one specific reason (§3.3):
//! the TLB-miss counts BadgerTrap gathers are a *proxy* for LLC misses, and
//! the proxy is accurate precisely for cold pages ("nearly all accesses
//! incur both TLB and cache misses as there is no temporal locality").
//! Modelling the LLC lets the harnesses verify that claim (and lets the
//! Figure 2 study measure true memory access rates).

use thermo_mem::{Pfn, CACHE_LINE_BYTES};

/// Geometry and latency of the LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcConfig {
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Hit latency, ns.
    pub hit_ns: u64,
}

impl LlcConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        let lines = self.size_bytes as usize / CACHE_LINE_BYTES;
        assert!(
            lines.is_multiple_of(self.ways) && lines > 0,
            "bad LLC geometry"
        );
        lines / self.ways
    }
}

impl Default for LlcConfig {
    /// 4 MiB, 16-way: the paper's 45MB LLC scaled down in proportion to the
    /// scaled application footprints (DESIGN.md §1).
    fn default() -> Self {
        Self {
            size_bytes: 4 << 20,
            ways: 16,
            hit_ns: 30,
        }
    }
}

// Each way is one u64 word: the packed tag (`line << 1 | valid`) in the
// high 32 bits and the LRU stamp in the low 32 — so a set is one short
// dense row, a probe touches half the cache lines of split tag/stamp
// arrays, and a hit restamps the word it just compared. Line numbers must
// fit 31 bits (128GB of physical memory at 64B lines — far beyond any
// simulated machine), asserted at access. Stamps saturate at `u32::MAX`
// ticks; the (practically unreachable) wrap point renormalises each set's
// stamps to their within-set rank, which preserves LRU order exactly.
const LINE_VALID: u64 = 1;
const STAMP_BITS: u32 = 32;
const STAMP_MASK: u64 = (1 << STAMP_BITS) - 1;

#[inline]
fn pack_line(line: u64) -> u64 {
    assert!(line < 1 << 31, "line number overflows tag");
    (line << 1) | LINE_VALID
}

/// Hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LlcStats {
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Lines invalidated by frame invalidations.
    pub invalidations: u64,
}

impl LlcStats {
    /// Miss ratio in `[0,1]`; 0 with no accesses.
    pub fn miss_ratio(&self) -> f64 {
        let n = self.hits + self.misses;
        if n == 0 {
            0.0
        } else {
            self.misses as f64 / n as f64
        }
    }
}

/// The last-level cache.
pub struct Llc {
    config: LlcConfig,
    sets: usize,
    /// `sets - 1` when `sets` is a power of two (every shipped geometry);
    /// selects the mask fast path over the division in set indexing.
    mask: usize,
    pow2: bool,
    /// Packed rows: set `s` occupies `data[s*ways .. (s+1)*ways]`, one
    /// `tag << 32 | stamp` word per way.
    data: Vec<u64>,
    /// Per-set most-recently-hit/filled way — pure acceleration state: a
    /// probe checks it first and repeat hits cost one compare instead of
    /// an average half-row scan. Never consulted for eviction, so hit/miss
    /// outcomes and victim choices are identical with or without it.
    mru: Vec<u32>,
    tick: u64,
    stats: LlcStats,
}

impl std::fmt::Debug for Llc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Llc")
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Llc {
    /// Creates an LLC with the given geometry.
    pub fn new(config: LlcConfig) -> Self {
        let sets = config.sets();
        Self {
            config,
            sets,
            mask: sets.wrapping_sub(1),
            pow2: sets.is_power_of_two(),
            data: vec![0; sets * config.ways],
            mru: vec![0; sets],
            tick: 0,
            stats: LlcStats::default(),
        }
    }

    #[inline]
    fn set_index(&self, line: u64) -> usize {
        if self.pow2 {
            (line as usize) & self.mask
        } else {
            (line as usize) % self.sets
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &LlcConfig {
        &self.config
    }

    /// Accesses the cache line containing physical line number `line`
    /// (a physical address divided by 64). Returns `true` on hit; on miss
    /// the line is filled, evicting the set's LRU victim.
    pub fn access(&mut self, line: u64) -> bool {
        if self.tick >= STAMP_MASK {
            self.renormalize();
        }
        self.tick += 1;
        let tick = self.tick;
        let want = pack_line(line);
        let ways = self.config.ways;
        let set = self.set_index(line);
        let base = set * ways;
        let row = &mut self.data[base..base + ways];
        // MRU short-circuit: repeat hits to a set's hottest line resolve
        // on the first compare. Tags are unique within a set, so finding
        // the tag anywhere is the same hit.
        let h = self.mru[set] as usize;
        if h < ways && row[h] >> STAMP_BITS == want {
            row[h] = (want << STAMP_BITS) | tick;
            self.stats.hits += 1;
            return true;
        }
        // One pass: probe for the tag while tracking the would-be victim —
        // the first invalid way, else the set's LRU way (first-minimum wins
        // on ties, matching the split-array layout). Tags are unique within
        // a set, so early-returning on the hit loses nothing.
        let mut invalid = usize::MAX;
        let mut victim = 0;
        let mut best = u64::MAX;
        for i in 0..ways {
            let w = row[i];
            let tag = w >> STAMP_BITS;
            if tag == want {
                row[i] = (want << STAMP_BITS) | tick;
                self.mru[set] = i as u32;
                self.stats.hits += 1;
                return true;
            }
            if tag & LINE_VALID == 0 {
                invalid = invalid.min(i);
            } else if w & STAMP_MASK < best {
                best = w & STAMP_MASK;
                victim = i;
            }
        }
        let victim = if invalid != usize::MAX {
            invalid
        } else {
            victim
        };
        row[victim] = (want << STAMP_BITS) | tick;
        self.mru[set] = victim as u32;
        self.stats.misses += 1;
        false
    }

    /// Rewrites every set's LRU stamps to their within-set rank so the
    /// global tick can restart at `ways`. Relative stamp order — the only
    /// thing eviction reads — is preserved exactly, so the cache behaves
    /// identically to one with unbounded stamps. Runs once per `u32::MAX`
    /// accesses, i.e. effectively never.
    #[cold]
    fn renormalize(&mut self) {
        let ways = self.config.ways;
        let mut ranks = vec![0u64; ways];
        for s in 0..self.sets {
            let row = &mut self.data[s * ways..(s + 1) * ways];
            for i in 0..ways {
                let si = row[i] & STAMP_MASK;
                let mut rank = 0u64;
                for (j, w) in row.iter().enumerate() {
                    let sj = w & STAMP_MASK;
                    if sj < si || (sj == si && j < i) {
                        rank += 1;
                    }
                }
                ranks[i] = rank;
            }
            for (w, r) in row.iter_mut().zip(&ranks) {
                *w = (*w & !STAMP_MASK) | r;
            }
        }
        self.tick = ways as u64;
    }

    /// Invalidates every line belonging to the 4KB frame `pfn` (used when a
    /// frame is migrated or freed so a reused frame cannot produce phantom
    /// hits). Returns the number of lines dropped.
    pub fn invalidate_frame(&mut self, pfn: Pfn) -> u64 {
        let first_line = pfn.addr().0 / CACHE_LINE_BYTES as u64;
        let lines_per_page = 4096 / CACHE_LINE_BYTES as u64;
        let mut dropped = 0;
        for line in first_line..first_line + lines_per_page {
            let want = pack_line(line);
            let ways = self.config.ways;
            let base = self.set_index(line) * ways;
            for w in &mut self.data[base..base + ways] {
                if *w >> STAMP_BITS == want {
                    *w &= !(LINE_VALID << STAMP_BITS);
                    dropped += 1;
                }
            }
        }
        self.stats.invalidations += dropped;
        dropped
    }

    /// Invalidates every line of the `n_frames` contiguous 4KB frames
    /// starting at `first_pfn` — the bulk form of `n_frames`
    /// [`invalidate_frame`](Self::invalidate_frame) calls, dropping exactly
    /// the same lines and counting them identically. When the line range
    /// covers at least one full pass of the sets (e.g. a 2MB frame against
    /// any shipped geometry) this is a single sequential sweep of the tag
    /// store with one range compare per tag, instead of scattered per-line
    /// probes.
    pub fn invalidate_frames(&mut self, first_pfn: Pfn, n_frames: u64) -> u64 {
        let lines_per_page = 4096 / CACHE_LINE_BYTES as u64;
        let first_line = first_pfn.addr().0 / CACHE_LINE_BYTES as u64;
        let n_lines = n_frames * lines_per_page;
        if n_lines < self.sets as u64 {
            let mut dropped = 0;
            for f in 0..n_frames {
                dropped += self.invalidate_frame(Pfn(first_pfn.0 + f));
            }
            return dropped;
        }
        let mut dropped = 0;
        for w in &mut self.data {
            let tag = *w >> STAMP_BITS;
            if tag & LINE_VALID != 0 && (tag >> 1).wrapping_sub(first_line) < n_lines {
                *w &= !(LINE_VALID << STAMP_BITS);
                dropped += 1;
            }
        }
        self.stats.invalidations += dropped;
        dropped
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> LlcStats {
        self.stats
    }

    /// Hit latency, ns.
    pub fn hit_ns(&self) -> u64 {
        self.config.hit_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Llc {
        // 2 sets x 2 ways x 64B = 256B cache.
        Llc::new(LlcConfig {
            size_bytes: 256,
            ways: 2,
            hit_ns: 10,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (2 sets).
        c.access(0);
        c.access(2);
        c.access(0); // touch 0; 2 is now LRU
        c.access(4); // evicts 2
        assert!(c.access(0), "0 must survive");
        assert!(!c.access(2), "2 must have been evicted");
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.access(0); // set 0
        c.access(1); // set 1
        c.access(2); // set 0
        c.access(3); // set 1
        assert!(c.access(0) && c.access(1) && c.access(2) && c.access(3));
    }

    #[test]
    fn invalidate_frame_drops_lines() {
        let mut c = Llc::new(LlcConfig {
            size_bytes: 1 << 20,
            ways: 16,
            hit_ns: 10,
        });
        // Touch all 64 lines of frame 5.
        let base = Pfn(5).addr().0 / 64;
        for l in base..base + 64 {
            c.access(l);
        }
        let dropped = c.invalidate_frame(Pfn(5));
        assert_eq!(dropped, 64);
        assert!(!c.access(base), "line must miss after invalidation");
    }

    #[test]
    fn invalidate_frames_matches_per_frame_calls() {
        let build = || {
            let mut c = Llc::new(LlcConfig {
                size_bytes: 64 << 10, // 64 sets x 16 ways
                ways: 16,
                hit_ns: 10,
            });
            // Touch lines from frames 3..8 plus unrelated lines that must
            // survive, with enough pressure to exercise eviction too.
            for f in 3u64..8 {
                for l in (f * 64..f * 64 + 64).step_by(3) {
                    c.access(l);
                }
            }
            for l in 100_000..100_200u64 {
                c.access(l);
            }
            c
        };
        let mut bulk = build();
        let mut per = build();
        // 5 frames x 64 lines = 320 lines >= 64 sets: takes the sweep path.
        let d_bulk = bulk.invalidate_frames(Pfn(3), 5);
        let mut d_per = 0;
        for f in 3u64..8 {
            d_per += per.invalidate_frame(Pfn(f));
        }
        assert_eq!(d_bulk, d_per);
        assert_eq!(bulk.stats(), per.stats());
        assert_eq!(bulk.data, per.data, "tag stores must match exactly");
    }

    #[test]
    fn invalidate_frames_small_range_falls_back() {
        let mut c = Llc::new(LlcConfig {
            size_bytes: 1 << 20,
            ways: 16,
            hit_ns: 10,
        });
        let base = Pfn(5).addr().0 / 64;
        for l in base..base + 64 {
            c.access(l);
        }
        // 64 lines < 1024 sets: per-frame path, same observable result.
        assert_eq!(c.invalidate_frames(Pfn(5), 1), 64);
        assert!(!c.access(base));
    }

    #[test]
    fn renormalize_preserves_lru_behaviour() {
        // Stamp renormalisation must leave eviction decisions untouched:
        // feed two identically-warmed caches the same tail of accesses,
        // with one renormalised in between, and compare every outcome.
        let build = || {
            let mut c = Llc::new(LlcConfig {
                size_bytes: 8 << 10, // 8 sets x 16 ways
                ways: 16,
                hit_ns: 10,
            });
            for l in 0..1000u64 {
                c.access(l % 300);
            }
            c
        };
        let mut plain = build();
        let mut renormed = build();
        renormed.renormalize();
        assert!(renormed.tick < plain.tick, "renorm must rewind the tick");
        for l in 0..2000u64 {
            let line = (l * 7) % 400;
            assert_eq!(plain.access(line), renormed.access(line), "line {line}");
        }
        assert_eq!(plain.stats(), renormed.stats());
    }

    #[test]
    fn miss_ratio_math() {
        let mut c = tiny();
        c.access(0);
        c.access(0);
        c.access(0);
        assert!((c.stats().miss_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bad LLC geometry")]
    fn bad_geometry_panics() {
        Llc::new(LlcConfig {
            size_bytes: 100,
            ways: 3,
            hit_ns: 1,
        });
    }

    #[test]
    fn default_geometry_valid() {
        let c = LlcConfig::default();
        assert!(c.sets() > 0);
    }
}

thermo_util::json_struct!(LlcConfig {
    size_bytes,
    ways,
    hit_ns
});

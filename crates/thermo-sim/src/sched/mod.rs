//! The discrete-event co-scheduled engine (DESIGN.md §13).
//!
//! [`Scheduler`] drives heterogeneous [`Component`]s — tenant
//! applications, policy daemons, migration-fabric pumps, slowdown
//! reporters, and the fast-tier [`crate::arbiter::Arbiter`] — on **one
//! global virtual timeline**, popping a min-heap of
//! `(next_tick, class, component_id)` events. The `class` is a fixed
//! phase priority (arbiter < reporter < daemon < fabric < app) and
//! `component_id` breaks the remaining ties, so runs are bit-for-bit
//! deterministic.
//!
//! Two properties are load-bearing and tested:
//!
//! * **Charge-neutrality** — with arbitration off, a co-scheduled
//!   multi-tenant run reproduces [`crate::runner::run_tenants_sharded`]
//!   byte-for-byte (`tests/sched_equivalence.rs`): the daemon-before-app
//!   ordering at equal times mirrors `run_for`'s
//!   `while policy.next_due_ns() <= engine.now_ns()` loop, and a daemon
//!   whose tenant is past its deadline parks without firing, exactly as
//!   `run_for` exits without a final policy tick.
//! * **Order-independence within a tick** — components sharing a
//!   `(time, class)` key must commute (tenants own disjoint engines;
//!   cross-tenant communication flows only through the ordered
//!   [`Mailbox`], consumed by the strictly-earlier-classed arbiter). The
//!   `THERMO_SCHED_FUZZ=<seed>` knob permutes exactly those batches
//!   under a seeded RNG; `tests/sched_fuzz.rs` asserts artifacts are
//!   invariant.

mod decide;

use crate::arbiter::{Arbiter, ArbiterConfig, ArbiterEvent, DecisionKind, TenantReport};
use crate::engine::{Engine, PressureStats};
use crate::runner::{PolicyHook, RunOutcome, ShardOutcome};
use crate::stats::EngineStats;
use crate::workload::{Access, Workload};
use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;
use thermo_util::rng::{SeedableRng, SmallRng};

/// Phase priority of the arbiter (consumes strictly-earlier reports).
pub const CLASS_ARBITER: u8 = 0;
/// Phase priority of per-tenant slowdown reporters.
pub const CLASS_REPORTER: u8 = 1;
/// Phase priority of policy daemons (before the app at equal times, the
/// `run_for` interleaving).
pub const CLASS_DAEMON: u8 = 2;
/// Phase priority of migration-fabric pumps.
pub const CLASS_FABRIC: u8 = 3;
/// Phase priority of tenant applications (last at equal times).
pub const CLASS_APP: u8 = 4;

/// Group id used by components outside any tenant (the arbiter).
pub const GROUP_GLOBAL: u32 = u32::MAX;

/// One schedulable unit on the global virtual timeline.
///
/// Implementations must be pure in their own state plus explicitly
/// shared simulation state (`Rc<RefCell<Engine>>`, mailboxes): no wall
/// clocks, no ambient ordering, no unseeded randomness — enforced by
/// thermo-lint's `sched_purity` check.
pub trait Component {
    /// Next virtual time this component wants to run (`u64::MAX` =
    /// never; the scheduler drops it until re-registered).
    fn next_tick_ns(&self) -> u64;

    /// Runs one step at its scheduled time and says what to do next.
    fn tick(&mut self) -> Control;

    /// Label used in error messages and traces.
    fn label(&self) -> String {
        "component".into()
    }
}

/// What a [`Component::tick`] wants the scheduler to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Reschedule at the component's new `next_tick_ns`.
    Continue,
    /// Stop scheduling this component.
    Park,
    /// Stop scheduling every component in this component's group (a
    /// tenant finished: its daemon/reporter/pump stop with it).
    ParkGroup,
}

/// Scheduler failure: a component panicked mid-tick.
///
/// Mirrors `thermo_exec::ExecError`'s contract: the event loop drains
/// cleanly (the poisoned group parks, every other group runs to
/// completion) and the **lowest** panicking component id is reported.
#[derive(Debug)]
pub enum SchedError {
    /// A component's `tick` panicked.
    ComponentPanicked {
        /// Id of the panicking component (lowest, if several panicked).
        component_id: u32,
        /// Group (tenant) the component belonged to.
        group: u32,
        /// The component's label.
        label: String,
        /// The captured panic message.
        message: String,
    },
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ComponentPanicked {
                component_id,
                group,
                label,
                message,
            } => write!(
                f,
                "component {component_id} ({label}, group {group}) panicked: {message}"
            ),
        }
    }
}

impl std::error::Error for SchedError {}

/// Reads the ordering-fuzz seed from `THERMO_SCHED_FUZZ` (unset or
/// unparsable = no fuzzing — the production configuration).
pub fn fuzz_seed_from_env() -> Option<u64> {
    std::env::var("THERMO_SCHED_FUZZ")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
}

struct Slot {
    comp: Box<dyn Component>,
    class: u8,
    group: u32,
    parked: bool,
    essential: bool,
}

/// The discrete-event loop: a min-heap of `(next_tick, class, id)` over
/// registered [`Component`]s. See the module docs for ordering and
/// determinism rules.
pub struct Scheduler {
    slots: Vec<Slot>,
    heap: BinaryHeap<Reverse<(u64, u8, u32)>>,
    fuzz: Option<SmallRng>,
    panics: Vec<(u32, u32, String, String)>,
    /// Scratch for the same-(time, class) batch, reused across events so
    /// the event loop allocates nothing in steady state.
    batch: Vec<u32>,
    /// Count of essential, unparked components — maintained on every
    /// park transition so the loop condition is O(1) per event instead of
    /// a slot scan.
    live_essentials: usize,
}

impl Scheduler {
    /// Creates a scheduler; `fuzz_seed` enables the ordering-fuzz mode
    /// (see [`fuzz_seed_from_env`]).
    pub fn new(fuzz_seed: Option<u64>) -> Self {
        Self {
            slots: Vec::new(),
            heap: BinaryHeap::new(),
            fuzz: fuzz_seed.map(SmallRng::seed_from_u64),
            panics: Vec::new(),
            batch: Vec::new(),
            live_essentials: 0,
        }
    }

    /// Registers a component and returns its id (registration order).
    /// `essential` components keep the loop alive: [`Scheduler::run`]
    /// returns once every essential component is parked.
    pub fn add(&mut self, class: u8, group: u32, essential: bool, comp: Box<dyn Component>) -> u32 {
        let id = u32::try_from(self.slots.len()).expect("component id overflow");
        self.slots.push(Slot {
            comp,
            class,
            group,
            parked: false,
            essential,
        });
        if essential {
            self.live_essentials += 1;
        }
        id
    }

    fn park_group(&mut self, group: u32) {
        for slot in &mut self.slots {
            if slot.group == group && !slot.parked {
                slot.parked = true;
                if slot.essential {
                    self.live_essentials -= 1;
                }
            }
        }
    }

    fn park_one(&mut self, id: u32) {
        let slot = &mut self.slots[id as usize];
        if !slot.parked {
            slot.parked = true;
            if slot.essential {
                self.live_essentials -= 1;
            }
        }
    }

    fn live_essential(&self) -> usize {
        debug_assert_eq!(
            self.live_essentials,
            self.slots
                .iter()
                .filter(|s| s.essential && !s.parked)
                .count()
        );
        self.live_essentials
    }

    /// Pops entries until one is *current* (component unparked and its
    /// `next_tick_ns` still equals the popped key); stale entries are
    /// re-pushed with their fresh key.
    fn pop_current(&mut self) -> Option<(u64, u8, u32)> {
        while let Some(Reverse((t, c, id))) = self.heap.pop() {
            let slot = &self.slots[id as usize];
            if slot.parked {
                continue;
            }
            let cur = slot.comp.next_tick_ns();
            if cur == t {
                return Some((t, c, id));
            }
            if cur != u64::MAX {
                self.heap.push(Reverse((cur, slot.class, id)));
            }
        }
        None
    }

    /// Runs the event loop to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::ComponentPanicked`] for the lowest-id
    /// panicking component; the loop still drains every healthy group
    /// first, mirroring `thermo-exec`'s panic contract.
    pub fn run(&mut self) -> Result<(), SchedError> {
        for (id, slot) in self.slots.iter().enumerate() {
            let t = slot.comp.next_tick_ns();
            if t != u64::MAX {
                self.heap.push(Reverse((t, slot.class, id as u32)));
            }
        }

        while self.live_essential() > 0 {
            let Some((t, c, first)) = self.pop_current() else {
                break;
            };
            // Collect the whole same-(time, class) batch. Members are
            // guaranteed disjoint (distinct tenants), so their execution
            // order is unobservable — which the fuzz mode verifies by
            // permuting it.
            let mut batch = std::mem::take(&mut self.batch);
            batch.clear();
            batch.push(first);
            while let Some(&Reverse((t2, c2, _))) = self.heap.peek() {
                if t2 != t || c2 != c {
                    break;
                }
                let Some((_, _, id2)) = self.pop_current_at(t, c) else {
                    break;
                };
                batch.push(id2);
            }
            batch.sort_unstable();
            batch.dedup();
            if let Some(rng) = &mut self.fuzz {
                decide::permute_batch(rng, &mut batch);
            }
            for &id in &batch {
                self.run_one(t, id);
            }
            self.batch = batch;
        }

        if let Some((component_id, group, label, message)) =
            self.panics.iter().min_by_key(|p| p.0).cloned()
        {
            return Err(SchedError::ComponentPanicked {
                component_id,
                group,
                label,
                message,
            });
        }
        Ok(())
    }

    /// Like [`Self::pop_current`] but only while the top key stays at
    /// `(t, c)`; returns `None` once it moves past.
    fn pop_current_at(&mut self, t: u64, c: u8) -> Option<(u64, u8, u32)> {
        while let Some(&Reverse((t2, c2, _))) = self.heap.peek() {
            if t2 != t || c2 != c {
                return None;
            }
            let Reverse((_, _, id)) = self.heap.pop().expect("peeked");
            let slot = &self.slots[id as usize];
            if slot.parked {
                continue;
            }
            let cur = slot.comp.next_tick_ns();
            if cur == t2 {
                return Some((t2, c2, id));
            }
            if cur != u64::MAX {
                self.heap.push(Reverse((cur, slot.class, id)));
            }
        }
        None
    }

    fn run_one(&mut self, t: u64, id: u32) {
        let slot = &mut self.slots[id as usize];
        // An earlier batch member may have parked this group or (in
        // principle) perturbed this component's schedule; re-validate.
        if slot.parked {
            return;
        }
        let cur = slot.comp.next_tick_ns();
        if cur != t {
            if cur != u64::MAX {
                self.heap.push(Reverse((cur, slot.class, id)));
            }
            return;
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| slot.comp.tick()));
        match result {
            Ok(Control::Continue) => {
                let next = slot.comp.next_tick_ns();
                if next != u64::MAX {
                    self.heap.push(Reverse((next, slot.class, id)));
                }
            }
            Ok(Control::Park) => self.park_one(id),
            Ok(Control::ParkGroup) => {
                let group = slot.group;
                self.park_group(group);
            }
            Err(payload) => {
                let message = panic_message(payload);
                let group = slot.group;
                let label = slot.comp.label();
                self.panics.push((id, group, label, message));
                self.park_group(group);
            }
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

// ---------------------------------------------------------------------
// Co-scheduled multi-tenant configuration
// ---------------------------------------------------------------------

/// Per-tenant knobs for the co-scheduled path, carried in
/// [`crate::config::SimConfig::sched`]. Everything defaults off: the
/// sharded path runs and all pre-existing goldens are byte-identical.
///
/// Pool-global fields (`shared_pool_bytes`, `rebalance_period_ns`,
/// `grant_quantum_bytes`, `max_defer_rounds`) are read from **tenant
/// 0's** config; per-tenant fields (`initial_grant_bytes`, `slo_pct`,
/// `report_period_ns`) from each tenant's own.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedConfig {
    /// Route `run_tenants_sharded` through the discrete-event scheduler.
    pub coscheduled: bool,
    /// Size of the shared fast-tier pool arbitrated across tenants;
    /// 0 = arbitration off (fixed budgets, the charge-neutral mode).
    pub shared_pool_bytes: u64,
    /// This tenant's starting capacity grant (shared mode only).
    pub initial_grant_bytes: u64,
    /// This tenant's tolerable-slowdown SLO, percent (§4.3).
    pub slo_pct: f64,
    /// Period between this tenant's slowdown reports, ns.
    pub report_period_ns: u64,
    /// Period between arbiter rebalances, ns.
    pub rebalance_period_ns: u64,
    /// Bytes moved per grant decision.
    pub grant_quantum_bytes: u64,
    /// Rebalance rounds a grant may be deferred for fabric congestion.
    pub max_defer_rounds: u32,
}

impl Default for SchedConfig {
    fn default() -> Self {
        Self {
            coscheduled: false,
            shared_pool_bytes: 0,
            initial_grant_bytes: 0,
            slo_pct: 3.0,
            report_period_ns: 50_000_000,
            rebalance_period_ns: 100_000_000,
            grant_quantum_bytes: 8 << 20,
            max_defer_rounds: 3,
        }
    }
}

thermo_util::json_struct!(SchedConfig {
    coscheduled,
    shared_pool_bytes,
    initial_grant_bytes,
    slo_pct,
    report_period_ns,
    rebalance_period_ns,
    grant_quantum_bytes,
    max_defer_rounds,
});

// ---------------------------------------------------------------------
// Component adapters
// ---------------------------------------------------------------------

/// Cross-component post box: reporters insert, the arbiter consumes.
/// Keyed by tenant id so insertion *order* is unobservable — a fuzzed
/// reporter batch leaves identical mailbox state.
#[derive(Default)]
struct Mailbox {
    reports: std::collections::BTreeMap<u32, TenantReport>,
}

/// A tenant application: replays `run_for`'s op loop as tick events.
struct AppComponent {
    engine: Rc<RefCell<Engine>>,
    workload: Box<dyn Workload>,
    deadline_ns: u64,
    ops: Rc<Cell<u64>>,
    accesses: Vec<Access>,
    done: bool,
}

impl Component for AppComponent {
    fn next_tick_ns(&self) -> u64 {
        if self.done {
            u64::MAX
        } else {
            self.engine.borrow().now_ns()
        }
    }

    fn tick(&mut self) -> Control {
        let mut engine = self.engine.borrow_mut();
        if engine.now_ns() >= self.deadline_ns {
            self.done = true;
            return Control::ParkGroup;
        }
        self.accesses.clear();
        let Some(compute_ns) = self.workload.next_op(engine.now_ns(), &mut self.accesses) else {
            self.done = true;
            return Control::ParkGroup;
        };
        for a in &self.accesses {
            engine.access(a.va, a.write);
        }
        engine.advance_compute(compute_ns);
        self.ops.set(self.ops.get() + 1);
        Control::Continue
    }

    fn label(&self) -> String {
        format!("app:{}", self.workload.name())
    }
}

/// A policy daemon as a component: fires at `next_due_ns`, exactly like
/// `run_for`'s inner `while` — including *not* firing once the tenant is
/// past its deadline (charge-neutrality).
struct DaemonComponent {
    engine: Rc<RefCell<Engine>>,
    policy: Box<dyn PolicyHook>,
    deadline_ns: u64,
}

impl Component for DaemonComponent {
    fn next_tick_ns(&self) -> u64 {
        self.policy.next_due_ns()
    }

    fn tick(&mut self) -> Control {
        let mut engine = self.engine.borrow_mut();
        if engine.now_ns() >= self.deadline_ns {
            // run_for exits its loop before firing a policy due at or
            // past the deadline; park instead of ticking.
            return Control::Park;
        }
        self.policy.tick(&mut engine);
        Control::Continue
    }

    fn label(&self) -> String {
        format!("daemon:{}", self.policy.policy_name())
    }
}

/// Pumps a tenant's migration fabric while the app is between ops, so
/// in-flight copies drain on the virtual clock even during long compute
/// gaps.
struct FabricPump {
    engine: Rc<RefCell<Engine>>,
    next_ns: u64,
    period_ns: u64,
}

impl Component for FabricPump {
    fn next_tick_ns(&self) -> u64 {
        self.next_ns
    }

    fn tick(&mut self) -> Control {
        self.engine.borrow_mut().pump_fabric();
        self.next_ns += self.period_ns;
        Control::Continue
    }

    fn label(&self) -> String {
        "fabric-pump".into()
    }
}

/// Periodically estimates a tenant's slowdown from engine-counter deltas
/// (the paper's §4.3 machinery) and posts a [`TenantReport`] to the
/// mailbox.
struct ReporterComponent {
    engine: Rc<RefCell<Engine>>,
    mailbox: Rc<RefCell<Mailbox>>,
    tenant: u32,
    next_ns: u64,
    period_ns: u64,
    prev: EngineStats,
}

impl Component for ReporterComponent {
    fn next_tick_ns(&self) -> u64 {
        self.next_ns
    }

    fn tick(&mut self) -> Control {
        let engine = self.engine.borrow();
        let stats = engine.stats();
        let fault_ns = engine.config().trap.fault_latency_ns;
        let report = TenantReport {
            slowdown_pct: stats.estimated_slowdown_pct(&self.prev, fault_ns),
            used_fast_bytes: engine.used_bytes(thermo_mem::Tier::Fast),
            cold_fast_bytes: engine.fast_idle_bytes(),
            reserved_bytes: engine.fabric().in_flight_bytes(),
            displaced_bytes: engine.displaced_bytes(),
            fabric_congested: engine.fabric().busy(),
        };
        self.prev = stats;
        drop(engine);
        self.mailbox
            .borrow_mut()
            .reports
            .insert(self.tenant, report);
        self.next_ns += self.period_ns;
        Control::Continue
    }

    fn label(&self) -> String {
        format!("reporter:{}", self.tenant)
    }
}

/// The arbiter as a component: consumes mailbox reports (all strictly
/// earlier on the timeline — `CLASS_ARBITER < CLASS_REPORTER`), runs one
/// rebalance, and applies the decisions to the tenant engines.
struct ArbiterComponent {
    engines: Vec<Rc<RefCell<Engine>>>,
    mailbox: Rc<RefCell<Mailbox>>,
    arbiter: Arbiter,
    next_ns: u64,
    period_ns: u64,
    trace: Rc<RefCell<Vec<ArbiterEvent>>>,
}

impl Component for ArbiterComponent {
    fn next_tick_ns(&self) -> u64 {
        self.next_ns
    }

    fn tick(&mut self) -> Control {
        let mut slowdowns: std::collections::BTreeMap<u32, f64> = std::collections::BTreeMap::new();
        {
            let mut mb = self.mailbox.borrow_mut();
            for (&tenant, report) in &mb.reports {
                self.arbiter.report(tenant, *report);
                slowdowns.insert(tenant, report.slowdown_pct);
            }
            mb.reports.clear();
        }
        let decisions = self.arbiter.rebalance();
        let mut trace = self.trace.borrow_mut();
        for d in decisions {
            let mut engine = self.engines[d.tenant as usize].borrow_mut();
            let action = match d.kind {
                DecisionKind::Reclaim => {
                    // Demote cold capacity first, then lower the cap; the
                    // engine skips pages a fabric transaction holds.
                    engine.reclaim_fast_cold(d.bytes);
                    engine.set_fast_cap_bytes(Some(d.grant_after));
                    "reclaim"
                }
                DecisionKind::Grant => {
                    engine.set_fast_cap_bytes(Some(d.grant_after));
                    engine.promote_displaced(d.bytes);
                    "grant"
                }
                DecisionKind::Defer => "defer",
            };
            let slowdown = slowdowns.get(&d.tenant).copied().unwrap_or(0.0);
            trace.push(ArbiterEvent {
                at_ns: self.next_ns,
                tenant: u64::from(d.tenant),
                action: action.to_string(),
                bytes: d.bytes,
                grant_after_bytes: d.grant_after,
                slowdown_centi_pct: (slowdown * 100.0) as u64,
            });
        }
        self.next_ns += self.period_ns;
        Control::Continue
    }

    fn label(&self) -> String {
        "arbiter".into()
    }
}

// ---------------------------------------------------------------------
// The co-scheduled multi-tenant runner
// ---------------------------------------------------------------------

/// Everything a co-scheduled multi-tenant run produced.
pub struct CoSchedOutcome {
    /// Per-tenant outcomes, identical in shape (and — with arbitration
    /// off — in bytes) to [`crate::runner::run_tenants_sharded`]'s.
    pub shards: Vec<ShardOutcome>,
    /// Per-tenant capacity-pressure counters (slow-tier demand-paging
    /// fallbacks, reclaimed/promoted bytes).
    pub pressure: Vec<PressureStats>,
    /// The applied arbitration events, in virtual-time order (empty with
    /// arbitration off).
    pub trace: Vec<ArbiterEvent>,
}

/// Runs `n_tenants` on one discrete-event timeline (single-threaded;
/// determinism comes from the heap order, not worker scheduling).
///
/// Tenant `t` is built from `(t, derive_stream_seed(base_seed, t))` —
/// the same derivation `thermo-exec` gives sharded jobs, so the two
/// paths see identical seeds. With `shared_pool_bytes == 0` in tenant
/// 0's [`SchedConfig`] the run is charge-neutral to the sharded path;
/// otherwise reporter/arbiter components arbitrate the shared fast tier.
///
/// # Errors
///
/// Returns [`SchedError`] when any component panics (the loop drains
/// healthy groups first; the lowest panicking component id is reported).
pub fn run_tenants_coscheduled<F>(
    n_tenants: usize,
    duration_ns: u64,
    base_seed: u64,
    fuzz_seed: Option<u64>,
    build: F,
) -> Result<CoSchedOutcome, SchedError>
where
    F: Fn(u64, u64) -> (Engine, Box<dyn Workload>, Box<dyn PolicyHook>),
{
    let mut scheduler = Scheduler::new(fuzz_seed);
    let mailbox = Rc::new(RefCell::new(Mailbox::default()));
    let trace = Rc::new(RefCell::new(Vec::new()));
    let mut engines: Vec<Rc<RefCell<Engine>>> = Vec::with_capacity(n_tenants);
    let mut tenants: Vec<(u64, u64, Rc<Cell<u64>>)> = Vec::with_capacity(n_tenants);
    let mut pool_cfg: Option<SchedConfig> = None;
    let mut arbiter: Option<Arbiter> = None;

    for t in 0..n_tenants {
        // thermo-lint: allow(rng_containment, reason = "co-scheduled tenants must receive the exact per-shard seeds the thermo-exec pool derives (sched_equivalence pins this)")
        let seed = thermo_util::rng::derive_stream_seed(base_seed, t as u64);
        let (mut engine, mut workload, policy) = build(t as u64, seed);
        let sched_cfg = engine.config().sched;
        let pool = *pool_cfg.get_or_insert(sched_cfg);
        let shared = pool.shared_pool_bytes > 0;
        if shared {
            engine.set_fast_cap_bytes(Some(sched_cfg.initial_grant_bytes));
            arbiter
                .get_or_insert_with(|| {
                    Arbiter::new(ArbiterConfig {
                        pool_bytes: pool.shared_pool_bytes,
                        grant_quantum_bytes: pool.grant_quantum_bytes,
                        max_defer_rounds: pool.max_defer_rounds,
                    })
                })
                .register(t as u32, sched_cfg.initial_grant_bytes, sched_cfg.slo_pct);
        }
        workload.init(&mut engine);
        let start_ns = engine.now_ns();
        let deadline_ns = start_ns.saturating_add(duration_ns);
        let fabric_enabled = engine.config().fabric.enabled;
        let prev = engine.stats();
        let engine = Rc::new(RefCell::new(engine));
        let ops = Rc::new(Cell::new(0u64));

        scheduler.add(
            CLASS_DAEMON,
            t as u32,
            false,
            Box::new(DaemonComponent {
                engine: Rc::clone(&engine),
                policy,
                deadline_ns,
            }),
        );
        if shared {
            scheduler.add(
                CLASS_REPORTER,
                t as u32,
                false,
                Box::new(ReporterComponent {
                    engine: Rc::clone(&engine),
                    mailbox: Rc::clone(&mailbox),
                    tenant: t as u32,
                    next_ns: start_ns + sched_cfg.report_period_ns,
                    period_ns: sched_cfg.report_period_ns,
                    prev,
                }),
            );
            if fabric_enabled {
                scheduler.add(
                    CLASS_FABRIC,
                    t as u32,
                    false,
                    Box::new(FabricPump {
                        engine: Rc::clone(&engine),
                        next_ns: start_ns + sched_cfg.report_period_ns,
                        period_ns: sched_cfg.report_period_ns,
                    }),
                );
            }
        }
        scheduler.add(
            CLASS_APP,
            t as u32,
            true,
            Box::new(AppComponent {
                engine: Rc::clone(&engine),
                workload,
                deadline_ns,
                ops: Rc::clone(&ops),
                accesses: Vec::with_capacity(16),
                done: false,
            }),
        );
        engines.push(engine);
        tenants.push((seed, start_ns, ops));
    }

    if let Some(arbiter) = arbiter {
        let period_ns = pool_cfg
            .expect("pool config set with arbiter")
            .rebalance_period_ns;
        scheduler.add(
            CLASS_ARBITER,
            GROUP_GLOBAL,
            false,
            Box::new(ArbiterComponent {
                engines: engines.clone(),
                mailbox: Rc::clone(&mailbox),
                arbiter,
                next_ns: period_ns,
                period_ns,
                trace: Rc::clone(&trace),
            }),
        );
    }

    scheduler.run()?;

    let mut shards = Vec::with_capacity(n_tenants);
    let mut pressure = Vec::with_capacity(n_tenants);
    for (t, (seed, start_ns, ops)) in tenants.into_iter().enumerate() {
        let engine = engines[t].borrow();
        shards.push(ShardOutcome {
            shard_id: t as u64,
            seed,
            outcome: RunOutcome {
                ops: ops.get(),
                start_ns,
                end_ns: engine.now_ns(),
            },
            stats: engine.stats(),
            breakdown: engine.footprint_breakdown(),
        });
        pressure.push(engine.pressure_stats());
    }
    Ok(CoSchedOutcome {
        shards,
        pressure,
        trace: Rc::try_unwrap(trace)
            .map(RefCell::into_inner)
            .unwrap_or_else(|rc| rc.borrow().clone()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ticks at `times`, recording `(id, time)` into a shared log.
    struct Recorder {
        id: u32,
        times: Vec<u64>,
        at: usize,
        log: Rc<RefCell<Vec<(u32, u64)>>>,
    }

    impl Component for Recorder {
        fn next_tick_ns(&self) -> u64 {
            self.times.get(self.at).copied().unwrap_or(u64::MAX)
        }

        fn tick(&mut self) -> Control {
            let t = self.times[self.at];
            self.log.borrow_mut().push((self.id, t));
            self.at += 1;
            if self.at == self.times.len() {
                Control::Park
            } else {
                Control::Continue
            }
        }
    }

    fn recorders(
        sched: &mut Scheduler,
        log: &Rc<RefCell<Vec<(u32, u64)>>>,
        specs: &[(u8, &[u64])],
    ) {
        for (i, (class, times)) in specs.iter().enumerate() {
            sched.add(
                *class,
                i as u32,
                true,
                Box::new(Recorder {
                    id: i as u32,
                    times: times.to_vec(),
                    at: 0,
                    log: Rc::clone(log),
                }),
            );
        }
    }

    #[test]
    fn events_fire_in_time_class_id_order() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut s = Scheduler::new(None);
        recorders(
            &mut s,
            &log,
            &[
                (CLASS_APP, &[10, 30][..]),
                (CLASS_DAEMON, &[10, 20][..]),
                (CLASS_APP, &[5][..]),
            ],
        );
        s.run().unwrap();
        // t=5: comp 2; t=10: daemon (class 2) before app (class 4);
        // t=20 daemon; t=30 app.
        assert_eq!(
            *log.borrow(),
            vec![(2, 5), (1, 10), (0, 10), (1, 20), (0, 30)]
        );
    }

    #[test]
    fn same_key_ties_break_by_component_id() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut s = Scheduler::new(None);
        recorders(
            &mut s,
            &log,
            &[
                (CLASS_APP, &[7][..]),
                (CLASS_APP, &[7][..]),
                (CLASS_APP, &[7][..]),
            ],
        );
        s.run().unwrap();
        assert_eq!(*log.borrow(), vec![(0, 7), (1, 7), (2, 7)]);
    }

    #[test]
    fn fuzz_permutes_only_within_equal_time_class_batches() {
        // Classes differ at t=7: fuzz must never reorder across classes.
        for seed in [1u64, 2, 3, 4, 5] {
            let log = Rc::new(RefCell::new(Vec::new()));
            let mut s = Scheduler::new(Some(seed));
            recorders(
                &mut s,
                &log,
                &[
                    (CLASS_APP, &[7][..]),
                    (CLASS_DAEMON, &[7][..]),
                    (CLASS_APP, &[7][..]),
                ],
            );
            s.run().unwrap();
            let order: Vec<u32> = log.borrow().iter().map(|&(id, _)| id).collect();
            assert_eq!(order[0], 1, "daemon class fires first regardless of fuzz");
            let mut apps = order[1..].to_vec();
            apps.sort_unstable();
            assert_eq!(apps, vec![0, 2], "apps fire once each, any order");
        }
    }

    #[test]
    fn park_group_stops_the_whole_group() {
        struct Parker {
            log: Rc<RefCell<Vec<(u32, u64)>>>,
        }
        impl Component for Parker {
            fn next_tick_ns(&self) -> u64 {
                15
            }
            fn tick(&mut self) -> Control {
                self.log.borrow_mut().push((99, 15));
                Control::ParkGroup
            }
        }
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut s = Scheduler::new(None);
        // Group 0: a parker at t=15 and a recorder that would tick at 10,
        // 20, 30 — only the 10 fires before the group parks.
        s.add(
            CLASS_DAEMON,
            0,
            false,
            Box::new(Recorder {
                id: 0,
                times: vec![10, 20, 30],
                at: 0,
                log: Rc::clone(&log),
            }),
        );
        s.add(
            CLASS_APP,
            0,
            true,
            Box::new(Parker {
                log: Rc::clone(&log),
            }),
        );
        s.run().unwrap();
        assert_eq!(*log.borrow(), vec![(0, 10), (99, 15)]);
    }
}

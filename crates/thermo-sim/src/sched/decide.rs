//! The scheduler's only randomized choice — the ordering-fuzz
//! permutation — isolated in `decide.rs` per the repo's RNG-containment
//! rule (thermo-lint D3): every draw site lives here, is pure in
//! `(rng state, inputs)`, and is unit-testable without a scheduler.

use thermo_util::rng::{SliceRandom, SmallRng};

/// Fisher–Yates–shuffles `batch` in place under the fuzz RNG.
///
/// Called only on batches of components sharing one `(time, class)` heap
/// key — the only positions where the scheduler's contract says order
/// must not be observable. `tests/sched_fuzz.rs` asserts artifacts are
/// byte-identical under four seeds of this permutation.
pub(crate) fn permute_batch(rng: &mut SmallRng, batch: &mut [u32]) {
    batch.shuffle(rng);
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermo_util::rng::SeedableRng;

    #[test]
    fn permutation_is_seed_deterministic_and_a_bijection() {
        let mut a: Vec<u32> = (0..16).collect();
        let mut b = a.clone();
        permute_batch(&mut SmallRng::seed_from_u64(7), &mut a);
        permute_batch(&mut SmallRng::seed_from_u64(7), &mut b);
        assert_eq!(a, b, "same seed, same permutation");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>(), "a permutation");
        let mut c: Vec<u32> = (0..16).collect();
        permute_batch(&mut SmallRng::seed_from_u64(8), &mut c);
        assert_ne!(a, c, "different seeds diverge (16! ≫ collisions)");
    }
}

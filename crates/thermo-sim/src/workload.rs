//! The workload abstraction.
//!
//! A [`Workload`] is a closed-loop application: it sets up its address
//! space, then produces operations one at a time. Each operation is a batch
//! of memory accesses (the loads/stores that miss the core's private
//! caches) plus a fixed compute cost. The engine executes the accesses; the
//! runner charges the compute time.

use thermo_mem::VirtAddr;

/// One memory access issued by a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Target address.
    pub va: VirtAddr,
    /// True for stores.
    pub write: bool,
}

impl Access {
    /// A read access.
    pub fn read(va: VirtAddr) -> Self {
        Self { va, write: false }
    }

    /// A write access.
    pub fn write(va: VirtAddr) -> Self {
        Self { va, write: true }
    }
}

/// Rough footprint declaration, used by the Table 2 harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FootprintInfo {
    /// Anonymous (heap) bytes the workload will touch.
    pub anon_bytes: u64,
    /// File-backed (page-cache) bytes.
    pub file_bytes: u64,
}

/// A closed-loop application driving the engine.
pub trait Workload {
    /// Workload name (matches the paper's benchmark names).
    fn name(&self) -> &str;

    /// Maps regions and performs any load phase. Called once before ops.
    fn init(&mut self, engine: &mut crate::Engine);

    /// Produces the next operation: fills `accesses` (cleared by the
    /// caller) and returns the op's compute time in ns, or `None` when the
    /// workload is complete (open-ended workloads never return `None`).
    fn next_op(&mut self, now_ns: u64, accesses: &mut Vec<Access>) -> Option<u64>;

    /// Declared footprint (defaults to zero; generators override).
    fn footprint(&self) -> FootprintInfo {
        FootprintInfo::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_constructors() {
        let a = Access::read(VirtAddr(8));
        assert!(!a.write);
        let w = Access::write(VirtAddr(8));
        assert!(w.write);
        assert_eq!(a.va, w.va);
    }
}

thermo_util::json_struct!(Access { va, write });

//! The virtual-time execution engine.
//!
//! [`Engine`] owns the whole simulated machine — page table, TLBs, LLC,
//! two-tier physical memory, the BadgerTrap unit and the migration engine —
//! and exposes three faces:
//!
//! * the **application face** (this module): [`Engine::access`] runs one
//!   memory access through the pipeline (TLB → page walk → poison fault →
//!   LLC → memory tier) and charges its latency to virtual time;
//! * the **kernel face** ([`kernel`], mechanism layer): the raw operations
//!   policies perform — A-bit scans, huge-page split/collapse, PTE
//!   poisoning, and page migration between tiers;
//! * the **policy seam** ([`view`] + [`plan`]): a phase-structured boundary
//!   for policy layers (`thermostat::Daemon`, `thermo-kstaled`). A policy
//!   takes a read-only [`MemoryView`] snapshot at a period boundary
//!   (optionally built by sharded `thermo-exec` workers off the app
//!   thread), decides purely on that snapshot, and hands back a
//!   [`PolicyPlan`] that [`Engine::apply_plan`] executes atomically with
//!   the paper's virtual-time cost accounting.
//!
//! Everything is deterministic: no host randomness, and the only threads
//! are the scoped read-only snapshot workers whose shard boundaries and
//! merge order are fixed (never worker-derived), so artifacts are
//! byte-identical for any `THERMO_SCAN_JOBS`.

mod kernel;
mod plan;
#[cfg(test)]
mod tests;
mod view;

pub use plan::{OpOutcome, PlanOp, PlanReceipt, PolicyPlan};
pub use view::{MemoryView, PageInfo};

use crate::cache::Llc;
use crate::clock::VirtualClock;
use crate::config::{ColdAccessModel, SimConfig};
use crate::fabric::{Fabric, FabricStats};
use crate::process::{Process, Vma};
use crate::series::RateSeries;
use crate::stats::EngineStats;
use std::collections::BTreeMap;
use thermo_mem::{
    translate, MigrationEngine, MigrationStats, PageSize, Pfn, PhysicalMemory, Tier, VirtAddr, Vpn,
};
use thermo_trap::{TrapStats, TrapUnit};
use thermo_vm::{Mapping, PageTable, Tlb, TlbOutcome, TlbStats, Vpid};

/// Kernel-time cost of one huge-page split or collapse (page-table surgery
/// plus shootdown), ns.
pub(crate) const THP_SURGERY_NS: u64 = 5_000;
/// Kernel-time cost per PTE visited during an A-bit scan, ns.
pub(crate) const SCAN_VISIT_NS: u64 = 50;
/// Kernel-time cost per TLB shootdown during an A-bit scan, ns.
pub(crate) const SCAN_SHOOTDOWN_NS: u64 = 1_000;

/// Footprint breakdown by page size and tier — the series plotted in the
/// paper's Figures 5–10 ("2MB_hot_data", "4KB_cold_data", ...).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FootprintBreakdown {
    /// Bytes of 2MB pages in the fast tier.
    pub huge_fast: u64,
    /// Bytes of 2MB pages in the slow tier.
    pub huge_slow: u64,
    /// Bytes of 4KB pages in the fast tier.
    pub small_fast: u64,
    /// Bytes of 4KB pages in the slow tier.
    pub small_slow: u64,
}

impl FootprintBreakdown {
    /// Total resident bytes.
    pub fn total(&self) -> u64 {
        self.huge_fast + self.huge_slow + self.small_fast + self.small_slow
    }

    /// Bytes in the slow tier (the "cold data" curves).
    pub fn cold(&self) -> u64 {
        self.huge_slow + self.small_slow
    }

    /// Fraction of the footprint in the slow tier (0 when empty).
    pub fn cold_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.cold() as f64 / t as f64
        }
    }

    pub(crate) fn count(&mut self, size: PageSize, tier: Tier) {
        match (size, tier) {
            (PageSize::Huge2M, Tier::Fast) => self.huge_fast += size.bytes() as u64,
            (PageSize::Huge2M, Tier::Slow) => self.huge_slow += size.bytes() as u64,
            (PageSize::Small4K, Tier::Fast) => self.small_fast += size.bytes() as u64,
            (PageSize::Small4K, Tier::Slow) => self.small_slow += size.bytes() as u64,
        }
    }
}

/// Per-epoch accumulator for the access pipeline's hot charges.
///
/// `Engine::access` runs millions of times per simulated second; instead of
/// scattering its tier/LLC counter updates across the full [`EngineStats`]
/// struct it charges this small, cache-hot block, which is folded into the
/// durable stats at deterministic epoch boundaries ([`Engine::flush_epoch`]:
/// the periodic TLB-flush event and every policy-plan application) and
/// merged on read by [`Engine::stats`]. Because every field is a pure sum
/// and readers always see `stats + epoch`, flush timing is unobservable —
/// totals are identical no matter when (or whether) a flush happens between
/// two reads.
#[derive(Debug, Clone, Copy, Default)]
struct EpochCharges {
    accesses: u64,
    writes: u64,
    llc_hits: u64,
    llc_misses: u64,
    fast_tier_accesses: u64,
    slow_tier_accesses: u64,
    app_time_ns: u64,
}

impl EpochCharges {
    #[inline]
    fn fold_into(&self, stats: &mut EngineStats) {
        stats.accesses += self.accesses;
        stats.writes += self.writes;
        stats.llc_hits += self.llc_hits;
        stats.llc_misses += self.llc_misses;
        stats.fast_tier_accesses += self.fast_tier_accesses;
        stats.slow_tier_accesses += self.slow_tier_accesses;
        stats.app_time_ns += self.app_time_ns;
    }
}

/// The simulated machine.
pub struct Engine {
    pub(crate) config: SimConfig,
    pub(crate) clock: VirtualClock,
    pub(crate) tlb: Tlb,
    pub(crate) pt: PageTable,
    pub(crate) mem: PhysicalMemory,
    pub(crate) llc: Llc,
    pub(crate) trap: TrapUnit,
    pub(crate) mig: MigrationEngine,
    pub(crate) fab: Fabric,
    pub(crate) process: Process,
    pub(crate) stats: EngineStats,
    epoch: EpochCharges,
    /// Slow-tier access events per time bucket (Figure 3).
    pub(crate) slow_series: RateSeries,
    /// Exact per-4KB-page access counts (Figure 2 ground truth), when
    /// enabled.
    pub(crate) true_access: BTreeMap<Vpn, u64>,
    pub(crate) vpid: Vpid,
    pub(crate) next_tlb_flush_ns: u64,
    /// Soft cap on fast-tier bytes this engine may hold (`None` = whole
    /// tier, the legacy single-tenant behavior). Set by the capacity
    /// arbiter on the co-scheduled path; enforced in demand paging.
    pub(crate) fast_cap_bytes: Option<u64>,
    /// Pages demand-paged into the slow tier because the fast tier was
    /// capped or full, keyed by leaf base VPN → bytes. The arbiter
    /// promotes from here (in address order) when it grants capacity.
    pub(crate) displaced: BTreeMap<Vpn, u64>,
    pub(crate) pressure: PressureStats,
}

/// Capacity-pressure counters: what the engine did when the fast tier
/// could not take a page. Kept out of the frozen [`EngineStats`] (which
/// is serialized byte-for-byte inside golden notes) so the legacy
/// artifact shape is untouched.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PressureStats {
    /// Demand-paging minor faults that fell back to the slow tier.
    pub slow_fallback_faults: u64,
    /// Bytes demoted by arbiter-driven cold reclaim.
    pub reclaimed_bytes: u64,
    /// Displaced bytes promoted back after a capacity grant.
    pub promoted_bytes: u64,
}

thermo_util::json_struct!(PressureStats {
    slow_fallback_faults,
    reclaimed_bytes,
    promoted_bytes,
});

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now_ns", &self.clock.now_ns())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Engine {
    /// Builds a machine from `config`.
    pub fn new(config: SimConfig) -> Self {
        let mem = PhysicalMemory::new(config.fast.clone(), config.slow.clone());
        Self {
            clock: VirtualClock::new(),
            tlb: Tlb::new(config.tlb),
            pt: PageTable::new(),
            llc: Llc::new(config.llc),
            trap: TrapUnit::new(config.trap),
            mig: MigrationEngine::with_defaults(),
            fab: Fabric::new(config.fabric),
            process: Process::new(),
            stats: EngineStats::default(),
            epoch: EpochCharges::default(),
            slow_series: RateSeries::new(config.series_bucket_ns),
            true_access: BTreeMap::new(),
            vpid: config.vpid,
            next_tlb_flush_ns: config.tlb_flush_period_ns.unwrap_or(u64::MAX),
            fast_cap_bytes: None,
            displaced: BTreeMap::new(),
            pressure: PressureStats::default(),
            mem,
            config,
        }
    }

    // ------------------------------------------------------------------
    // Application face
    // ------------------------------------------------------------------

    /// Maps a new VMA; frames are allocated lazily on first touch.
    pub fn mmap(
        &mut self,
        len: u64,
        thp: bool,
        writable: bool,
        file_backed: bool,
        name: impl Into<String>,
    ) -> VirtAddr {
        self.process.mmap(len, thp, writable, file_backed, name)
    }

    /// Runs one memory access through the pipeline and returns the latency
    /// charged (also advances the virtual clock).
    ///
    /// # Panics
    ///
    /// Panics on an access outside every VMA (a simulated segfault — a bug
    /// in the workload generator).
    pub fn access(&mut self, va: VirtAddr, write: bool) -> u64 {
        let vpn = va.vpn();
        self.epoch.accesses += 1;
        if write {
            self.epoch.writes += 1;
        }
        if self.config.track_true_access {
            *self.true_access.entry(vpn).or_insert(0) += 1;
        }

        if self.clock.now_ns() >= self.next_tlb_flush_ns {
            // OS noise: timer tick / context switch flushes the TLB. This
            // is also a deterministic epoch boundary, so fold the hot
            // accumulator into the durable stats here.
            self.flush_epoch();
            self.tlb.flush_all();
            let period = self
                .config
                .tlb_flush_period_ns
                .expect("flush scheduled only when configured");
            self.next_tlb_flush_ns = self.clock.now_ns() + period;
        }

        let mut lat = 0u64;
        let (base_pfn, size) = match self.tlb.lookup(vpn, self.vpid) {
            TlbOutcome::HitL1 { pfn, size } => (pfn, size),
            TlbOutcome::HitL2 { pfn, size } => {
                lat += self.config.tlb.l2_hit_ns;
                (pfn, size)
            }
            TlbOutcome::Miss => self.walk(vpn, write, &mut lat),
        };
        let pfn4k = match size {
            PageSize::Small4K => base_pfn,
            PageSize::Huge2M => base_pfn.offset(vpn.index_in_huge() as u64),
        };
        let pa = translate(va, pfn4k, PageSize::Small4K);

        if write && self.fab.has_state() {
            // A write makes in-flight copies and shadow pages stale.
            self.fab.note_write(vpn, self.clock.now_ns());
        }

        if self.llc.access(pa.cache_line()) {
            self.epoch.llc_hits += 1;
            lat += self.llc.hit_ns();
        } else {
            self.epoch.llc_misses += 1;
            if self.fab.busy() {
                // Migration traffic contends with demand misses for the
                // channel.
                lat += self.config.fabric.contention_penalty_ns;
                self.fab.note_contended_miss();
            }
            let tier = self.mem.tier_of(pfn4k);
            let mem_ns = match (self.config.cold_model, tier) {
                // Under fault emulation the data physically lives in DRAM.
                (ColdAccessModel::FaultEmulated, _) => self.config.fast.latency_ns(write),
                (ColdAccessModel::Direct, Tier::Fast) => self.config.fast.latency_ns(write),
                (ColdAccessModel::Direct, Tier::Slow) => self.config.slow.latency_ns(write),
            };
            lat += mem_ns;
            match tier {
                Tier::Fast => self.epoch.fast_tier_accesses += 1,
                Tier::Slow => {
                    self.epoch.slow_tier_accesses += 1;
                    if self.config.cold_model == ColdAccessModel::Direct {
                        self.slow_series.record(self.clock.now_ns(), 1);
                    }
                }
            }
            if write {
                self.mem.record_write(pfn4k, 64);
            }
        }

        self.clock.advance(lat);
        self.epoch.app_time_ns += lat;
        if self.fab.busy() {
            self.fab.tick(self.clock.now_ns());
        }
        lat
    }

    /// Charges pure compute time to the application.
    pub fn advance_compute(&mut self, ns: u64) {
        self.clock.advance(ns);
        self.epoch.app_time_ns += ns;
        if self.fab.busy() {
            self.fab.tick(self.clock.now_ns());
        }
    }

    fn walk(&mut self, vpn: Vpn, write: bool, lat: &mut u64) -> (Pfn, PageSize) {
        // Fused descent: `touch` resolves the leaf and sets the A (and, for
        // writes, D) bit in a single pass over the flat leaf array, where
        // the radix model needed one descent to look up and a second to
        // update flags. The returned mapping is the pre-update copy, so
        // poison/pfn/size checks below see exactly what `lookup` saw.
        let mapping = match self.pt.touch(vpn, write) {
            Some(m) => m,
            None => {
                let m = self.minor_fault(vpn, lat);
                self.pt.touch(vpn, write).expect("just mapped");
                m
            }
        };
        self.stats.walks += 1;
        let wc = self.config.walk.walk_cost_ns(mapping.size);
        *lat += wc;
        self.stats.walk_time_ns += wc;
        if mapping.pte.poisoned() {
            *lat += self.trap.on_fault(mapping.base_vpn);
            match self.mem.tier_of(mapping.pte.pfn()) {
                Tier::Slow => {
                    self.stats.slow_trap_faults += 1;
                    self.slow_series.record(self.clock.now_ns(), 1);
                }
                Tier::Fast => self.stats.fast_trap_faults += 1,
            }
        }
        // BadgerTrap installs a (temporary) translation even for poisoned
        // pages, so repeated accesses only fault again after a TLB eviction
        // or shootdown.
        self.tlb
            .insert(mapping.base_vpn, mapping.pte.pfn(), mapping.size, self.vpid);
        (mapping.pte.pfn(), mapping.size)
    }

    fn minor_fault(&mut self, vpn: Vpn, lat: &mut u64) -> Mapping {
        let va = vpn.addr();
        let vma = self
            .process
            .find(va)
            .unwrap_or_else(|| panic!("segfault: access to unmapped {va}"))
            .clone();
        let huge_base = va.align_down(PageSize::Huge2M);
        let huge_fits = self.config.thp_enabled
            && vma.thp
            && huge_base >= vma.start
            && huge_base.0 + PageSize::Huge2M.bytes() as u64 <= vma.end().0;
        if huge_fits && self.fast_has_room(PageSize::Huge2M.bytes() as u64) {
            if let Ok(frame) = self.mem.alloc(Tier::Fast, PageSize::Huge2M) {
                self.pt
                    .map_huge(huge_base.vpn(), frame, vma.writable)
                    .expect("demand-paged huge window must be unmapped");
                *lat += self.config.minor_fault_huge_ns;
                self.stats.minor_faults_huge += 1;
                return self.pt.lookup(vpn).expect("just mapped");
            }
        }
        if self.fast_has_room(PageSize::Small4K.bytes() as u64) {
            if let Ok(frame) = self.mem.alloc(Tier::Fast, PageSize::Small4K) {
                self.pt
                    .map_small(vpn, frame, vma.writable)
                    .expect("demand-paged page must be unmapped");
                *lat += self.config.minor_fault_small_ns;
                self.stats.minor_faults_small += 1;
                return self.pt.lookup(vpn).expect("just mapped");
            }
        }
        // Fast tier capped or full: demand-page into the slow tier and
        // poison the page so accesses fault (§4.3 slowdown signal) and
        // the arbiter can see displaced mass to promote later. No
        // shootdown cost beyond trap bookkeeping — the translation was
        // never installed.
        let frame = self
            .mem
            .alloc(Tier::Slow, PageSize::Small4K)
            .expect("fast and slow tiers out of memory during demand paging");
        self.pt
            .map_small(vpn, frame, vma.writable)
            .expect("demand-paged page must be unmapped");
        self.trap.poison(
            &mut self.pt,
            &mut self.tlb,
            self.vpid,
            vpn,
            PageSize::Small4K,
        );
        self.displaced.insert(vpn, PageSize::Small4K.bytes() as u64);
        self.pressure.slow_fallback_faults += 1;
        *lat += self.config.minor_fault_small_ns;
        self.stats.minor_faults_small += 1;
        self.pt.lookup(vpn).expect("just mapped")
    }

    /// Whether the fast tier may take `bytes` more under the current
    /// capacity grant (always true with no cap). Gates demand paging and
    /// every fast-ward migration, so the grant is a real ledger: no
    /// kernel path can grow a tenant past what the arbiter gave it.
    pub(crate) fn fast_has_room(&self, bytes: u64) -> bool {
        match self.fast_cap_bytes {
            None => true,
            Some(cap) => self.mem.used_bytes(Tier::Fast).saturating_add(bytes) <= cap,
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Current virtual time, ns.
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Engine statistics.
    ///
    /// Merges the in-flight epoch accumulator on read, so callers always
    /// see exact totals regardless of when the last epoch flush happened.
    pub fn stats(&self) -> EngineStats {
        let mut s = self.stats;
        self.epoch.fold_into(&mut s);
        s
    }

    /// Folds the per-epoch access charges into the durable statistics.
    ///
    /// Called at deterministic boundaries only (the periodic TLB-flush
    /// event and every [`Engine::apply_plan`]); because [`Engine::stats`]
    /// merges on read, flushing is observationally a no-op — it exists so
    /// the durable struct stays near-current without the access fast path
    /// touching all of [`EngineStats`].
    pub fn flush_epoch(&mut self) {
        let e = self.epoch;
        e.fold_into(&mut self.stats);
        self.epoch = EpochCharges::default();
    }

    /// TLB statistics.
    pub fn tlb_stats(&self) -> TlbStats {
        self.tlb.stats()
    }

    /// Trap statistics.
    pub fn trap_stats(&self) -> TrapStats {
        self.trap.stats()
    }

    /// Migration statistics.
    pub fn migration_stats(&self) -> MigrationStats {
        self.mig.stats()
    }

    /// Migration-fabric counters (transactional migration).
    pub fn fabric_stats(&self) -> FabricStats {
        self.fab.stats()
    }

    /// The migration fabric (read-only introspection).
    pub fn fabric(&self) -> &Fabric {
        &self.fab
    }

    /// LLC statistics.
    pub fn llc_stats(&self) -> crate::cache::LlcStats {
        self.llc.stats()
    }

    /// The slow-tier access-rate series (Figure 3).
    pub fn slow_series(&self) -> &RateSeries {
        &self.slow_series
    }

    /// Resident set size (bytes of mapped physical memory).
    pub fn rss_bytes(&self) -> u64 {
        self.pt.mapped_bytes()
    }

    /// The simulated process (VMA listing).
    pub fn process(&self) -> &Process {
        &self.process
    }

    /// All VMAs (convenience).
    pub fn vmas(&self) -> &[Vma] {
        self.process.vmas()
    }

    /// The VMA ranges as `(start_vpn, n_4k_pages)` pairs — the argument
    /// shape [`Engine::memory_view`] and the scan helpers take.
    pub fn vma_ranges(&self) -> Vec<(Vpn, u64)> {
        self.process
            .vmas()
            .iter()
            .map(|v| (v.start.vpn(), v.len / 4096))
            .collect()
    }

    /// Configuration (read-only).
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The trap unit (for policy layers that read per-page counters).
    pub fn trap(&self) -> &TrapUnit {
        &self.trap
    }

    /// Mutable trap unit access (counter take/reset by the policy daemon).
    pub fn trap_mut(&mut self) -> &mut TrapUnit {
        &mut self.trap
    }

    /// Read-only page table access.
    pub fn page_table(&self) -> &PageTable {
        &self.pt
    }

    /// Exact per-4KB-page access counts (empty unless
    /// `config.track_true_access`).
    pub fn true_access_counts(&self) -> &BTreeMap<Vpn, u64> {
        &self.true_access
    }

    /// Clears the exact access counters.
    pub fn reset_true_access(&mut self) {
        self.true_access.clear();
    }

    /// Free bytes in `tier`.
    pub fn free_bytes(&self, tier: Tier) -> u64 {
        self.mem.free_bytes(tier)
    }

    /// Allocated bytes in `tier`.
    pub fn used_bytes(&self, tier: Tier) -> u64 {
        self.mem.used_bytes(tier)
    }

    /// Sets (or clears) the soft fast-tier capacity grant, bytes.
    pub fn set_fast_cap_bytes(&mut self, cap: Option<u64>) {
        self.fast_cap_bytes = cap;
    }

    /// The current soft fast-tier capacity grant, if any.
    pub fn fast_cap_bytes(&self) -> Option<u64> {
        self.fast_cap_bytes
    }

    /// Capacity-pressure counters (slow-tier demand-paging fallbacks,
    /// arbiter reclaim/promote traffic).
    pub fn pressure_stats(&self) -> PressureStats {
        self.pressure
    }

    /// Total bytes demand-paged into the slow tier for lack of fast
    /// capacity and not yet promoted back.
    pub fn displaced_bytes(&self) -> u64 {
        self.displaced.values().sum()
    }

    /// Drains the migration fabric on the virtual clock while the app is
    /// between ops (the co-scheduled fabric-pump component's hook; the
    /// sharded path ticks inline from `access`/`advance_compute`).
    pub fn pump_fabric(&mut self) {
        if self.fab.busy() {
            self.fab.tick(self.clock.now_ns());
        }
    }

    /// Physical memory (wear statistics etc.).
    pub fn memory(&self) -> &PhysicalMemory {
        &self.mem
    }
}

thermo_util::json_struct!(FootprintBreakdown {
    huge_fast,
    huge_slow,
    small_fast,
    small_slow
});

//! The kernel face of [`Engine`]: the mechanism layer.
//!
//! These are the raw operations the OS performs on behalf of a placement
//! policy — huge-page split/collapse, PTE poisoning, A-bit scans, and page
//! migration — each charging its virtual-time cost per the paper's
//! accounting (§3.3 scan/shootdown costs, §4 migration costs). Policy
//! layers normally reach them through the [`PolicyPlan`](super::PolicyPlan)
//! seam rather than calling them directly; they stay public for ablation
//! harnesses, property tests, and simple baselines (CLOCK, DAMON).

use super::{Engine, FootprintBreakdown, SCAN_SHOOTDOWN_NS, SCAN_VISIT_NS, THP_SURGERY_NS};
use thermo_mem::{MemError, PageSize, Pfn, Tier, Vpn, PAGES_PER_HUGE};
use thermo_vm::{scan_and_clear, MapError, ScanCost, ScanHit};

impl Engine {
    /// Splits the huge page at `base_vpn` (Thermostat sampling step 1).
    ///
    /// # Errors
    ///
    /// Propagates [`MapError`] from the page table.
    pub fn split_huge(&mut self, base_vpn: Vpn) -> Result<(), MapError> {
        self.fab
            .invalidate_overlapping(base_vpn, PAGES_PER_HUGE as u64);
        self.pt.split_huge(base_vpn)?;
        self.tlb.shootdown(base_vpn, PageSize::Huge2M, self.vpid);
        self.stats.kernel_time_ns += THP_SURGERY_NS;
        Ok(())
    }

    /// Collapses 512 4KB PTEs back into a huge page.
    ///
    /// # Errors
    ///
    /// Propagates [`MapError`] (e.g. frames not contiguous after per-4KB
    /// migration).
    pub fn collapse_huge(&mut self, base_vpn: Vpn) -> Result<(), MapError> {
        self.fab
            .invalidate_overlapping(base_vpn, PAGES_PER_HUGE as u64);
        self.pt.collapse_huge(base_vpn)?;
        // Stale 4KB TLB entries still translate to the same frames, so only
        // kernel cost is charged; entries age out naturally.
        self.stats.kernel_time_ns += THP_SURGERY_NS;
        Ok(())
    }

    /// Poisons the leaf at `base_vpn` for access counting.
    pub fn poison_page(&mut self, base_vpn: Vpn, size: PageSize) {
        self.fab
            .invalidate_overlapping(base_vpn, size.small_pages() as u64);
        self.trap
            .poison(&mut self.pt, &mut self.tlb, self.vpid, base_vpn, size);
        self.stats.kernel_time_ns += SCAN_SHOOTDOWN_NS;
    }

    /// Poisons all 512 children of a split huge page — the bulk form of 512
    /// [`poison_page`](Self::poison_page) calls, with identical charges and
    /// observable state but one fabric invalidation and one page-table pass.
    pub fn poison_split_children(&mut self, base_vpn: Vpn) {
        self.fab
            .invalidate_overlapping(base_vpn, PAGES_PER_HUGE as u64);
        self.trap
            .poison_children(&mut self.pt, &mut self.tlb, self.vpid, base_vpn);
        self.stats.kernel_time_ns += PAGES_PER_HUGE as u64 * SCAN_SHOOTDOWN_NS;
    }

    /// Unpoisons all 512 children of a split huge page and returns their
    /// summed fault counts — the bulk form of 512
    /// [`unpoison_page`](Self::unpoison_page) calls, with identical charges
    /// and observable state.
    pub fn unpoison_split_children(&mut self, base_vpn: Vpn) -> u64 {
        self.fab
            .invalidate_overlapping(base_vpn, PAGES_PER_HUGE as u64);
        self.stats.kernel_time_ns += PAGES_PER_HUGE as u64 * SCAN_SHOOTDOWN_NS;
        self.trap
            .unpoison_children_sum(&mut self.pt, &mut self.tlb, self.vpid, base_vpn)
    }

    /// Unpoisons the leaf at `base_vpn`, returning its fault count.
    pub fn unpoison_page(&mut self, base_vpn: Vpn) -> u64 {
        let n = self
            .pt
            .lookup(base_vpn)
            .map(|m| m.size.small_pages() as u64)
            .unwrap_or(1);
        self.fab.invalidate_overlapping(base_vpn, n);
        self.stats.kernel_time_ns += SCAN_SHOOTDOWN_NS;
        self.trap
            .unpoison(&mut self.pt, &mut self.tlb, self.vpid, base_vpn)
    }

    /// Scans and clears Accessed bits over `[start, start + n_pages)`,
    /// appending the results to `out` and charging kernel time.
    pub fn scan_and_clear_accessed(
        &mut self,
        start: Vpn,
        n_pages: u64,
        out: &mut Vec<ScanHit>,
    ) -> ScanCost {
        let cost = scan_and_clear(&mut self.pt, &mut self.tlb, self.vpid, start, n_pages, out);
        self.stats.kernel_time_ns += cost.time_ns(SCAN_VISIT_NS, SCAN_SHOOTDOWN_NS);
        cost
    }

    /// Reads Accessed bits without clearing (no shootdowns).
    pub fn read_accessed(&mut self, start: Vpn, n_pages: u64, out: &mut Vec<ScanHit>) -> ScanCost {
        let cost = thermo_vm::read_leaves(&self.pt, start, n_pages, out);
        self.stats.kernel_time_ns += cost.ptes_visited * SCAN_VISIT_NS;
        cost
    }

    /// Clears the Accessed bit of exactly the given leaves, shooting down
    /// (and charging for) each one whose bit was set.
    ///
    /// The mutation half of a split snapshot/clear scan: together with the
    /// visit cost a [`MemoryView`](super::MemoryView) already charged, the
    /// total equals a fused [`scan_and_clear_accessed`](Self::scan_and_clear_accessed)
    /// over the same range.
    pub fn clear_accessed_set(&mut self, pages: &[(Vpn, PageSize)]) -> ScanCost {
        let cost = thermo_vm::clear_accessed_set(&mut self.pt, &mut self.tlb, self.vpid, pages);
        self.stats.kernel_time_ns += cost.time_ns(SCAN_VISIT_NS, SCAN_SHOOTDOWN_NS);
        cost
    }

    /// Migrates the leaf at `base_vpn` to `target`, preserving all PTE flags
    /// (including poison) and keeping the BadgerTrap counter intact.
    ///
    /// # Errors
    ///
    /// [`MemError::AlreadyInTier`] if the page is already there, or
    /// [`MemError::OutOfMemory`] if the target tier is full.
    ///
    /// # Panics
    ///
    /// Panics if `base_vpn` is not the base of a mapped leaf.
    pub fn migrate_page(&mut self, base_vpn: Vpn, target: Tier) -> Result<(), MemError> {
        let m = self.pt.lookup(base_vpn).expect("migrating unmapped page");
        assert_eq!(m.base_vpn, base_vpn, "migrate must target the leaf base");
        self.fab
            .invalidate_overlapping(base_vpn, m.size.small_pages() as u64);
        let old = m.pte.pfn();
        let cur = self.mem.tier_of(old);
        if cur == target {
            return Err(MemError::AlreadyInTier {
                pfn: old,
                tier: cur,
            });
        }
        if target == Tier::Fast && !self.fast_has_room(m.size.bytes() as u64) {
            // The capacity grant is a ledger: promotions past it fail
            // like a full tier would, so a tenant's own daemon cannot
            // outgrow what the arbiter granted.
            return Err(MemError::OutOfMemory {
                tier: Tier::Fast,
                size: m.size,
            });
        }
        if target == Tier::Fast && self.fab.take_shadow(base_vpn, m.size) {
            // The fast-tier copy left by a recent fabric demotion is still
            // intact: re-promotion is a pure remap, no bulk transfer.
            let new = self.mem.alloc(target, m.size)?;
            for i in 0..m.size.small_pages() as u64 {
                self.llc.invalidate_frame(old.offset(i));
            }
            self.mem.free(cur, old, m.size);
            self.pt.with_pte_mut(base_vpn, |pte| pte.set_pfn(new));
            self.tlb.shootdown(base_vpn, m.size, self.vpid);
            self.stats.kernel_time_ns += self.config.fabric.per_page_overhead_ns;
            return Ok(());
        }
        let new = self.mem.alloc(target, m.size)?;
        for i in 0..m.size.small_pages() as u64 {
            self.llc.invalidate_frame(old.offset(i));
        }
        self.mem.free(cur, old, m.size);
        self.pt.with_pte_mut(base_vpn, |pte| pte.set_pfn(new));
        self.tlb.shootdown(base_vpn, m.size, self.vpid);
        let cost = self.mig.record(target, m.size, self.clock.now_ns());
        self.stats.kernel_time_ns += cost;
        Ok(())
    }

    /// Migrates a *split* huge page (512 4KB leaves starting at huge-aligned
    /// `base_vpn`) into one physically contiguous huge frame in `target`, so
    /// a later [`collapse_huge`](Self::collapse_huge) can restore the 2MB
    /// mapping. Counted as one 2MB migration.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfMemory`] when `target` lacks a huge frame;
    /// [`MemError::AlreadyInTier`] when the first child already lives there.
    ///
    /// # Panics
    ///
    /// Panics if any of the 512 children is missing or not a 4KB leaf.
    pub fn migrate_split_huge(&mut self, base_vpn: Vpn, target: Tier) -> Result<(), MemError> {
        assert!(
            base_vpn.is_huge_aligned(),
            "split-huge migration needs an aligned base"
        );
        self.fab
            .invalidate_overlapping(base_vpn, PAGES_PER_HUGE as u64);
        let first = self
            .pt
            .lookup(base_vpn)
            .expect("migrating unmapped split page");
        assert_eq!(first.size, PageSize::Small4K, "page is not split");
        if self.mem.tier_of(first.pte.pfn()) == target {
            return Err(MemError::AlreadyInTier {
                pfn: first.pte.pfn(),
                tier: target,
            });
        }
        if target == Tier::Fast && !self.fast_has_room(PageSize::Huge2M.bytes() as u64) {
            return Err(MemError::OutOfMemory {
                tier: Tier::Fast,
                size: PageSize::Huge2M,
            });
        }
        let new = self.mem.alloc(target, PageSize::Huge2M)?;
        // One pass over the window swaps every child onto the new huge
        // frame while collecting the old frames; the per-child LLC/allocator
        // bookkeeping below then runs in the same child order as the
        // per-child loop this replaces, so the observable state is
        // identical with a quarter of the page-table descents.
        let mut olds: Vec<Pfn> = Vec::with_capacity(PAGES_PER_HUGE);
        self.pt
            .for_each_leaf_mut(base_vpn, PAGES_PER_HUGE as u64, |_, size, pte| {
                assert_eq!(size, PageSize::Small4K, "child is not a 4KB leaf");
                olds.push(pte.pfn());
                pte.set_pfn(new.offset(olds.len() as u64 - 1));
            });
        assert_eq!(olds.len(), PAGES_PER_HUGE, "split page child missing");
        if olds.windows(2).all(|w| w[1].0 == w[0].0 + 1) {
            // Still one contiguous huge frame (the common demote-after-split
            // case): drop its lines in a single sweep of the tag store.
            self.llc.invalidate_frames(olds[0], PAGES_PER_HUGE as u64);
        } else {
            for &old in &olds {
                self.llc.invalidate_frame(old);
            }
        }
        for (i, &old) in olds.iter().enumerate() {
            self.mem.free(self.mem.tier_of(old), old, PageSize::Small4K);
            self.tlb
                .shootdown(base_vpn.offset(i as u64), PageSize::Small4K, self.vpid);
        }
        let cost = self
            .mig
            .record(target, PageSize::Huge2M, self.clock.now_ns());
        self.stats.kernel_time_ns += cost;
        Ok(())
    }

    /// Remaps a page whose bulk copy already completed on the migration
    /// fabric: the commit half of a `BeginMigrate`/`CommitMigrate`
    /// transaction. Only the remap overhead is charged — the transfer time
    /// was paid asynchronously on the link.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfMemory`] when the target tier can no longer take
    /// the page (the plan layer turns this into a clean abort).
    pub(crate) fn fabric_finalize(
        &mut self,
        base_vpn: Vpn,
        size: PageSize,
        target: Tier,
    ) -> Result<(), MemError> {
        let m = self
            .pt
            .lookup(base_vpn)
            .expect("fabric commit on unmapped page");
        assert_eq!(m.base_vpn, base_vpn, "fabric commit must target a leaf");
        assert_eq!(m.size, size, "page changed shape with a live txn");
        let old = m.pte.pfn();
        let cur = self.mem.tier_of(old);
        if cur == target {
            return Err(MemError::AlreadyInTier {
                pfn: old,
                tier: cur,
            });
        }
        if target == Tier::Fast && !self.fast_has_room(size.bytes() as u64) {
            return Err(MemError::OutOfMemory {
                tier: Tier::Fast,
                size,
            });
        }
        let new = self.mem.alloc(target, size)?;
        for i in 0..size.small_pages() as u64 {
            self.llc.invalidate_frame(old.offset(i));
        }
        self.mem.free(cur, old, size);
        self.pt.with_pte_mut(base_vpn, |pte| pte.set_pfn(new));
        self.tlb.shootdown(base_vpn, size, self.vpid);
        let _ = self.mig.record(target, size, self.clock.now_ns());
        self.stats.kernel_time_ns += self.config.fabric.per_page_overhead_ns;
        Ok(())
    }

    /// Tier currently backing the leaf that covers `vpn`, or `None` when
    /// unmapped.
    pub fn tier_of_vpn(&self, vpn: Vpn) -> Option<Tier> {
        self.pt.lookup(vpn).map(|m| self.mem.tier_of(m.pte.pfn()))
    }

    /// Computes the footprint breakdown by walking every VMA's leaves
    /// (instrumentation — charges no kernel time).
    pub fn footprint_breakdown(&self) -> FootprintBreakdown {
        let mut b = FootprintBreakdown::default();
        for (start, n) in self.vma_ranges() {
            self.pt.for_each_leaf(start, n, |_, size, pte| {
                b.count(size, self.mem.tier_of(pte.pfn()));
            });
        }
        b
    }

    /// Computes the footprint breakdown of every VMA separately, keyed by
    /// the VMA name — which application structure went cold (e.g. the
    /// paper's observation that TPCC's LINEITEM table carries the cold
    /// mass).
    pub fn region_breakdown(&self) -> Vec<(String, FootprintBreakdown)> {
        let mut out = Vec::with_capacity(self.process.vmas().len());
        for v in self.process.vmas() {
            let mut b = FootprintBreakdown::default();
            self.pt
                .for_each_leaf(v.start.vpn(), v.len / 4096, |_, size, pte| {
                    b.count(size, self.mem.tier_of(pte.pfn()));
                });
            out.push((v.name.clone(), b));
        }
        out
    }

    /// Fast-tier bytes held by leaves whose Accessed bit is clear — the
    /// cold capacity a reclaim would take first. Read-only walk, charges
    /// no kernel time (the arbiter reads it through a reporter snapshot).
    pub fn fast_idle_bytes(&self) -> u64 {
        let mut idle = 0u64;
        for (start, n) in self.vma_ranges() {
            self.pt.for_each_leaf(start, n, |_, size, pte| {
                if !pte.accessed() && self.mem.tier_of(pte.pfn()) == Tier::Fast {
                    idle += size.bytes() as u64;
                }
            });
        }
        idle
    }

    /// Demotes up to `want_bytes` of fast-tier capacity to the slow tier,
    /// coldest first (pass A: Accessed-clear leaves, pass B: the rest),
    /// poisoning each demoted page so its faults keep feeding the §4.3
    /// slowdown estimate. Only whole huge leaves are taken: 4KB leaves
    /// may be children of a policy daemon's split-sample window, and
    /// demoting one would break the frame contiguity its later collapse
    /// relies on. Pages held by an in-flight fabric transaction are never
    /// touched (the reclaim-vs-fabric invariant that `prop_arbiter`
    /// checks). Returns the bytes actually reclaimed.
    pub fn reclaim_fast_cold(&mut self, want_bytes: u64) -> u64 {
        let mut cold: Vec<(Vpn, PageSize)> = Vec::new();
        let mut warm: Vec<(Vpn, PageSize)> = Vec::new();
        for (start, n) in self.vma_ranges() {
            self.pt.for_each_leaf(start, n, |vpn, size, pte| {
                if size != PageSize::Huge2M || self.mem.tier_of(pte.pfn()) != Tier::Fast {
                    return;
                }
                if pte.accessed() {
                    warm.push((vpn, size));
                } else {
                    cold.push((vpn, size));
                }
            });
        }
        let mut reclaimed = 0u64;
        for (vpn, size) in cold.into_iter().chain(warm) {
            if reclaimed >= want_bytes {
                break;
            }
            if self.fab.txn_for_page(vpn).is_some() {
                continue;
            }
            if self.mem.free_bytes(Tier::Slow) < size.bytes() as u64 {
                break;
            }
            if self.migrate_page(vpn, Tier::Slow).is_err() {
                continue;
            }
            if !self.trap.is_poisoned(vpn) {
                self.trap
                    .poison(&mut self.pt, &mut self.tlb, self.vpid, vpn, size);
                self.stats.kernel_time_ns += SCAN_SHOOTDOWN_NS;
            }
            self.displaced.insert(vpn, size.bytes() as u64);
            reclaimed += size.bytes() as u64;
        }
        self.pressure.reclaimed_bytes += reclaimed;
        reclaimed
    }

    /// Promotes up to `want_bytes` of displaced pages back to the fast
    /// tier (address order), unpoisoning each. Entries whose mapping
    /// changed shape, already moved tiers, or sit under a live fabric
    /// transaction are dropped or skipped. Respects the capacity grant.
    /// Returns the bytes actually promoted.
    pub fn promote_displaced(&mut self, want_bytes: u64) -> u64 {
        let mut promoted = 0u64;
        let candidates: Vec<Vpn> = self.displaced.keys().copied().collect();
        for vpn in candidates {
            if promoted >= want_bytes {
                break;
            }
            let Some(m) = self.pt.lookup(vpn) else {
                self.displaced.remove(&vpn);
                continue;
            };
            if m.base_vpn != vpn || self.mem.tier_of(m.pte.pfn()) != Tier::Slow {
                // Split/collapsed or already migrated by the policy
                // daemon: no longer ours to promote.
                self.displaced.remove(&vpn);
                continue;
            }
            if self.fab.txn_for_page(vpn).is_some() {
                continue;
            }
            let bytes = m.size.bytes() as u64;
            let cap_ok = match self.fast_cap_bytes {
                None => true,
                Some(cap) => self.mem.used_bytes(Tier::Fast).saturating_add(bytes) <= cap,
            };
            if !cap_ok || self.mem.free_bytes(Tier::Fast) < bytes {
                break;
            }
            if self.migrate_page(vpn, Tier::Fast).is_err() {
                continue;
            }
            if self.trap.is_poisoned(vpn) {
                self.trap
                    .unpoison(&mut self.pt, &mut self.tlb, self.vpid, vpn);
                self.stats.kernel_time_ns += SCAN_SHOOTDOWN_NS;
            }
            self.displaced.remove(&vpn);
            promoted += bytes;
        }
        self.pressure.promoted_bytes += promoted;
        promoted
    }
}

use super::*;
use thermo_mem::MemError;

fn small_engine() -> Engine {
    Engine::new(SimConfig::paper_defaults(64 << 20, 64 << 20))
}

#[test]
fn first_touch_allocates_thp() {
    let mut e = small_engine();
    let base = e.mmap(4 << 20, true, true, false, "heap");
    e.access(base + 123, false);
    assert_eq!(e.stats().minor_faults_huge, 1);
    assert_eq!(e.rss_bytes(), 2 << 20);
    // Second access in same huge page: no new fault, TLB hit.
    e.access(base + 4096, false);
    assert_eq!(e.stats().minor_faults_huge, 1);
    assert_eq!(e.tlb_stats().l1_hits, 1);
}

#[test]
fn non_thp_vma_uses_small_pages() {
    let mut e = small_engine();
    let base = e.mmap(4 << 20, false, true, false, "file");
    e.access(base, false);
    assert_eq!(e.stats().minor_faults_small, 1);
    assert_eq!(e.rss_bytes(), 4096);
}

#[test]
#[should_panic(expected = "segfault")]
fn out_of_vma_access_panics() {
    let mut e = small_engine();
    e.access(VirtAddr(0x100), false);
}

#[test]
fn llc_hit_after_miss() {
    let mut e = small_engine();
    let base = e.mmap(2 << 20, true, true, false, "heap");
    e.access(base, false);
    assert_eq!(e.stats().llc_misses, 1);
    e.access(base + 8, false); // same line
    assert_eq!(e.stats().llc_hits, 1);
}

#[test]
fn clock_advances_with_access_latency() {
    let mut e = small_engine();
    let base = e.mmap(2 << 20, true, true, false, "heap");
    let lat = e.access(base, false);
    assert!(lat > 0);
    assert_eq!(e.now_ns(), lat);
    e.advance_compute(500);
    assert_eq!(e.now_ns(), lat + 500);
}

#[test]
fn poison_fault_counted_and_charged() {
    let mut e = small_engine();
    let base = e.mmap(2 << 20, true, true, false, "heap");
    e.access(base, false); // demand-page as THP
    let hvpn = base.vpn();
    e.poison_page(hvpn, PageSize::Huge2M);
    let lat = e.access(base + 64, false);
    assert!(lat >= 1_000, "fault latency must be charged, got {lat}");
    assert_eq!(e.trap().count(hvpn), Some(1));
    assert_eq!(e.stats().fast_trap_faults, 1);
    // TLB entry installed by the handler: next access doesn't fault.
    e.access(base + 128, false);
    assert_eq!(e.trap().count(hvpn), Some(1));
    assert_eq!(e.unpoison_page(hvpn), 1);
}

#[test]
fn split_then_sample_then_collapse() {
    let mut e = small_engine();
    let base = e.mmap(2 << 20, true, true, false, "heap");
    e.access(base, false);
    let hvpn = base.vpn();
    e.split_huge(hvpn).unwrap();
    // Poison one 4KB child; access it.
    e.poison_page(hvpn.offset(3), PageSize::Small4K);
    e.access(base + 3 * 4096, true);
    assert_eq!(e.trap().count(hvpn.offset(3)), Some(1));
    assert_eq!(e.unpoison_page(hvpn.offset(3)), 1);
    e.collapse_huge(hvpn).unwrap();
    assert_eq!(e.page_table().mapped_huge_pages(), 1);
}

#[test]
fn migrate_huge_to_slow_and_back() {
    let mut e = small_engine();
    let base = e.mmap(2 << 20, true, true, false, "heap");
    e.access(base, false);
    let hvpn = base.vpn();
    assert_eq!(e.tier_of_vpn(hvpn), Some(Tier::Fast));
    e.migrate_page(hvpn, Tier::Slow).unwrap();
    assert_eq!(e.tier_of_vpn(hvpn), Some(Tier::Slow));
    // Already there -> error.
    assert!(matches!(
        e.migrate_page(hvpn, Tier::Slow),
        Err(MemError::AlreadyInTier { .. })
    ));
    e.migrate_page(hvpn, Tier::Fast).unwrap();
    assert_eq!(e.tier_of_vpn(hvpn), Some(Tier::Fast));
    let ms = e.migration_stats();
    assert_eq!(ms.to_slow_pages, 1);
    assert_eq!(ms.back_to_fast_pages, 1);
}

#[test]
fn slow_trap_fault_recorded_in_series() {
    let mut e = small_engine();
    let base = e.mmap(2 << 20, true, true, false, "heap");
    e.access(base, false);
    let hvpn = base.vpn();
    e.migrate_page(hvpn, Tier::Slow).unwrap();
    e.poison_page(hvpn, PageSize::Huge2M);
    e.access(base + 64, false);
    assert_eq!(e.stats().slow_trap_faults, 1);
    assert_eq!(e.slow_series().total(), 1);
}

#[test]
fn migrate_split_huge_restores_contiguity() {
    let mut e = small_engine();
    let base = e.mmap(2 << 20, true, true, false, "heap");
    e.access(base, false);
    let hvpn = base.vpn();
    e.split_huge(hvpn).unwrap();
    e.migrate_split_huge(hvpn, Tier::Slow).unwrap();
    assert_eq!(e.tier_of_vpn(hvpn), Some(Tier::Slow));
    // Contiguous again: collapse must succeed.
    e.collapse_huge(hvpn).unwrap();
    assert_eq!(e.page_table().mapped_huge_pages(), 1);
    assert_eq!(e.migration_stats().to_slow_bytes, 2 << 20);
}

#[test]
fn footprint_breakdown_tracks_tiers_and_sizes() {
    let mut e = small_engine();
    let a = e.mmap(2 << 20, true, true, false, "huge");
    let b = e.mmap(8192, false, true, false, "small");
    e.access(a, false);
    e.access(b, false);
    e.access(b + 4096, false);
    let fb = e.footprint_breakdown();
    assert_eq!(fb.huge_fast, 2 << 20);
    assert_eq!(fb.small_fast, 8192);
    assert_eq!(fb.cold(), 0);
    e.migrate_page(a.vpn(), Tier::Slow).unwrap();
    let fb = e.footprint_breakdown();
    assert_eq!(fb.huge_slow, 2 << 20);
    assert!((fb.cold_fraction() - (2 << 20) as f64 / fb.total() as f64).abs() < 1e-12);
}

#[test]
fn region_breakdown_attributes_tiers_per_vma() {
    let mut e = small_engine();
    let a = e.mmap(2 << 20, true, true, false, "hot-region");
    let b = e.mmap(2 << 20, true, true, false, "cold-region");
    e.access(a, false);
    e.access(b, false);
    e.migrate_page(b.vpn(), Tier::Slow).unwrap();
    let rb = e.region_breakdown();
    let get = |name: &str| {
        rb.iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| *b)
            .expect("region present")
    };
    assert_eq!(get("hot-region").cold(), 0);
    assert_eq!(get("cold-region").cold(), 2 << 20);
    // Regions sum to the global breakdown.
    let total: u64 = rb.iter().map(|(_, b)| b.total()).sum();
    assert_eq!(total, e.footprint_breakdown().total());
}

#[test]
fn scan_accessed_via_engine() {
    let mut e = small_engine();
    let base = e.mmap(2 << 20, true, true, false, "heap");
    e.access(base, false);
    let mut hits = Vec::new();
    e.scan_and_clear_accessed(base.vpn(), 512, &mut hits);
    assert_eq!(hits.len(), 1);
    assert!(hits[0].accessed);
    // Re-scan without intervening access: idle.
    hits.clear();
    e.scan_and_clear_accessed(base.vpn(), 512, &mut hits);
    assert!(!hits[0].accessed);
    // Access again (TLB was shot down, so the walk re-sets A).
    e.access(base, false);
    hits.clear();
    e.scan_and_clear_accessed(base.vpn(), 512, &mut hits);
    assert!(hits[0].accessed);
}

#[test]
fn true_access_tracking_when_enabled() {
    let mut cfg = SimConfig::paper_defaults(64 << 20, 64 << 20);
    cfg.track_true_access = true;
    let mut e = Engine::new(cfg);
    let base = e.mmap(2 << 20, true, true, false, "heap");
    e.access(base, false);
    e.access(base, true);
    e.access(base + 4096, false);
    assert_eq!(e.true_access_counts()[&base.vpn()], 2);
    assert_eq!(e.true_access_counts()[&(base + 4096).vpn()], 1);
    e.reset_true_access();
    assert!(e.true_access_counts().is_empty());
}

#[test]
fn thp_fault_falls_back_to_small_pages_when_no_huge_frame_is_free() {
    // One 2MB block of fast memory; a 4KB allocation breaks it, so the
    // later THP-eligible touch cannot get a huge frame and must fall
    // back to a 4KB mapping (Linux THP does the same).
    let mut cfg = SimConfig::paper_defaults(2 << 20, 16 << 20);
    let mut e = Engine::new(cfg.clone());
    let small_vma = e.mmap(4096, false, true, false, "small");
    e.access(small_vma, true); // carves a 4KB frame out of the only block
    let thp_vma = e.mmap(2 << 20, true, true, false, "thp");
    e.access(thp_vma, true);
    assert_eq!(
        e.stats().minor_faults_huge,
        0,
        "no huge frame was available"
    );
    assert_eq!(e.stats().minor_faults_small, 2);
    assert_eq!(e.rss_bytes(), 2 * 4096);
    // And with THP disabled the same layout never even tries.
    cfg.thp_enabled = false;
    let mut e2 = Engine::new(cfg);
    let v = e2.mmap(2 << 20, true, true, false, "thp");
    e2.access(v, true);
    assert_eq!(e2.stats().minor_faults_huge, 0);
    assert_eq!(e2.stats().minor_faults_small, 1);
}

#[test]
fn os_noise_flush_causes_rewalks() {
    let mut cfg = SimConfig::paper_defaults(64 << 20, 64 << 20);
    cfg.tlb_flush_period_ns = Some(10_000);
    let mut e = Engine::new(cfg);
    let base = e.mmap(2 << 20, true, true, false, "heap");
    e.access(base, true);
    let walks_before = e.stats().walks;
    // Two accesses separated by more than the flush period: the second
    // must re-walk even though the translation was cached.
    e.advance_compute(50_000);
    e.access(base + 64, false);
    assert!(e.stats().walks > walks_before, "flush must force a re-walk");
}

#[test]
fn writes_set_dirty_bit_and_feed_wear_on_slow_tier() {
    let mut e = small_engine();
    let base = e.mmap(2 << 20, true, true, false, "heap");
    e.access(base, true);
    assert!(e.page_table().lookup(base.vpn()).unwrap().pte.dirty());
    e.migrate_page(base.vpn(), Tier::Slow).unwrap();
    // Writes to the slow tier are recorded as device wear.
    e.access(base + 4096, true);
    assert!(e.memory().wear().stats().total_bytes_written > 0);
}

#[test]
fn direct_mode_charges_slow_latency_on_llc_miss() {
    let mut cfg = SimConfig::paper_defaults(64 << 20, 64 << 20);
    cfg.cold_model = ColdAccessModel::Direct;
    let mut e = Engine::new(cfg);
    let base = e.mmap(2 << 20, true, true, false, "heap");
    e.access(base, false);
    e.migrate_page(base.vpn(), Tier::Slow).unwrap();
    // Different line, LLC miss, slow tier, no poison.
    let lat = e.access(base + 4096, false);
    assert!(lat >= 1_000, "slow read must cost ~1us, got {lat}");
    assert_eq!(e.stats().slow_tier_accesses, 1);
    assert_eq!(e.slow_series().total(), 1);
}

// ----------------------------------------------------------------------
// MemoryView (the snapshot half of the policy seam)
// ----------------------------------------------------------------------

/// Builds an engine whose layout forces several view shards: a VMA bigger
/// than one 32MB shard with a mix of huge, split, poisoned and migrated
/// leaves, plus a second small VMA.
fn sharded_engine() -> (Engine, VirtAddr, VirtAddr) {
    let mut e = Engine::new(SimConfig::paper_defaults(256 << 20, 256 << 20));
    let a = e.mmap(96 << 20, true, true, false, "big");
    let b = e.mmap(4 << 20, false, true, false, "small");
    // Touch huge pages on both sides of the 32MB shard boundary.
    for mb in [0u64, 2, 30, 32, 34, 60, 94] {
        e.access(a + (mb << 20), true);
    }
    for i in 0..8u64 {
        e.access(b + i * 4096, i % 2 == 0);
    }
    // Mixed state: split one page, poison another, demote a third.
    e.split_huge((a + (30 << 20)).vpn()).unwrap();
    e.poison_page((a + (32 << 20)).vpn(), PageSize::Huge2M);
    e.migrate_page((a + (60 << 20)).vpn(), Tier::Slow).unwrap();
    (e, a, b)
}

#[test]
fn memory_view_identical_for_any_worker_count() {
    let (e, _, _) = sharded_engine();
    let ranges = e.vma_ranges();
    let inline = e.memory_view_uncharged(&ranges, 1);
    for workers in [2, 4, 7] {
        let par = e.memory_view_uncharged(&ranges, workers);
        assert_eq!(inline.pages(), par.pages(), "workers={workers}");
        assert_eq!(inline.ptes_visited(), par.ptes_visited());
        for i in 0..ranges.len() {
            assert_eq!(inline.range_pages(i), par.range_pages(i));
        }
    }
}

#[test]
fn memory_view_matches_read_accessed_and_footprint() {
    let (mut e, _, _) = sharded_engine();
    let ranges = e.vma_ranges();
    let view = e.memory_view_uncharged(&ranges, 4);
    // Same leaves in the same order as the historical fused read scan.
    let mut hits = Vec::new();
    for &(start, n) in &ranges {
        e.read_accessed(start, n, &mut hits);
    }
    assert_eq!(view.pages().len(), hits.len());
    for (p, h) in view.pages().iter().zip(&hits) {
        assert_eq!(p.base_vpn, h.base_vpn);
        assert_eq!(p.size, h.size);
        assert_eq!(p.accessed, h.accessed);
        assert_eq!(p.dirty, h.dirty);
        assert_eq!(p.poisoned, e.trap().is_poisoned(p.base_vpn));
        assert_eq!(Some(p.tier), e.tier_of_vpn(p.base_vpn));
    }
    // Aggregates agree with the engine's own walk.
    assert_eq!(view.breakdown(), e.footprint_breakdown());
}

#[test]
fn memory_view_is_immutable_under_later_migrations() {
    let (mut e, a, _) = sharded_engine();
    let ranges = e.vma_ranges();
    let view = e.memory_view_uncharged(&ranges, 2);
    let victim = a.vpn();
    assert_eq!(view.find(victim).unwrap().tier, Tier::Fast);
    // Mutate the machine mid-period: demote, split, poison.
    e.migrate_page(victim, Tier::Slow).unwrap();
    e.split_huge((a + (2 << 20)).vpn()).unwrap();
    e.poison_page((a + (34 << 20)).vpn(), PageSize::Huge2M);
    // The snapshot still reports the state at capture time.
    let p = view.find(victim).unwrap();
    assert_eq!(p.tier, Tier::Fast);
    assert_eq!(p.size, PageSize::Huge2M);
    assert!(!view.find((a + (34 << 20)).vpn()).unwrap().poisoned);
    // A fresh view sees the new state.
    let now = e.memory_view_uncharged(&ranges, 2);
    assert_eq!(now.find(victim).unwrap().tier, Tier::Slow);
}

#[test]
fn memory_view_charges_exact_scan_visit_cost() {
    let (mut e, _, _) = sharded_engine();
    let ranges = e.vma_ranges();
    let before = e.stats().kernel_time_ns;
    let uncharged = e.memory_view_uncharged(&ranges, 2);
    assert_eq!(e.stats().kernel_time_ns, before, "uncharged view is free");
    let view = e.memory_view(&ranges, 2);
    assert_eq!(
        e.stats().kernel_time_ns - before,
        view.ptes_visited() * SCAN_VISIT_NS
    );
    assert_eq!(view.ptes_visited(), uncharged.ptes_visited());
}

#[test]
fn view_plus_targeted_clear_costs_what_fused_scan_did() {
    // Cost parity: snapshot (visit charge) + ClearAccessed plan op
    // (shootdown charge) must equal the historical fused
    // scan_and_clear_accessed over the same ranges — proving the seam
    // never changes virtual time.
    let (mut split, _, _) = sharded_engine();
    let (mut fused, _, _) = sharded_engine();
    let ranges = split.vma_ranges();

    let k0 = fused.stats().kernel_time_ns;
    let mut hits = Vec::new();
    for &(start, n) in &ranges {
        fused.scan_and_clear_accessed(start, n, &mut hits);
    }
    let fused_cost = fused.stats().kernel_time_ns - k0;

    let k0 = split.stats().kernel_time_ns;
    let view = split.memory_view(&ranges, 4);
    let accessed: Vec<(Vpn, PageSize)> = view
        .pages()
        .iter()
        .filter(|p| p.accessed)
        .map(|p| (p.base_vpn, p.size))
        .collect();
    let mut plan = PolicyPlan::new();
    plan.push(PlanOp::ClearAccessed { pages: accessed });
    split.apply_plan(&plan);
    let split_cost = split.stats().kernel_time_ns - k0;

    assert_eq!(split_cost, fused_cost);
    // And both machines end with identical A bits.
    assert_eq!(
        split.memory_view_uncharged(&ranges, 1).pages(),
        fused.memory_view_uncharged(&ranges, 1).pages()
    );
}

// ----------------------------------------------------------------------
// PolicyPlan (the write-back half of the policy seam)
// ----------------------------------------------------------------------

#[test]
fn apply_plan_sample_poison_count_cycle() {
    let mut e = small_engine();
    let base = e.mmap(2 << 20, true, true, false, "heap");
    e.access(base, false);
    let hvpn = base.vpn();

    let mut plan = PolicyPlan::new();
    plan.push(PlanOp::SplitSample { vpn: hvpn });
    plan.push(PlanOp::Poison {
        vpn: hvpn.offset(3),
        size: PageSize::Small4K,
    });
    let receipt = e.apply_plan(&plan);
    assert_eq!(receipt.outcomes(), &[OpOutcome::Done, OpOutcome::Done]);
    assert!(receipt.kernel_time_ns() > 0);

    e.access(base + 3 * 4096, true); // fault on the poisoned child

    let mut plan = PolicyPlan::new();
    plan.push(PlanOp::UnpoisonSum {
        vpns: vec![hvpn.offset(3)],
    });
    plan.push(PlanOp::Collapse { vpn: hvpn });
    let receipt = e.apply_plan(&plan);
    assert_eq!(receipt.outcomes()[0], OpOutcome::Faults(1));
    assert_eq!(e.page_table().mapped_huge_pages(), 1);
}

#[test]
fn apply_plan_demote_consolidate_promote_roundtrip() {
    let mut e = small_engine();
    let base = e.mmap(2 << 20, true, true, false, "heap");
    e.access(base, false);
    let hvpn = base.vpn();
    e.split_huge(hvpn).unwrap();

    // Demote: split page to slow, all children poisoned.
    let mut plan = PolicyPlan::new();
    plan.push(PlanOp::DemoteHuge { vpn: hvpn });
    let receipt = e.apply_plan(&plan);
    assert_eq!(receipt.outcomes(), &[OpOutcome::Done]);
    assert_eq!(e.tier_of_vpn(hvpn), Some(Tier::Slow));
    assert!(e.trap().is_poisoned(hvpn.offset(7)));

    e.access(base + 7 * 4096, false); // one fault on a cold child

    // Consolidate: drain children, collapse, poison the huge PTE.
    let mut plan = PolicyPlan::new();
    plan.push(PlanOp::ConsolidateCold { vpn: hvpn });
    let receipt = e.apply_plan(&plan);
    assert_eq!(receipt.outcomes(), &[OpOutcome::Faults(1)]);
    assert_eq!(e.page_table().mapped_huge_pages(), 1);
    assert!(e.trap().is_poisoned(hvpn));

    // Promote the consolidated page back.
    let mut plan = PolicyPlan::new();
    plan.push(PlanOp::PromoteHuge {
        vpn: hvpn,
        split: false,
    });
    let receipt = e.apply_plan(&plan);
    assert_eq!(receipt.outcomes(), &[OpOutcome::Done]);
    assert_eq!(e.tier_of_vpn(hvpn), Some(Tier::Fast));
    assert!(!e.trap().is_poisoned(hvpn));
}

#[test]
fn apply_plan_demote_oom_collapses_back() {
    // Slow tier smaller than one huge frame: demotion must fail cleanly.
    let mut e = Engine::new(SimConfig::paper_defaults(64 << 20, 1 << 20));
    let base = e.mmap(2 << 20, true, true, false, "heap");
    e.access(base, false);
    let hvpn = base.vpn();
    e.split_huge(hvpn).unwrap();

    let mut plan = PolicyPlan::new();
    plan.push(PlanOp::DemoteHuge { vpn: hvpn });
    let receipt = e.apply_plan(&plan);
    assert_eq!(receipt.outcomes(), &[OpOutcome::DemoteOom]);
    // Fallback restored the huge mapping in fast memory, unpoisoned.
    assert_eq!(e.tier_of_vpn(hvpn), Some(Tier::Fast));
    assert_eq!(e.page_table().mapped_huge_pages(), 1);
    assert!(!e.trap().is_poisoned(hvpn));
}

#[test]
fn apply_plan_promote_oom_repoisons() {
    // Fill the fast tier completely, then split-place one child to slow
    // memory and backfill its freed 4KB frame — so the promotion attempt
    // finds no room and must leave the child cold and monitored.
    let mut e = Engine::new(SimConfig::paper_defaults(4 << 20, 64 << 20));
    let hot = e.mmap(2 << 20, true, true, false, "hot");
    let cold = e.mmap(2 << 20, true, true, false, "cold");
    e.access(hot, false);
    e.access(cold, false);
    let cold_vpn = cold.vpn();
    e.split_huge(cold_vpn).unwrap();
    e.migrate_page(cold_vpn, Tier::Slow).unwrap();
    e.poison_page(cold_vpn, PageSize::Small4K);
    let filler = e.mmap(4096, false, true, false, "filler");
    e.access(filler, false); // takes the 4KB the migration freed

    let mut plan = PolicyPlan::new();
    plan.push(PlanOp::PromoteChild { vpn: cold_vpn });
    let receipt = e.apply_plan(&plan);
    assert_eq!(receipt.outcomes(), &[OpOutcome::PromoteOom]);
    assert_eq!(e.tier_of_vpn(cold_vpn), Some(Tier::Slow));
    assert!(e.trap().is_poisoned(cold_vpn), "must stay monitored");
}

#[test]
fn apply_plan_split_place_moves_only_requested_children() {
    let mut e = small_engine();
    let base = e.mmap(2 << 20, true, true, false, "heap");
    e.access(base, false);
    let hvpn = base.vpn();
    e.split_huge(hvpn).unwrap();

    let cold: Vec<Vpn> = (8..512).map(|i| hvpn.offset(i)).collect();
    let mut plan = PolicyPlan::new();
    plan.push(PlanOp::SplitPlace {
        vpn: hvpn,
        cold_children: cold.clone(),
    });
    let receipt = e.apply_plan(&plan);
    match &receipt.outcomes()[0] {
        OpOutcome::Placed(placed) => assert_eq!(placed, &cold),
        o => panic!("expected Placed, got {o:?}"),
    }
    // Hot children stayed fast and unpoisoned; cold ones are slow+poisoned.
    assert_eq!(e.tier_of_vpn(hvpn), Some(Tier::Fast));
    assert!(!e.trap().is_poisoned(hvpn));
    assert_eq!(e.tier_of_vpn(hvpn.offset(300)), Some(Tier::Slow));
    assert!(e.trap().is_poisoned(hvpn.offset(300)));
}

#[test]
fn page_local_plan_ops_charge_commute_across_windows() {
    // The commutativity contract behind `apply_plan`'s window batching:
    // page-local ops on distinct 2MB windows may be applied in any order
    // with identical outcomes, charges, and machine state.
    let build = || {
        let mut e = small_engine();
        let base = e.mmap(8 << 20, true, true, false, "heap");
        for w in 0..4u64 {
            e.access(base + w * (2 << 20), false); // fault in 4 THPs
        }
        (e, base)
    };
    let ops = |base: VirtAddr| {
        vec![
            PlanOp::SplitSample { vpn: base.vpn() },
            PlanOp::Poison {
                vpn: base.vpn().offset(512),
                size: PageSize::Huge2M,
            },
            PlanOp::SplitSample {
                vpn: base.vpn().offset(1024),
            },
            PlanOp::Poison {
                vpn: base.vpn().offset(1536),
                size: PageSize::Huge2M,
            },
        ]
    };

    let (mut fwd, base_f) = build();
    let (mut rev, base_r) = build();
    assert_eq!(base_f, base_r);

    let mut plan_f = PolicyPlan::new();
    let mut plan_r = PolicyPlan::new();
    let mut fwd_ops = ops(base_f);
    for op in &fwd_ops {
        assert!(op.local_window().is_some(), "test ops must be page-local");
    }
    for op in fwd_ops.clone() {
        plan_f.push(op);
    }
    fwd_ops.reverse();
    for op in fwd_ops {
        plan_r.push(op);
    }

    let r_f = fwd.apply_plan(&plan_f);
    let r_r = rev.apply_plan(&plan_r);
    let mut rev_outcomes = r_r.outcomes().to_vec();
    rev_outcomes.reverse();
    assert_eq!(r_f.outcomes(), &rev_outcomes[..]);
    assert_eq!(r_f.kernel_time_ns(), r_r.kernel_time_ns());
    assert_eq!(fwd.stats(), rev.stats());
    assert_eq!(fwd.trap_stats(), rev.trap_stats());
    assert_eq!(fwd.footprint_breakdown(), rev.footprint_breakdown());

    // Same poisoned state, same counters, after faulting both identically.
    for e in [&mut fwd, &mut rev] {
        e.access(base_f + 512 * 4096 + 7, false);
        e.access(base_f + 1536 * 4096 + 9, true);
    }
    let mut plan2 = PolicyPlan::new();
    plan2.push(PlanOp::TakeCounts {
        vpn: base_f.vpn().offset(512),
        split: false,
    });
    plan2.push(PlanOp::TakeCounts {
        vpn: base_f.vpn().offset(1536),
        split: false,
    });
    assert_eq!(
        fwd.apply_plan(&plan2).outcomes(),
        rev.apply_plan(&plan2).outcomes()
    );
    assert_eq!(fwd.stats(), rev.stats());
}

#[test]
fn local_window_classification() {
    // Fabric and occupancy-dependent ops are barriers; pure PTE/counter
    // surgery is page-local; multi-page unpoison is local only when all
    // leaves share one window.
    assert!(PlanOp::SplitSample { vpn: Vpn(512) }.local_window() == Some(1));
    assert!(PlanOp::Collapse { vpn: Vpn(1024) }.local_window() == Some(2));
    assert!(
        PlanOp::UnpoisonSum {
            vpns: vec![Vpn(512), Vpn(513)]
        }
        .local_window()
            == Some(1)
    );
    assert!(PlanOp::UnpoisonSum {
        vpns: vec![Vpn(512), Vpn(1024)]
    }
    .local_window()
    .is_none());
    assert!(PlanOp::UnpoisonSum { vpns: vec![] }
        .local_window()
        .is_none());
    assert!(PlanOp::DemoteHuge { vpn: Vpn(512) }
        .local_window()
        .is_none());
    assert!(PlanOp::BeginMigrate {
        vpn: Vpn(512),
        target: Tier::Slow
    }
    .local_window()
    .is_none());
    assert!(PlanOp::ClearAccessed { pages: vec![] }
        .local_window()
        .is_none());
}

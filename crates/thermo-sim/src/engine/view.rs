//! [`MemoryView`]: the read-only snapshot half of the engine↔policy seam.
//!
//! At a period boundary a policy asks the engine for a snapshot of the
//! leaves covering a set of VPN ranges — page size, backing tier, A/D bits,
//! poison state, and the BadgerTrap fault counter. The snapshot is built
//! from shared borrows only (`&PageTable`, `&PhysicalMemory`, `&TrapUnit`),
//! which is what lets it run **off the app thread**: the ranges are cut
//! into shards at *fixed* 32 MiB boundaries and walked by a `thermo-exec`
//! pool sized by `THERMO_SCAN_JOBS`, then merged strictly in shard order.
//!
//! Determinism: shard boundaries are absolute (huge-page-aligned multiples
//! of [`SCAN_SHARD_PAGES`], never derived from the worker count), each
//! shard's walk is a pure function of the page table, and the merge order
//! is the shard order — so the snapshot is byte-identical for any
//! `THERMO_SCAN_JOBS`, including the inline (`workers <= 1`) path which
//! walks the very same shard list serially. Each shard job still receives
//! a `derive_stream_seed(base, shard_id)` seed from the pool (the standard
//! `thermo-exec` contract) so future sampling policies can draw
//! shard-local randomness without restructuring; today's walk is read-only
//! and draws nothing.
//!
//! Cost accounting: reading A bits is the visit half of the paper's §3
//! scan. [`Engine::memory_view`] charges `ptes_visited · SCAN_VISIT_NS` of
//! kernel time at the tick where the snapshot is taken — exactly what the
//! historical inline `read_accessed` charged — while the shootdown half is
//! charged by the [`PolicyPlan`](super::PolicyPlan) op that clears the
//! accessed leaves. Summed, a snapshot + targeted clear costs precisely
//! what a fused `scan_and_clear_accessed` over the same ranges did, so
//! moving the walk off-thread never changes virtual time.

use super::{Engine, FootprintBreakdown, SCAN_VISIT_NS};
use std::ops::Range;
use thermo_mem::{PageSize, PhysicalMemory, Tier, Vpn};
use thermo_trap::TrapUnit;
use thermo_vm::PageTable;

/// Shard granularity of the snapshot walk, in 4KB pages (32 MiB). A fixed
/// constant — never derived from the worker count — so the shard list, the
/// per-shard seed streams, and the merge order are identical for any
/// `THERMO_SCAN_JOBS`. Multiple of 512 so no shard boundary can land inside
/// a huge leaf (which would double-report it).
pub(crate) const SCAN_SHARD_PAGES: u64 = 16 * 512;

/// One leaf mapping as observed at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageInfo {
    /// Base VPN of the leaf.
    pub base_vpn: Vpn,
    /// Leaf size (2MB huge or 4KB child).
    pub size: PageSize,
    /// Tier backing the leaf's frame.
    pub tier: Tier,
    /// Accessed-bit value (not cleared by the snapshot).
    pub accessed: bool,
    /// Dirty-bit value.
    pub dirty: bool,
    /// Whether the PTE is BadgerTrap-poisoned.
    pub poisoned: bool,
    /// The trap unit's fault counter for this leaf (0 when unpoisoned).
    pub fault_count: u64,
}

/// A read-only, immutable snapshot of the leaves covering a set of VPN
/// ranges, taken at one virtual-time instant.
///
/// Owns its data: later engine mutations (migrations, splits, poisoning)
/// never alter an already-taken view, which is what makes "decide on the
/// snapshot, then apply a plan" race-free by construction.
#[derive(Debug, Clone)]
pub struct MemoryView {
    at_ns: u64,
    pages: Vec<PageInfo>,
    /// Per requested range: `(start, n_pages, span into `pages`)`.
    spans: Vec<(Vpn, u64, Range<usize>)>,
    ptes_visited: u64,
}

impl MemoryView {
    /// Virtual time at which the snapshot was taken.
    pub fn at_ns(&self) -> u64 {
        self.at_ns
    }

    /// Every observed leaf, in range order (address order within a range).
    pub fn pages(&self) -> &[PageInfo] {
        &self.pages
    }

    /// Leaves observed inside the `i`-th requested range.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    pub fn range_pages(&self, i: usize) -> &[PageInfo] {
        &self.pages[self.spans[i].2.clone()]
    }

    /// Number of requested ranges.
    pub fn range_count(&self) -> usize {
        self.spans.len()
    }

    /// PTEs visited building the snapshot (the §3 scan visit cost).
    pub fn ptes_visited(&self) -> u64 {
        self.ptes_visited
    }

    /// The first observed leaf based at exactly `vpn`, if any.
    pub fn find(&self, vpn: Vpn) -> Option<&PageInfo> {
        self.pages.iter().find(|p| p.base_vpn == vpn)
    }

    /// Footprint breakdown of the observed leaves (equals
    /// [`Engine::footprint_breakdown`] when the ranges cover every VMA
    /// exactly once).
    pub fn breakdown(&self) -> FootprintBreakdown {
        let mut b = FootprintBreakdown::default();
        for p in &self.pages {
            b.count(p.size, p.tier);
        }
        b
    }
}

/// Cuts `ranges` into walk shards at absolute [`SCAN_SHARD_PAGES`]
/// boundaries, preserving range order. Returns `(range_idx, start,
/// n_pages)` triples; concatenating shard outputs in shard order
/// reproduces the serial whole-range walk byte for byte.
fn shards_of(ranges: &[(Vpn, u64)]) -> Vec<(usize, Vpn, u64)> {
    let mut shards = Vec::new();
    for (ri, &(start, n)) in ranges.iter().enumerate() {
        let end = start.0 + n;
        let mut cur = start.0;
        while cur < end {
            let stop = ((cur / SCAN_SHARD_PAGES) + 1) * SCAN_SHARD_PAGES;
            let stop = stop.min(end);
            shards.push((ri, Vpn(cur), stop - cur));
            cur = stop;
        }
    }
    shards
}

/// Walks one shard read-only, collecting leaf observations.
fn collect_range(
    pt: &PageTable,
    mem: &PhysicalMemory,
    trap: &TrapUnit,
    start: Vpn,
    n_pages: u64,
) -> Vec<PageInfo> {
    let mut out = Vec::new();
    pt.for_each_leaf(start, n_pages, |base_vpn, size, pte| {
        out.push(PageInfo {
            base_vpn,
            size,
            tier: mem.tier_of(pte.pfn()),
            accessed: pte.accessed(),
            dirty: pte.dirty(),
            poisoned: pte.poisoned(),
            fault_count: trap.count(base_vpn).unwrap_or(0),
        });
    });
    out
}

impl Engine {
    /// Takes a [`MemoryView`] snapshot of `ranges` and charges the §3 scan
    /// visit cost (`ptes_visited · SCAN_VISIT_NS`) to kernel time — this
    /// *is* the read half of an A-bit scan, so policies that snapshot
    /// instead of calling [`read_accessed`](Engine::read_accessed) pay
    /// identical virtual time.
    ///
    /// `workers > 1` walks the fixed shard list on a `thermo-exec` pool
    /// (off the app thread); `workers <= 1` walks the same shard list
    /// inline. The result is byte-identical either way.
    pub fn memory_view(&mut self, ranges: &[(Vpn, u64)], workers: usize) -> MemoryView {
        let view = self.memory_view_uncharged(ranges, workers);
        self.stats.kernel_time_ns += view.ptes_visited() * SCAN_VISIT_NS;
        view
    }

    /// [`memory_view`](Engine::memory_view) without the kernel-time charge
    /// — for instrumentation and tests that must not perturb virtual time.
    pub fn memory_view_uncharged(&self, ranges: &[(Vpn, u64)], workers: usize) -> MemoryView {
        let shards = shards_of(ranges);
        let pt = &self.pt;
        let mem = &self.mem;
        let trap = &self.trap;
        let per_shard: Vec<Vec<PageInfo>> = if workers <= 1 || shards.len() <= 1 {
            shards
                .iter()
                .map(|&(_, s, n)| collect_range(pt, mem, trap, s, n))
                .collect()
        } else {
            let jobs: Vec<_> = shards
                .iter()
                .map(|&(_, s, n)| {
                    move |_ctx: &thermo_exec::JobCtx| collect_range(pt, mem, trap, s, n)
                })
                .collect();
            let cfg = thermo_exec::ExecConfig::new(workers, 0)
                .with_fuzz(thermo_exec::exec_fuzz_from_env());
            thermo_exec::run_jobs(jobs, &cfg).expect("read-only snapshot shards cannot panic")
        };

        let mut pages = Vec::new();
        let mut spans = Vec::with_capacity(ranges.len());
        let mut shard_iter = shards.iter().zip(per_shard);
        let mut pending: Option<(usize, Vec<PageInfo>)> = None;
        for (ri, &(start, n)) in ranges.iter().enumerate() {
            let span_start = pages.len();
            loop {
                let (shard_ri, chunk) = match pending.take() {
                    Some(p) => p,
                    None => match shard_iter.next() {
                        Some((&(sri, _, _), chunk)) => (sri, chunk),
                        None => break,
                    },
                };
                if shard_ri != ri {
                    pending = Some((shard_ri, chunk));
                    break;
                }
                pages.extend(chunk);
            }
            spans.push((start, n, span_start..pages.len()));
        }
        let ptes_visited = pages.len() as u64;
        MemoryView {
            at_ns: self.clock.now_ns(),
            pages,
            spans,
            ptes_visited,
        }
    }
}

//! [`PolicyPlan`]: the write-back half of the engine↔policy seam.
//!
//! A policy decides on a read-only [`MemoryView`](super::MemoryView)
//! snapshot and hands the engine a plan — an ordered list of [`PlanOp`]s.
//! [`Engine::apply_plan`] executes the ops **in order, atomically with
//! respect to the application** (no app accesses interleave; this is a
//! single policy tick in virtual time), charging each op's kernel-time
//! cost through the same mechanism methods the paper's accounting defines
//! (§3.3 scan/shootdown, §4 migration, THP surgery).
//!
//! Each op returns an [`OpOutcome`] in the [`PlanReceipt`]; outcome `i`
//! corresponds to op `i`. Outcomes carry exactly what the Thermostat
//! daemon needs to update its bookkeeping after the fact: fault counters
//! drained by unpoison/take ops, OOM fallbacks the engine resolved
//! internally (a failed demotion collapses the page back; a failed
//! promotion re-poisons it — the page *always* ends in a consistent
//! state), and the set of children a split placement actually moved.
//!
//! Compound ops exist where the mechanism sequence must not be torn apart
//! by a policy bug: e.g. [`PlanOp::DemoteHuge`] is
//! migrate-split-huge + poison-512-children *or* collapse-on-OOM as one
//! unit, because a half-demoted page (migrated but unmonitored) would
//! silently break the §3.5 correction.

use super::Engine;
use thermo_mem::{MemError, PageSize, Tier, Vpn, PAGES_PER_HUGE};
use thermo_vm::ScanHit;

/// One mechanism step in a [`PolicyPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanOp {
    /// Consolidate a page demoted last period: drain and sum the 512
    /// children's fault counters, collapse the children back into one huge
    /// PTE (the frames are already contiguous in slow memory), and poison
    /// the huge PTE so §3.5 monitoring continues. Returns
    /// [`OpOutcome::Faults`] with the drained sum.
    ConsolidateCold {
        /// Huge-aligned base of the demoted page.
        vpn: Vpn,
    },
    /// Split a sampled fast-tier huge page (Figure 4 scan 1) and clear the
    /// children's inherited Accessed bits.
    SplitSample {
        /// Huge-aligned base of the sampled page.
        vpn: Vpn,
    },
    /// Clear the Accessed bit of exactly these leaves, shooting down each
    /// one whose bit was set (the mutation half of a snapshot-based scan).
    ClearAccessed {
        /// The leaves to clear, as `(base_vpn, size)` pairs.
        pages: Vec<(Vpn, PageSize)>,
    },
    /// Poison one leaf for BadgerTrap counting.
    Poison {
        /// Base of the leaf to poison.
        vpn: Vpn,
        /// Leaf size.
        size: PageSize,
    },
    /// Unpoison each leaf and return the summed fault counts
    /// ([`OpOutcome::Faults`]).
    UnpoisonSum {
        /// Leaf bases to unpoison.
        vpns: Vec<Vpn>,
    },
    /// Drain the trap counter(s) of a still-poisoned cold page without
    /// unpoisoning (`split` drains all 512 children). Pure bookkeeping —
    /// charges no kernel time. Returns [`OpOutcome::Faults`].
    TakeCounts {
        /// Huge-aligned base of the cold page.
        vpn: Vpn,
        /// Whether the page is still split into 512 children.
        split: bool,
    },
    /// Promote one split-placed cold child back to fast memory. On a full
    /// fast tier the child is re-poisoned and stays cold
    /// ([`OpOutcome::PromoteOom`]).
    PromoteChild {
        /// The 4KB child to bring back.
        vpn: Vpn,
    },
    /// Promote a cold huge page back to fast memory (§3.5); `split` says
    /// whether it is still 512 children (demoted this very period). On a
    /// full fast tier the page is re-poisoned and stays cold
    /// ([`OpOutcome::PromoteOom`]).
    PromoteHuge {
        /// Huge-aligned base of the cold page.
        vpn: Vpn,
        /// Whether the page is still split into 512 children.
        split: bool,
    },
    /// Demote a (currently split) sampled page to slow memory and poison
    /// all 512 children. On a full slow tier the page is collapsed back
    /// and stays hot ([`OpOutcome::DemoteOom`]).
    DemoteHuge {
        /// Huge-aligned base of the (split) page to demote.
        vpn: Vpn,
    },
    /// §6 split placement: move the given cold children of a hot page to
    /// slow memory and poison them (children that no longer fit stay
    /// fast). If none moved, the page is collapsed back. Returns
    /// [`OpOutcome::Placed`] with the children actually moved.
    SplitPlace {
        /// Huge-aligned base of the hot (split) page.
        vpn: Vpn,
        /// Its never-accessed children, in address order.
        cold_children: Vec<Vpn>,
    },
    /// Collapse 512 children back into a huge page.
    Collapse {
        /// Huge-aligned base to collapse.
        vpn: Vpn,
    },
    /// Open a transactional migration on the fabric: the copy proceeds
    /// asynchronously as virtual time advances while the application keeps
    /// accessing the page. Returns [`OpOutcome::Begun`] with the
    /// transaction id; a later [`PlanOp::CommitMigrate`] resolves it.
    /// Charges no kernel time — the transfer happens on the link.
    BeginMigrate {
        /// Base of the leaf to move.
        vpn: Vpn,
        /// Destination tier.
        target: Tier,
    },
    /// Try to commit a fabric transaction: [`OpOutcome::Done`] when the
    /// copy completed and the page was remapped (a demotion leaves a
    /// shadow for instant re-promotion), [`OpOutcome::Pending`] when the
    /// copy is still in flight (ask again next period),
    /// [`OpOutcome::AbortedTxn`] when retries were exhausted or the page
    /// was structurally invalidated mid-copy, and
    /// [`OpOutcome::DemoteOom`]/[`OpOutcome::PromoteOom`] when the target
    /// tier filled up before commit (the transaction aborts cleanly).
    CommitMigrate {
        /// Transaction id from [`OpOutcome::Begun`].
        txn: u64,
    },
    /// Abort a fabric transaction unconditionally.
    AbortMigrate {
        /// Transaction id from [`OpOutcome::Begun`].
        txn: u64,
    },
    /// Demote an *unsplit* huge page to slow memory and poison it (the
    /// CLOCK/DAMON baselines' demotion unit — no §3.5 split bookkeeping).
    /// On a full slow tier the page stays hot ([`OpOutcome::DemoteOom`]).
    DemoteWholeHuge {
        /// Huge-aligned base of the page to demote.
        vpn: Vpn,
    },
    /// Promote an unsplit huge page to fast memory, preserving its PTE
    /// flags (a poisoned page stays poisoned — exactly CLOCK's behaviour).
    /// On a full fast tier nothing changes ([`OpOutcome::PromoteOom`]).
    PromoteWholeHuge {
        /// Huge-aligned base of the page to promote.
        vpn: Vpn,
    },
}

/// What one [`PlanOp`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpOutcome {
    /// The op completed on its main path.
    Done,
    /// Fault counters drained by the op, summed.
    Faults(u64),
    /// Promotion hit a full fast tier; the page was re-poisoned in place.
    PromoteOom,
    /// Demotion hit a full slow tier; the page was collapsed back.
    DemoteOom,
    /// Split placement moved exactly these children to slow memory (empty
    /// means the page was collapsed back instead).
    Placed(Vec<Vpn>),
    /// A fabric transaction was opened; carry this id to a later
    /// [`PlanOp::CommitMigrate`] or [`PlanOp::AbortMigrate`].
    Begun(u64),
    /// The transaction's copy is still in flight; commit again later.
    Pending,
    /// The transaction had failed (write-retries exhausted or structural
    /// invalidation) and was resolved as an abort.
    AbortedTxn,
}

impl PlanOp {
    /// The 2MB-aligned window (`vpn >> 9`) this op touches, when its
    /// effects are provably confined to that window: no fabric transaction
    /// (transaction ids are allocated in program order) and no dependence
    /// on global tier occupancy (migrations can hit OOM, whose outcome
    /// depends on how much earlier ops moved). Returns `None` for
    /// everything else — those ops are ordered barriers.
    ///
    /// Ops with distinct local windows **charge-commute**: applying them in
    /// any order yields identical engine state, identical per-op outcomes,
    /// and identical kernel-time charges, because each one reads and writes
    /// only its own window's PTEs/TLB entries/trap counters and all shared
    /// charges are pure sums. [`Engine::apply_plan`] exploits this to batch
    /// maximal barrier-free runs window-by-window, and sharded policy
    /// builders may emit their window groups in any completion order
    /// without perturbing artifacts.
    pub fn local_window(&self) -> Option<u64> {
        match self {
            PlanOp::ConsolidateCold { vpn }
            | PlanOp::SplitSample { vpn }
            | PlanOp::TakeCounts { vpn, .. }
            | PlanOp::Collapse { vpn }
            | PlanOp::Poison { vpn, .. } => Some(vpn.0 >> 9),
            PlanOp::UnpoisonSum { vpns } => {
                // Page-local only when every leaf shares one window.
                let w = vpns.first()?.0 >> 9;
                vpns.iter().all(|v| v.0 >> 9 == w).then_some(w)
            }
            PlanOp::PromoteChild { .. }
            | PlanOp::PromoteHuge { .. }
            | PlanOp::DemoteHuge { .. }
            | PlanOp::SplitPlace { .. }
            | PlanOp::DemoteWholeHuge { .. }
            | PlanOp::PromoteWholeHuge { .. }
            | PlanOp::BeginMigrate { .. }
            | PlanOp::CommitMigrate { .. }
            | PlanOp::AbortMigrate { .. }
            | PlanOp::ClearAccessed { .. } => None,
        }
    }
}

/// An ordered list of mechanism ops a policy hands back to the engine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PolicyPlan {
    ops: Vec<PlanOp>,
}

impl PolicyPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an op.
    pub fn push(&mut self, op: PlanOp) {
        self.ops.push(op);
    }

    /// The ops, in execution order.
    pub fn ops(&self) -> &[PlanOp] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the plan has no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Per-op outcomes plus the total kernel time the plan charged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanReceipt {
    outcomes: Vec<OpOutcome>,
    kernel_time_ns: u64,
}

impl PlanReceipt {
    /// Outcome of op `i` (same order as the plan).
    pub fn outcomes(&self) -> &[OpOutcome] {
        &self.outcomes
    }

    /// Kernel time charged by the whole plan, ns.
    pub fn kernel_time_ns(&self) -> u64 {
        self.kernel_time_ns
    }
}

impl Engine {
    /// Executes `plan` op by op, atomically with respect to the
    /// application, and returns one [`OpOutcome`] per op.
    ///
    /// # Panics
    ///
    /// Panics when an op is structurally impossible (splitting a page that
    /// is not huge, collapsing non-contiguous frames, promoting an
    /// unmapped page): those are policy bugs, not runtime conditions.
    /// Resource exhaustion (a full tier) is *not* a panic — it resolves to
    /// the op's documented fallback outcome.
    pub fn apply_plan(&mut self, plan: &PolicyPlan) -> PlanReceipt {
        // A plan application is a policy-tick boundary: fold the hot
        // access-epoch accumulator so kernel-side charges land on a fully
        // merged baseline.
        self.flush_epoch();
        let kernel_before = self.stats.kernel_time_ns;
        let ops = plan.ops();
        let mut outcomes: Vec<Option<OpOutcome>> = vec![None; ops.len()];
        let mut scratch: Vec<ScanHit> = Vec::new();
        let mut order: Vec<usize> = Vec::new();
        let mut i = 0;
        while i < ops.len() {
            let Some(_) = ops[i].local_window() else {
                // Barrier op (fabric / occupancy-dependent): strict order.
                outcomes[i] = Some(self.apply_op(&ops[i], &mut scratch));
                i += 1;
                continue;
            };
            // Maximal barrier-free run of page-local ops. Batch it window
            // by ascending window, keeping program order within a window
            // (same-window ops need not commute with each other). Distinct
            // windows charge-commute — see [`PlanOp::local_window`] — so
            // this canonical order is observationally identical to program
            // order while giving each window one contiguous burst of
            // page-table and TLB locality.
            let mut j = i;
            while j < ops.len() && ops[j].local_window().is_some() {
                j += 1;
            }
            order.clear();
            order.extend(i..j);
            order.sort_by_key(|&k| (ops[k].local_window().expect("run is local"), k));
            for &k in &order {
                outcomes[k] = Some(self.apply_op(&ops[k], &mut scratch));
            }
            i = j;
        }
        PlanReceipt {
            outcomes: outcomes
                .into_iter()
                .map(|o| o.expect("every op applied"))
                .collect(),
            kernel_time_ns: self.stats.kernel_time_ns - kernel_before,
        }
    }

    fn apply_op(&mut self, op: &PlanOp, scratch: &mut Vec<ScanHit>) -> OpOutcome {
        match op {
            PlanOp::ConsolidateCold { vpn } => {
                let sum = self.unpoison_split_children(*vpn);
                self.collapse_huge(*vpn)
                    .expect("demoted page must be collapsible");
                self.poison_page(*vpn, PageSize::Huge2M);
                OpOutcome::Faults(sum)
            }
            PlanOp::SplitSample { vpn } => {
                self.split_huge(*vpn)
                    .expect("sampling candidate must be a huge page");
                scratch.clear();
                self.scan_and_clear_accessed(*vpn, PAGES_PER_HUGE as u64, scratch);
                OpOutcome::Done
            }
            PlanOp::ClearAccessed { pages } => {
                self.clear_accessed_set(pages);
                OpOutcome::Done
            }
            PlanOp::Poison { vpn, size } => {
                self.poison_page(*vpn, *size);
                OpOutcome::Done
            }
            PlanOp::UnpoisonSum { vpns } => {
                let mut sum = 0;
                for &v in vpns {
                    sum += self.unpoison_page(v);
                }
                OpOutcome::Faults(sum)
            }
            PlanOp::TakeCounts { vpn, split } => {
                let mut sum = 0;
                if *split {
                    for i in 0..PAGES_PER_HUGE as u64 {
                        sum += self.trap.take_count(vpn.offset(i)).unwrap_or(0);
                    }
                } else {
                    sum += self.trap.take_count(*vpn).unwrap_or(0);
                }
                OpOutcome::Faults(sum)
            }
            PlanOp::PromoteChild { vpn } => {
                self.unpoison_page(*vpn);
                if self.migrate_page(*vpn, Tier::Fast).is_err() {
                    // Fast tier full: re-arm monitoring, child stays cold.
                    self.poison_page(*vpn, PageSize::Small4K);
                    OpOutcome::PromoteOom
                } else {
                    OpOutcome::Done
                }
            }
            PlanOp::PromoteHuge { vpn, split } => {
                let result = if *split {
                    self.unpoison_split_children(*vpn);
                    self.migrate_split_huge(*vpn, Tier::Fast).map(|()| {
                        self.collapse_huge(*vpn)
                            .expect("promoted page must collapse");
                    })
                } else {
                    self.unpoison_page(*vpn);
                    self.migrate_page(*vpn, Tier::Fast)
                };
                match result {
                    Ok(()) => OpOutcome::Done,
                    Err(MemError::OutOfMemory { .. }) => {
                        // Re-poison so monitoring continues; stays cold.
                        if *split {
                            self.poison_split_children(*vpn);
                        } else {
                            self.poison_page(*vpn, PageSize::Huge2M);
                        }
                        OpOutcome::PromoteOom
                    }
                    Err(e) => panic!("unexpected promotion failure: {e}"),
                }
            }
            PlanOp::DemoteHuge { vpn } => match self.migrate_split_huge(*vpn, Tier::Slow) {
                Ok(()) => {
                    self.poison_split_children(*vpn);
                    OpOutcome::Done
                }
                Err(MemError::OutOfMemory { .. }) => {
                    // Slow tier full: the page stays hot.
                    self.collapse_huge(*vpn)
                        .expect("sampled page must collapse");
                    OpOutcome::DemoteOom
                }
                Err(e) => panic!("unexpected demotion failure: {e}"),
            },
            PlanOp::SplitPlace { vpn, cold_children } => {
                let mut placed = Vec::new();
                for &child in cold_children {
                    if self.migrate_page(child, Tier::Slow).is_err() {
                        continue; // slow tier full: child stays fast
                    }
                    self.poison_page(child, PageSize::Small4K);
                    placed.push(child);
                }
                if placed.is_empty() {
                    // Nothing moved (e.g. slow tier full): restore the page.
                    self.collapse_huge(*vpn)
                        .expect("sampled page must collapse");
                }
                OpOutcome::Placed(placed)
            }
            PlanOp::Collapse { vpn } => {
                self.collapse_huge(*vpn)
                    .expect("sampled page must collapse");
                OpOutcome::Done
            }
            PlanOp::BeginMigrate { vpn, target } => {
                let m = self.pt.lookup(*vpn).expect("begin-migrate unmapped page");
                assert_eq!(m.base_vpn, *vpn, "begin-migrate must target a leaf");
                assert_ne!(
                    self.mem.tier_of(m.pte.pfn()),
                    *target,
                    "begin-migrate to the current tier"
                );
                OpOutcome::Begun(self.fab.begin(*vpn, m.size, *target, self.clock.now_ns()))
            }
            PlanOp::CommitMigrate { txn } => {
                self.fab.tick(self.clock.now_ns());
                match self.fab.commit_status(*txn) {
                    crate::fabric::CommitStatus::Pending => OpOutcome::Pending,
                    crate::fabric::CommitStatus::Failed => {
                        self.fab.abort(*txn);
                        OpOutcome::AbortedTxn
                    }
                    crate::fabric::CommitStatus::Ready { vpn, size, target } => {
                        match self.fabric_finalize(vpn, size, target) {
                            Ok(()) => {
                                self.fab.finish_commit(*txn);
                                OpOutcome::Done
                            }
                            Err(_) => {
                                // Target tier filled up while the copy was
                                // in flight: resolve as a clean abort.
                                self.fab.abort(*txn);
                                match target {
                                    Tier::Slow => OpOutcome::DemoteOom,
                                    Tier::Fast => OpOutcome::PromoteOom,
                                }
                            }
                        }
                    }
                }
            }
            PlanOp::AbortMigrate { txn } => {
                self.fab.abort(*txn);
                OpOutcome::Done
            }
            PlanOp::DemoteWholeHuge { vpn } => match self.migrate_page(*vpn, Tier::Slow) {
                Ok(()) => {
                    self.poison_page(*vpn, PageSize::Huge2M);
                    OpOutcome::Done
                }
                Err(MemError::OutOfMemory { .. }) => OpOutcome::DemoteOom,
                Err(e) => panic!("unexpected demotion failure: {e}"),
            },
            PlanOp::PromoteWholeHuge { vpn } => match self.migrate_page(*vpn, Tier::Fast) {
                Ok(()) => OpOutcome::Done,
                Err(MemError::OutOfMemory { .. }) => OpOutcome::PromoteOom,
                Err(e) => panic!("unexpected promotion failure: {e}"),
            },
        }
    }
}
